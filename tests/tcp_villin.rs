//! Process-level TCP end-to-end: the real `copernicus` binary running
//! the paper's deployment shape — one `serve` process, separate `work`
//! processes dialing in over authenticated links. Covers what the
//! in-process loopback suite cannot: OS process boundaries, a worker
//! pool killed with SIGKILL mid-project, and a bad passphrase turned
//! away at the door.

use copernicus::core::prelude::*;
use copernicus::msm::Weighting;
use std::io::{BufRead, BufReader, Read};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// A small but not instant project: enough commands that the pool is
/// still busy when we kill a worker process, short enough for CI.
fn villin_config() -> MsmProjectConfig {
    MsmProjectConfig {
        n_starts: 2,
        sims_per_start: 3,
        segment_ns: 5.0,
        record_interval: 40,
        checkpoint_steps: 0,
        temperature: 0.55,
        n_clusters: 12,
        lag_frames: 1,
        weighting: Weighting::Adaptive,
        even_until_generation: 0,
        respawn_fraction: 0.3,
        generations: 2,
        folded_rmsd: 3.5,
        kinetics_horizon_ns: 500.0,
        stop_folded_pop_stderr: None,
        seed: 17,
        cores_per_sim: 1,
    }
}

fn copernicus(args: &[&str]) -> Child {
    Command::new(env!("CARGO_BIN_EXE_copernicus"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn copernicus binary")
}

/// Wait for a child with a hard deadline; on timeout, kill it and fail
/// the test rather than hanging CI.
fn wait_with_deadline(
    child: &mut Child,
    what: &str,
    deadline: Duration,
) -> std::process::ExitStatus {
    let start = Instant::now();
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        if start.elapsed() > deadline {
            let _ = child.kill();
            let _ = child.wait();
            panic!("{what} did not exit within {deadline:?}");
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Drain a child's stderr on a thread so the pipe never backs up.
fn drain<R: Read + Send + 'static>(r: R) -> std::thread::JoinHandle<String> {
    std::thread::spawn(move || {
        let mut buf = String::new();
        let _ = BufReader::new(r).read_to_string(&mut buf);
        buf
    })
}

#[test]
fn two_process_run_rejects_bad_key_and_absorbs_a_killed_worker_pool() {
    let dir = std::env::temp_dir().join(format!("copernicus-tcp-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let config_path = dir.join("project.json");
    std::fs::write(
        &config_path,
        serde_json::to_string_pretty(&villin_config()).expect("config serializes"),
    )
    .expect("write config");
    let config_arg = config_path.to_str().expect("utf-8 temp path");

    // The server process: ephemeral port, so parse the bound address
    // from its announcement line.
    let mut serve = copernicus(&[
        "serve",
        config_arg,
        "--bind",
        "127.0.0.1:0",
        "--key",
        "villin e2e",
    ]);
    let mut serve_err = BufReader::new(serve.stderr.take().expect("serve stderr"));
    let addr = {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let mut line = String::new();
            let n = serve_err.read_line(&mut line).expect("read serve stderr");
            assert!(n > 0, "serve exited before announcing its address");
            if let Some(rest) = line.strip_prefix("listening on ") {
                break rest
                    .split_whitespace()
                    .next()
                    .expect("address token")
                    .to_string();
            }
            assert!(Instant::now() < deadline, "no listening line within 30s");
        }
    };
    let serve_err = drain(serve_err);

    // A client with the wrong passphrase is refused at the handshake:
    // hard exit, no retry storm, and the server is unharmed.
    let mut impostor = copernicus(&[
        "work",
        "--connect",
        &addr,
        "--key",
        "wrong",
        "--workers",
        "1",
    ]);
    let impostor_err = drain(impostor.stderr.take().expect("impostor stderr"));
    let status = wait_with_deadline(
        &mut impostor,
        "impostor work process",
        Duration::from_secs(30),
    );
    assert_eq!(status.code(), Some(1), "bad key must exit 1");
    let impostor_log = impostor_err.join().expect("impostor log");
    assert!(
        impostor_log.contains("cannot connect"),
        "impostor should report the refusal: {impostor_log}"
    );

    // A real pool connects and starts chewing through commands…
    let mut victim = copernicus(&[
        "work",
        "--connect",
        &addr,
        "--key",
        "villin e2e",
        "--workers",
        "2",
    ]);
    let victim_err = drain(victim.stderr.take().expect("victim stderr"));
    std::thread::sleep(Duration::from_millis(1_500));

    // …a second pool joins, and the first is killed outright (SIGKILL:
    // no shutdown handshake, sockets just die). The server must absorb
    // the loss and finish the project on the survivor.
    let mut finisher = copernicus(&[
        "work",
        "--connect",
        &addr,
        "--key",
        "villin e2e",
        "--workers",
        "2",
    ]);
    let finisher_err = drain(finisher.stderr.take().expect("finisher stderr"));
    std::thread::sleep(Duration::from_millis(500));
    victim.kill().expect("kill victim pool");
    let _ = victim.wait();
    let _ = victim_err.join();

    let status = wait_with_deadline(&mut serve, "serve process", Duration::from_secs(120));
    let server_log = serve_err.join().expect("server log");
    assert!(
        status.success(),
        "serve must exit cleanly; stderr:\n{server_log}"
    );
    let status = wait_with_deadline(
        &mut finisher,
        "finisher work process",
        Duration::from_secs(30),
    );
    let finisher_log = finisher_err.join().expect("finisher log");
    assert!(
        status.success(),
        "finisher must exit cleanly; stderr:\n{finisher_log}"
    );
    assert!(
        finisher_log.contains("project finished"),
        "finisher should see the shutdown: {finisher_log}"
    );

    // The server's stdout is the project result: a real MSM report that
    // could only exist if every command (including any re-queued from
    // the killed pool) completed.
    let mut stdout = String::new();
    serve
        .stdout
        .take()
        .expect("serve stdout")
        .read_to_string(&mut stdout)
        .expect("read serve stdout");
    let report: MsmProjectReport = serde_json::from_str(&stdout)
        .unwrap_or_else(|e| panic!("serve stdout must be an MsmProjectReport ({e}):\n{stdout}"));
    assert_eq!(report.generations.len(), 2);
    assert!(report.min_rmsd_to_native.is_finite());
    // 2 generations × 6 lineages, exactly once each despite the kill.
    assert!(
        server_log.contains("done: 12 commands"),
        "server must complete all 12 commands exactly once: {server_log}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
