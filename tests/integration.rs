//! Cross-crate integration tests: the full stack from MD engine through
//! MSM analysis, framework orchestration, free energies and the
//! performance simulator.

use copernicus::clustersim::{
    reference_tres1_hours, simulate_controller, MachineSpec, PerfModel, ProjectSpec,
};
use copernicus::core::plugins::msm::TrajectoryArchive;
use copernicus::core::prelude::*;
use copernicus::core::MdRunExecutor;
use copernicus::fep::HarmonicPerturbation;
use copernicus::mdsim::VillinModel;
use copernicus::msm::{ensemble_statistic, rmsd, Weighting};
use parking_lot::Mutex;
use std::sync::Arc;

fn mini_config(generations: usize) -> MsmProjectConfig {
    MsmProjectConfig {
        mode: AdaptiveMode::Generational,
        n_starts: 3,
        sims_per_start: 2,
        segment_ns: 10.0,
        record_interval: 40,
        temperature: 0.5,
        n_clusters: 20,
        lag_frames: 2,
        weighting: Weighting::Adaptive,
        respawn_fraction: 0.3,
        generations,
        seed: 99,
        ..MsmProjectConfig::default()
    }
}

#[test]
fn adaptive_pipeline_feeds_ensemble_analysis() {
    // Run a mini adaptive project through the real framework, then do the
    // Fig. 5 analysis (ensemble mean RMSD vs time) on the archive.
    let model = Arc::new(VillinModel::hp35());
    let archive: TrajectoryArchive = Arc::new(Mutex::new(Vec::new()));
    let controller = MsmController::new(mini_config(2)).with_archive(archive.clone());
    let registry = ExecutorRegistry::new().with(Arc::new(MdRunExecutor::new(model.clone())));
    let result = run_project(
        Box::new(controller),
        registry,
        RuntimeConfig {
            n_workers: 2,
            ..RuntimeConfig::default()
        },
    );
    assert_eq!(result.commands_completed, 12);

    let trajs = archive.lock().clone();
    assert!(!trajs.is_empty());
    let native = model.native.clone();
    let series = ensemble_statistic(&trajs, |frame| rmsd(frame, &native));
    assert!(!series.is_empty());
    // Trajectories start unfolded: the ensemble mean RMSD starts high.
    assert!(
        series.mean[0] > 5.0,
        "unfolded ensemble should start far from native: {}",
        series.mean[0]
    );
    // Standard errors are finite and sample counts positive.
    for (se, &n) in series.std_err().iter().zip(&series.n_samples) {
        assert!(se.is_finite());
        assert!(n >= 1);
    }
}

#[test]
fn framework_report_matches_direct_library_analysis() {
    // The RMSD numbers the controller reports must agree with an
    // independent recomputation from the archived trajectories.
    let model = Arc::new(VillinModel::hp35());
    let archive: TrajectoryArchive = Arc::new(Mutex::new(Vec::new()));
    let controller = MsmController::new(mini_config(2)).with_archive(archive.clone());
    let registry = ExecutorRegistry::new().with(Arc::new(MdRunExecutor::new(model.clone())));
    let result = run_project(Box::new(controller), registry, RuntimeConfig::default());
    let report = MsmProjectReport::from_value(&result.result).unwrap();

    let mut min_rmsd = f64::INFINITY;
    for t in archive.lock().iter() {
        for (_, frame) in t.iter() {
            min_rmsd = min_rmsd.min(rmsd(frame, &model.native));
        }
    }
    assert!(
        (report.min_rmsd_to_native - min_rmsd).abs() < 1e-9,
        "controller reported {}, archive recomputation {}",
        report.min_rmsd_to_native,
        min_rmsd
    );
}

#[test]
fn fep_stack_agrees_with_pure_statistics() {
    // The full framework FEP run and the fep-crate estimator fed with
    // analytically sampled works must agree on the same perturbation.
    let cfg = FepProjectConfig {
        k_a: 1.0,
        k_b: 4.0,
        n_windows: 2,
        ..FepProjectConfig::default()
    };
    let exact = cfg.analytic_delta_f();

    // Pure statistics path (1-D × 3 = 3-D analytic sampling).
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
    let sys = HarmonicPerturbation::new(1.0, 4.0, 1.0);
    let wf: Vec<f64> = sys
        .sample_forward(30_000, &mut rng)
        .chunks(3)
        .map(|c| c.iter().sum())
        .collect();
    let wr: Vec<f64> = sys
        .sample_reverse(30_000, &mut rng)
        .chunks(3)
        .map(|c| c.iter().sum())
        .collect();
    let direct = copernicus::fep::bar(&wf, &wr, 1.0);
    assert!(
        (direct.delta_f - exact).abs() < 5.0 * direct.std_err.max(0.02),
        "analytic-sampling BAR {} vs exact {exact}",
        direct.delta_f
    );

    // Framework path.
    let controller = FepController::new(cfg);
    let registry = ExecutorRegistry::new().with(Arc::new(FepSampleExecutor));
    let result = run_project(Box::new(controller), registry, RuntimeConfig::default());
    let report = FepProjectReport::from_value(&result.result).unwrap();
    assert!(
        (report.delta_f - exact).abs() < 6.0 * report.std_err.max(0.03),
        "framework BAR {} vs exact {exact}",
        report.delta_f
    );
}

#[test]
fn performance_simulator_reproduces_paper_anchors() {
    let project = ProjectSpec::villin_first_folded();
    let perf = PerfModel::villin();
    let tres1 = reference_tres1_hours(&project, &perf);
    // t_res(1) = 1.1e5 hours.
    assert!((tres1 - 1.1e5).abs() / 1.1e5 < 0.02, "t_res(1) = {tres1}");
    // 53% efficiency and ~10 h at 20k cores / 96-core sims.
    let outcome = simulate_controller(&project, &MachineSpec::new(20_000, 96), &perf);
    let eff = outcome.efficiency(tres1, 20_000);
    assert!((0.4..=0.65).contains(&eff), "efficiency {eff}");
    assert!((9.0..=14.0).contains(&outcome.wallclock_hours));
}

#[test]
fn gromacs_like_engine_behaves_physically() {
    // The LJ-fluid path: thermostatted NVT run conserves sanity and
    // produces a cohesive liquid.
    use copernicus::mdsim::{lj_fluid, LjFluidSpec};
    let mut sim = lj_fluid(
        LjFluidSpec {
            n_particles: 125,
            density: 0.7,
            temperature: 1.1,
            cutoff: 2.0,
            skin: 0.3,
            threaded: false,
            ..LjFluidSpec::default()
        },
        11,
    );
    sim.run(400);
    assert!(sim.state.is_finite());
    let u = sim.potential_energy() / 125.0;
    assert!(u < 0.0, "LJ liquid should be cohesive, U/N = {u}");
}

#[test]
fn telemetry_snapshot_is_self_consistent_after_quickstart_run() {
    // The quickstart scenario with telemetry attached everywhere: the
    // snapshot must tell one coherent story across server, workers, MD
    // kernel and controller.
    use copernicus::telemetry::{matched_span_pairs, names, Json, Labels, Telemetry};

    let telemetry = Telemetry::new();
    let model = Arc::new(VillinModel::hp35());
    let controller = MsmController::new(mini_config(2));
    let registry = ExecutorRegistry::new().with(Arc::new(MdRunExecutor::new(model)));
    let running = start_project(
        Box::new(controller),
        registry,
        RuntimeConfig {
            n_workers: 2,
            telemetry: Some(telemetry.clone()),
            ..RuntimeConfig::default()
        },
    );
    let monitor = running.monitor.clone();
    let result = running.join();

    // Clean run: every dispatch completed, nothing failed or re-queued.
    let reg = telemetry.registry();
    let dispatched = reg.counter_total(names::COMMANDS_DISPATCHED);
    let completed = reg.counter_total(names::COMMANDS_COMPLETED);
    let failed = reg.counter_total(names::COMMANDS_FAILED);
    let requeued = reg.counter_total(names::COMMANDS_REQUEUED);
    assert_eq!(completed, dispatched - requeued - failed);
    assert_eq!(failed, 0);
    assert_eq!(requeued, 0);
    assert_eq!(completed, result.commands_completed);
    assert_eq!(
        reg.counter_total(names::BYTES_RECEIVED),
        result.bytes_received
    );

    // Per-level timing histograms all saw traffic.
    let dispatch_latency = reg
        .find_histogram(names::DISPATCH_LATENCY, &Labels::new())
        .expect("dispatch latency histogram");
    assert_eq!(dispatch_latency.count(), dispatched);
    assert!(dispatched > 0);
    let force = reg
        .find_histogram(
            names::FORCE_LOOP_NS,
            &copernicus::telemetry::labels(&[("model", "villin")]),
        )
        .expect("force-loop histogram");
    assert!(force.count() > 0, "MD steps must be instrumented");
    assert!(force.mean() > 0.0);
    let clustering = reg
        .find_histogram(names::CLUSTERING_SECS, &Labels::new())
        .expect("clustering histogram");
    assert_eq!(clustering.count(), 2, "one clustering per generation");

    // The journal's spans pair up, and the JSONL export round-trips.
    let entries = telemetry.journal().entries();
    assert!(matched_span_pairs(&entries).expect("spans pair up") >= 2);
    let jsonl = telemetry.export_journal_jsonl();
    let reparsed = copernicus::telemetry::Journal::parse_jsonl(&jsonl).expect("JSONL parses");
    assert_eq!(reparsed.len(), entries.len());

    // The monitor's combined report embeds the same numbers.
    let report = Json::parse(&monitor.report_json()).expect("report JSON parses");
    assert_eq!(
        report
            .get("status")
            .and_then(|s| s.get("commands_completed"))
            .and_then(Json::as_u64),
        Some(result.commands_completed)
    );
    assert!(report.get("metrics").is_some());
}

#[test]
fn netsim_kind_totals_match_link_accounting() {
    // Delivered payload (by kind) must equal the carried bytes on each
    // traversed link: a single-path topology makes that exact.
    use copernicus::netsim::{HeartbeatConfig, Link, MessageKind, NetSim, NodeRole, Overlay};
    use copernicus::telemetry::{names, Telemetry};

    let t = Telemetry::new();
    let mut net = Overlay::new();
    let server = net.add_node("server", NodeRole::ProjectServer);
    let relay = net.add_node("relay", NodeRole::RelayServer);
    let worker = net.add_node("worker", NodeRole::Worker);
    net.connect_trusted(server, relay, Link::new(0.05, 1e7));
    net.connect_trusted(relay, worker, Link::new(0.01, 1e8));
    let mut sim = NetSim::new(net)
        .with_heartbeat_config(HeartbeatConfig {
            interval: 60.0,
            payload_bytes: 200,
        })
        .with_telemetry(t.clone());
    // Heartbeats stop at the relay; outputs traverse both links.
    sim.start_heartbeats(0.0, worker, relay);
    sim.send(0.0, worker, server, MessageKind::Output, 1_000_000);
    sim.send(10.0, worker, server, MessageKind::Output, 500_000);
    // Past the last 600 s heartbeat's delivery time, so all ten arrive.
    sim.run_until(630.0);

    let output = sim.traffic_by_kind(MessageKind::Output);
    let heartbeat = sim.traffic_by_kind(MessageKind::Heartbeat);
    assert_eq!(output, 1_500_000);
    assert_eq!(heartbeat, 200 * 10); // due at 60, 120, …, 600
                                     // Output crosses two links, heartbeats one.
    assert_eq!(sim.link_traffic(relay, worker), output + heartbeat);
    assert_eq!(sim.link_traffic(server, relay), output);
    assert_eq!(sim.level_traffic("relay-worker"), output + heartbeat);
    assert_eq!(sim.level_traffic("relay-server"), output);
    assert_eq!(
        t.registry().counter_total(names::NET_LINK_BYTES),
        2 * output + heartbeat
    );
    assert_eq!(
        t.registry().counter_total(names::NET_BYTES),
        output + heartbeat
    );
}

#[test]
fn villin_model_is_a_two_state_folder() {
    // The substrate behind the whole reproduction: at the sampling
    // temperature the native state is stable and unfolded chains are far
    // from it.
    let model = VillinModel::hp35();
    let mut native_sim = model.native_simulation(0.5, 4);
    native_sim.run(8_000);
    let d_native = rmsd(&native_sim.state.positions, &model.native);
    assert!(d_native < 3.0, "native run drifted to {d_native} Å");
    let d_unfolded = rmsd(&model.unfolded_start(3), &model.native);
    assert!(d_unfolded > 6.0, "unfolded start only {d_unfolded} Å away");
}
