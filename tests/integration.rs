//! Cross-crate integration tests: the full stack from MD engine through
//! MSM analysis, framework orchestration, free energies and the
//! performance simulator.

use copernicus::core::plugins::msm::TrajectoryArchive;
use copernicus::core::prelude::*;
use copernicus::core::MdRunExecutor;
use copernicus::clustersim::{
    reference_tres1_hours, simulate_controller, MachineSpec, PerfModel, ProjectSpec,
};
use copernicus::fep::HarmonicPerturbation;
use copernicus::mdsim::VillinModel;
use copernicus::msm::{ensemble_statistic, rmsd, Weighting};
use parking_lot::Mutex;
use std::sync::Arc;

fn mini_config(generations: usize) -> MsmProjectConfig {
    MsmProjectConfig {
        n_starts: 3,
        sims_per_start: 2,
        segment_ns: 10.0,
        record_interval: 40,
        temperature: 0.5,
        n_clusters: 20,
        lag_frames: 2,
        weighting: Weighting::Adaptive,
        respawn_fraction: 0.3,
        generations,
        seed: 99,
        ..MsmProjectConfig::default()
    }
}

#[test]
fn adaptive_pipeline_feeds_ensemble_analysis() {
    // Run a mini adaptive project through the real framework, then do the
    // Fig. 5 analysis (ensemble mean RMSD vs time) on the archive.
    let model = Arc::new(VillinModel::hp35());
    let archive: TrajectoryArchive = Arc::new(Mutex::new(Vec::new()));
    let controller =
        MsmController::new(model.clone(), mini_config(2)).with_archive(archive.clone());
    let registry = ExecutorRegistry::new().with(Arc::new(MdRunExecutor::new(model.clone())));
    let result = run_project(
        Box::new(controller),
        registry,
        RuntimeConfig {
            n_workers: 2,
            ..RuntimeConfig::default()
        },
    );
    assert_eq!(result.commands_completed, 12);

    let trajs = archive.lock().clone();
    assert!(!trajs.is_empty());
    let native = model.native.clone();
    let series = ensemble_statistic(&trajs, |frame| rmsd(frame, &native));
    assert!(!series.is_empty());
    // Trajectories start unfolded: the ensemble mean RMSD starts high.
    assert!(
        series.mean[0] > 5.0,
        "unfolded ensemble should start far from native: {}",
        series.mean[0]
    );
    // Standard errors are finite and sample counts positive.
    for (se, &n) in series.std_err().iter().zip(&series.n_samples) {
        assert!(se.is_finite());
        assert!(n >= 1);
    }
}

#[test]
fn framework_report_matches_direct_library_analysis() {
    // The RMSD numbers the controller reports must agree with an
    // independent recomputation from the archived trajectories.
    let model = Arc::new(VillinModel::hp35());
    let archive: TrajectoryArchive = Arc::new(Mutex::new(Vec::new()));
    let controller =
        MsmController::new(model.clone(), mini_config(2)).with_archive(archive.clone());
    let registry = ExecutorRegistry::new().with(Arc::new(MdRunExecutor::new(model.clone())));
    let result = run_project(Box::new(controller), registry, RuntimeConfig::default());
    let report: MsmProjectReport = serde_json::from_value(result.result).unwrap();

    let mut min_rmsd = f64::INFINITY;
    for t in archive.lock().iter() {
        for (_, frame) in t.iter() {
            min_rmsd = min_rmsd.min(rmsd(frame, &model.native));
        }
    }
    assert!(
        (report.min_rmsd_to_native - min_rmsd).abs() < 1e-9,
        "controller reported {}, archive recomputation {}",
        report.min_rmsd_to_native,
        min_rmsd
    );
}

#[test]
fn fep_stack_agrees_with_pure_statistics() {
    // The full framework FEP run and the fep-crate estimator fed with
    // analytically sampled works must agree on the same perturbation.
    let cfg = FepProjectConfig {
        k_a: 1.0,
        k_b: 4.0,
        n_windows: 2,
        ..FepProjectConfig::default()
    };
    let exact = cfg.analytic_delta_f();

    // Pure statistics path (1-D × 3 = 3-D analytic sampling).
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
    let sys = HarmonicPerturbation::new(1.0, 4.0, 1.0);
    let wf: Vec<f64> = sys
        .sample_forward(30_000, &mut rng)
        .chunks(3)
        .map(|c| c.iter().sum())
        .collect();
    let wr: Vec<f64> = sys
        .sample_reverse(30_000, &mut rng)
        .chunks(3)
        .map(|c| c.iter().sum())
        .collect();
    let direct = copernicus::fep::bar(&wf, &wr, 1.0);
    assert!(
        (direct.delta_f - exact).abs() < 5.0 * direct.std_err.max(0.02),
        "analytic-sampling BAR {} vs exact {exact}",
        direct.delta_f
    );

    // Framework path.
    let controller = FepController::new(cfg);
    let registry = ExecutorRegistry::new().with(Arc::new(FepSampleExecutor));
    let result = run_project(Box::new(controller), registry, RuntimeConfig::default());
    let report: FepProjectReport = serde_json::from_value(result.result).unwrap();
    assert!(
        (report.delta_f - exact).abs() < 6.0 * report.std_err.max(0.03),
        "framework BAR {} vs exact {exact}",
        report.delta_f
    );
}

#[test]
fn performance_simulator_reproduces_paper_anchors() {
    let project = ProjectSpec::villin_first_folded();
    let perf = PerfModel::villin();
    let tres1 = reference_tres1_hours(&project, &perf);
    // t_res(1) = 1.1e5 hours.
    assert!((tres1 - 1.1e5).abs() / 1.1e5 < 0.02, "t_res(1) = {tres1}");
    // 53% efficiency and ~10 h at 20k cores / 96-core sims.
    let outcome = simulate_controller(&project, &MachineSpec::new(20_000, 96), &perf);
    let eff = outcome.efficiency(tres1, 20_000);
    assert!((0.4..=0.65).contains(&eff), "efficiency {eff}");
    assert!((9.0..=14.0).contains(&outcome.wallclock_hours));
}

#[test]
fn gromacs_like_engine_behaves_physically() {
    // The LJ-fluid path: thermostatted NVT run conserves sanity and
    // produces a cohesive liquid.
    use copernicus::mdsim::{lj_fluid, LjFluidSpec};
    let mut sim = lj_fluid(
        LjFluidSpec {
            n_particles: 125,
            density: 0.7,
            temperature: 1.1,
            cutoff: 2.0,
            skin: 0.3,
            threaded: false,
            ..LjFluidSpec::default()
        },
        11,
    );
    sim.run(400);
    assert!(sim.state.is_finite());
    let u = sim.potential_energy() / 125.0;
    assert!(u < 0.0, "LJ liquid should be cohesive, U/N = {u}");
}

#[test]
fn villin_model_is_a_two_state_folder() {
    // The substrate behind the whole reproduction: at the sampling
    // temperature the native state is stable and unfolded chains are far
    // from it.
    let model = VillinModel::hp35();
    let mut native_sim = model.native_simulation(0.5, 4);
    native_sim.run(8_000);
    let d_native = rmsd(&native_sim.state.positions, &model.native);
    assert!(d_native < 3.0, "native run drifted to {d_native} Å");
    let d_unfolded = rmsd(&model.unfolded_start(3), &model.native);
    assert!(d_unfolded > 6.0, "unfolded start only {d_unfolded} Å away");
}
