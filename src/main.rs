//! `copernicus` — command-line front end.
//!
//! The paper's users drive projects from command-line clients; this
//! binary is the single-machine equivalent: it starts a project server
//! and a worker pool in-process and runs a project described by a JSON
//! config.
//!
//! ```text
//! copernicus msm  [config.json] [--workers N]   # adaptive-sampling project
//! copernicus fep  [config.json] [--workers N]   # BAR free-energy project
//! copernicus repex [config.json] [--workers N]  # replica-exchange project
//! copernicus demo                               # built-in quick demo
//! copernicus report <snapshot.json>             # render a saved telemetry snapshot
//! copernicus serve [config.json] --bind ADDR --key PASSPHRASE
//!                                               # project server on TCP, no local workers
//! copernicus work --connect ADDR --key PASSPHRASE [--workers N]
//!                                               # worker pool dialing a remote server
//! ```
//!
//! `serve` and `work` are the paper's deployment shape (§2.2): the
//! project server runs on a head node and worker pools on other
//! machines dial in over authenticated TCP links. Both sides must be
//! given the same `--key` passphrase.
//!
//! Every run carries a [`Telemetry`] handle through the server, the
//! workers and the MSM controller; `--report` prints the aligned-text
//! dump after the run and `--telemetry-dir DIR` writes the JSON metrics
//! snapshot plus the JSONL event journal for offline analysis.

use copernicus::core::plugins::msm::TrajectoryArchive;
use copernicus::core::prelude::*;
use copernicus::core::wire::MetricsServer;
use copernicus::core::{MdRunExecutor, Monitor};
use copernicus::mdsim::VillinModel;
use copernicus::telemetry::trace;
use copernicus::telemetry::{render_text, Json, Telemetry};
use parking_lot::Mutex;
use std::sync::Arc;

/// Flags shared by all run modes.
struct Options {
    n_workers: usize,
    /// Print the aligned-text telemetry report after the run.
    report: bool,
    /// Write `snapshot.json`, `journal.jsonl` and `trace_spans.jsonl`
    /// into this directory.
    telemetry_dir: Option<String>,
    /// Serve live Prometheus text exposition on this address.
    metrics_addr: Option<String>,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mode = args.get(1).map(String::as_str).unwrap_or("help");
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let opts = Options {
        n_workers: flag_value("--workers")
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(2, |n| n.get())),
        report: args.iter().any(|a| a == "--report"),
        telemetry_dir: flag_value("--telemetry-dir"),
        metrics_addr: flag_value("--metrics-addr"),
    };
    let config_path = args.get(2).filter(|a| !a.starts_with("--")).cloned();

    match mode {
        "msm" => run_msm(config_path, &opts),
        "fep" => run_fep(config_path, &opts),
        "repex" => run_repex(config_path, &opts),
        "demo" => {
            let cfg = MsmProjectConfig {
                n_starts: 3,
                sims_per_start: 3,
                segment_ns: 10.0,
                n_clusters: 30,
                generations: 3,
                ..MsmProjectConfig::default()
            };
            run_msm_config(cfg, &opts);
        }
        "report" => render_snapshot(config_path),
        "serve" => {
            // --peer may repeat: one overlay link per occurrence.
            let peers: Vec<String> = args
                .windows(2)
                .filter(|w| w[0] == "--peer")
                .map(|w| w[1].clone())
                .collect();
            run_serve(
                config_path,
                &opts,
                flag_value("--controller"),
                flag_value("--bind"),
                flag_value("--key"),
                flag_value("--name"),
                peers,
                flag_value("--state-dir"),
                flag_value("--fsync"),
            )
        }
        "work" => run_work(&opts, flag_value("--connect"), flag_value("--key")),
        "trace" => run_trace(&args),
        _ => {
            eprintln!(
                "usage: copernicus <msm|fep|repex|demo|report|serve|work|trace> [config.json] \
                 [--workers N] [--report] [--telemetry-dir DIR] [--metrics-addr ADDR]"
            );
            eprintln!();
            eprintln!("  msm     run an adaptive-sampling project (MsmProjectConfig JSON)");
            eprintln!("  fep     run a BAR free-energy project (FepProjectConfig JSON)");
            eprintln!("  repex   run a replica-exchange project (RepexProjectConfig JSON)");
            eprintln!("  demo    run a built-in 1-minute adaptive-sampling demo");
            eprintln!("  report  render a saved telemetry snapshot as text");
            eprintln!("  serve   project server on TCP: --bind ADDR --key PASSPHRASE");
            eprintln!("          [--controller NAME]  controller plugin (default msm);");
            eprintln!("          the config JSON is handed to the plugin registry");
            eprintln!("          [--name NAME] [--peer ADDR]...  join the server overlay:");
            eprintln!("          dial each peer and pull work for idle local workers");
            eprintln!("          [--state-dir DIR]  journal every lifecycle transition;");
            eprintln!("          restarting with the same DIR resumes the pre-crash state");
            eprintln!("          [--fsync always|never|MS]  WAL durability (default always)");
            eprintln!("  work    worker pool over TCP: --connect ADDR --key PASSPHRASE");
            eprintln!("  trace   merge span logs: trace merge <spans.jsonl>... [-o out.json]");
            eprintln!("          (writes Chrome trace-event JSON, viewable in Perfetto)");
            eprintln!();
            eprintln!("  --report             print the telemetry report after the run");
            eprintln!("  --telemetry-dir DIR  write snapshot.json + journal.jsonl +");
            eprintln!("                       trace_spans.jsonl to DIR");
            eprintln!("  --metrics-addr ADDR  serve live Prometheus metrics on ADDR");
            std::process::exit(if mode == "help" { 0 } else { 2 });
        }
    }
}

/// `copernicus trace merge <spans.jsonl>... [-o out.json]`: join span
/// logs from several processes by trace id and export Chrome
/// trace-event JSON (load it in Perfetto or `chrome://tracing`).
fn run_trace(args: &[String]) {
    let usage = || -> ! {
        eprintln!("usage: copernicus trace merge <spans.jsonl>... [-o out.json]");
        std::process::exit(2);
    };
    if args.get(2).map(String::as_str) != Some("merge") {
        usage();
    }
    let mut out_path: Option<String> = None;
    let mut inputs: Vec<String> = Vec::new();
    let mut i = 3;
    while i < args.len() {
        if args[i] == "-o" || args[i] == "--out" {
            out_path = Some(args.get(i + 1).cloned().unwrap_or_else(|| usage()));
            i += 2;
        } else {
            inputs.push(args[i].clone());
            i += 1;
        }
    }
    if inputs.is_empty() {
        usage();
    }
    let mut logs = Vec::new();
    for path in &inputs {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read span log {path}: {e}");
            std::process::exit(2);
        });
        let (log, errors) = trace::parse_jsonl(&text);
        for (line, err) in &errors {
            eprintln!("{path}:{line}: skipped: {err}");
        }
        eprintln!(
            "{path}: process '{}', {} span(s)",
            log.process,
            log.spans.len()
        );
        logs.push(log);
    }
    let merged = trace::merge(&logs);
    let n_spans: usize = merged.traces.values().map(Vec::len).sum();
    eprintln!(
        "merged {} trace(s), {} span(s) across {} process(es): {}",
        merged.trace_ids().len(),
        n_spans,
        merged.processes.len(),
        merged.processes.join(", ")
    );
    let chrome = merged.chrome_json().to_string_pretty();
    match out_path {
        Some(p) => {
            std::fs::write(&p, chrome).unwrap_or_else(|e| {
                eprintln!("cannot write {p}: {e}");
                std::process::exit(1);
            });
            eprintln!("wrote {p}");
        }
        None => println!("{chrome}"),
    }
}

/// Start the live metrics endpoint when `--metrics-addr` is given. The
/// handle keeps the accept loop alive; drop it to stop serving.
fn start_metrics(opts: &Options, telemetry: &Telemetry) -> Option<MetricsServer> {
    let addr = opts.metrics_addr.as_ref()?;
    let t = telemetry.clone();
    match MetricsServer::bind(addr, move || t.render_prometheus()) {
        Ok(server) => {
            eprintln!("metrics: http://{}/metrics", server.local_addr());
            Some(server)
        }
        Err(e) => {
            eprintln!("cannot bind metrics endpoint {addr}: {e}");
            std::process::exit(1);
        }
    }
}

/// Exit with a usage error for a missing networked-mode flag.
fn require_flag(value: Option<String>, what: &str) -> String {
    value.unwrap_or_else(|| {
        eprintln!("missing {what}");
        std::process::exit(2);
    })
}

/// `copernicus serve`: run a project server on an authenticated TCP
/// listener; workers dial in from other processes with `work`. The
/// controller is instantiated by name through the plugin registry, so
/// every plugin this build ships is servable from the same front end.
#[allow(clippy::too_many_arguments)]
fn run_serve(
    config_path: Option<String>,
    opts: &Options,
    controller_name: Option<String>,
    bind: Option<String>,
    key: Option<String>,
    name: Option<String>,
    peers: Vec<String>,
    state_dir: Option<String>,
    fsync: Option<String>,
) {
    let bind = require_flag(bind, "--bind ADDR (e.g. --bind 0.0.0.0:7878)");
    let key = AuthKey::from_passphrase(&require_flag(key, "--key PASSPHRASE"));
    let fsync = fsync.map(|spec| {
        FsyncMode::parse(&spec).unwrap_or_else(|| {
            eprintln!("invalid --fsync {spec:?}: expected always, never, or a millisecond count");
            std::process::exit(2);
        })
    });
    let controller_name = controller_name.unwrap_or_else(|| "msm".to_string());
    let config = load_config_value(config_path);
    let plugins = copernicus::core::plugins::registry();
    let controller = plugins
        .instantiate(&controller_name, &config)
        .unwrap_or_else(|e| {
            eprintln!("cannot start controller: {e}");
            std::process::exit(2);
        });
    eprintln!("project server: controller plugin '{controller_name}'");
    // Name the tracer after the server so merged traces from several
    // overlay processes stay distinguishable.
    let process = name.clone().unwrap_or_else(|| format!("server-{bind}"));
    let telemetry = Telemetry::for_process(&process);
    let _metrics = start_metrics(opts, &telemetry);
    let mut builder = ServerConfig::builder().bind(&bind, key);
    if let Some(name) = name {
        builder = builder.name(name);
    }
    for peer in &peers {
        builder = builder.peer(peer);
    }
    if let Some(dir) = state_dir {
        eprintln!("durable state: {dir} (crash-restart with the same --state-dir resumes)");
        builder = builder.state_dir(dir);
    }
    if let Some(mode) = fsync {
        builder = builder.fsync(mode);
    }
    let server = builder.build().unwrap_or_else(|e| {
        eprintln!("invalid server config: {e}");
        std::process::exit(2);
    });
    let serving = copernicus::core::serve_project(
        controller,
        RuntimeConfig {
            n_workers: 0,
            server,
            telemetry: Some(telemetry.clone()),
            ..RuntimeConfig::default()
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("cannot bind {bind}: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "listening on {} — connect workers with:\n  copernicus work --connect {} --key <passphrase>",
        serving.local_addr, serving.local_addr
    );

    let monitor = serving.monitor.clone();
    let ticker = std::thread::spawn(move || {
        let mut seen = 0u64;
        loop {
            std::thread::sleep(std::time::Duration::from_millis(500));
            let (lines, new_seen) = monitor.log_since(seen);
            seen = new_seen;
            for line in &lines {
                eprintln!("[server] {line}");
            }
            if monitor.status().finished {
                break;
            }
        }
    });
    let monitor = serving.monitor.clone();
    let result = serving.join();
    let _ = ticker.join();
    println!(
        "{}",
        serde_json::to_string_pretty(&result.result).expect("result serializes")
    );
    eprintln!(
        "done: {} commands, {} requeued, {} workers lost, {:.1?}",
        result.commands_completed, result.commands_requeued, result.workers_lost, result.wall
    );
    finish_telemetry(&monitor, &telemetry, opts);
}

/// `copernicus work`: dial a remote project server and serve it with a
/// local worker pool until it shuts the project down.
fn run_work(opts: &Options, connect: Option<String>, key: Option<String>) {
    let addr = require_flag(connect, "--connect ADDR (the server's --bind address)");
    let key = AuthKey::from_passphrase(&require_flag(key, "--key PASSPHRASE"));
    let telemetry = Telemetry::for_process("workers");
    let _metrics = start_metrics(opts, &telemetry);
    let model = Arc::new(VillinModel::hp35());
    let registry = ExecutorRegistry::new()
        .with(Arc::new(MdRunExecutor::new(model)))
        .with(Arc::new(MsmBuildExecutor))
        .with(Arc::new(FepSampleExecutor));
    let config = WorkerConfig {
        telemetry: Some(telemetry.clone()),
        ..WorkerConfig::default()
    };
    let workers = copernicus::core::connect_workers(&addr, key, opts.n_workers, config, registry)
        .unwrap_or_else(|e| {
            eprintln!("cannot connect to {addr}: {e}");
            std::process::exit(1);
        });
    eprintln!("{} workers connected to {addr}", workers.len());
    for w in workers {
        w.join();
    }
    eprintln!("project finished; workers shut down");
    if opts.report {
        eprint!("{}", telemetry.render_report());
    }
    if let Some(dir) = &opts.telemetry_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create telemetry dir {dir}: {e}");
            return;
        }
        let snapshot = format!("{dir}/snapshot.json");
        let journal = format!("{dir}/journal.jsonl");
        let spans = format!("{dir}/trace_spans.jsonl");
        if let Err(e) = std::fs::write(&snapshot, telemetry.snapshot_pretty()) {
            eprintln!("cannot write {snapshot}: {e}");
        }
        if let Err(e) = std::fs::write(&journal, telemetry.export_journal_jsonl()) {
            eprintln!("cannot write {journal}: {e}");
        }
        if let Err(e) = std::fs::write(&spans, telemetry.export_trace_jsonl()) {
            eprintln!("cannot write {spans}: {e}");
        }
        eprintln!("telemetry written: {snapshot}, {journal}, {spans}");
    }
}

fn load_config<T: serde::de::DeserializeOwned + Default>(path: Option<String>) -> T {
    match path {
        Some(p) => {
            let data = std::fs::read(&p).unwrap_or_else(|e| {
                eprintln!("cannot read config {p}: {e}");
                std::process::exit(2);
            });
            serde_json::from_slice(&data).unwrap_or_else(|e| {
                eprintln!("cannot parse config {p}: {e}");
                std::process::exit(2);
            })
        }
        None => T::default(),
    }
}

/// Load a config file as a raw JSON document for the plugin registry
/// (no path means "all defaults": an empty object).
fn load_config_value(path: Option<String>) -> serde_json::Value {
    match path {
        Some(p) => {
            let data = std::fs::read(&p).unwrap_or_else(|e| {
                eprintln!("cannot read config {p}: {e}");
                std::process::exit(2);
            });
            serde_json::from_slice(&data).unwrap_or_else(|e| {
                eprintln!("cannot parse config {p}: {e}");
                std::process::exit(2);
            })
        }
        None => serde_json::json!({}),
    }
}

/// `copernicus report <snapshot.json>`: render a snapshot written by
/// `--telemetry-dir` (or the bench harness) as the aligned-text report.
fn render_snapshot(path: Option<String>) {
    let Some(p) = path else {
        eprintln!("usage: copernicus report <snapshot.json>");
        std::process::exit(2);
    };
    let data = std::fs::read_to_string(&p).unwrap_or_else(|e| {
        eprintln!("cannot read snapshot {p}: {e}");
        std::process::exit(2);
    });
    let snapshot = Json::parse(&data).unwrap_or_else(|e| {
        eprintln!("cannot parse snapshot {p}: {e}");
        std::process::exit(2);
    });
    print!("{}", render_text(&snapshot));
}

/// Dump telemetry after a run: optional text report to stderr, optional
/// snapshot + journal files.
fn finish_telemetry(monitor: &Monitor, telemetry: &Telemetry, opts: &Options) {
    if opts.report {
        eprint!("{}", monitor.report_text());
    }
    if let Some(dir) = &opts.telemetry_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create telemetry dir {dir}: {e}");
            return;
        }
        let snapshot = format!("{dir}/snapshot.json");
        let journal = format!("{dir}/journal.jsonl");
        let spans = format!("{dir}/trace_spans.jsonl");
        if let Err(e) = std::fs::write(&snapshot, monitor.report_json()) {
            eprintln!("cannot write {snapshot}: {e}");
        }
        if let Err(e) = std::fs::write(&journal, telemetry.export_journal_jsonl()) {
            eprintln!("cannot write {journal}: {e}");
        }
        if let Err(e) = std::fs::write(&spans, telemetry.export_trace_jsonl()) {
            eprintln!("cannot write {spans}: {e}");
        }
        eprintln!("telemetry written: {snapshot}, {journal}, {spans}");
    }
}

fn run_msm(config_path: Option<String>, opts: &Options) {
    let cfg: MsmProjectConfig = load_config(config_path);
    run_msm_config(cfg, opts);
}

fn run_msm_config(cfg: MsmProjectConfig, opts: &Options) {
    eprintln!(
        "MSM project: {} trajectories/generation × {} generations, {} workers",
        cfg.n_trajectories_per_generation(),
        cfg.generations,
        opts.n_workers
    );
    let telemetry = Telemetry::new();
    let _metrics = start_metrics(opts, &telemetry);
    let archive: TrajectoryArchive = Arc::new(Mutex::new(Vec::new()));
    let controller = MsmController::new(cfg).with_archive(archive.clone());
    let registry = ExecutorRegistry::new()
        .with(Arc::new(MdRunExecutor::new(controller.model())))
        .with(Arc::new(MsmBuildExecutor));
    let running = start_project(
        Box::new(controller),
        registry,
        RuntimeConfig {
            n_workers: opts.n_workers,
            telemetry: Some(telemetry.clone()),
            ..RuntimeConfig::default()
        },
    );
    // Live monitoring, as the paper's web interface would show. The
    // incremental cursor survives log-ring eviction (long runs drop old
    // lines rather than growing without bound).
    let monitor = running.monitor.clone();
    let ticker = std::thread::spawn(move || {
        let mut seen = 0u64;
        loop {
            std::thread::sleep(std::time::Duration::from_millis(500));
            let (lines, new_seen) = monitor.log_since(seen);
            seen = new_seen;
            for line in &lines {
                eprintln!("[controller] {line}");
            }
            if monitor.status().finished {
                break;
            }
        }
    });
    let monitor = running.monitor.clone();
    let result = running.join();
    let _ = ticker.join();
    println!(
        "{}",
        serde_json::to_string_pretty(&result.result).expect("result serializes")
    );
    eprintln!(
        "done: {} commands, {} requeued, {} workers lost, {:.1?}",
        result.commands_completed, result.commands_requeued, result.workers_lost, result.wall
    );
    finish_telemetry(&monitor, &telemetry, opts);
}

fn run_repex(config_path: Option<String>, opts: &Options) {
    let cfg = match RepexProjectConfig::from_value(&load_config_value(config_path)) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("bad repex config: {e}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "repex project: {} replicas over T=[{}, {}], {} legs × {} steps ({} mode), {} workers",
        cfg.n_replicas,
        cfg.t_min,
        cfg.t_max,
        cfg.n_legs,
        cfg.steps_per_leg,
        cfg.mode.as_str(),
        opts.n_workers
    );
    let telemetry = Telemetry::new();
    let _metrics = start_metrics(opts, &telemetry);
    let controller = RepexController::new(cfg);
    let registry = ExecutorRegistry::new().with(Arc::new(MdRunExecutor::new(controller.model())));
    let running = start_project(
        Box::new(controller),
        registry,
        RuntimeConfig {
            n_workers: opts.n_workers,
            telemetry: Some(telemetry.clone()),
            ..RuntimeConfig::default()
        },
    );
    let monitor = running.monitor.clone();
    let result = running.join();
    println!(
        "{}",
        serde_json::to_string_pretty(&result.result).expect("result serializes")
    );
    eprintln!(
        "done: {} commands, {} requeued, {} workers lost, {:.1?}",
        result.commands_completed, result.commands_requeued, result.workers_lost, result.wall
    );
    finish_telemetry(&monitor, &telemetry, opts);
}

fn run_fep(config_path: Option<String>, opts: &Options) {
    let cfg: FepProjectConfig = load_config(config_path);
    let exact = cfg.analytic_delta_f();
    eprintln!(
        "FEP project: k {} → {} over {} windows, {} workers",
        cfg.k_a, cfg.k_b, cfg.n_windows, opts.n_workers
    );
    let telemetry = Telemetry::new();
    let _metrics = start_metrics(opts, &telemetry);
    let controller = FepController::new(cfg);
    let registry = ExecutorRegistry::new().with(Arc::new(FepSampleExecutor));
    let running = start_project(
        Box::new(controller),
        registry,
        RuntimeConfig {
            n_workers: opts.n_workers,
            telemetry: Some(telemetry.clone()),
            ..RuntimeConfig::default()
        },
    );
    let monitor = running.monitor.clone();
    let result = running.join();
    println!(
        "{}",
        serde_json::to_string_pretty(&result.result).expect("result serializes")
    );
    eprintln!("analytic ΔF for this config: {exact:.4}");
    finish_telemetry(&monitor, &telemetry, opts);
}
