//! `copernicus` — command-line front end.
//!
//! The paper's users drive projects from command-line clients; this
//! binary is the single-machine equivalent: it starts a project server
//! and a worker pool in-process and runs a project described by a JSON
//! config.
//!
//! ```text
//! copernicus msm  [config.json] [--workers N]   # adaptive-sampling project
//! copernicus fep  [config.json] [--workers N]   # BAR free-energy project
//! copernicus demo                               # built-in quick demo
//! ```

use copernicus::core::plugins::msm::TrajectoryArchive;
use copernicus::core::prelude::*;
use copernicus::core::MdRunExecutor;
use copernicus::mdsim::VillinModel;
use parking_lot::Mutex;
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mode = args.get(1).map(String::as_str).unwrap_or("help");
    let n_workers = args
        .iter()
        .position(|a| a == "--workers")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(2, |n| n.get()));
    let config_path = args
        .get(2)
        .filter(|a| !a.starts_with("--"))
        .cloned();

    match mode {
        "msm" => run_msm(config_path, n_workers),
        "fep" => run_fep(config_path, n_workers),
        "demo" => {
            let cfg = MsmProjectConfig {
                n_starts: 3,
                sims_per_start: 3,
                segment_ns: 10.0,
                n_clusters: 30,
                generations: 3,
                ..MsmProjectConfig::default()
            };
            run_msm_config(cfg, n_workers);
        }
        _ => {
            eprintln!("usage: copernicus <msm|fep|demo> [config.json] [--workers N]");
            eprintln!();
            eprintln!("  msm   run an adaptive-sampling project (MsmProjectConfig JSON)");
            eprintln!("  fep   run a BAR free-energy project (FepProjectConfig JSON)");
            eprintln!("  demo  run a built-in 1-minute adaptive-sampling demo");
            std::process::exit(if mode == "help" { 0 } else { 2 });
        }
    }
}

fn load_config<T: serde::de::DeserializeOwned + Default>(path: Option<String>) -> T {
    match path {
        Some(p) => {
            let data = std::fs::read(&p).unwrap_or_else(|e| {
                eprintln!("cannot read config {p}: {e}");
                std::process::exit(2);
            });
            serde_json::from_slice(&data).unwrap_or_else(|e| {
                eprintln!("cannot parse config {p}: {e}");
                std::process::exit(2);
            })
        }
        None => T::default(),
    }
}

fn run_msm(config_path: Option<String>, n_workers: usize) {
    let cfg: MsmProjectConfig = load_config(config_path);
    run_msm_config(cfg, n_workers);
}

fn run_msm_config(cfg: MsmProjectConfig, n_workers: usize) {
    eprintln!(
        "MSM project: {} trajectories/generation × {} generations, {} workers",
        cfg.n_trajectories_per_generation(),
        cfg.generations,
        n_workers
    );
    let model = Arc::new(VillinModel::hp35());
    let archive: TrajectoryArchive = Arc::new(Mutex::new(Vec::new()));
    let controller = MsmController::new(model.clone(), cfg).with_archive(archive.clone());
    let registry = ExecutorRegistry::new().with(Arc::new(MdRunExecutor::new(model)));
    let running = start_project(
        Box::new(controller),
        registry,
        RuntimeConfig {
            n_workers,
            ..RuntimeConfig::default()
        },
    );
    // Live monitoring, as the paper's web interface would show.
    let monitor = running.monitor.clone();
    let ticker = std::thread::spawn(move || {
        let mut last_log = 0;
        loop {
            std::thread::sleep(std::time::Duration::from_millis(500));
            let s = monitor.status();
            for line in &s.log[last_log..] {
                eprintln!("[controller] {line}");
            }
            last_log = s.log.len();
            if s.finished {
                break;
            }
        }
    });
    let result = running.join();
    let _ = ticker.join();
    println!(
        "{}",
        serde_json::to_string_pretty(&result.result).expect("result serializes")
    );
    eprintln!(
        "done: {} commands, {} requeued, {} workers lost, {:.1?}",
        result.commands_completed, result.commands_requeued, result.workers_lost, result.wall
    );
}

fn run_fep(config_path: Option<String>, n_workers: usize) {
    let cfg: FepProjectConfig = load_config(config_path);
    let exact = cfg.analytic_delta_f();
    eprintln!(
        "FEP project: k {} → {} over {} windows, {} workers",
        cfg.k_a, cfg.k_b, cfg.n_windows, n_workers
    );
    let controller = FepController::new(cfg);
    let registry = ExecutorRegistry::new().with(Arc::new(FepSampleExecutor));
    let result = run_project(
        Box::new(controller),
        registry,
        RuntimeConfig {
            n_workers,
            ..RuntimeConfig::default()
        },
    );
    println!(
        "{}",
        serde_json::to_string_pretty(&result.result).expect("result serializes")
    );
    eprintln!("analytic ΔF for this config: {exact:.4}");
}
