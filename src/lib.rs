//! Copernicus façade crate: re-exports the workspace public APIs.
pub use copernicus_core as core;
pub use copernicus_telemetry as telemetry;
pub use clustersim;
pub use fep;
pub use mdsim;
pub use msm;
pub use netsim;
