//! Copernicus façade crate: re-exports the workspace public APIs.
pub use copernicus_core as core;
pub use clustersim;
pub use fep;
pub use mdsim;
pub use msm;
pub use netsim;
