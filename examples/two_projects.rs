//! Two simultaneous projects over one worker pool (§2.2: requests route
//! to "the first server with available commands"; Fig. 1 runs MSM and
//! free-energy projects side by side).
//!
//! An MSM adaptive-sampling project and a BAR free-energy project each
//! get their own project server; a broker routes a shared pool of
//! workers between them. Workers that have both executables serve both
//! projects.
//!
//! ```text
//! cargo run --release --example two_projects
//! ```

use copernicus::core::prelude::*;
use copernicus::core::{spawn_broker, transport, MdRunExecutor, Server};
use copernicus::mdsim::VillinModel;
use std::sync::Arc;

fn main() {
    let model = Arc::new(VillinModel::hp35());

    // Project 0: a small adaptive-sampling run.
    let msm_cfg = MsmProjectConfig {
        n_starts: 2,
        sims_per_start: 3,
        segment_ns: 10.0,
        n_clusters: 30,
        generations: 2,
        ..MsmProjectConfig::default()
    };
    // Project 1: a BAR free-energy calculation.
    let fep_cfg = FepProjectConfig::default();
    let fep_exact = fep_cfg.analytic_delta_f();

    let mut server_hubs = Vec::new();
    let mut server_threads = Vec::new();
    let monitors: Vec<Monitor> = (0..2).map(|_| Monitor::new()).collect();
    let shared_fs = SharedFs::new();

    let controllers: Vec<Box<dyn copernicus::core::Controller>> = vec![
        Box::new(MsmController::new(msm_cfg)),
        Box::new(FepController::new(fep_cfg)),
    ];
    for (p, controller) in controllers.into_iter().enumerate() {
        let (hub, server_transport) = transport::channel();
        let server = Server::new(
            ProjectId(p as u64),
            controller,
            ServerConfig::default(),
            shared_fs.clone(),
            monitors[p].clone(),
            Box::new(server_transport),
        );
        server_hubs.push(hub);
        server_threads.push(std::thread::spawn(move || server.run()));
    }

    let (broker_hub, broker_handle) = spawn_broker(server_hubs);

    // A pool where every worker installs both executables.
    let registry = ExecutorRegistry::new()
        .with(Arc::new(MdRunExecutor::new(model)))
        .with(Arc::new(MsmBuildExecutor))
        .with(Arc::new(FepSampleExecutor));
    let mut wc = WorkerConfig::default();
    wc.shared_fs = Some(shared_fs);
    let workers: Vec<_> = (0..4)
        .map(|i| {
            let id = WorkerId(i);
            copernicus::core::spawn_worker(
                id,
                wc.clone(),
                registry.clone(),
                Box::new(broker_hub.attach(id)),
            )
        })
        .collect();
    drop(broker_hub);

    println!("running MSM + FEP projects over one 4-worker pool…\n");
    let results: Vec<_> = server_threads
        .into_iter()
        .map(|t| t.join().expect("server thread"))
        .collect();
    for w in workers {
        w.join();
    }
    broker_handle.join().expect("broker thread");

    for r in &results {
        println!(
            "project {}: {} commands, {} bytes returned, wall {:.1?}",
            r.project, r.commands_completed, r.bytes_received, r.wall
        );
    }
    let msm_report = MsmProjectReport::from_value(&results[0].result).expect("msm report");
    println!(
        "\nMSM project: min RMSD to native {:.2} Å over {} generations",
        msm_report.min_rmsd_to_native,
        msm_report.generations.len()
    );
    let fep_report = FepProjectReport::from_value(&results[1].result).expect("fep report");
    println!(
        "FEP project: ΔF = {:.4} ± {:.4} (analytic {:.4})",
        fep_report.delta_f, fep_report.std_err, fep_exact
    );
}
