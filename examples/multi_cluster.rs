//! The Fig. 1 deployment, simulated: two project servers in Stockholm
//! behind a gateway, two local clusters, and a third cluster in Palo Alto
//! reached over the WAN. Demonstrates overlay routing, per-level
//! latencies, heartbeat traffic, and worker-failure detection (§2.2–2.3).
//!
//! ```text
//! cargo run --release --example multi_cluster
//! ```

use netsim::{fig1_topology, HeartbeatConfig, MessageKind, NetRecord, NetSim};

fn main() {
    let (overlay, projects, relays, workers) = fig1_topology(8);
    println!(
        "overlay: {} nodes ({} project servers, {} relays, {} workers)",
        overlay.n_nodes(),
        projects.len(),
        relays.len(),
        workers.iter().map(|w| w.len()).sum::<usize>()
    );

    println!("\n== routing (lowest-latency paths over trusted links) ==");
    for (c, cluster) in workers.iter().enumerate() {
        let w = cluster[0];
        let path = overlay.route(w, projects[0]).expect("route exists");
        let names: Vec<&str> = path.iter().map(|&n| overlay.name(n)).collect();
        let latency = overlay.route_latency(w, projects[0]).unwrap();
        println!(
            "cluster {c} worker → project server: {} ({:.1} ms one-way)",
            names.join(" → "),
            latency * 1e3
        );
    }

    // One hour of operation: heartbeats from every worker to its relay,
    // one 7 MB trajectory output per worker per ~10 minutes, and a node
    // failure on cluster 1 at t = 20 min.
    let mut sim = NetSim::new(overlay).with_heartbeat_config(HeartbeatConfig {
        interval: 120.0,
        payload_bytes: 200,
    });
    for cluster in &workers {
        for &w in cluster {
            let relay = sim.overlay.route(w, projects[0]).unwrap()[1];
            sim.start_heartbeats(0.0, w, relay);
        }
    }
    for (k, cluster) in workers.iter().enumerate() {
        for (i, &w) in cluster.iter().enumerate() {
            // Stagger completions across the hour.
            // One 50-ns segment finishes per worker every ~30 min at the
            // paper's per-simulation throughput; ~3 MB compressed output.
            let period = 1800.0;
            let offset = (k * cluster.len() + i) as f64 * 71.0;
            let mut t = offset + 60.0;
            while t < 3600.0 {
                sim.send(t, w, projects[0], MessageKind::Output, 3_000_000);
                t += period;
            }
        }
    }
    let failing_worker = workers[1][3];
    sim.fail_node_at(1200.0, failing_worker);

    let records = sim.run_until(3600.0);

    let delivered = records
        .iter()
        .filter(|r| matches!(r, NetRecord::Delivered { kind: MessageKind::Output, .. }))
        .count();
    let heartbeats = records
        .iter()
        .filter(|r| matches!(r, NetRecord::Delivered { kind: MessageKind::Heartbeat, .. }))
        .count();
    println!("\n== one simulated hour ==");
    println!("trajectory outputs delivered: {delivered}");
    println!("heartbeats delivered: {heartbeats}");
    for r in &records {
        if let NetRecord::WorkerLost { time, worker, server } = r {
            println!(
                "worker {} lost at t = {:.0} s, detected by {} after 2 missed heartbeats",
                sim.overlay.name(*worker),
                time,
                sim.overlay.name(*server)
            );
        }
    }

    println!("\n== ensemble-level bandwidth (Fig. 6's 'SSL' tier) ==");
    let out_bw = sim.average_bandwidth(MessageKind::Output, 3600.0);
    let hb_bw = sim.average_bandwidth(MessageKind::Heartbeat, 3600.0);
    println!("trajectory data: {:.3} MB/s (paper average: 0.04 MB/s)", out_bw / 1e6);
    println!("heartbeats:      {:.1} B/s (never forwarded past the closest server)", hb_bw);
}
