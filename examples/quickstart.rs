//! Quickstart: run a small adaptive-sampling project end to end.
//!
//! Sets up one project server and four workers in-process, folds a
//! coarse-grained villin with the MSM controller, and prints the
//! per-generation progress a Copernicus user would watch on the web
//! monitor.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use copernicus::core::prelude::*;
use copernicus::core::MdRunExecutor;
use copernicus::telemetry::{labels, names, Labels, Telemetry};
use mdsim::VillinModel;
use std::sync::Arc;

fn main() {
    let model = Arc::new(VillinModel::hp35());
    println!(
        "villin HP35 Gō model: {} beads, {} native contacts",
        model.n_beads(),
        model.n_contacts()
    );

    // A laptop-scale project: 3 unfolded starts × 4 simulations each,
    // 10-ns segments, 3 generations.
    let config = MsmProjectConfig {
        n_starts: 3,
        sims_per_start: 4,
        segment_ns: 10.0,
        generations: 3,
        n_clusters: 40,
        seed: 42,
        ..MsmProjectConfig::default()
    };
    println!(
        "project: {} trajectories/generation × {} generations, {} ns segments\n",
        config.n_trajectories_per_generation(),
        config.generations,
        config.segment_ns
    );

    // One telemetry handle shared by the server, the workers and the
    // controller: dispatch latencies, per-step MD timings, clustering
    // spans — everything lands in the same registry and journal.
    let telemetry = Telemetry::new();
    let controller = MsmController::new(config);
    let registry = ExecutorRegistry::new()
        .with(Arc::new(MdRunExecutor::new(model)))
        .with(Arc::new(MsmBuildExecutor));
    let running = start_project(
        Box::new(controller),
        registry,
        RuntimeConfig {
            n_workers: 4,
            telemetry: Some(telemetry.clone()),
            ..RuntimeConfig::default()
        },
    );
    let monitor = running.monitor.clone();
    let result = running.join();

    let report = MsmProjectReport::from_value(&result.result).expect("report");
    println!("gen  trajs  states  min-RMSD(Å)  blind-pred(Å)  folded-pop");
    for g in &report.generations {
        println!(
            "{:>3}  {:>5}  {:>6}  {:>11.2}  {:>13.2}  {:>10.3}",
            g.generation,
            g.n_trajectories_total,
            g.n_active_states,
            g.min_rmsd_to_native,
            g.predicted_native_rmsd,
            g.folded_equilibrium_population,
        );
    }
    println!(
        "\ncompleted {} commands in {:.1?} ({} bytes of trajectory data returned)",
        result.commands_completed, result.wall, result.bytes_received
    );
    if let Some(gen) = report.first_folded_generation {
        println!("first folded conformation observed in generation {gen}");
    }
    if let Some(k) = &report.kinetics {
        println!(
            "kinetics: {:.0}% folded at {:.0} ns, t½ = {}",
            100.0 * k.final_folded_fraction,
            k.times_ns.last().unwrap_or(&0.0),
            k.t_half_ns
                .map(|t| format!("{t:.0} ns"))
                .unwrap_or_else(|| "n/a".into())
        );
    }

    // Telemetry headline numbers, then the full artifacts on disk.
    let reg = telemetry.registry();
    if let Some(h) = reg.find_histogram(names::FORCE_LOOP_NS, &labels(&[("model", "villin")])) {
        println!(
            "\nforce loop: {:.0} ns/step mean over {} instrumented steps",
            h.mean(),
            h.count()
        );
    }
    if let Some(h) = reg.find_histogram(names::DISPATCH_LATENCY, &Labels::new()) {
        println!(
            "dispatch latency: {:.1} ms mean over {} dispatches",
            1e3 * h.mean(),
            h.count()
        );
    }
    let dir = std::path::Path::new("target/quickstart-telemetry");
    std::fs::create_dir_all(dir).expect("create telemetry dir");
    std::fs::write(dir.join("snapshot.json"), monitor.report_json()).expect("write snapshot");
    std::fs::write(dir.join("journal.jsonl"), telemetry.export_journal_jsonl())
        .expect("write journal");
    println!(
        "telemetry written: {0}/snapshot.json, {0}/journal.jsonl",
        dir.display()
    );
}
