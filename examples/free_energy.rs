//! The BAR free-energy plugin (§5 of the paper): run a stratified
//! λ-window perturbation as a Copernicus project and compare the Bennett
//! acceptance ratio estimate against the analytic answer.
//!
//! The perturbation stiffens a 3-D harmonic well k: 1 → 16 (exact
//! ΔF = (3/2β) ln 16); each λ-window boundary spawns one forward and one
//! reverse Langevin sampling command (Fig. 1's `lambda0`, `lambda1`, …).
//!
//! ```text
//! cargo run --release --example free_energy
//! ```

use copernicus::core::prelude::*;
use std::sync::Arc;

fn main() {
    let config = FepProjectConfig {
        k_a: 1.0,
        k_b: 16.0,
        temperature: 1.0,
        n_windows: 4,
        equil_steps: 2_000,
        n_steps: 150_000,
        record_interval: 50, // ≈ one velocity-decorrelation time apart
        seed: 7,
    };
    let exact = config.analytic_delta_f();
    let ks = config.k_schedule();
    println!(
        "perturbing a 3-D harmonic well k = {} → {} through {} λ-windows",
        config.k_a, config.k_b, config.n_windows
    );
    println!("k schedule: {ks:.3?}");

    let controller = FepController::new(config);
    let registry = ExecutorRegistry::new().with(Arc::new(FepSampleExecutor));
    let result = run_project(
        Box::new(controller),
        registry,
        RuntimeConfig {
            n_workers: 4,
            ..RuntimeConfig::default()
        },
    );
    let report: FepProjectReport = serde_json::from_value(result.result).expect("report");

    println!("\nwindow  ΔF (BAR)");
    for (w, df) in report.per_window_delta_f.iter().enumerate() {
        println!("{w:>6}  {df:>8.4}");
    }
    println!(
        "\ntotal ΔF = {:.4} ± {:.4}  (analytic: {:.4}, error: {:+.4})",
        report.delta_f,
        report.std_err,
        exact,
        report.delta_f - exact
    );
    println!(
        "{} work samples over {} commands in {:.1?}",
        report.total_samples, result.commands_completed, result.wall
    );
    let sigmas = (report.delta_f - exact).abs() / report.std_err.max(1e-9);
    println!("deviation: {sigmas:.1} σ");
}
