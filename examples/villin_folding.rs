//! The §3 experiment at laptop scale: parallel adaptive folding of the
//! coarse-grained villin headpiece from unfolded starts.
//!
//! Mirrors the paper's protocol — N unfolded conformations, M simulation
//! tasks each, 50-ns segments, clustering + adaptive respawn each
//! generation, blind native-state prediction from the equilibrium
//! populations — and prints the per-generation table behind Figs. 2/3.
//!
//! ```text
//! cargo run --release --example villin_folding [-- --quick]
//! ```

use copernicus::core::plugins::msm::TrajectoryArchive;
use copernicus::core::prelude::*;
use copernicus::core::MdRunExecutor;
use mdsim::VillinModel;
use msm::Weighting;
use parking_lot::Mutex;
use std::sync::Arc;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let model = Arc::new(VillinModel::hp35());

    // Paper: 9 starts × 25 sims × 50 ns, 10,000 clusters. Laptop scale:
    // 9 starts × 5 sims × 50 ns, 150 clusters.
    let config = MsmProjectConfig {
        mode: AdaptiveMode::Generational,
        n_starts: if quick { 3 } else { 9 },
        sims_per_start: if quick { 3 } else { 5 },
        segment_ns: 50.0,
        record_interval: 80, // one frame per nominal ns
        temperature: 0.5,
        n_clusters: if quick { 50 } else { 150 },
        lag_frames: 5,
        weighting: Weighting::Adaptive,
        generations: if quick { 3 } else { 10 },
        folded_rmsd: 3.5,
        seed: 2011,
        ..MsmProjectConfig::default()
    };
    eprintln!(
        "adaptive villin folding: {} trajectories/generation, {} generations of {} ns",
        config.n_trajectories_per_generation(),
        config.generations,
        config.segment_ns
    );

    let archive: TrajectoryArchive = Arc::new(Mutex::new(Vec::new()));
    let controller = MsmController::new(config).with_archive(archive.clone());
    let registry = ExecutorRegistry::new().with(Arc::new(MdRunExecutor::new(model.clone())));
    let n_workers = std::thread::available_parallelism().map_or(4, |n| n.get());
    let t0 = std::time::Instant::now();
    let result = run_project(
        Box::new(controller),
        registry,
        RuntimeConfig {
            n_workers,
            ..RuntimeConfig::default()
        },
    );
    let report = MsmProjectReport::from_value(&result.result).expect("report");

    println!("\n== per-generation progress (Fig. 2 data) ==");
    println!(
        "gen  trajs  frames  states(active)  min-RMSD(Å)  blind-pred(Å)  pred-pop  folded-pop"
    );
    for g in &report.generations {
        println!(
            "{:>3}  {:>5}  {:>6}  {:>6} ({:>5})  {:>11.2}  {:>13.2}  {:>8.3}  {:>10.3}",
            g.generation,
            g.n_trajectories_total,
            g.n_frames_total,
            g.n_states,
            g.n_active_states,
            g.min_rmsd_to_native,
            g.predicted_native_rmsd,
            g.predicted_native_population,
            g.folded_equilibrium_population,
        );
    }

    println!("\n== headline numbers (§3) ==");
    println!(
        "lowest RMSD to native observed: {:.2} Å (paper: 0.6-0.7 Å)",
        report.min_rmsd_to_native
    );
    match report.first_folded_generation {
        Some(g) => println!("first folded structure in generation {g} (paper: generation 3)"),
        None => println!("no folded structure found (increase generations / trajectories)"),
    }
    println!(
        "final blind native-state prediction: {:.2} Å from native (paper: 1.4 Å)",
        report.final_predicted_native_rmsd
    );
    if let Some(k) = &report.kinetics {
        println!(
            "MSM kinetics: {:.0}% folded at {:.0} ns; t½ = {} (paper: 66% at 2000 ns, t½ ≈ 500-600 ns)",
            100.0 * k.final_folded_fraction,
            k.times_ns.last().unwrap_or(&0.0),
            k.t_half_ns
                .map(|t| format!("{t:.0} ns"))
                .unwrap_or_else(|| "n/a".into()),
        );
    }
    println!(
        "\n{} trajectories archived, {} commands, wallclock {:.1?}",
        archive.lock().len(),
        result.commands_completed,
        t0.elapsed()
    );
}
