//! A condensed version of the paper's performance section (§4): simulate
//! the controller's scheduling activity for the villin project across
//! total core counts and cores-per-simulation, and print the headline
//! anchors of Figs. 7 and 8.
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use clustersim::{
    log_core_grid, reference_tres1_hours, scaling_sweep, MachineSpec, PerfModel, ProjectSpec,
    simulate_controller,
};

fn main() {
    let project = ProjectSpec::villin_first_folded();
    let perf = PerfModel::villin();
    let tres1 = reference_tres1_hours(&project, &perf);
    println!(
        "villin first-folded command set: {} generations × {} commands × {} ns",
        project.generations, project.commands_per_generation, project.segment_ns
    );
    println!("t_res(1) = {tres1:.3e} hours (paper: 1.1e5)");

    println!("\n== scaling sweep (Figs. 7/8 in miniature) ==");
    println!("{:>10} {:>6} {:>14} {:>12} {:>12}", "cores", "k", "time (h)", "efficiency", "MB/s");
    let grid = log_core_grid(24, 100_000, 2);
    let points = scaling_sweep(&project, &perf, &grid, &[1, 24, 96]);
    for p in &points {
        println!(
            "{:>10} {:>6} {:>14.2} {:>12.3} {:>12.4}",
            p.total_cores,
            p.cores_per_sim,
            p.wallclock_hours,
            p.efficiency,
            p.ensemble_bandwidth_mb_per_s
        );
    }

    println!("\n== paper anchors ==");
    let outcome = simulate_controller(&project, &MachineSpec::new(20_000, 96), &perf);
    println!(
        "20,000 cores, 96 cores/sim: {:.1} h at {:.0}% efficiency (paper: just over 10 h at 53%)",
        outcome.wallclock_hours,
        100.0 * outcome.efficiency(tres1, 20_000)
    );
    let run = simulate_controller(&project, &MachineSpec::new(5_000, 24), &perf);
    println!(
        "5,000 cores (the actual project scale): {:.1} h to first folded structure (paper: ~30 h)",
        run.wallclock_hours
    );
    let blind = simulate_controller(
        &ProjectSpec::villin_blind_prediction(),
        &MachineSpec::new(5_000, 24),
        &perf,
    );
    println!(
        "blind native-state prediction at 5,000 cores: {:.1} h (paper: 80-90 h)",
        blind.wallclock_hours
    );
}
