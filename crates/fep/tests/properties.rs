//! Property-based tests of the free-energy estimators.

use fep::{bar, stratified_bar, zwanzig, HarmonicPerturbation, WindowSamples};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #[test]
    fn zwanzig_respects_jensen_bound(
        works in proptest::collection::vec(-5.0..5.0f64, 1..200),
        beta in 0.2..5.0f64,
    ) {
        // ΔF = -1/β ln⟨e^{-βW}⟩ ≤ ⟨W⟩ (Jensen / second law).
        let mean = works.iter().sum::<f64>() / works.len() as f64;
        let df = zwanzig(&works, beta);
        prop_assert!(df <= mean + 1e-9, "ΔF {df} > ⟨W⟩ {mean}");
        prop_assert!(df.is_finite());
        // And ΔF ≥ min W (the exponential average is dominated by the
        // smallest work value).
        let min = works.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!(df >= min - 1e-9);
    }

    #[test]
    fn bar_is_antisymmetric_on_arbitrary_samples(
        wf in proptest::collection::vec(-3.0..3.0f64, 5..100),
        wr in proptest::collection::vec(-3.0..3.0f64, 5..100),
        beta in 0.5..2.0f64,
    ) {
        let fwd = bar(&wf, &wr, beta).delta_f;
        let rev = bar(&wr, &wf, beta).delta_f;
        prop_assert!((fwd + rev).abs() < 1e-6, "fwd {fwd}, rev {rev}");
    }

    #[test]
    fn bar_converges_to_analytic_for_harmonic_systems(
        seed in 0u64..60,
        log_ratio in -2.0..2.0f64,
    ) {
        let k_a = 1.0;
        let k_b = (log_ratio).exp();
        let sys = HarmonicPerturbation::new(k_a, k_b, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let wf = sys.sample_forward(8_000, &mut rng);
        let wr = sys.sample_reverse(8_000, &mut rng);
        let result = bar(&wf, &wr, 1.0);
        let exact = sys.analytic_delta_f();
        prop_assert!(
            (result.delta_f - exact).abs() < 6.0 * result.std_err.max(0.01),
            "BAR {} vs exact {exact} (σ {})",
            result.delta_f,
            result.std_err
        );
    }

    #[test]
    fn stratified_total_is_sum_of_windows(
        seed in 0u64..50,
        n_windows in 1usize..5,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let windows: Vec<WindowSamples> = (0..n_windows)
            .map(|w| {
                let sys = HarmonicPerturbation::new(1.0 + w as f64, 2.0 + w as f64, 1.0);
                WindowSamples {
                    forward: sys.sample_forward(500, &mut rng),
                    reverse: sys.sample_reverse(500, &mut rng),
                }
            })
            .collect();
        let total = stratified_bar(&windows, 1.0);
        let sum: f64 = total.per_window.iter().map(|r| r.delta_f).sum();
        prop_assert!((total.total_delta_f - sum).abs() < 1e-12);
        prop_assert!(total.total_std_err >= 0.0);
        prop_assert_eq!(total.per_window.len(), n_windows);
    }
}
