//! Analytically solvable reference system for the free-energy estimators:
//! a 1-D harmonic oscillator whose spring constant is perturbed
//! `k_A → k_B`. The exact free-energy difference is
//! `ΔF = (1/2β) ln(k_B/k_A)`, so every estimator can be validated.

use rand::Rng;

/// The perturbation `U_A = ½ k_A x²  →  U_B = ½ k_B x²` at inverse
/// temperature β.
#[derive(Debug, Clone, Copy)]
pub struct HarmonicPerturbation {
    pub k_a: f64,
    pub k_b: f64,
    pub beta: f64,
}

impl HarmonicPerturbation {
    pub fn new(k_a: f64, k_b: f64, beta: f64) -> Self {
        assert!(k_a > 0.0 && k_b > 0.0 && beta > 0.0);
        HarmonicPerturbation { k_a, k_b, beta }
    }

    /// Exact `ΔF = F_B − F_A = (1/2β) ln(k_B/k_A)`.
    pub fn analytic_delta_f(&self) -> f64 {
        (self.k_b / self.k_a).ln() / (2.0 * self.beta)
    }

    /// Draw an equilibrium configuration of state A and return the
    /// forward work `U_B(x) − U_A(x)`.
    pub fn sample_forward<R: Rng>(&self, n: usize, rng: &mut R) -> Vec<f64> {
        self.sample_works(n, self.k_a, self.k_b - self.k_a, rng)
    }

    /// Draw from state B and return the reverse work `U_A(x) − U_B(x)`.
    pub fn sample_reverse<R: Rng>(&self, n: usize, rng: &mut R) -> Vec<f64> {
        self.sample_works(n, self.k_b, self.k_a - self.k_b, rng)
    }

    fn sample_works<R: Rng>(&self, n: usize, k_sample: f64, dk: f64, rng: &mut R) -> Vec<f64> {
        let sigma = (1.0 / (self.beta * k_sample)).sqrt();
        (0..n)
            .map(|_| {
                let x = sigma * normal(rng);
                0.5 * dk * x * x
            })
            .collect()
    }
}

fn normal<R: Rng>(rng: &mut R) -> f64 {
    // Box-Muller.
    let mut u1: f64 = rng.random();
    while u1 <= f64::MIN_POSITIVE {
        u1 = rng.random();
    }
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn analytic_value() {
        let s = HarmonicPerturbation::new(1.0, std::f64::consts::E * std::f64::consts::E, 1.0);
        assert!((s.analytic_delta_f() - 1.0).abs() < 1e-12);
        // Tighter well has higher free energy (less entropy).
        assert!(HarmonicPerturbation::new(1.0, 4.0, 1.0).analytic_delta_f() > 0.0);
    }

    #[test]
    fn forward_work_sign_matches_perturbation() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        // Stiffening: forward works are non-negative.
        let s = HarmonicPerturbation::new(1.0, 3.0, 1.0);
        assert!(s.sample_forward(100, &mut rng).iter().all(|&w| w >= 0.0));
        // Softening: non-positive.
        let s2 = HarmonicPerturbation::new(3.0, 1.0, 1.0);
        assert!(s2.sample_forward(100, &mut rng).iter().all(|&w| w <= 0.0));
    }

    #[test]
    fn mean_forward_work_bounds_delta_f() {
        // ⟨W⟩_A ≥ ΔF (second law / Jensen).
        let s = HarmonicPerturbation::new(1.0, 4.0, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let wf = s.sample_forward(50_000, &mut rng);
        let mean = wf.iter().sum::<f64>() / wf.len() as f64;
        assert!(mean >= s.analytic_delta_f());
        // Analytic mean: ⟨W⟩ = (k_B−k_A)/(2 β k_A) = 1.5.
        assert!((mean - 1.5).abs() < 0.05, "⟨W⟩ = {mean}");
    }

    #[test]
    fn beta_scales_sampling_width() {
        let hot = HarmonicPerturbation::new(1.0, 2.0, 0.5);
        let cold = HarmonicPerturbation::new(1.0, 2.0, 5.0);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let w_hot = mean(&hot.sample_forward(20_000, &mut rng));
        let w_cold = mean(&cold.sample_forward(20_000, &mut rng));
        // ⟨W⟩ = dk/(2 β k_A): hotter ensemble does more work.
        assert!(w_hot > w_cold * 5.0);
    }
}
