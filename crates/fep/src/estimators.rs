//! Free-energy estimators: exponential averaging (Zwanzig) and the
//! Bennett acceptance ratio (BAR).
//!
//! Copernicus ships a BAR plugin (§5 of the paper); this module is its
//! statistical core. Conventions: `w_forward[i] = U_B(x) − U_A(x)` for
//! configurations sampled in state A, `w_reverse[j] = U_A(x) − U_B(x)`
//! for configurations sampled in state B, and the estimated quantity is
//! `ΔF = F_B − F_A`. All energies are in units of 1/β (set `beta`
//! accordingly).

/// Zwanzig / exponential-averaging (one-sided FEP) estimate:
/// `ΔF = −(1/β) ln ⟨exp(−β w)⟩`.
///
/// Uses a max-shift for numerical stability. Biased for small overlap —
/// that is exactly why the paper's plugin uses BAR.
pub fn zwanzig(w_forward: &[f64], beta: f64) -> f64 {
    assert!(!w_forward.is_empty(), "no work samples");
    assert!(beta > 0.0);
    let min_w = w_forward.iter().copied().fold(f64::INFINITY, f64::min);
    let sum: f64 = w_forward
        .iter()
        .map(|&w| (-beta * (w - min_w)).exp())
        .sum();
    min_w - (sum / w_forward.len() as f64).ln() / beta
}

/// Result of a BAR estimate.
#[derive(Debug, Clone, Copy)]
pub struct BarResult {
    /// Estimated free-energy difference `F_B − F_A`.
    pub delta_f: f64,
    /// Asymptotic standard error (Bennett's variance formula).
    pub std_err: f64,
    /// Number of self-consistency iterations (bisection steps) used.
    pub iterations: usize,
}

/// Bennett acceptance ratio: solves the self-consistent equation
///
/// `Σ_F g(β(w_F − ΔF) + ln(n_F/n_R)) = Σ_R g(β(w_R + ΔF) + ln(n_R/n_F))`
///
/// with the Fermi function `g(x) = 1/(1+eˣ)`, by bisection on ΔF (the
/// objective is strictly monotonic).
pub fn bar(w_forward: &[f64], w_reverse: &[f64], beta: f64) -> BarResult {
    assert!(
        !w_forward.is_empty() && !w_reverse.is_empty(),
        "BAR needs samples in both directions"
    );
    assert!(beta > 0.0);
    let n_f = w_forward.len() as f64;
    let n_r = w_reverse.len() as f64;
    let log_ratio = (n_f / n_r).ln();

    let objective = |df: f64| -> f64 {
        let lhs: f64 = w_forward
            .iter()
            .map(|&w| fermi(beta * (w - df) + log_ratio))
            .sum();
        let rhs: f64 = w_reverse
            .iter()
            .map(|&w| fermi(beta * (w + df) - log_ratio))
            .sum();
        lhs - rhs
    };

    // Bracket the root: the Zwanzig estimates from both directions bound
    // the BAR answer in well-behaved cases; widen until the sign changes.
    let f_fwd = zwanzig(w_forward, beta);
    let f_rev = -zwanzig(w_reverse, beta);
    let mut lo = f_fwd.min(f_rev) - 1.0;
    let mut hi = f_fwd.max(f_rev) + 1.0;
    // The objective is strictly increasing in ΔF: widen the bracket until
    // objective(lo) < 0 < objective(hi).
    let mut guard = 0;
    while objective(lo) > 0.0 && guard < 200 {
        lo -= (hi - lo).max(1.0);
        guard += 1;
    }
    while objective(hi) < 0.0 && guard < 400 {
        hi += (hi - lo).max(1.0);
        guard += 1;
    }

    let mut iterations = 0;
    for _ in 0..200 {
        iterations += 1;
        let mid = 0.5 * (lo + hi);
        if objective(mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
        if (hi - lo).abs() < 1e-12 {
            break;
        }
    }
    let delta_f = 0.5 * (lo + hi);

    // Bennett's asymptotic variance: using the Fermi weights at the
    // solution, var(βΔF) = ⟨g²⟩/⟨g⟩² − 1 summed over both ensembles
    // divided by sample counts.
    let var_of = |gs: &[f64]| -> f64 {
        let n = gs.len() as f64;
        let mean = gs.iter().sum::<f64>() / n;
        let mean_sq = gs.iter().map(|g| g * g).sum::<f64>() / n;
        if mean > 0.0 {
            (mean_sq / (mean * mean) - 1.0) / n
        } else {
            f64::INFINITY
        }
    };
    let g_fwd: Vec<f64> = w_forward
        .iter()
        .map(|&w| fermi(beta * (w - delta_f) + log_ratio))
        .collect();
    let g_rev: Vec<f64> = w_reverse
        .iter()
        .map(|&w| fermi(beta * (w + delta_f) - log_ratio))
        .collect();
    let var = (var_of(&g_fwd) + var_of(&g_rev)).max(0.0) / (beta * beta);

    BarResult {
        delta_f,
        std_err: var.sqrt(),
        iterations,
    }
}

#[inline]
fn fermi(x: f64) -> f64 {
    // Stable for large |x|.
    if x > 0.0 {
        let e = (-x).exp();
        e / (1.0 + e)
    } else {
        1.0 / (1.0 + x.exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harmonic::HarmonicPerturbation;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn zwanzig_constant_work_is_exact() {
        // If w is constant, ΔF = w exactly, any β.
        let w = vec![1.7; 100];
        assert!((zwanzig(&w, 1.0) - 1.7).abs() < 1e-12);
        assert!((zwanzig(&w, 2.5) - 1.7).abs() < 1e-12);
    }

    #[test]
    fn zwanzig_is_stable_for_large_works() {
        let w = vec![1000.0, 1001.0];
        let f = zwanzig(&w, 1.0);
        assert!(f.is_finite());
        assert!(f < 1000.7 && f > 999.0);
    }

    #[test]
    fn fermi_is_stable_and_symmetric() {
        assert!((fermi(0.0) - 0.5).abs() < 1e-15);
        assert!(fermi(800.0) >= 0.0 && fermi(800.0) < 1e-300_f64.max(1e-200));
        assert!((fermi(-800.0) - 1.0).abs() < 1e-15);
        assert!((fermi(2.0) + fermi(-2.0) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn bar_recovers_harmonic_delta_f() {
        let system = HarmonicPerturbation::new(1.0, 4.0, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let wf = system.sample_forward(20_000, &mut rng);
        let wr = system.sample_reverse(20_000, &mut rng);
        let result = bar(&wf, &wr, 1.0);
        let exact = system.analytic_delta_f();
        assert!(
            (result.delta_f - exact).abs() < 4.0 * result.std_err.max(0.01),
            "BAR {} vs exact {exact} (σ = {})",
            result.delta_f,
            result.std_err
        );
        assert!(result.std_err > 0.0 && result.std_err < 0.05);
    }

    #[test]
    fn bar_beats_zwanzig_for_poor_overlap() {
        // Strong perturbation: one-sided FEP in the poor-overlap
        // direction (sampling the narrow well, evaluating the broad one —
        // the tails are never visited) is visibly biased; BAR isn't.
        let system = HarmonicPerturbation::new(1.0, 400.0, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let wf = system.sample_forward(2_000, &mut rng);
        let wr = system.sample_reverse(2_000, &mut rng);
        let exact = system.analytic_delta_f();
        let err_bar = (bar(&wf, &wr, 1.0).delta_f - exact).abs();
        let err_zw_bad = (-zwanzig(&wr, 1.0) - exact).abs();
        assert!(
            3.0 * err_bar < err_zw_bad,
            "BAR error {err_bar} should clearly beat biased one-sided FEP error {err_zw_bad}"
        );
        assert!(err_bar < 0.1, "BAR error too large: {err_bar}");
    }

    #[test]
    fn bar_is_antisymmetric() {
        // Swapping the two states flips the sign of ΔF.
        let system = HarmonicPerturbation::new(1.0, 4.0, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let wf = system.sample_forward(10_000, &mut rng);
        let wr = system.sample_reverse(10_000, &mut rng);
        let fwd = bar(&wf, &wr, 1.0).delta_f;
        let rev = bar(&wr, &wf, 1.0).delta_f;
        assert!((fwd + rev).abs() < 0.02, "fwd {fwd}, rev {rev}");
    }

    #[test]
    fn bar_handles_unbalanced_sample_counts() {
        let system = HarmonicPerturbation::new(1.0, 2.0, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(19);
        let wf = system.sample_forward(20_000, &mut rng);
        let wr = system.sample_reverse(500, &mut rng);
        let result = bar(&wf, &wr, 1.0);
        let exact = system.analytic_delta_f();
        assert!(
            (result.delta_f - exact).abs() < 5.0 * result.std_err.max(0.02),
            "{} vs {exact}",
            result.delta_f
        );
    }

    #[test]
    fn bar_identity_perturbation_is_zero() {
        let system = HarmonicPerturbation::new(2.0, 2.0, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let wf = system.sample_forward(1000, &mut rng);
        let wr = system.sample_reverse(1000, &mut rng);
        let result = bar(&wf, &wr, 1.0);
        assert!(result.delta_f.abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "both directions")]
    fn bar_rejects_empty() {
        let _ = bar(&[], &[1.0], 1.0);
    }
}
