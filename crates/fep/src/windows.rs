//! Multi-window (stratified) free-energy calculations.
//!
//! Large perturbations are split into λ-windows (Fig. 1 of the paper
//! shows a `free_energy` project with `lambda0`, `lambda1`, … commands);
//! each adjacent pair contributes a BAR estimate and the total is the
//! sum, with errors combined in quadrature.

use crate::estimators::{bar, BarResult};
use serde::{Deserialize, Serialize};

/// Work samples collected at one λ-window boundary: forward means sampled
/// in window `i` evaluating `U_{i+1} − U_i`, reverse sampled in `i+1`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WindowSamples {
    pub forward: Vec<f64>,
    pub reverse: Vec<f64>,
}

/// Result of a stratified calculation.
#[derive(Debug, Clone)]
pub struct StratifiedResult {
    /// Per-boundary BAR results (one per adjacent window pair).
    pub per_window: Vec<BarResult>,
    /// Total ΔF across all windows.
    pub total_delta_f: f64,
    /// Quadrature-combined standard error.
    pub total_std_err: f64,
}

/// Combine adjacent-window samples into a total free-energy difference.
pub fn stratified_bar(windows: &[WindowSamples], beta: f64) -> StratifiedResult {
    assert!(!windows.is_empty(), "need at least one window pair");
    let per_window: Vec<BarResult> = windows
        .iter()
        .map(|w| bar(&w.forward, &w.reverse, beta))
        .collect();
    let total_delta_f = per_window.iter().map(|r| r.delta_f).sum();
    let total_var: f64 = per_window.iter().map(|r| r.std_err * r.std_err).sum();
    StratifiedResult {
        per_window,
        total_delta_f,
        total_std_err: total_var.sqrt(),
    }
}

/// Evenly spaced λ values from 0 to 1 inclusive (`n_windows + 1` values).
pub fn lambda_schedule(n_windows: usize) -> Vec<f64> {
    assert!(n_windows >= 1);
    (0..=n_windows)
        .map(|i| i as f64 / n_windows as f64)
        .collect()
}

/// Linear interpolation of a parameter along the schedule (e.g. a spring
/// constant k(λ) = (1−λ)k_A + λk_B).
pub fn interpolate(lambda: f64, a: f64, b: f64) -> f64 {
    assert!((0.0..=1.0).contains(&lambda), "λ must be in [0,1]");
    (1.0 - lambda) * a + lambda * b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harmonic::HarmonicPerturbation;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn lambda_schedule_shape() {
        let s = lambda_schedule(4);
        assert_eq!(s, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    fn interpolation_endpoints() {
        assert_eq!(interpolate(0.0, 2.0, 10.0), 2.0);
        assert_eq!(interpolate(1.0, 2.0, 10.0), 10.0);
        assert_eq!(interpolate(0.5, 2.0, 10.0), 6.0);
    }

    #[test]
    fn stratified_matches_analytic_total() {
        // k: 1 → 16 through 4 windows with k interpolated geometrically
        // via the λ schedule on ln k (each window is a modest
        // perturbation). Total exact ΔF = ln(16)/2.
        let beta = 1.0;
        let ks: Vec<f64> = lambda_schedule(4)
            .iter()
            .map(|&l| (16.0f64).powf(l))
            .collect();
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let windows: Vec<WindowSamples> = ks
            .windows(2)
            .map(|pair| {
                let sys = HarmonicPerturbation::new(pair[0], pair[1], beta);
                WindowSamples {
                    forward: sys.sample_forward(8_000, &mut rng),
                    reverse: sys.sample_reverse(8_000, &mut rng),
                }
            })
            .collect();
        let result = stratified_bar(&windows, beta);
        let exact = (16.0f64).ln() / 2.0;
        assert!(
            (result.total_delta_f - exact).abs() < 4.0 * result.total_std_err.max(0.01),
            "stratified ΔF {} vs exact {exact} (σ {})",
            result.total_delta_f,
            result.total_std_err
        );
        assert_eq!(result.per_window.len(), 4);
    }

    #[test]
    fn errors_combine_in_quadrature() {
        let sys = HarmonicPerturbation::new(1.0, 2.0, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let w = WindowSamples {
            forward: sys.sample_forward(2_000, &mut rng),
            reverse: sys.sample_reverse(2_000, &mut rng),
        };
        let single = stratified_bar(std::slice::from_ref(&w), 1.0);
        let double = stratified_bar(&[w.clone(), w.clone()], 1.0);
        assert!(
            (double.total_std_err - single.total_std_err * 2.0f64.sqrt()).abs() < 1e-9
        );
        assert!((double.total_delta_f - 2.0 * single.total_delta_f).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one window")]
    fn rejects_empty_windows() {
        let _ = stratified_bar(&[], 1.0);
    }
}
