//! # fep — free-energy perturbation estimators
//!
//! The statistical core of the Copernicus BAR plugin (§5 of the paper):
//! exponential averaging (Zwanzig), the Bennett acceptance ratio with
//! asymptotic error bars, and stratified multi-λ-window calculations —
//! validated against an analytically solvable harmonic perturbation.

pub mod estimators;
pub mod harmonic;
pub mod windows;

pub use estimators::{bar, zwanzig, BarResult};
pub use harmonic::HarmonicPerturbation;
pub use windows::{interpolate, lambda_schedule, stratified_bar, StratifiedResult, WindowSamples};
