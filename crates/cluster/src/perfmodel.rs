//! Strong-scaling performance model of a single MD simulation.
//!
//! §4 of the paper derives Figs. 7–9 by benchmarking Gromacs at several
//! core counts and then *simulating the controller's activity*; this
//! module is the benchmark-fit half of that method. Throughput follows
//!
//! `speed(n) = s₁ · n · e(n)`, with `e(n) = 1 / (1 + (n/n_c)^β)`,
//!
//! a saturating parallel efficiency: near-ideal at low core counts,
//! degrading as the per-core atom count drops and communication dominates.
//!
//! Calibration (villin, 9,864 atoms) anchors the ensemble-level numbers
//! the paper reports: t_res(1) = 1.1·10⁵ hours for the first-folded
//! command set, ≈53 % scaling efficiency at 20,000 cores with 96-core
//! simulations, and ≈10 h time-to-solution at that point. See
//! EXPERIMENTS.md for the residual tension between those anchors and the
//! paper's single-simulation "200 ns/day at 100 cores" anecdote.

use serde::{Deserialize, Serialize};

/// Throughput model for one parallel MD simulation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PerfModel {
    /// Single-core throughput in ns/day.
    pub single_core_ns_per_day: f64,
    /// Efficiency crossover scale n_c (cores).
    pub n_c: f64,
    /// Efficiency roll-off exponent β.
    pub beta: f64,
}

impl PerfModel {
    pub fn new(single_core_ns_per_day: f64, n_c: f64, beta: f64) -> Self {
        assert!(single_core_ns_per_day > 0.0 && n_c > 0.0 && beta > 0.0);
        PerfModel {
            single_core_ns_per_day,
            n_c,
            beta,
        }
    }

    /// The villin (9,864-atom) calibration used throughout the repo.
    pub fn villin() -> Self {
        PerfModel::new(7.36, 500.0, 1.3)
    }

    /// Parallel efficiency e(n) ∈ (0, 1].
    pub fn efficiency(&self, cores: usize) -> f64 {
        assert!(cores >= 1, "a simulation needs at least one core");
        1.0 / (1.0 + (cores as f64 / self.n_c).powf(self.beta))
    }

    /// Simulation throughput in ns/day on `cores` cores.
    pub fn speed_ns_per_day(&self, cores: usize) -> f64 {
        self.single_core_ns_per_day * cores as f64 * self.efficiency(cores)
    }

    /// Wallclock hours to simulate `ns` nanoseconds on `cores` cores.
    pub fn hours_for(&self, ns: f64, cores: usize) -> f64 {
        assert!(ns >= 0.0);
        ns / self.speed_ns_per_day(cores) * 24.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_is_monotonic_decreasing() {
        let m = PerfModel::villin();
        let mut prev = m.efficiency(1);
        for n in [2, 4, 12, 24, 48, 96, 192, 1000] {
            let e = m.efficiency(n);
            assert!(e < prev, "efficiency must fall with core count");
            assert!(e > 0.0 && e <= 1.0);
            prev = e;
        }
    }

    #[test]
    fn single_core_efficiency_is_near_one() {
        let m = PerfModel::villin();
        assert!(m.efficiency(1) > 0.99);
    }

    #[test]
    fn villin_anchor_96_cores() {
        // e(96) ≈ 0.9 so that the 20k-core ensemble efficiency lands at
        // the paper's ≈53 % (0.9 × 225/(2·208) ≈ 0.49–0.53 band).
        let m = PerfModel::villin();
        let e96 = m.efficiency(96);
        assert!((0.85..=0.95).contains(&e96), "e(96) = {e96}");
    }

    #[test]
    fn speed_grows_sublinearly() {
        let m = PerfModel::villin();
        let s48 = m.speed_ns_per_day(48);
        let s96 = m.speed_ns_per_day(96);
        assert!(s96 > s48, "more cores still help at this scale");
        assert!(s96 < 2.0 * s48, "but less than linearly");
    }

    #[test]
    fn hours_for_inverts_speed() {
        let m = PerfModel::villin();
        let speed = m.speed_ns_per_day(24);
        let h = m.hours_for(speed, 24);
        assert!((h - 24.0).abs() < 1e-9, "one day's work takes 24 h");
        assert_eq!(m.hours_for(0.0, 24), 0.0);
    }

    #[test]
    fn tres1_anchor() {
        // The paper: t_res(1) = 1.1e5 hours for the first-folded command
        // set (3 generations × 225 commands × 50 ns = 33,750 ns).
        let m = PerfModel::villin();
        let tres1 = m.hours_for(3.0 * 225.0 * 50.0, 1);
        assert!(
            (tres1 - 1.1e5).abs() / 1.1e5 < 0.02,
            "t_res(1) = {tres1:.0} h, paper gives 1.1e5"
        );
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let _ = PerfModel::villin().efficiency(0);
    }
}
