//! Discrete-event simulation of the Copernicus controller's scheduling
//! activity — the method §4 of the paper uses to produce Figs. 7–9.
//!
//! A pool of workers (each a `cores_per_sim`-core parallel simulation)
//! pulls 50-ns trajectory-extension commands from the project queue. A
//! generation consists of one extension of each trajectory; when every
//! output of a generation has arrived at the project server, the MSM
//! controller clusters (costing controller time, overlapped with worker
//! execution of nothing — the queue is empty during clustering, matching
//! the generation-barrier protocol of §3) and spawns the next generation.
//! Output transfers traverse a worker→server link and are accounted for
//! the ensemble-bandwidth figure.

use crate::perfmodel::PerfModel;
use netsim::events::EventQueue;
use netsim::network::Link;
use serde::{Deserialize, Serialize};

/// The adaptive-sampling project being scheduled (paper defaults).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ProjectSpec {
    /// Trajectory-extension commands per generation (paper: 225).
    pub commands_per_generation: usize,
    /// Generations until the stop criterion. 3 ≈ first folded
    /// conformation; blind native-state prediction costs ≈2.5× more.
    pub generations: usize,
    /// Nanoseconds simulated per command (paper: 50).
    pub segment_ns: f64,
    /// Output payload per command (compressed trajectory), bytes.
    pub output_bytes_per_command: u64,
    /// Controller-side clustering + adaptive-sampling time per
    /// generation, hours.
    pub clustering_hours: f64,
}

impl ProjectSpec {
    /// The villin run of §3: 225 commands/generation, 50-ns segments,
    /// stop at first folded conformation (3 generations).
    pub fn villin_first_folded() -> Self {
        ProjectSpec {
            commands_per_generation: 225,
            generations: 3,
            segment_ns: 50.0,
            output_bytes_per_command: 7_000_000,
            clustering_hours: 0.1,
        }
    }

    /// The blind-prediction stop criterion (≈8 generations, 80–90 h on
    /// the paper's hardware).
    pub fn villin_blind_prediction() -> Self {
        ProjectSpec {
            generations: 8,
            ..Self::villin_first_folded()
        }
    }

    /// Total simulated nanoseconds in the project.
    pub fn total_work_ns(&self) -> f64 {
        self.generations as f64 * self.commands_per_generation as f64 * self.segment_ns
    }
}

/// The compute resource: a homogeneous pool partitioned into workers.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MachineSpec {
    pub total_cores: usize,
    /// Cores assigned to each individual simulation (the Fig. 7/8 line
    /// parameter).
    pub cores_per_sim: usize,
    /// Link carrying command output from a worker to the project server.
    pub output_link: Link,
}

impl MachineSpec {
    pub fn new(total_cores: usize, cores_per_sim: usize) -> Self {
        assert!(cores_per_sim >= 1 && total_cores >= cores_per_sim);
        MachineSpec {
            total_cores,
            cores_per_sim,
            // Cluster-interconnect default: the paper's QDR Infiniband.
            output_link: Link::infiniband(),
        }
    }

    pub fn with_output_link(mut self, link: Link) -> Self {
        self.output_link = link;
        self
    }

    /// Number of concurrent simulations the pool can host.
    pub fn n_workers(&self) -> usize {
        self.total_cores / self.cores_per_sim
    }
}

/// Result of one controller simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunOutcome {
    pub wallclock_hours: f64,
    /// Core-hours actually spent executing commands.
    pub busy_core_hours: f64,
    /// Core-hours of the full allocation over the run.
    pub total_core_hours: f64,
    pub commands_completed: usize,
    pub output_bytes: u64,
    /// Completion time (hours) of each generation barrier.
    pub generation_done_hours: Vec<f64>,
}

impl RunOutcome {
    /// The paper's scaling efficiency: `t_res(1) / (N · t_res(N))`.
    pub fn efficiency(&self, tres1_hours: f64, total_cores: usize) -> f64 {
        tres1_hours / (total_cores as f64 * self.wallclock_hours)
    }

    /// Average ensemble-level bandwidth in MB/s (Fig. 9).
    pub fn ensemble_bandwidth_mb_per_s(&self) -> f64 {
        self.output_bytes as f64 / (self.wallclock_hours * 3600.0) / 1e6
    }

    /// Fraction of allocated core-hours spent computing.
    pub fn utilization(&self) -> f64 {
        self.busy_core_hours / self.total_core_hours
    }
}

/// Sequential reference: every command run back-to-back on one core
/// (`t_res(1)` in the paper, 1.1·10⁵ hours for villin-first-folded).
pub fn reference_tres1_hours(project: &ProjectSpec, perf: &PerfModel) -> f64 {
    perf.hours_for(project.total_work_ns(), 1)
}

#[derive(Debug)]
enum Event {
    /// A worker finishes executing a command.
    CommandExecuted { worker: usize, generation: usize },
    /// A command's output lands on the project server.
    OutputArrived { generation: usize },
    /// The controller finishes clustering generation `g`.
    ClusteringDone { generation: usize },
}

/// Simulate the controller's activity for the given project and machine.
pub fn simulate_controller(
    project: &ProjectSpec,
    machine: &MachineSpec,
    perf: &PerfModel,
) -> RunOutcome {
    let n_workers = machine.n_workers();
    assert!(n_workers >= 1, "machine cannot host a single worker");
    let exec_hours = perf.hours_for(project.segment_ns, machine.cores_per_sim);
    let transfer_hours = machine
        .output_link
        .transfer_time(project.output_bytes_per_command)
        / 3600.0;

    let mut queue: EventQueue<Event> = EventQueue::new();
    let mut pending: usize = project.commands_per_generation; // commands waiting for a worker
    let mut idle_workers: Vec<usize> = (0..n_workers).collect();
    let mut generation: usize = 0; // generation currently being sampled
    let mut outputs_received = 0usize;
    let mut commands_completed = 0usize;
    let mut busy_core_hours = 0.0;
    let mut output_bytes = 0u64;
    let mut generation_done_hours = Vec::new();
    let mut clock = 0.0;

    // Kick off: assign as many gen-0 commands as workers allow.
    let dispatch = |queue: &mut EventQueue<Event>,
                        pending: &mut usize,
                        idle: &mut Vec<usize>,
                        generation: usize,
                        now: f64| {
        while *pending > 0 && !idle.is_empty() {
            let worker = idle.pop().expect("non-empty");
            *pending -= 1;
            queue.push(
                now + exec_hours,
                Event::CommandExecuted { worker, generation },
            );
        }
    };
    dispatch(&mut queue, &mut pending, &mut idle_workers, generation, 0.0);

    while let Some((time, event)) = queue.pop() {
        clock = time;
        match event {
            Event::CommandExecuted { worker, generation: g } => {
                commands_completed += 1;
                busy_core_hours += exec_hours * machine.cores_per_sim as f64;
                output_bytes += project.output_bytes_per_command;
                // Output travels to the project server while the worker
                // immediately picks up new work (transfers overlap
                // compute, §4: "data transfers occur in parallel with
                // project processing").
                queue.push(time + transfer_hours, Event::OutputArrived { generation: g });
                idle_workers.push(worker);
                dispatch(&mut queue, &mut pending, &mut idle_workers, g, time);
            }
            Event::OutputArrived { generation: g } => {
                outputs_received += 1;
                if outputs_received == project.commands_per_generation {
                    // Generation barrier: cluster, then spawn the next.
                    queue.push(
                        time + project.clustering_hours,
                        Event::ClusteringDone { generation: g },
                    );
                }
            }
            Event::ClusteringDone { generation: g } => {
                generation_done_hours.push(time);
                if g + 1 < project.generations {
                    generation = g + 1;
                    outputs_received = 0;
                    pending = project.commands_per_generation;
                    dispatch(&mut queue, &mut pending, &mut idle_workers, generation, time);
                }
            }
        }
    }

    RunOutcome {
        wallclock_hours: clock,
        busy_core_hours,
        total_core_hours: clock * machine.total_cores as f64,
        commands_completed,
        output_bytes,
        generation_done_hours,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_project() -> ProjectSpec {
        ProjectSpec {
            commands_per_generation: 10,
            generations: 2,
            segment_ns: 50.0,
            output_bytes_per_command: 1_000_000,
            clustering_hours: 0.0,
        }
    }

    #[test]
    fn serial_machine_matches_reference() {
        let project = fast_project();
        let perf = PerfModel::villin();
        let machine = MachineSpec::new(1, 1);
        let outcome = simulate_controller(&project, &machine, &perf);
        let tres1 = reference_tres1_hours(&project, &perf);
        // One worker executes all commands back-to-back; only the final
        // transfer can extend past the last execution.
        assert!(
            (outcome.wallclock_hours - tres1).abs() / tres1 < 1e-6,
            "{} vs {tres1}",
            outcome.wallclock_hours
        );
        assert_eq!(outcome.commands_completed, 20);
        assert!(outcome.efficiency(tres1, 1) > 0.999);
    }

    #[test]
    fn perfect_parallelism_when_workers_match_commands() {
        let project = fast_project();
        let perf = PerfModel::villin();
        // 10 single-core workers for 10 commands/generation.
        let machine = MachineSpec::new(10, 1);
        let outcome = simulate_controller(&project, &machine, &perf);
        let per_cmd = perf.hours_for(50.0, 1);
        // Two generations, each one command deep.
        assert!(
            (outcome.wallclock_hours - 2.0 * per_cmd) / per_cmd < 0.01,
            "wallclock {}",
            outcome.wallclock_hours
        );
        let tres1 = reference_tres1_hours(&project, &perf);
        assert!(outcome.efficiency(tres1, 10) > 0.99);
    }

    #[test]
    fn excess_workers_do_not_help() {
        let project = fast_project();
        let perf = PerfModel::villin();
        let just_enough = simulate_controller(&project, &MachineSpec::new(10, 1), &perf);
        let double = simulate_controller(&project, &MachineSpec::new(20, 1), &perf);
        assert!(
            (just_enough.wallclock_hours - double.wallclock_hours).abs() < 1e-9,
            "extra workers changed the makespan"
        );
        // But they halve the efficiency.
        let tres1 = reference_tres1_hours(&project, &perf);
        let e10 = just_enough.efficiency(tres1, 10);
        let e20 = double.efficiency(tres1, 20);
        assert!((e10 / e20 - 2.0).abs() < 0.01);
    }

    #[test]
    fn generation_barrier_is_respected() {
        let project = fast_project();
        let perf = PerfModel::villin();
        let machine = MachineSpec::new(4, 1); // 4 workers, 10 commands/gen
        let outcome = simulate_controller(&project, &machine, &perf);
        assert_eq!(outcome.generation_done_hours.len(), 2);
        // Second generation cannot start before the first completes.
        let per_cmd = perf.hours_for(50.0, 1);
        let gen0 = outcome.generation_done_hours[0];
        // ceil(10/4) = 3 rounds of execution.
        assert!(gen0 >= 3.0 * per_cmd - 1e-9, "gen 0 done at {gen0}");
    }

    #[test]
    fn parallel_sims_cut_time_at_efficiency_cost() {
        let project = ProjectSpec::villin_first_folded();
        let perf = PerfModel::villin();
        let tres1 = reference_tres1_hours(&project, &perf);
        let k1 = simulate_controller(&project, &MachineSpec::new(225, 1), &perf);
        let k24 = simulate_controller(&project, &MachineSpec::new(225 * 24, 24), &perf);
        assert!(k24.wallclock_hours < k1.wallclock_hours / 15.0);
        assert!(k24.efficiency(tres1, 225 * 24) < k1.efficiency(tres1, 225));
    }

    #[test]
    fn paper_anchor_20k_cores_96_per_sim() {
        // Fig. 7/8: with 20,000 cores and 96-core simulations, the villin
        // project reaches ≈53 % efficiency and just over 10 h.
        let project = ProjectSpec::villin_first_folded();
        let perf = PerfModel::villin();
        let machine = MachineSpec::new(20_000, 96);
        let outcome = simulate_controller(&project, &machine, &perf);
        let tres1 = reference_tres1_hours(&project, &perf);
        let eff = outcome.efficiency(tres1, 20_000);
        assert!(
            (0.42..=0.62).contains(&eff),
            "efficiency at 20k cores: {eff:.3} (paper: 0.53)"
        );
        assert!(
            (9.0..=14.0).contains(&outcome.wallclock_hours),
            "time-to-solution: {:.1} h (paper: just over 10 h)",
            outcome.wallclock_hours
        );
    }

    #[test]
    fn bandwidth_accounting() {
        let project = fast_project();
        let perf = PerfModel::villin();
        let outcome = simulate_controller(&project, &MachineSpec::new(10, 1), &perf);
        assert_eq!(outcome.output_bytes, 20_000_000);
        assert!(outcome.ensemble_bandwidth_mb_per_s() > 0.0);
    }

    #[test]
    fn utilization_bounds() {
        let project = fast_project();
        let perf = PerfModel::villin();
        let outcome = simulate_controller(&project, &MachineSpec::new(7, 1), &perf);
        let u = outcome.utilization();
        assert!(u > 0.0 && u <= 1.0 + 1e-9, "utilization {u}");
    }

    #[test]
    fn blind_prediction_costs_more_generations() {
        let first = ProjectSpec::villin_first_folded();
        let blind = ProjectSpec::villin_blind_prediction();
        assert!(blind.total_work_ns() > 2.0 * first.total_work_ns());
    }
}
