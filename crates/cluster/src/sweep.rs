//! Parameter sweeps over total cores and cores-per-simulation — the data
//! series behind Figs. 7 (scaling efficiency), 8 (time-to-solution) and 9
//! (ensemble bandwidth).

use crate::controller::{
    reference_tres1_hours, simulate_controller, MachineSpec, ProjectSpec, RunOutcome,
};
use crate::perfmodel::PerfModel;
use serde::{Deserialize, Serialize};

/// One point of the scaling study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalingPoint {
    pub total_cores: usize,
    pub cores_per_sim: usize,
    pub wallclock_hours: f64,
    pub efficiency: f64,
    pub ensemble_bandwidth_mb_per_s: f64,
    pub utilization: f64,
}

/// Sweep a grid of total core counts for each cores-per-simulation value.
/// Grid points smaller than one worker are skipped.
pub fn scaling_sweep(
    project: &ProjectSpec,
    perf: &PerfModel,
    core_grid: &[usize],
    cores_per_sim: &[usize],
) -> Vec<ScalingPoint> {
    let tres1 = reference_tres1_hours(project, perf);
    let mut points = Vec::new();
    for &k in cores_per_sim {
        for &n in core_grid {
            if n < k {
                continue;
            }
            let machine = MachineSpec::new(n, k);
            let outcome = simulate_controller(project, &machine, perf);
            points.push(to_point(n, k, &outcome, tres1));
        }
    }
    points
}

/// A log-spaced grid of core counts from `lo` to `hi` with `per_decade`
/// points per factor of ten (deduplicated, ascending).
pub fn log_core_grid(lo: usize, hi: usize, per_decade: usize) -> Vec<usize> {
    assert!(lo >= 1 && hi >= lo && per_decade >= 1);
    let mut grid = Vec::new();
    let lo_log = (lo as f64).log10();
    let hi_log = (hi as f64).log10();
    let n_steps = ((hi_log - lo_log) * per_decade as f64).ceil() as usize;
    for s in 0..=n_steps {
        let x = lo_log + (hi_log - lo_log) * s as f64 / n_steps.max(1) as f64;
        let v = 10f64.powf(x).round() as usize;
        if grid.last() != Some(&v) {
            grid.push(v.max(1));
        }
    }
    grid
}

fn to_point(n: usize, k: usize, outcome: &RunOutcome, tres1: f64) -> ScalingPoint {
    ScalingPoint {
        total_cores: n,
        cores_per_sim: k,
        wallclock_hours: outcome.wallclock_hours,
        efficiency: outcome.efficiency(tres1, n),
        ensemble_bandwidth_mb_per_s: outcome.ensemble_bandwidth_mb_per_s(),
        utilization: outcome.utilization(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep_villin() -> Vec<ScalingPoint> {
        scaling_sweep(
            &ProjectSpec::villin_first_folded(),
            &PerfModel::villin(),
            &[96, 960, 9_600, 96_000],
            &[1, 24, 96],
        )
    }

    #[test]
    fn grid_is_log_spaced_and_sorted() {
        let g = log_core_grid(1, 100_000, 4);
        assert_eq!(*g.first().unwrap(), 1);
        assert_eq!(*g.last().unwrap(), 100_000);
        assert!(g.windows(2).all(|w| w[0] < w[1]));
        assert!(g.len() >= 15);
    }

    #[test]
    fn sweep_skips_undersized_machines() {
        let points = scaling_sweep(
            &ProjectSpec::villin_first_folded(),
            &PerfModel::villin(),
            &[10, 96],
            &[96],
        );
        assert_eq!(points.len(), 1, "10 cores cannot host a 96-core sim");
        assert_eq!(points[0].total_cores, 96);
    }

    #[test]
    fn time_to_solution_decreases_then_floors() {
        let points = sweep_villin();
        let k1: Vec<&ScalingPoint> =
            points.iter().filter(|p| p.cores_per_sim == 1).collect();
        // More cores never slow the project down.
        for w in k1.windows(2) {
            assert!(w[1].wallclock_hours <= w[0].wallclock_hours + 1e-9);
        }
        // Beyond 225 single-core workers the time floors (Fig. 8).
        let floor_a = k1.iter().find(|p| p.total_cores == 9_600).unwrap();
        let floor_b = k1.iter().find(|p| p.total_cores == 96_000).unwrap();
        assert!((floor_a.wallclock_hours - floor_b.wallclock_hours).abs() < 1e-6);
    }

    #[test]
    fn efficiency_drops_when_commands_run_out() {
        let points = sweep_villin();
        let k1: Vec<&ScalingPoint> =
            points.iter().filter(|p| p.cores_per_sim == 1).collect();
        // At 96 cores (< 225 commands) efficiency is high — 225 commands
        // over 96 workers take ceil(225/96)=3 rounds, so the ceiling is
        // 225/288 ≈ 0.78 — while at 96k cores it collapses ∝ 1/N (Fig. 7's
        // rapid drop).
        assert!(k1[0].efficiency > 0.7, "efficiency {:?}", k1[0]);
        assert!(k1.last().unwrap().efficiency < 0.01);
    }

    #[test]
    fn bigger_sims_extend_the_scaling_range() {
        let points = sweep_villin();
        let at = |k: usize, n: usize| {
            points
                .iter()
                .find(|p| p.cores_per_sim == k && p.total_cores == n)
                .unwrap()
        };
        // At 96k cores, 96-core sims are dramatically faster than
        // single-core sims (which exhausted their parallelism at 225).
        assert!(at(96, 96_000).wallclock_hours < 0.05 * at(1, 96_000).wallclock_hours);
        // Past the 225-command limit of k=1, the bigger-sim line keeps a
        // far higher efficiency (the Fig. 7 crossover).
        assert!(at(96, 9_600).efficiency > 3.0 * at(1, 9_600).efficiency);
    }

    #[test]
    fn bandwidth_grows_with_core_count() {
        let points = sweep_villin();
        let k24: Vec<&ScalingPoint> =
            points.iter().filter(|p| p.cores_per_sim == 24).collect();
        // Fig. 9: ensemble bandwidth rises with the number of cores.
        assert!(k24.last().unwrap().ensemble_bandwidth_mb_per_s > k24[0].ensemble_bandwidth_mb_per_s);
        // And stays modest (well under 10 MB/s) even at huge scale.
        assert!(k24.last().unwrap().ensemble_bandwidth_mb_per_s < 10.0);
    }
}
