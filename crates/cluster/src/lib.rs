//! # clustersim — compute-cluster and controller-activity simulation
//!
//! The performance-evaluation substrate for Figs. 7–9 of the Copernicus
//! paper. The paper's own method for those figures is to benchmark the MD
//! engine at several core counts and then *simulate the controller's
//! activity* for a given total allocation and cores-per-simulation; this
//! crate implements exactly that: a calibrated strong-scaling model
//! ([`perfmodel`]), a discrete-event simulation of the generation-barrier
//! scheduling loop ([`controller`]), and parameter sweeps ([`sweep`]).

pub mod controller;
pub mod perfmodel;
pub mod sweep;

pub use controller::{
    reference_tres1_hours, simulate_controller, MachineSpec, ProjectSpec, RunOutcome,
};
pub use perfmodel::PerfModel;
pub use sweep::{log_core_grid, scaling_sweep, ScalingPoint};
