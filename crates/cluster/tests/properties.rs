//! Property-based tests of the performance model and the controller DES.

use clustersim::{
    reference_tres1_hours, simulate_controller, MachineSpec, PerfModel, ProjectSpec,
};
use proptest::prelude::*;

fn arb_project() -> impl Strategy<Value = ProjectSpec> {
    (1usize..40, 1usize..5, 10.0..100.0f64).prop_map(|(c, g, ns)| ProjectSpec {
        commands_per_generation: c,
        generations: g,
        segment_ns: ns,
        output_bytes_per_command: 1_000_000,
        clustering_hours: 0.05,
    })
}

proptest! {
    #[test]
    fn efficiency_is_in_unit_interval(project in arb_project(), cores in 1usize..2000) {
        let perf = PerfModel::villin();
        let machine = MachineSpec::new(cores, 1);
        let outcome = simulate_controller(&project, &machine, &perf);
        let tres1 = reference_tres1_hours(&project, &perf);
        let eff = outcome.efficiency(tres1, cores);
        prop_assert!(eff > 0.0 && eff <= 1.0 + 1e-9, "efficiency {eff}");
        prop_assert!(outcome.utilization() > 0.0 && outcome.utilization() <= 1.0 + 1e-9);
    }

    #[test]
    fn more_cores_never_slow_the_project(project in arb_project(), cores in 1usize..500) {
        let perf = PerfModel::villin();
        let a = simulate_controller(&project, &MachineSpec::new(cores, 1), &perf);
        let b = simulate_controller(&project, &MachineSpec::new(cores * 2, 1), &perf);
        prop_assert!(b.wallclock_hours <= a.wallclock_hours + 1e-9);
    }

    #[test]
    fn all_commands_complete_exactly_once(project in arb_project(), cores in 1usize..300) {
        let perf = PerfModel::villin();
        let outcome = simulate_controller(&project, &MachineSpec::new(cores, 1), &perf);
        prop_assert_eq!(
            outcome.commands_completed,
            project.commands_per_generation * project.generations
        );
        prop_assert_eq!(
            outcome.output_bytes,
            (project.commands_per_generation * project.generations) as u64 * 1_000_000
        );
        prop_assert_eq!(outcome.generation_done_hours.len(), project.generations);
        // Generation completions are ordered in time.
        for w in outcome.generation_done_hours.windows(2) {
            prop_assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn busy_time_is_machine_independent(project in arb_project(), cores in 1usize..200) {
        // The work is fixed; only its distribution over time changes.
        let perf = PerfModel::villin();
        let a = simulate_controller(&project, &MachineSpec::new(cores, 1), &perf);
        let b = simulate_controller(&project, &MachineSpec::new(1, 1), &perf);
        prop_assert!((a.busy_core_hours - b.busy_core_hours).abs() < 1e-6 * b.busy_core_hours.max(1.0));
    }

    #[test]
    fn perfmodel_speed_is_monotone_in_cores_below_saturation(
        n in 1usize..96,
    ) {
        // Within the calibrated range the model must not predict negative
        // returns from adding cores.
        let perf = PerfModel::villin();
        prop_assert!(perf.speed_ns_per_day(n + 1) > perf.speed_ns_per_day(n));
    }

    #[test]
    fn bigger_sims_always_cost_efficiency_per_core(k in 2usize..128) {
        let perf = PerfModel::villin();
        prop_assert!(perf.efficiency(k) < perf.efficiency(1));
        prop_assert!(perf.efficiency(k) > 0.0);
    }
}
