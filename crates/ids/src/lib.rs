//! # copernicus-ids — shared identifier newtypes
//!
//! One vocabulary of identifiers for the whole framework: the live
//! runtime (`copernicus-core`), the overlay-network simulation
//! (`netsim`) and the wire transport all name workers, commands,
//! projects and overlay nodes the same way. Before this crate existed,
//! `netsim` had its own `NodeId(u32)` while the runtime used
//! `WorkerId(u64)`/`ProjectId(u64)`; an overlay topology could not be
//! cross-referenced against live transport telemetry without a lossy
//! manual mapping.
//!
//! All ids are `u64` newtypes with serde support and a stable `Display`
//! prefix (`worker-3`, `cmd-7`, `project-0`, `node-2`).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
        )]
        pub struct $name(pub u64);

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A worker client (one parallel simulation slot).
    WorkerId,
    "worker-"
);
id_type!(
    /// One unit of work (e.g. a 50-ns trajectory extension).
    CommandId,
    "cmd-"
);
id_type!(
    /// A project: a coupled ensemble of commands driven by a controller.
    ProjectId,
    "project-"
);
id_type!(
    /// A node in the overlay network (project server, relay, worker
    /// host, client) — shared between `netsim` topologies and live
    /// transport accounting.
    NodeId,
    "node-"
);

/// Monotonic id generator (thread-safe).
#[derive(Debug, Default)]
pub struct IdGen {
    next: AtomicU64,
}

impl IdGen {
    pub fn new() -> Self {
        IdGen::default()
    }

    pub fn next_u64(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    pub fn next_command(&self) -> CommandId {
        CommandId(self.next_u64())
    }

    pub fn next_worker(&self) -> WorkerId {
        WorkerId(self.next_u64())
    }

    pub fn next_node(&self) -> NodeId {
        NodeId(self.next_u64())
    }

    /// Raise the generator so the next id is at least `next` — never
    /// lowers it. Crash recovery uses this to resume minting past the
    /// highest id found in a replayed log.
    pub fn advance_to(&self, next: u64) {
        self.next.fetch_max(next, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(WorkerId(3).to_string(), "worker-3");
        assert_eq!(CommandId(7).to_string(), "cmd-7");
        assert_eq!(ProjectId(0).to_string(), "project-0");
        assert_eq!(NodeId(2).to_string(), "node-2");
    }

    #[test]
    fn idgen_is_monotonic() {
        let g = IdGen::new();
        let a = g.next_command();
        let b = g.next_command();
        assert!(b.0 > a.0);
    }

    #[test]
    fn advance_to_never_lowers() {
        let g = IdGen::new();
        g.advance_to(10);
        assert_eq!(g.next_command(), CommandId(10));
        g.advance_to(5);
        assert_eq!(g.next_command(), CommandId(11));
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(CommandId(1));
        s.insert(CommandId(1));
        s.insert(CommandId(2));
        assert_eq!(s.len(), 2);
        assert!(CommandId(1) < CommandId(2));
    }

    #[test]
    fn node_ids_share_the_u64_representation() {
        // Overlay nodes and workers can be cross-referenced without a
        // lossy cast (netsim's NodeId used to be u32).
        let n = NodeId(u64::MAX);
        assert_eq!(n.0, u64::MAX);
    }
}
