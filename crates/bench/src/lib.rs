//! Shared infrastructure for the figure-regeneration binaries.
//!
//! Figures 2–5 all analyse the same adaptive-sampling run; that run is
//! executed once through the real framework (deterministic per seed) and
//! distilled into a cached JSON file under `results/`, which the per-
//! figure binaries then render as the paper's series.
//!
//! Scale is selected with `--quick` / `--paper-scale` CLI flags or the
//! `COPERNICUS_SCALE` environment variable (`quick`, `default`, `paper`).

use copernicus_core::plugins::msm::TrajectoryArchive;
use copernicus_core::prelude::*;
use copernicus_core::MdRunExecutor;
use copernicus_telemetry::Telemetry;
use mdsim::units::steps_to_ns;
use mdsim::vec3::Vec3;
use mdsim::VillinModel;
use msm::{propagate_series, rmsd, MarkovStateModel, MsmConfig};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::sync::Arc;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Seconds — CI smoke.
    Quick,
    /// A couple of minutes on a laptop core — the documented default.
    Default,
    /// The paper's trajectory count (225); tens of minutes.
    Paper,
}

impl Scale {
    /// Read the scale from CLI args and the environment.
    pub fn from_env() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--quick") {
            return Scale::Quick;
        }
        if args.iter().any(|a| a == "--paper-scale") {
            return Scale::Paper;
        }
        match std::env::var("COPERNICUS_SCALE").as_deref() {
            Ok("quick") => Scale::Quick,
            Ok("paper") => Scale::Paper,
            _ => Scale::Default,
        }
    }

    pub fn label(&self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Default => "default",
            Scale::Paper => "paper",
        }
    }

    /// The adaptive-sampling configuration at this scale. The figure
    /// pipeline reproduces the paper's generational loop; the streaming
    /// loop has its own benchmark (`fig2_streaming`).
    pub fn msm_config(&self) -> MsmProjectConfig {
        let base = MsmProjectConfig {
            mode: AdaptiveMode::Generational,
            ..MsmProjectConfig::default()
        };
        match self {
            Scale::Quick => MsmProjectConfig {
                n_starts: 3,
                sims_per_start: 3,
                segment_ns: 25.0,
                n_clusters: 50,
                generations: 4,
                ..base.clone()
            },
            Scale::Default => MsmProjectConfig {
                n_starts: 9,
                sims_per_start: 5,
                segment_ns: 50.0,
                n_clusters: 150,
                generations: 10,
                ..base.clone()
            },
            Scale::Paper => MsmProjectConfig {
                n_starts: 9,
                sims_per_start: 25,
                segment_ns: 50.0,
                n_clusters: 600,
                generations: 10,
                ..base.clone()
            },
        }
    }
}

/// One trajectory's RMSD-to-native time series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RmsdSeries {
    pub times_ns: Vec<f64>,
    pub rmsd: Vec<f64>,
}

/// Population time series of the final microstate MSM under
/// Chapman-Kolmogorov propagation from the unfolded start (Fig. 4).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PopulationSeries {
    pub times_ns: Vec<f64>,
    /// `states[s][t]`: population of active state `s` at time index `t`.
    pub states: Vec<Vec<f64>>,
    /// RMSD of each active state's center to native.
    pub state_rmsd_to_native: Vec<f64>,
    /// Active-state indices counted as folded (center within 3.5 Å).
    pub folded_states: Vec<usize>,
    pub folded_fraction: Vec<f64>,
}

/// The distilled adaptive run all of Figs. 2–5 draw on.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaptiveRunData {
    pub scale: Scale,
    pub report: MsmProjectReport,
    pub rmsd_series: Vec<RmsdSeries>,
    pub best_frame: Vec<Vec3>,
    pub best_rmsd: f64,
    pub native: Vec<Vec3>,
    pub populations: PopulationSeries,
    /// Microstate assignment of every frame, per trajectory, from the
    /// final clustering (for lag-time re-analysis).
    pub dtrajs: Vec<Vec<usize>>,
    /// RMSD of every microstate center to native (original state ids).
    pub center_rmsd_to_native: Vec<f64>,
    /// Physical time per frame, nominal ns.
    pub frame_ns: f64,
    pub wall_secs: f64,
    pub n_commands: u64,
    pub bytes_received: u64,
}

/// Directory where figure data lands (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir).expect("cannot create results/");
    dir
}

pub fn save_json<T: Serialize>(name: &str, value: &T) -> PathBuf {
    let path = results_dir().join(name);
    let data = serde_json::to_vec(value).expect("serializable");
    std::fs::write(&path, data).expect("cannot write results file");
    path
}

pub fn load_json<T: for<'de> Deserialize<'de>>(name: &str) -> Option<T> {
    let path = results_dir().join(name);
    let data = std::fs::read(path).ok()?;
    serde_json::from_slice(&data).ok()
}

/// Write a run's telemetry into `results/`: the metrics snapshot
/// (`<prefix>.snapshot.json`) and the event journal
/// (`<prefix>.journal.jsonl`). The snapshot is the `copernicus report`
/// input format.
pub fn save_telemetry(prefix: &str, telemetry: &Telemetry) -> (PathBuf, PathBuf) {
    let dir = results_dir();
    let snapshot = dir.join(format!("{prefix}.snapshot.json"));
    let journal = dir.join(format!("{prefix}.journal.jsonl"));
    std::fs::write(&snapshot, telemetry.snapshot_pretty()).expect("cannot write snapshot");
    std::fs::write(&journal, telemetry.export_journal_jsonl()).expect("cannot write journal");
    (snapshot, journal)
}

/// Run (or load from cache) the adaptive villin project at `scale`.
pub fn adaptive_run(scale: Scale) -> AdaptiveRunData {
    let cache_name = format!("adaptive_run_{}.json", scale.label());
    if let Some(cached) = load_json::<AdaptiveRunData>(&cache_name) {
        if cached.scale == scale {
            eprintln!("[bench] using cached run results/{cache_name}");
            return cached;
        }
    }
    eprintln!("[bench] executing adaptive run at {} scale…", scale.label());
    let data = execute_adaptive_run(scale);
    save_json(&cache_name, &data);
    data
}

fn execute_adaptive_run(scale: Scale) -> AdaptiveRunData {
    let model = Arc::new(VillinModel::hp35());
    let config = scale.msm_config();
    let lag_frames = config.lag_frames;
    let record_interval = config.record_interval;
    let folded_rmsd = config.folded_rmsd;
    let n_clusters = config.n_clusters;
    let horizon_ns = config.kinetics_horizon_ns;

    let archive: TrajectoryArchive = Arc::new(Mutex::new(Vec::new()));
    let telemetry = Telemetry::new();
    let controller = MsmController::new(config).with_archive(archive.clone());
    let registry = ExecutorRegistry::new()
        .with(Arc::new(MdRunExecutor::new(model.clone())))
        .with(Arc::new(MsmBuildExecutor));
    let n_workers = std::thread::available_parallelism().map_or(2, |n| n.get());
    let t0 = std::time::Instant::now();
    let result = run_project(
        Box::new(controller),
        registry,
        RuntimeConfig {
            n_workers,
            telemetry: Some(telemetry.clone()),
            ..RuntimeConfig::default()
        },
    );
    let wall_secs = t0.elapsed().as_secs_f64();
    let (snap_path, _) = save_telemetry(&format!("adaptive_run_{}", scale.label()), &telemetry);
    eprintln!("[bench] telemetry snapshot: {}", snap_path.display());
    let report = MsmProjectReport::from_value(&result.result).expect("controller report");

    let trajs = archive.lock().clone();
    let native = model.native.clone();
    let dt = model.params.dt;

    // Per-trajectory RMSD series (Figs. 2/5) and the best frame (Fig. 3).
    let mut rmsd_series = Vec::with_capacity(trajs.len());
    let mut best_rmsd = f64::INFINITY;
    let mut best_frame: Vec<Vec3> = native.clone();
    for t in &trajs {
        let mut times_ns = Vec::with_capacity(t.len());
        let mut values = Vec::with_capacity(t.len());
        for (time, frame) in t.iter() {
            let d = rmsd(frame, &native);
            // Trajectory clocks are in intrinsic τ; convert via the
            // steps⇄ns mapping (time/dt = steps).
            times_ns.push(steps_to_ns((time / dt).round() as u64, dt));
            values.push(d);
            if d < best_rmsd {
                best_rmsd = d;
                best_frame = frame.to_vec();
            }
        }
        rmsd_series.push(RmsdSeries {
            times_ns,
            rmsd: values,
        });
    }

    // Final MSM over the archive for the Fig. 4 population evolution.
    let msm = MarkovStateModel::build(
        &trajs,
        MsmConfig {
            n_clusters,
            lag_frames,
            prior: 1e-4,
            reversible: true,
            kmedoids_iters: 0,
        },
    );
    let frame_ns = steps_to_ns(record_interval, dt);
    let lag_ns = frame_ns * lag_frames as f64;
    let n_steps = (horizon_ns / lag_ns).ceil().max(1.0) as usize;
    let p0 = msm.initial_distribution();
    let series = propagate_series(&msm.tmatrix, &p0, n_steps);
    let times_ns: Vec<f64> = (0..=n_steps).map(|i| i as f64 * lag_ns).collect();
    let state_rmsd_to_native: Vec<f64> = msm
        .active
        .iter()
        .map(|&s| rmsd(&msm.centers[s], &native))
        .collect();
    let folded_states: Vec<usize> = state_rmsd_to_native
        .iter()
        .enumerate()
        .filter(|(_, &d)| d <= folded_rmsd)
        .map(|(k, _)| k)
        .collect();
    let folded_fraction: Vec<f64> = series
        .iter()
        .map(|p| folded_states.iter().map(|&s| p[s]).sum::<f64>().max(0.0))
        .collect();
    let states: Vec<Vec<f64>> = (0..msm.n_active())
        .map(|s| series.iter().map(|p| p[s]).collect())
        .collect();

    let center_rmsd_to_native: Vec<f64> = msm.centers.iter().map(|c| rmsd(c, &native)).collect();

    AdaptiveRunData {
        scale,
        report,
        rmsd_series,
        best_frame,
        best_rmsd,
        native,
        populations: PopulationSeries {
            times_ns,
            states,
            state_rmsd_to_native,
            folded_states,
            folded_fraction,
        },
        dtrajs: msm.dtrajs.clone(),
        center_rmsd_to_native,
        frame_ns,
        wall_secs,
        n_commands: result.commands_completed,
        bytes_received: result.bytes_received,
    }
}

/// Pretty-print a two-column series.
pub fn print_series(header: (&str, &str), xs: &[f64], ys: &[f64]) {
    println!("{:>12} {:>12}", header.0, header.1);
    for (x, y) in xs.iter().zip(ys) {
        println!("{x:>12.2} {y:>12.4}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_configs_grow() {
        let q = Scale::Quick.msm_config();
        let d = Scale::Default.msm_config();
        let p = Scale::Paper.msm_config();
        assert!(q.n_trajectories_per_generation() < d.n_trajectories_per_generation());
        assert!(d.n_trajectories_per_generation() < p.n_trajectories_per_generation());
        assert_eq!(p.n_trajectories_per_generation(), 225);
    }

    #[test]
    fn scale_labels() {
        assert_eq!(Scale::Quick.label(), "quick");
        assert_eq!(Scale::Paper.label(), "paper");
    }
}
