//! Fig. 4 — time evolution of cluster populations in the microstate MSM:
//! `p(t+τ) = p(t) T(τ)` from the nine-unfolded-states start, with the
//! folded state emerging over time (paper: 66 % folded at 2,000 ns,
//! t½ ≈ 500–600 ns vs ≈700 ns experimental).
//!
//! ```text
//! cargo run -p copernicus-bench --release --bin fig4_populations [-- --quick|--paper-scale]
//! ```

use copernicus_bench::{adaptive_run, print_series, save_json, Scale};
use msm::first_crossing;

fn main() {
    let scale = Scale::from_env();
    let data = adaptive_run(scale);
    let pops = &data.populations;

    println!("== Fig. 4: microstate-MSM population evolution ==\n");

    // The individual cluster traces (the figure's thin lines): show the
    // five most populated final states.
    let mut final_order: Vec<usize> = (0..pops.states.len()).collect();
    final_order.sort_by(|&a, &b| {
        pops.states[b]
            .last()
            .partial_cmp(&pops.states[a].last())
            .unwrap()
    });
    println!("five most-populated final states (fraction at selected times):");
    println!(
        "{:>8} {:>10} {:>8} {:>8} {:>8} {:>8}",
        "state", "RMSD(Å)", "t=0", "25%", "50%", "end"
    );
    let n_t = pops.times_ns.len();
    for &s in final_order.iter().take(5) {
        let series = &pops.states[s];
        println!(
            "{:>8} {:>10.2} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            s,
            pops.state_rmsd_to_native[s],
            series[0],
            series[n_t / 4],
            series[n_t / 2],
            series[n_t - 1]
        );
    }

    // The emerging folded state (the figure's thick black line).
    println!("\nfolded fraction vs time (folded = center within 3.5 Å of native):");
    let stride = (n_t / 20).max(1);
    let ts: Vec<f64> = pops.times_ns.iter().step_by(stride).copied().collect();
    let fs: Vec<f64> = pops.folded_fraction.iter().step_by(stride).copied().collect();
    print_series(("time (ns)", "folded"), &ts, &fs);

    let final_folded = *pops.folded_fraction.last().unwrap_or(&0.0);
    let t_half = first_crossing(&pops.times_ns, &pops.folded_fraction, 0.5 * final_folded);
    println!(
        "\nfolded fraction at {:.0} ns: {:.0}% (paper: 66% at 2,000 ns)",
        pops.times_ns.last().unwrap_or(&0.0),
        100.0 * final_folded
    );
    println!(
        "t½ = {} (paper: 500-600 ns; experiment ≈700 ns)",
        t_half
            .map(|t| format!("{t:.0} ns"))
            .unwrap_or_else(|| "n/a".into())
    );
    let path = save_json("fig4_populations_series.json", pops);
    eprintln!("[bench] series written to {}", path.display());
}
