//! §3/§5 headline numbers — "folding of a protein in 30 hours":
//! wallclock-to-result on the paper's hardware, derived by combining the
//! real adaptive run (how many generations until the first fold / blind
//! prediction) with the calibrated controller-activity simulator (how
//! long a generation takes at the paper's core counts).
//!
//! ```text
//! cargo run -p copernicus-bench --release --bin headline_folding [-- --quick|--paper-scale]
//! ```

use clustersim::{simulate_controller, MachineSpec, PerfModel, ProjectSpec};
use copernicus_bench::{adaptive_run, Scale};

fn main() {
    let scale = Scale::from_env();
    let data = adaptive_run(scale);
    let perf = PerfModel::villin();

    println!("== headline: wallclock to scientific result ==\n");
    println!(
        "adaptive run ({} scale): {} commands, {:.1} s on this machine",
        scale.label(),
        data.n_commands,
        data.wall_secs
    );

    let first_fold_gen = data.report.first_folded_generation;
    let blind_gens = data.report.generations.len();
    println!(
        "first folded structure: generation {:?} (paper: 3)",
        first_fold_gen
    );
    println!("blind-prediction run length: {blind_gens} generations (paper: 8)\n");

    // Project those generation counts onto the paper's hardware
    // (~5,000 cores, 24-core simulations).
    let machine = MachineSpec::new(5_000, 24);
    let report = |label: &str, generations: usize, paper: &str| {
        let project = ProjectSpec {
            generations,
            ..ProjectSpec::villin_first_folded()
        };
        let outcome = simulate_controller(&project, &machine, &perf);
        println!(
            "{label}: {generations} generations → {:.0} h on 5,000 cores (paper: {paper})",
            outcome.wallclock_hours
        );
        outcome.wallclock_hours
    };
    let fold_h = report(
        "first folded structure",
        first_fold_gen.unwrap_or(3).max(1),
        "~30 h",
    );
    let blind_h = report("blind native-state prediction", blind_gens, "80-90 h");
    println!(
        "\nblind/first-fold cost ratio: {:.1}× (paper: ≈2.5×)",
        blind_h / fold_h
    );

    // The equivalent classical-MD throughput claim (§5): to match, one
    // simulation would have to exceed 50 µs/day.
    let total_ns = blind_gens as f64 * 225.0 * 50.0;
    let equivalent_us_per_day = total_ns / 1000.0 / (blind_h / 24.0);
    println!(
        "equivalent single-trajectory throughput: {equivalent_us_per_day:.0} µs/day \
         (paper: >50 µs/day, infeasible even on custom hardware)"
    );
}
