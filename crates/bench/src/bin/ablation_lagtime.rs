//! Ablation (§3.2) — lag-time sensitivity: *"a sensitivity analysis
//! showed that the system became Markovian for lag times of 20 ns or
//! greater"*, which fixed the paper's 25-ns lag.
//!
//! Re-counts transitions from the run's final state decomposition at a
//! range of lag times, rebuilds the reversible MLE transition matrix at
//! each, and prints the implied-timescale curves; where they flatten,
//! the model is Markovian.
//!
//! ```text
//! cargo run -p copernicus-bench --release --bin ablation_lagtime [-- --quick|--paper-scale]
//! ```

use copernicus_bench::{adaptive_run, save_json, Scale};
use msm::{implied_timescale, largest_connected_set, CountMatrix, TransitionMatrix};
use serde::Serialize;

#[derive(Serialize)]
struct LagPoint {
    lag_ns: f64,
    implied_timescales_ns: Vec<f64>,
    n_active: usize,
}

fn main() {
    let scale = Scale::from_env();
    let data = adaptive_run(scale);
    let n_states = data.center_rmsd_to_native.len();
    let frame_ns = data.frame_ns;

    println!("== ablation: implied timescales vs lag time ==");
    println!("(paper: Markovian for lags ≥ 20 ns; 25-ns lag used for Fig. 4)\n");
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>12}",
        "lag (ns)", "states", "t1 (ns)", "t2 (ns)", "t3 (ns)"
    );

    let mut points = Vec::new();
    for lag_frames in [1usize, 2, 5, 10, 15, 20, 30] {
        let usable = data.dtrajs.iter().any(|d| d.len() > lag_frames);
        if !usable {
            continue;
        }
        let counts = CountMatrix::from_dtrajs(&data.dtrajs, n_states, lag_frames);
        let active = largest_connected_set(&counts);
        if active.len() < 3 {
            continue;
        }
        let restricted = counts.restrict(&active);
        let t = TransitionMatrix::reversible_mle(&restricted, 1e-4, 10_000);
        let pi = t.stationary(1e-12, 200_000);
        let lag_ns = lag_frames as f64 * frame_ns;
        let its: Vec<f64> = t
            .eigenvalues_reversible(4, &pi)
            .into_iter()
            .skip(1)
            .filter_map(|l| implied_timescale(l, lag_ns))
            .collect();
        println!(
            "{:>10.1} {:>10} {:>12.0} {:>12.0} {:>12.0}",
            lag_ns,
            active.len(),
            its.first().copied().unwrap_or(f64::NAN),
            its.get(1).copied().unwrap_or(f64::NAN),
            its.get(2).copied().unwrap_or(f64::NAN),
        );
        points.push(LagPoint {
            lag_ns,
            implied_timescales_ns: its,
            n_active: active.len(),
        });
    }

    if points.len() >= 2 {
        let first = points.first().unwrap().implied_timescales_ns[0];
        let last = points.last().unwrap().implied_timescales_ns[0];
        println!(
            "\nslowest implied timescale: {first:.0} ns at the shortest lag → {last:.0} ns at the longest"
        );
        println!("the flattening of this curve with lag is the Markovianity test the paper ran");
    }
    let path = save_json("ablation_lagtime.json", &points);
    eprintln!("[bench] results written to {}", path.display());
}
