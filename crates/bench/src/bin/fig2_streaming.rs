//! Generational barrier vs. streaming adaptive loop: the fleet-utilisation
//! benchmark behind the streaming redesign.
//!
//! Runs the same villin adaptive-sampling project twice — once with
//! `AdaptiveMode::Generational` (cluster/respawn only after every
//! trajectory of a generation returns, §2.3 of the paper) and once with
//! `AdaptiveMode::Streaming` (incremental assignment + continuous
//! respawn) — over an identical worker pool, and measures what the
//! barrier costs: the fraction of fleet-seconds spent idle, the dispatch
//! latency, and the wall-clock time to the first folded conformation.
//!
//! Writes `BENCH_adaptive.json` at the repo root (the committed copy is
//! the CI regression baseline) and prints a comparison table.
//!
//! ```text
//! cargo run --release -p copernicus-bench --bin fig2_streaming [-- --quick] [--workers N]
//! ```

use copernicus_core::prelude::*;
use copernicus_core::{ExecContext, ExecError};
use copernicus_telemetry::{names, Json, Labels, Telemetry};
use mdsim::VillinModel;
use serde_json::Value;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Wraps an executor, accumulates the nanoseconds workers spend inside
/// `execute` (the "busy" half of the fleet-idle ledger), and emulates
/// the paper's mixed cloud/grid fleet (§2.1) by slowing each worker by
/// a deterministic per-worker factor of 1..=2×. A generational barrier
/// waits on the slowest straggler of every wave; the streaming loop
/// just refills fast workers more often.
struct PacedExecutor {
    inner: Arc<dyn CommandExecutor>,
    busy_ns: Arc<AtomicU64>,
}

impl CommandExecutor for PacedExecutor {
    fn executables(&self) -> Vec<ExecutableSpec> {
        self.inner.executables()
    }

    fn execute(&self, ctx: ExecContext<'_>) -> Result<Value, ExecError> {
        let slowdown = (ctx.worker.0 % 4) as f64 / 3.0;
        let t0 = Instant::now();
        let out = self.inner.execute(ctx);
        let compute = t0.elapsed();
        std::thread::sleep(compute.mul_f64(slowdown));
        self.busy_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        out
    }
}

struct ArmResult {
    mode: &'static str,
    makespan_secs: f64,
    busy_secs: f64,
    fleet_idle_fraction: f64,
    commands_completed: u64,
    dispatch_latency_mean_secs: Option<f64>,
    time_to_first_folded_secs: Option<f64>,
    first_folded_generation: Option<usize>,
    n_report_rows: usize,
    n_rebuilds: usize,
    min_rmsd_to_native: f64,
}

impl ArmResult {
    fn to_json(&self) -> Json {
        let mut o = Json::object();
        o.set("mode", self.mode);
        o.set("makespan_secs", self.makespan_secs);
        o.set("busy_secs", self.busy_secs);
        o.set("fleet_idle_fraction", self.fleet_idle_fraction);
        o.set("commands_completed", self.commands_completed);
        let opt = |v: Option<f64>| v.map_or(Json::Null, Json::from);
        o.set(
            "dispatch_latency_mean_secs",
            opt(self.dispatch_latency_mean_secs),
        );
        o.set(
            "time_to_first_folded_secs",
            opt(self.time_to_first_folded_secs),
        );
        o.set(
            "first_folded_generation",
            self.first_folded_generation
                .map_or(Json::Null, |g| Json::from(g as u64)),
        );
        o.set("n_report_rows", self.n_report_rows);
        o.set("n_rebuilds", self.n_rebuilds);
        o.set("min_rmsd_to_native", self.min_rmsd_to_native);
        o
    }
}

fn arm_config(mode: AdaptiveMode, quick: bool) -> MsmProjectConfig {
    MsmProjectConfig {
        mode,
        // 9 lineages over 4 workers: the generational barrier leaves a
        // ragged tail (4+4+1 dispatch waves) every generation, plus a
        // full fleet stall while the server clusters. Streaming refills
        // each slot the moment its segment lands.
        n_starts: 3,
        sims_per_start: 3,
        segment_ns: if quick { 10.0 } else { 60.0 },
        record_interval: 40,
        temperature: 0.5,
        n_clusters: 30,
        lag_frames: 2,
        respawn_fraction: 0.3,
        generations: if quick { 3 } else { 10 },
        chunks_per_segment: 1,
        seed: 2011,
        ..MsmProjectConfig::default()
    }
}

fn run_arm(mode: AdaptiveMode, quick: bool, n_workers: usize) -> ArmResult {
    let label = match mode {
        AdaptiveMode::Generational => "generational",
        AdaptiveMode::Streaming => "streaming",
    };
    let model = Arc::new(VillinModel::hp35());
    let busy_ns = Arc::new(AtomicU64::new(0));
    let registry = ExecutorRegistry::new()
        .with(Arc::new(PacedExecutor {
            inner: Arc::new(MdRunExecutor::new(model)),
            busy_ns: busy_ns.clone(),
        }))
        .with(Arc::new(PacedExecutor {
            inner: Arc::new(MsmBuildExecutor),
            busy_ns: busy_ns.clone(),
        }));
    let telemetry = Telemetry::new();
    let controller = MsmController::new(arm_config(mode, quick));
    let result = run_project(
        Box::new(controller),
        registry,
        RuntimeConfig {
            n_workers,
            telemetry: Some(telemetry.clone()),
            ..RuntimeConfig::default()
        },
    );
    let report = MsmProjectReport::from_value(&result.result).expect("MSM report");

    let makespan = result.wall.as_secs_f64();
    let busy = busy_ns.load(Ordering::Relaxed) as f64 / 1e9;
    let idle = (1.0 - busy / (n_workers as f64 * makespan)).clamp(0.0, 1.0);
    let dispatch = telemetry
        .registry()
        .find_histogram(names::DISPATCH_LATENCY, &Labels::new())
        .map(|h| h.mean());
    eprintln!(
        "  {label}: {:.2}s makespan, {:.1}% fleet idle, {} commands",
        makespan,
        100.0 * idle,
        result.commands_completed
    );
    ArmResult {
        mode: label,
        makespan_secs: makespan,
        busy_secs: busy,
        fleet_idle_fraction: idle,
        commands_completed: result.commands_completed,
        dispatch_latency_mean_secs: dispatch,
        time_to_first_folded_secs: report.first_folded_elapsed_secs,
        first_folded_generation: report.first_folded_generation,
        n_report_rows: report.generations.len(),
        n_rebuilds: report.n_rebuilds,
        min_rmsd_to_native: report.min_rmsd_to_native,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let n_workers = args
        .iter()
        .position(|a| a == "--workers")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    eprintln!(
        "fig2_streaming: generational vs streaming over {n_workers} workers{}",
        if quick { " (quick)" } else { "" }
    );

    let generational = run_arm(AdaptiveMode::Generational, quick, n_workers);
    let streaming = run_arm(AdaptiveMode::Streaming, quick, n_workers);

    println!("\n== generational barrier vs streaming loop ==");
    println!("metric                      generational    streaming");
    println!(
        "makespan (s)               {:>12.2} {:>12.2}",
        generational.makespan_secs, streaming.makespan_secs
    );
    println!(
        "fleet idle fraction        {:>12.3} {:>12.3}",
        generational.fleet_idle_fraction, streaming.fleet_idle_fraction
    );
    println!(
        "commands completed         {:>12} {:>12}",
        generational.commands_completed, streaming.commands_completed
    );
    let fmt_opt = |v: Option<f64>| v.map_or("n/a".into(), |s| format!("{s:.2}"));
    println!(
        "time to first folded (s)   {:>12} {:>12}",
        fmt_opt(generational.time_to_first_folded_secs),
        fmt_opt(streaming.time_to_first_folded_secs)
    );
    println!(
        "dispatch latency mean (ms) {:>12} {:>12}",
        fmt_opt(generational.dispatch_latency_mean_secs.map(|s| s * 1e3)),
        fmt_opt(streaming.dispatch_latency_mean_secs.map(|s| s * 1e3))
    );
    println!(
        "background rebuilds        {:>12} {:>12}",
        generational.n_rebuilds, streaming.n_rebuilds
    );
    println!(
        "min RMSD to native (Å)     {:>12.2} {:>12.2}",
        generational.min_rmsd_to_native, streaming.min_rmsd_to_native
    );
    if streaming.fleet_idle_fraction > 0.0 {
        println!(
            "\nidle-fraction ratio (generational / streaming): {:.1}×",
            generational.fleet_idle_fraction / streaming.fleet_idle_fraction
        );
    }

    let mut out = Json::object();
    out.set("bench", "fig2_streaming");
    out.set("n_workers", n_workers as u64);
    out.set("quick", quick);
    out.set("generational", generational.to_json());
    out.set("streaming", streaming.to_json());
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_adaptive.json");
    std::fs::write(&path, out.to_string_pretty() + "\n").expect("write BENCH_adaptive.json");
    println!("\nwrote {}", path.display());
}
