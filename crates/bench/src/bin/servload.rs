//! servload — server-load benchmark for the command pipeline.
//!
//! The paper's Figs. 6–9 quantify framework overhead per parallelism
//! level; this bench measures the reproduction's *server tier* the same
//! way the trace layer sees production runs: a real project server (plus
//! optional peered delegate servers, the §2.2 overlay) is loaded with
//! synthetic no-op commands, and every headline number — commands/sec,
//! dispatch p50/p99, sustained worker count — is derived from the
//! distributed trace spans themselves, not from side-channel counters.
//! With `--servers ≥ 2` the workers attach only to the delegates, so
//! every command crosses the peer-delegation path and the merged trace
//! must span multiple processes (validated here; CI runs this as the
//! overlay trace gate).
//!
//! Results land in machine-readable form at the repo root as
//! `BENCH_server.json`.
//!
//! ```text
//! cargo run -p copernicus-bench --release --bin servload \
//!     [-- --servers N --workers N --commands N --spin-us N --quick]
//! ```

use copernicus_core::prelude::*;
use copernicus_core::{
    connect_workers, serve_project, ExecContext, ExecError, OverlayConfig, RetryPolicy,
};
use copernicus_telemetry::trace::{self, MergedSpan};
use copernicus_telemetry::{span_names, Json, Telemetry};
use serde_json::json;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Executable that spins for a configurable handful of microseconds —
/// enough to model a real (if tiny) command without adding sleep noise
/// to the dispatch numbers the bench is actually measuring.
struct NoopExecutor;

impl CommandExecutor for NoopExecutor {
    fn executables(&self) -> Vec<ExecutableSpec> {
        vec![ExecutableSpec::new("noop", Platform::Smp, "1")]
    }

    fn execute(&self, ctx: ExecContext<'_>) -> Result<serde_json::Value, ExecError> {
        let spin_us = ctx
            .command
            .payload
            .get("spin_us")
            .and_then(|v| v.as_u64())
            .unwrap_or(0);
        let t0 = std::time::Instant::now();
        while (t0.elapsed().as_micros() as u64) < spin_us {
            std::hint::spin_loop();
        }
        Ok(json!({ "ok": true }))
    }
}

/// Spawns the whole synthetic backlog up front and finishes the project
/// when every command reaches a terminal event.
struct Load {
    specs: Vec<CommandSpec>,
    n: usize,
    seen: usize,
}

impl Controller for Load {
    fn name(&self) -> &str {
        "servload"
    }

    fn on_event(&mut self, _ctx: ControllerCtx<'_>, event: ControllerEvent<'_>) -> Vec<Action> {
        match event {
            ControllerEvent::ProjectStarted => {
                vec![Action::Spawn(std::mem::take(&mut self.specs))]
            }
            ControllerEvent::CommandFinished(_) | ControllerEvent::CommandDropped { .. } => {
                self.seen += 1;
                if self.seen == self.n {
                    vec![Action::FinishProject {
                        result: json!("servload done"),
                    }]
                } else {
                    vec![]
                }
            }
            ControllerEvent::WorkerFailed { .. } => vec![],
        }
    }
}

/// Delegate servers have no work of their own; their routers exist to
/// pull the owner's commands for their local workers.
struct Idle;

impl Controller for Idle {
    fn name(&self) -> &str {
        "servload-idle"
    }

    fn on_event(&mut self, _ctx: ControllerCtx<'_>, event: ControllerEvent<'_>) -> Vec<Action> {
        match event {
            ControllerEvent::ProjectStarted => vec![Action::FinishProject {
                result: json!("idle"),
            }],
            _ => vec![],
        }
    }
}

#[derive(Debug, Clone)]
struct QuantilesSecs {
    p50: f64,
    p99: f64,
    min: f64,
    max: f64,
    n: usize,
}

impl QuantilesSecs {
    fn to_json(&self) -> Json {
        let mut j = Json::object();
        j.set("p50", self.p50)
            .set("p99", self.p99)
            .set("min", self.min)
            .set("max", self.max)
            .set("n", self.n);
        j
    }
}

#[derive(Debug, Clone)]
struct BenchReport {
    benchmark: &'static str,
    servers: usize,
    workers_per_pool: usize,
    commands: usize,
    spin_us: u64,
    /// Wall time covered by the trace (first enqueue → last completion).
    wall_secs: f64,
    commands_completed: usize,
    commands_per_sec: f64,
    /// Queued-span durations: time a command waited before dispatch.
    dispatch_latency: QuantilesSecs,
    /// Exec-span durations: worker-side execution time.
    exec_time: QuantilesSecs,
    /// Distinct worker actors that executed at least one command.
    sustained_workers: usize,
    /// Peak number of exec spans overlapping in (merged wall) time.
    peak_concurrent_exec: usize,
    /// Delegate-side hold spans (commands that crossed the overlay).
    delegated_spans: usize,
    /// Traces whose span tree covers ≥ 2 processes.
    cross_process_traces: usize,
    processes: Vec<String>,
}

impl BenchReport {
    /// Serialized with the telemetry crate's dependency-free JSON type
    /// so the bench artifact's shape stays decoupled from serde.
    fn to_json(&self) -> Json {
        let mut j = Json::object();
        j.set("benchmark", self.benchmark)
            .set("servers", self.servers)
            .set("workers_per_pool", self.workers_per_pool)
            .set("commands", self.commands)
            .set("spin_us", self.spin_us)
            .set("wall_secs", self.wall_secs)
            .set("commands_completed", self.commands_completed)
            .set("commands_per_sec", self.commands_per_sec)
            .set("dispatch_latency", self.dispatch_latency.to_json())
            .set("exec_time", self.exec_time.to_json())
            .set("sustained_workers", self.sustained_workers)
            .set("peak_concurrent_exec", self.peak_concurrent_exec)
            .set("delegated_spans", self.delegated_spans)
            .set("cross_process_traces", self.cross_process_traces)
            .set(
                "processes",
                self.processes
                    .iter()
                    .map(|p| Json::from(p.as_str()))
                    .collect::<Vec<Json>>(),
            );
        j
    }
}

/// Exact nearest-rank quantiles over a span-duration sample.
fn quantiles(mut secs: Vec<f64>) -> QuantilesSecs {
    if secs.is_empty() {
        return QuantilesSecs {
            p50: 0.0,
            p99: 0.0,
            min: 0.0,
            max: 0.0,
            n: 0,
        };
    }
    secs.sort_by(|a, b| a.total_cmp(b));
    let rank = |q: f64| secs[((q * secs.len() as f64).ceil() as usize).clamp(1, secs.len()) - 1];
    QuantilesSecs {
        p50: rank(0.50),
        p99: rank(0.99),
        min: secs[0],
        max: secs[secs.len() - 1],
        n: secs.len(),
    }
}

/// Peak overlap of `[start, end)` intervals (event sweep).
fn peak_concurrency(intervals: &[(u64, u64)]) -> usize {
    let mut edges: Vec<(u64, i32)> = Vec::with_capacity(intervals.len() * 2);
    for &(s, e) in intervals {
        edges.push((s, 1));
        edges.push((e.max(s), -1));
    }
    // Ends before starts at the same instant: half-open intervals.
    edges.sort_by_key(|&(t, d)| (t, d));
    let (mut cur, mut peak) = (0i32, 0i32);
    for (_, d) in edges {
        cur += d;
        peak = peak.max(cur);
    }
    peak.max(0) as usize
}

fn worker_config(telemetry: Telemetry) -> WorkerConfig {
    WorkerConfig {
        heartbeat_interval: Duration::from_millis(50),
        poll_interval: Duration::from_millis(2),
        telemetry: Some(telemetry),
        ..WorkerConfig::default()
    }
}

fn output_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_server.json")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<u64>().ok())
    };
    let quick = args.iter().any(|a| a == "--quick");
    let n_servers = flag("--servers").unwrap_or(2).max(1) as usize;
    let n_workers = flag("--workers").unwrap_or(if quick { 2 } else { 4 }) as usize;
    let n_commands = flag("--commands").unwrap_or(if quick { 24 } else { 200 }) as usize;
    let spin_us = flag("--spin-us").unwrap_or(200);

    println!(
        "== servload: {n_commands} no-op commands, {n_servers} server(s), \
         {n_workers} workers/pool, {spin_us}µs spin =="
    );

    let key = AuthKey::from_passphrase("servload");
    let specs: Vec<CommandSpec> = (0..n_commands)
        .map(|_| CommandSpec::new("noop", Resources::new(1, 1), json!({ "spin_us": spin_us })))
        .collect();

    // Server 0 owns the backlog; servers 1..N are idle peers whose
    // routers delegate their workers to the owner.
    let owner_telemetry = Telemetry::for_process("server-0");
    let owner = serve_project(
        Box::new(Load {
            specs,
            n: n_commands,
            seen: 0,
        }),
        RuntimeConfig {
            n_workers: 0,
            server: ServerConfig::builder()
                .heartbeat_interval(Duration::from_millis(50))
                .watchdog_period(Duration::from_millis(10))
                .retry(RetryPolicy {
                    max_attempts: 5,
                    backoff_base: Duration::from_millis(5),
                    backoff_max: Duration::from_millis(40),
                })
                .bind("127.0.0.1:0", key)
                .name("server-0")
                .build()
                .expect("owner config must validate"),
            telemetry: Some(owner_telemetry.clone()),
            ..RuntimeConfig::default()
        },
    )
    .expect("owner server must bind");
    let owner_addr = owner.local_addr.to_string();

    let mut telemetries = vec![owner_telemetry];
    let mut delegates = Vec::new();
    for i in 1..n_servers {
        let name = format!("server-{i}");
        let telemetry = Telemetry::for_process(&name);
        let delegate = serve_project(
            Box::new(Idle),
            RuntimeConfig {
                n_workers: 0,
                server: ServerConfig::builder()
                    .heartbeat_interval(Duration::from_millis(50))
                    .watchdog_period(Duration::from_millis(10))
                    .bind("127.0.0.1:0", key)
                    .name(&name)
                    .peer(&owner_addr)
                    .build()
                    .expect("delegate config must validate"),
                overlay: OverlayConfig {
                    offer_patience: Duration::from_millis(200),
                    ..OverlayConfig::default()
                },
                telemetry: Some(telemetry.clone()),
                ..RuntimeConfig::default()
            },
        )
        .expect("delegate server must bind");
        telemetries.push(telemetry);
        delegates.push(delegate);
    }

    // With peers in play, the workers attach only to the delegates so
    // every command exercises the delegation path; a single-server run
    // attaches them to the owner directly.
    let registry = ExecutorRegistry::new().with(Arc::new(NoopExecutor));
    let mut pools = Vec::new();
    let attach_points: Vec<String> = if delegates.is_empty() {
        vec![owner_addr.clone()]
    } else {
        delegates.iter().map(|d| d.local_addr.to_string()).collect()
    };
    for (i, addr) in attach_points.iter().enumerate() {
        let telemetry = Telemetry::for_process(&format!("workers-{i}"));
        telemetries.push(telemetry.clone());
        pools.push(
            connect_workers(
                addr,
                key,
                n_workers,
                worker_config(telemetry),
                registry.clone(),
            )
            .expect("workers must connect"),
        );
    }

    let result = owner.join();
    for pool in pools {
        for w in pool {
            w.join();
        }
    }
    for d in delegates {
        let _ = d.join();
    }
    assert_eq!(
        result.commands_completed, n_commands as u64,
        "owner must complete the whole backlog: {result:?}"
    );

    // Every number below comes out of the merged trace, exactly as the
    // offline `copernicus trace merge` tooling would compute it.
    let logs: Vec<trace::ProcessLog> = telemetries
        .iter()
        .map(|t| {
            let (log, errors) = trace::parse_jsonl(&t.export_trace_jsonl());
            assert!(errors.is_empty(), "span log must parse cleanly: {errors:?}");
            log
        })
        .collect();
    let merged = trace::merge(&logs);
    let all_spans: Vec<&MergedSpan> = merged.traces.values().flatten().collect();

    let completed_roots: Vec<&&MergedSpan> = all_spans
        .iter()
        .filter(|s| {
            s.span.name == span_names::COMMAND
                && s.span
                    .attrs
                    .iter()
                    .any(|(k, v)| k == "disposition" && v == "completed")
        })
        .collect();
    let wall_ns = {
        let start = completed_roots.iter().map(|s| s.wall_start_ns).min();
        let end = completed_roots.iter().map(|s| s.wall_end_ns).max();
        match (start, end) {
            (Some(s), Some(e)) => e.saturating_sub(s).max(1),
            _ => 1,
        }
    };
    let durations_of = |name: &str| -> Vec<f64> {
        all_spans
            .iter()
            .filter(|s| s.span.name == name)
            .map(|s| s.span.duration_ns() as f64 / 1e9)
            .collect()
    };
    let exec_spans: Vec<&&MergedSpan> = all_spans
        .iter()
        .filter(|s| s.span.name == span_names::EXEC)
        .collect();
    let mut workers_seen: Vec<(&str, &str)> = exec_spans
        .iter()
        .map(|s| (s.process.as_str(), s.span.actor.as_str()))
        .collect();
    workers_seen.sort();
    workers_seen.dedup();
    let exec_intervals: Vec<(u64, u64)> = exec_spans
        .iter()
        .map(|s| (s.wall_start_ns, s.wall_end_ns))
        .collect();
    let cross_process_traces = merged
        .trace_ids()
        .iter()
        .filter(|&&t| merged.processes_of(t).len() >= 2)
        .count();

    let report = BenchReport {
        benchmark: "servload",
        servers: n_servers,
        workers_per_pool: n_workers,
        commands: n_commands,
        spin_us,
        wall_secs: wall_ns as f64 / 1e9,
        commands_completed: completed_roots.len(),
        commands_per_sec: completed_roots.len() as f64 / (wall_ns as f64 / 1e9),
        dispatch_latency: quantiles(durations_of(span_names::QUEUED)),
        exec_time: quantiles(durations_of(span_names::EXEC)),
        sustained_workers: workers_seen.len(),
        peak_concurrent_exec: peak_concurrency(&exec_intervals),
        delegated_spans: all_spans
            .iter()
            .filter(|s| s.span.name == span_names::DELEGATED)
            .count(),
        cross_process_traces,
        processes: merged.processes.clone(),
    };

    println!(
        "completed {}/{} commands in {:.3}s → {:.1} commands/sec",
        report.commands_completed, n_commands, report.wall_secs, report.commands_per_sec
    );
    println!(
        "dispatch latency: p50 {:.1}ms  p99 {:.1}ms  (n={})",
        report.dispatch_latency.p50 * 1e3,
        report.dispatch_latency.p99 * 1e3,
        report.dispatch_latency.n
    );
    println!(
        "exec time: p50 {:.2}ms  p99 {:.2}ms; {} sustained workers, peak {} concurrent",
        report.exec_time.p50 * 1e3,
        report.exec_time.p99 * 1e3,
        report.sustained_workers,
        report.peak_concurrent_exec
    );
    println!(
        "overlay: {} delegated span(s), {} cross-process trace(s), processes: {}",
        report.delegated_spans,
        report.cross_process_traces,
        report.processes.join(", ")
    );

    let path = output_path();
    std::fs::write(&path, report.to_json().to_string_pretty())
        .expect("cannot write BENCH_server.json");
    println!("wrote {}", path.display());

    // Gate: the spans must actually account for the load.
    let mut failures = Vec::new();
    if report.commands_completed != n_commands {
        failures.push(format!(
            "trace recorded {}/{} completed command roots",
            report.commands_completed, n_commands
        ));
    }
    if report.dispatch_latency.n < n_commands {
        failures.push(format!(
            "expected ≥{} queued spans, saw {}",
            n_commands, report.dispatch_latency.n
        ));
    }
    if report.sustained_workers == 0 {
        failures.push("no exec spans — workers left no trace".to_string());
    }
    if n_servers >= 2 && report.cross_process_traces < n_commands {
        failures.push(format!(
            "expected every trace to span ≥2 processes with {} servers, got {}/{}",
            n_servers, report.cross_process_traces, n_commands
        ));
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("error: {f}");
        }
        std::process::exit(1);
    }
}
