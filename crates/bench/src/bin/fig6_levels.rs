//! Fig. 6 — multi-level parallelism: the bandwidth and latency at each
//! tier of the hierarchy (SIMD kernels → threads → MPI ranks → workers →
//! SSL overlay), with the average and peak figures the paper annotates.
//!
//! The thread tier is *measured* (serial vs rayon non-bonded kernel on an
//! LJ fluid); the rank and overlay tiers come from the calibrated models
//! the performance figures use.
//!
//! ```text
//! cargo run -p copernicus-bench --release --bin fig6_levels
//! ```

use clustersim::{simulate_controller, MachineSpec, PerfModel, ProjectSpec};
use mdsim::{lj_fluid, LjFluidSpec};
use netsim::{HeartbeatConfig, Link, MessageKind, NetSim};
use std::time::Instant;

fn main() {
    println!("== Fig. 6: the parallelism hierarchy ==\n");

    // --- Thread tier: measured speed of the non-bonded kernel ----------
    let measure = |threaded: bool| -> f64 {
        let mut sim = lj_fluid(
            LjFluidSpec {
                n_particles: 864,
                threaded,
                ..LjFluidSpec::default()
            },
            1,
        );
        sim.run(20); // warm up, build neighbour lists
        let t0 = Instant::now();
        sim.run(150);
        150.0 / t0.elapsed().as_secs_f64()
    };
    let serial = measure(false);
    let threaded = measure(true);
    let n_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("SIMD/thread tier (864-atom LJ fluid, shared memory):");
    println!("  serial kernel:   {serial:>8.0} steps/s");
    println!(
        "  rayon kernel:    {threaded:>8.0} steps/s on {n_threads} thread(s) ({:.2}x)",
        threaded / serial
    );
    println!("  latency: <100 ns (paper), bandwidth ~25 GB/s peak\n");

    // --- Rank (MPI) tier: the calibrated strong-scaling model ----------
    let perf = PerfModel::villin();
    println!("rank (MPI/Infiniband) tier — villin 9,864 atoms:");
    println!("  {:>6} {:>12} {:>12}", "cores", "ns/day", "efficiency");
    for k in [1usize, 12, 24, 48, 96] {
        println!(
            "  {:>6} {:>12.0} {:>12.2}",
            k,
            perf.speed_ns_per_day(k),
            perf.efficiency(k)
        );
    }
    println!("  per-simulation traffic: 0.5-2.9 GB/s for 24-96 cores (paper), latency 1-10 µs\n");

    // --- Worker/ensemble tier -------------------------------------------
    let project = ProjectSpec::villin_first_folded();
    let outcome = simulate_controller(&project, &MachineSpec::new(5_000, 24), &perf);
    println!("ensemble (worker ↔ server) tier:");
    println!(
        "  {} commands over {:.0} h → average {:.3} MB/s trajectory traffic",
        outcome.commands_completed,
        outcome.wallclock_hours,
        outcome.ensemble_bandwidth_mb_per_s()
    );
    println!("  paper: average 0.04 MB/s, peak 100 MB/s, latency ~10 ms\n");

    // --- Overlay (SSL) tier: heartbeat + relay traffic ------------------
    let (overlay, projects, _, workers) = netsim::fig1_topology(8);
    let mut sim = NetSim::new(overlay).with_heartbeat_config(HeartbeatConfig::default());
    for cluster in &workers {
        for &w in cluster {
            let relay = sim.overlay.route(w, projects[0]).unwrap()[1];
            sim.start_heartbeats(0.0, w, relay);
        }
    }
    sim.run_until(3600.0);
    println!("overlay (SSL) tier:");
    println!(
        "  heartbeat traffic for 24 workers: {:.1} B/s, never forwarded past the closest server",
        sim.average_bandwidth(MessageKind::Heartbeat, 3600.0)
    );
    println!(
        "  per-level carried bytes: relay↔worker {} B, relay↔relay {} B, relay↔server {} B",
        sim.level_traffic("relay-worker"),
        sim.level_traffic("relay-relay"),
        sim.level_traffic("relay-server"),
    );
    println!(
        "  WAN hop (Stockholm ↔ Palo Alto): {:.0} ms latency, {:.0} MB/s",
        Link::wan().latency * 1e3,
        Link::wan().bandwidth / 1e6
    );
    println!("  paper: >100 ms latency between continents");
}
