//! Fig. 3 — superposition of the first observed folded structure with
//! the native structure (paper: 0.7 Å Cα RMSD).
//!
//! We cannot render a cartoon, so the binary reports the best-frame RMSD,
//! per-residue deviations after optimal superposition, and writes both
//! structures as a PDB-style file for visual inspection.
//!
//! ```text
//! cargo run -p copernicus-bench --release --bin fig3_folded_structure [-- --quick|--paper-scale]
//! ```

use copernicus_bench::{adaptive_run, results_dir, Scale};
use msm::{rmsd_raw, superpose};
use std::fmt::Write as _;

fn main() {
    let scale = Scale::from_env();
    let data = adaptive_run(scale);

    let aligned = superpose(&data.native, &data.best_frame);
    println!("== Fig. 3: best observed structure vs native ==");
    println!(
        "Cα RMSD after optimal superposition: {:.2} Å (paper: 0.7 Å; CG native basin ≈ 1 Å)",
        data.best_rmsd
    );
    assert!(
        (rmsd_raw(&data.native, &aligned) - data.best_rmsd).abs() < 0.05,
        "superposition must reproduce the reported RMSD"
    );

    println!("\nper-residue deviation after superposition (Å):");
    let devs: Vec<f64> = data
        .native
        .iter()
        .zip(&aligned)
        .map(|(a, b)| a.dist(*b))
        .collect();
    for (chunk_start, chunk) in devs.chunks(7).enumerate() {
        let row: Vec<String> = chunk
            .iter()
            .enumerate()
            .map(|(k, d)| format!("{:>2}:{:>5.2}", chunk_start * 7 + k, d))
            .collect();
        println!("  {}", row.join("  "));
    }
    let worst = devs
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap();
    println!("largest deviation: residue {} at {:.2} Å", worst.0, worst.1);

    // PDB-style dump: chain A = native, chain B = superposed best frame.
    let mut pdb = String::new();
    for (chain, coords) in [("A", &data.native), ("B", &aligned)] {
        for (i, p) in coords.iter().enumerate() {
            writeln!(
                pdb,
                "ATOM  {:>5}  CA  ALA {}{:>4}    {:>8.3}{:>8.3}{:>8.3}  1.00  0.00           C",
                i + 1,
                chain,
                i + 1,
                p.x,
                p.y,
                p.z
            )
            .unwrap();
        }
        pdb.push_str("TER\n");
    }
    let path = results_dir().join("fig3_superposition.pdb");
    std::fs::write(&path, pdb).expect("write pdb");
    println!("\nsuperposed structures written to {} (chain A native, chain B folded)", path.display());
}
