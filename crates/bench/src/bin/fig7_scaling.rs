//! Fig. 7 — scaling efficiency of the villin folding run vs total core
//! count, one line per cores-per-simulation (1, 12, 24, 48, 96).
//!
//! Efficiency is the paper's `t_res(1) / (N · t_res(N))` with
//! t_res(1) = 1.1·10⁵ hours; the curves stay high until the 225-command
//! ensemble runs out of parallelism, then collapse ∝ 1/N — with larger
//! per-simulation core counts extending the scaling range (53 % at
//! 20,000 cores for 96-core simulations).
//!
//! ```text
//! cargo run -p copernicus-bench --release --bin fig7_scaling
//! ```

use clustersim::{log_core_grid, reference_tres1_hours, scaling_sweep, PerfModel, ProjectSpec};
use copernicus_bench::save_json;

fn main() {
    let project = ProjectSpec::villin_first_folded();
    let perf = PerfModel::villin();
    let tres1 = reference_tres1_hours(&project, &perf);
    println!("== Fig. 7: scaling efficiency vs total cores ==");
    println!("t_res(1) = {tres1:.3e} h (paper: 1.1e5)\n");

    let k_values = [1usize, 12, 24, 48, 96];
    let grid = log_core_grid(1, 200_000, 4);
    let points = scaling_sweep(&project, &perf, &grid, &k_values);

    // One column block per k line, like the figure's five curves.
    for &k in &k_values {
        println!("-- {k} core(s) per simulation --");
        println!("{:>10} {:>12}", "cores", "efficiency");
        for p in points.iter().filter(|p| p.cores_per_sim == k) {
            println!("{:>10} {:>12.3}", p.total_cores, p.efficiency);
        }
        println!();
    }

    // Headline checks at the paper's exact core counts.
    use clustersim::{simulate_controller, MachineSpec};
    let eff_exact = |k: usize, n: usize| {
        simulate_controller(&project, &MachineSpec::new(n, k), &perf).efficiency(tres1, n)
    };
    println!("== anchors (exact core counts) ==");
    println!(
        "96-core sims at 20,000 cores: {:.0}% efficiency (paper: 53%)",
        100.0 * eff_exact(96, 20_000)
    );
    println!(
        "1-core sims at the 225-command limit: {:.0}% efficiency",
        100.0 * eff_exact(1, 225)
    );
    println!(
        "at 100k cores: k=1 collapses to {:.1}% while k=96 holds {:.0}%",
        100.0 * eff_exact(1, 100_000),
        100.0 * eff_exact(96, 100_000)
    );
    let path = save_json("fig7_scaling.json", &points);
    eprintln!("[bench] series written to {}", path.display());
}
