//! Fig. 9 — average ensemble-level bandwidth vs total core count, one
//! line per cores-per-simulation.
//!
//! More concurrent workers finish segments more often, so ensemble
//! traffic rises with core count — but stays in the 0.001–1 MB/s range
//! even at 10⁵ cores, which is the point of the hierarchical design: the
//! top level needs practically no interconnect.
//!
//! ```text
//! cargo run -p copernicus-bench --release --bin fig9_bandwidth
//! ```

use clustersim::{log_core_grid, scaling_sweep, PerfModel, ProjectSpec};
use copernicus_bench::save_json;

fn main() {
    let project = ProjectSpec::villin_first_folded();
    let perf = PerfModel::villin();
    println!("== Fig. 9: ensemble-level bandwidth vs total cores ==\n");

    let k_values = [12usize, 24, 48, 96];
    let grid = log_core_grid(12, 200_000, 4);
    let points = scaling_sweep(&project, &perf, &grid, &k_values);

    for &k in &k_values {
        println!("-- {k} cores per simulation --");
        println!("{:>10} {:>14}", "cores", "MB/s");
        for p in points.iter().filter(|p| p.cores_per_sim == k) {
            println!("{:>10} {:>14.4}", p.total_cores, p.ensemble_bandwidth_mb_per_s);
        }
        println!();
    }

    let max_bw = points
        .iter()
        .map(|p| p.ensemble_bandwidth_mb_per_s)
        .fold(0.0, f64::max);
    println!("== checks ==");
    println!("peak average bandwidth across the sweep: {max_bw:.3} MB/s");
    assert!(
        max_bw < 10.0,
        "ensemble traffic must stay tiny; the hierarchy is the point"
    );
    // Bandwidth grows with cores within each line (until the command
    // limit flattens it).
    for &k in &k_values {
        let line: Vec<f64> = points
            .iter()
            .filter(|p| p.cores_per_sim == k)
            .map(|p| p.ensemble_bandwidth_mb_per_s)
            .collect();
        assert!(
            line.last().unwrap() >= line.first().unwrap(),
            "bandwidth should rise along the k={k} line"
        );
    }
    println!("paper: 0.001-1 MB/s over the same range — shape reproduced");
    let path = save_json("fig9_bandwidth.json", &points);
    eprintln!("[bench] series written to {}", path.display());
}
