//! Fig. 5 — time evolution of the ensemble-average Cα RMSD from native
//! with standard-deviation error bars.
//!
//! ```text
//! cargo run -p copernicus-bench --release --bin fig5_ensemble_rmsd [-- --quick|--paper-scale]
//! ```

use copernicus_bench::{adaptive_run, save_json, Scale};
use serde::Serialize;

#[derive(Serialize)]
struct Fig5Series {
    times_ns: Vec<f64>,
    mean_rmsd: Vec<f64>,
    std_dev: Vec<f64>,
    n_samples: Vec<usize>,
}

fn main() {
    let scale = Scale::from_env();
    let data = adaptive_run(scale);

    // Aggregate per-frame-index across the trajectory ensemble (the
    // series are pre-computed per trajectory in the cached run).
    let max_len = data
        .rmsd_series
        .iter()
        .map(|s| s.rmsd.len())
        .max()
        .unwrap_or(0);
    let longest = data
        .rmsd_series
        .iter()
        .max_by_key(|s| s.rmsd.len())
        .expect("non-empty run");

    let mut out = Fig5Series {
        times_ns: Vec::new(),
        mean_rmsd: Vec::new(),
        std_dev: Vec::new(),
        n_samples: Vec::new(),
    };
    for k in 0..max_len {
        let vals: Vec<f64> = data
            .rmsd_series
            .iter()
            .filter_map(|s| s.rmsd.get(k).copied())
            .collect();
        let n = vals.len();
        let mean = vals.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        out.times_ns.push(longest.times_ns[k]);
        out.mean_rmsd.push(mean);
        out.std_dev.push(var.sqrt());
        out.n_samples.push(n);
    }

    println!("== Fig. 5: ensemble-average RMSD from native vs time ==");
    println!("(paper: average declines from the unfolded plateau as the ensemble folds)\n");
    println!(
        "{:>12} {:>10} {:>8} {:>6}",
        "time (ns)", "⟨RMSD⟩(Å)", "σ(Å)", "n"
    );
    let stride = (max_len / 25).max(1);
    for k in (0..max_len).step_by(stride) {
        println!(
            "{:>12.1} {:>10.2} {:>8.2} {:>6}",
            out.times_ns[k], out.mean_rmsd[k], out.std_dev[k], out.n_samples[k]
        );
    }

    let first = out.mean_rmsd.first().copied().unwrap_or(f64::NAN);
    let last = out.mean_rmsd.last().copied().unwrap_or(f64::NAN);
    println!("\nensemble mean: {first:.2} Å at t=0 → {last:.2} Å at the end");
    assert!(first > last, "the ensemble should move toward native on average");
    let path = save_json("fig5_ensemble_rmsd.json", &out);
    eprintln!("[bench] series written to {}", path.display());
}
