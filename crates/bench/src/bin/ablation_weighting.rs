//! Ablation (§3.2) — even vs adaptive weighting: *"adaptive weighting
//! optimizes convergence of the kinetic properties of the model, which
//! can boost sampling efficiency twofold compared to even weighting."*
//!
//! Runs the same sampling budget under both policies and compares
//! exploration (active states, connectivity) and convergence proxies
//! (min RMSD, folded-state discovery).
//!
//! ```text
//! cargo run -p copernicus-bench --release --bin ablation_weighting [-- --quick]
//! ```

use copernicus_bench::{save_json, Scale};
use copernicus_core::plugins::msm::TrajectoryArchive;
use copernicus_core::prelude::*;
use copernicus_core::MdRunExecutor;
use mdsim::VillinModel;
use msm::Weighting;
use parking_lot::Mutex;
use serde::Serialize;
use std::sync::Arc;

#[derive(Serialize)]
struct ArmResult {
    weighting: String,
    seed: u64,
    active_states: usize,
    min_rmsd: f64,
    folded_observed: bool,
    folded_population: f64,
}

fn main() {
    let scale = Scale::from_env();
    let mut base = scale.msm_config();
    if scale == Scale::Default {
        // Keep the ablation affordable: half the default generations.
        base.generations = 6;
    }
    let model = Arc::new(VillinModel::hp35());
    let registry = ExecutorRegistry::new().with(Arc::new(MdRunExecutor::new(model.clone())));
    let seeds = [2011u64, 4022, 6033];

    let mut results: Vec<ArmResult> = Vec::new();
    for weighting in [Weighting::Even, Weighting::Adaptive] {
        for &seed in &seeds {
            let config = MsmProjectConfig {
                weighting,
                seed,
                ..base.clone()
            };
            let archive: TrajectoryArchive = Arc::new(Mutex::new(Vec::new()));
            let controller = MsmController::new(config).with_archive(archive.clone());
            let result = run_project(
                Box::new(controller),
                registry.clone(),
                RuntimeConfig::default(),
            );
            let report = MsmProjectReport::from_value(&result.result).unwrap();
            let last = report.generations.last().unwrap();
            results.push(ArmResult {
                weighting: format!("{weighting:?}"),
                seed,
                active_states: last.n_active_states,
                min_rmsd: report.min_rmsd_to_native,
                folded_observed: report.first_folded_generation.is_some(),
                folded_population: last.folded_equilibrium_population,
            });
            eprintln!(
                "[ablation] {weighting:?} seed {seed}: min RMSD {:.2} Å, {} active states",
                report.min_rmsd_to_native, last.n_active_states
            );
        }
    }

    println!("== ablation: even vs adaptive spawn weighting ==\n");
    println!(
        "{:>9} {:>6} {:>14} {:>12} {:>8} {:>12}",
        "policy", "seed", "active states", "min RMSD(Å)", "folded?", "folded pop"
    );
    for r in &results {
        println!(
            "{:>9} {:>6} {:>14} {:>12.2} {:>8} {:>12.3}",
            r.weighting,
            r.seed,
            r.active_states,
            r.min_rmsd,
            r.folded_observed,
            r.folded_population
        );
    }

    let mean = |w: &str, f: &dyn Fn(&ArmResult) -> f64| -> f64 {
        let xs: Vec<f64> = results.iter().filter(|r| r.weighting == w).map(f).collect();
        xs.iter().sum::<f64>() / xs.len() as f64
    };
    println!("\nmeans over {} seeds:", seeds.len());
    for w in ["Even", "Adaptive"] {
        println!(
            "  {w:>8}: {:.1} active states, min RMSD {:.2} Å, fold rate {:.2}",
            mean(w, &|r| r.active_states as f64),
            mean(w, &|r| r.min_rmsd),
            mean(w, &|r| r.folded_observed as u8 as f64),
        );
    }
    println!("\npaper: adaptive weighting boosts sampling efficiency up to 2× once the");
    println!("state decomposition is stable; even weighting is preferable very early.");
    let path = save_json("ablation_weighting.json", &results);
    eprintln!("[bench] results written to {}", path.display());
}
