//! Non-bonded pair-loop micro-benchmark: the "SIMD kernel / threads" tier
//! of the paper's Fig. 6 hierarchy, measured.
//!
//! Runs the charged LJ / reaction-field fluid at roughly villin scale
//! (≈1k and ≈10k particles) through three kernel variants — the pre-packing
//! reference kernel (per-pair topology lookups), the packed serial kernel,
//! and the packed rayon kernel — and reports steps/sec and pairs/sec for
//! each. Before timing anything it cross-checks the kernels against each
//! other on one configuration and exits non-zero on divergence, so CI can
//! use it as a correctness smoke test.
//!
//! Results land in machine-readable form at the repo root as
//! `BENCH_nonbonded.json` (the perf trajectory future PRs are held to).
//!
//! ```text
//! cargo run -p copernicus-bench --release --bin pairloop [-- --quick]
//! ```

use copernicus_bench::Scale;
use mdsim::forces::{ForceTerm, NonbondedForce};
use mdsim::model::{lj_fluid, LjFluidSpec};
use mdsim::pbc::SimBox;
use mdsim::rng::rng_from_seed;
use mdsim::topology::{LjParams, Particle, Topology};
use mdsim::vec3::{v3, Vec3};
use rand::Rng;
use serde::Serialize;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// One (system size × kernel variant) measurement.
#[derive(Debug, Clone, Serialize)]
struct KernelResult {
    n_particles: usize,
    /// "reference" (pre-packing, per-pair lookups) or "packed".
    kernel: &'static str,
    threaded: bool,
    n_pairs: usize,
    steps_per_sec: f64,
    pairs_per_sec: f64,
    packed_bytes: u64,
    /// Steps/sec relative to the reference serial kernel at this size.
    speedup_vs_reference: f64,
}

/// Cross-kernel agreement on a single configuration (gate for CI).
#[derive(Debug, Clone, Serialize)]
struct Agreement {
    n_particles: usize,
    max_force_dev_packed_serial: f64,
    max_force_dev_packed_parallel: f64,
    energy_rel_dev_packed_serial: f64,
    energy_rel_dev_packed_parallel: f64,
    tolerance: f64,
    ok: bool,
}

#[derive(Debug, Clone, Serialize)]
struct BenchReport {
    benchmark: &'static str,
    scale: &'static str,
    threads: usize,
    results: Vec<KernelResult>,
    agreement: Agreement,
}

fn spec_for(n: usize, threaded: bool, use_reference: bool) -> LjFluidSpec {
    LjFluidSpec {
        n_particles: n,
        density: 0.8,
        temperature: 1.0,
        cutoff: 2.5,
        skin: 0.3,
        charge: 0.2,
        threaded,
        // Always engage the rayon path when threading is requested, so
        // "threaded" means what it says even at small sizes.
        parallel_threshold: if threaded { 1 } else { usize::MAX },
        use_reference,
        ..LjFluidSpec::default()
    }
}

/// Measure one variant: steps/sec over `steps` timed steps (after
/// `warmup` untimed ones) plus pairs/sec from the kernel counters. The
/// timed section uses the force-only fast path (`run_fast`) — the stepping
/// mode a production sampling run would use — so the numbers include the
/// energy-skipping win on top of the kernel itself.
fn measure(n: usize, threaded: bool, use_reference: bool, warmup: u64, steps: u64) -> KernelResult {
    let mut sim = lj_fluid(spec_for(n, threaded, use_reference), 42);
    sim.run(warmup);
    let pairs_before = sim.kernel_stats().pairs_evaluated;
    let t0 = Instant::now();
    sim.run_fast(steps);
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    let stats = sim.kernel_stats();
    KernelResult {
        n_particles: n,
        kernel: if use_reference { "reference" } else { "packed" },
        threaded,
        n_pairs: (stats.pairs_evaluated.saturating_sub(pairs_before) / steps.max(1)) as usize,
        steps_per_sec: steps as f64 / secs,
        pairs_per_sec: stats.pairs_evaluated.saturating_sub(pairs_before) as f64 / secs,
        packed_bytes: stats.packed_bytes,
        speedup_vs_reference: 1.0, // filled in by the caller
    }
}

/// Single-point cross-kernel check: reference vs packed serial vs packed
/// parallel on one jittered-lattice charged configuration. (A lattice
/// rather than uniform random placement: random points include near-contact
/// pairs whose enormous forces turn machine-epsilon rounding into absolute
/// deviations above any sane tolerance.)
fn check_agreement(n: usize) -> Agreement {
    let l = (n as f64 / 0.8).cbrt();
    let mut top = Topology::new();
    for k in 0..n {
        let q = if k % 2 == 0 { 0.2 } else { -0.2 };
        top.add_particle(Particle::new(1.0, q, LjParams::new(1.0, 1.0)));
    }
    let top = Arc::new(top);
    let bx = SimBox::cubic(l);
    let mut rng = rng_from_seed(7);
    let per_side = (n as f64).cbrt().ceil() as usize;
    let spacing = l / per_side as f64;
    let jitter = 0.25 * spacing;
    let pos: Vec<Vec3> = (0..n)
        .map(|k| {
            let (ix, iy, iz) = (
                k % per_side,
                (k / per_side) % per_side,
                k / (per_side * per_side),
            );
            v3(
                (ix as f64 + 0.5) * spacing + jitter * (2.0 * rng.random::<f64>() - 1.0),
                (iy as f64 + 0.5) * spacing + jitter * (2.0 * rng.random::<f64>() - 1.0),
                (iz as f64 + 0.5) * spacing + jitter * (2.0 * rng.random::<f64>() - 1.0),
            )
        })
        .collect();

    let eval = |use_reference: bool, threaded: bool| -> (f64, Vec<Vec3>) {
        let mut nb = NonbondedForce::new(top.clone(), 2.5, 0.3, 78.0);
        nb.set_reference_kernel(use_reference);
        nb.set_threading(threaded);
        nb.set_parallel_threshold(1);
        let mut f = vec![Vec3::ZERO; n];
        let e = nb.compute(&pos, &bx, &mut f);
        (e, f)
    };

    let (e_ref, f_ref) = eval(true, false);
    let (e_ser, f_ser) = eval(false, false);
    let (e_par, f_par) = eval(false, true);

    let max_dev = |f: &[Vec3]| -> f64 {
        f.iter()
            .zip(&f_ref)
            .map(|(a, b)| (*a - *b).norm())
            .fold(0.0, f64::max)
    };
    let e_scale = e_ref.abs().max(1.0);
    let tolerance = 1e-8;
    let a = Agreement {
        n_particles: n,
        max_force_dev_packed_serial: max_dev(&f_ser),
        max_force_dev_packed_parallel: max_dev(&f_par),
        energy_rel_dev_packed_serial: (e_ser - e_ref).abs() / e_scale,
        energy_rel_dev_packed_parallel: (e_par - e_ref).abs() / e_scale,
        tolerance,
        ok: false,
    };
    Agreement {
        ok: a.max_force_dev_packed_serial < tolerance
            && a.max_force_dev_packed_parallel < tolerance
            && a.energy_rel_dev_packed_serial < tolerance
            && a.energy_rel_dev_packed_parallel < tolerance,
        ..a
    }
}

/// The benchmark artifact lives at the repo root, next to ROADMAP.md.
fn output_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_nonbonded.json")
}

fn main() {
    let scale = Scale::from_env();
    let quick = scale == Scale::Quick;
    // Quick: seconds, for CI smoke. Default: the villin-scale sizes the
    // acceptance numbers quote.
    let (sizes, warmup, steps): (&[usize], u64, u64) = if quick {
        (&[256], 10, 40)
    } else {
        (&[1_000, 10_000], 20, 200)
    };

    println!("== non-bonded pair loop ({} scale) ==\n", scale.label());

    let agreement = check_agreement(if quick { 256 } else { 1_000 });
    println!(
        "cross-kernel agreement @ n={}: packed-serial dev {:.2e}, packed-parallel dev {:.2e} (tol {:.0e}) → {}",
        agreement.n_particles,
        agreement.max_force_dev_packed_serial,
        agreement.max_force_dev_packed_parallel,
        agreement.tolerance,
        if agreement.ok { "OK" } else { "DIVERGED" }
    );

    let mut results = Vec::new();
    for &n in sizes {
        let reference = measure(n, false, true, warmup, steps);
        let base = reference.steps_per_sec;
        let rel = |r: KernelResult| KernelResult {
            speedup_vs_reference: r.steps_per_sec / base,
            ..r
        };
        let packed_serial = rel(measure(n, false, false, warmup, steps));
        let packed_parallel = rel(measure(n, true, false, warmup, steps));

        println!("\nn = {n} ({} pairs):", packed_serial.n_pairs);
        for r in [&reference, &packed_serial, &packed_parallel] {
            println!(
                "  {:<18} {:>10.1} steps/s  {:>12.3e} pairs/s  ({:.2}x)",
                format!(
                    "{}{}",
                    r.kernel,
                    if r.threaded { "+threads" } else { " serial" }
                ),
                r.steps_per_sec,
                r.pairs_per_sec,
                r.speedup_vs_reference
            );
        }
        results.push(rel(reference));
        results.push(packed_serial);
        results.push(packed_parallel);
    }

    let report = BenchReport {
        benchmark: "nonbonded_pairloop",
        scale: scale.label(),
        threads: std::thread::available_parallelism().map_or(1, |t| t.get()),
        results,
        agreement,
    };
    let path = output_path();
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&report).expect("report serializes"),
    )
    .expect("cannot write BENCH_nonbonded.json");
    println!("\nwrote {}", path.display());

    if !report.agreement.ok {
        eprintln!("error: kernel variants diverged beyond tolerance");
        std::process::exit(1);
    }
}
