//! Fig. 8 — total time to solution for folding villin vs total core
//! count, one line per cores-per-simulation.
//!
//! While commands remain in the queue, adding simulations is the
//! efficient way to use cores; once the 225-command ensemble saturates,
//! only decomposing individual simulations further reduces the
//! time-to-solution (paper: ≈10 h at 20,000 cores with 96-core
//! simulations; the reported project ran at ~5,000 cores).
//!
//! ```text
//! cargo run -p copernicus-bench --release --bin fig8_time_to_solution
//! ```

use clustersim::{log_core_grid, scaling_sweep, PerfModel, ProjectSpec};
use copernicus_bench::save_json;

fn main() {
    let project = ProjectSpec::villin_first_folded();
    let perf = PerfModel::villin();
    println!("== Fig. 8: time to solution vs total cores ==\n");

    let k_values = [1usize, 12, 24, 48, 96];
    let grid = log_core_grid(1, 200_000, 4);
    let points = scaling_sweep(&project, &perf, &grid, &k_values);

    for &k in &k_values {
        println!("-- {k} core(s) per simulation --");
        println!("{:>10} {:>14}", "cores", "hours");
        for p in points.iter().filter(|p| p.cores_per_sim == k) {
            println!("{:>10} {:>14.2}", p.total_cores, p.wallclock_hours);
        }
        println!();
    }

    // The floors: each k line stops improving when workers ≥ commands.
    println!("== floors (time stops decreasing once commands run out) ==");
    for &k in &k_values {
        let floor = points
            .iter()
            .filter(|p| p.cores_per_sim == k)
            .map(|p| p.wallclock_hours)
            .fold(f64::INFINITY, f64::min);
        println!(
            "k = {k:>2}: floor {floor:>9.2} h at ≥ {} cores",
            225 * k
        );
    }
    use clustersim::{simulate_controller, MachineSpec};
    let at_20k = simulate_controller(&project, &MachineSpec::new(20_000, 96), &perf);
    println!(
        "\nexactly 20,000 cores / 96-core sims: {:.1} h (paper: just over 10 h)",
        at_20k.wallclock_hours
    );
    let at_5k = simulate_controller(&project, &MachineSpec::new(5_000, 24), &perf);
    println!(
        "the reported project scale (5,000 cores, 24-core sims): {:.1} h (paper: ~30 h)",
        at_5k.wallclock_hours
    );
    let path = save_json("fig8_time_to_solution.json", &points);
    eprintln!("[bench] series written to {}", path.display());
}
