//! Fig. 2 — per-generation evolution of villin trajectories under
//! adaptive sampling: RMSD-to-native of a selection of trajectories vs
//! generation, the per-generation minimum, and the blind-prediction
//! quality.
//!
//! ```text
//! cargo run -p copernicus-bench --release --bin fig2_generations [-- --quick|--paper-scale]
//! ```

use copernicus_bench::{adaptive_run, save_json, Scale};

fn main() {
    let scale = Scale::from_env();
    let data = adaptive_run(scale);

    println!("== Fig. 2: per-generation adaptive-sampling progress ==");
    println!("(paper: first folded structure 0.6-0.7 Å in generation 3;");
    println!(" blind prediction 1.4 Å after 8 generations)\n");
    println!(
        "{:>4} {:>7} {:>8} {:>12} {:>14} {:>11}",
        "gen", "trajs", "states", "min-RMSD(Å)", "blind-pred(Å)", "folded-pop"
    );
    for g in &data.report.generations {
        println!(
            "{:>4} {:>7} {:>8} {:>12.2} {:>14.2} {:>11.3}",
            g.generation,
            g.n_trajectories_total,
            g.n_active_states,
            g.min_rmsd_to_native,
            g.predicted_native_rmsd,
            g.folded_equilibrium_population
        );
    }

    // A selection of trajectories, Fig. 2 style: the last RMSD of the
    // three longest-lived lineages plus the best trajectory.
    println!("\n== selected trajectory endpoints (Fig. 2's black/orange/red traces) ==");
    let mut order: Vec<usize> = (0..data.rmsd_series.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(data.rmsd_series[i].times_ns.len()));
    for &i in order.iter().take(4) {
        let s = &data.rmsd_series[i];
        let best = s.rmsd.iter().cloned().fold(f64::INFINITY, f64::min);
        println!(
            "trajectory {:>3}: {:>6.0} ns sampled, final RMSD {:>5.2} Å, best {:>5.2} Å",
            i,
            s.times_ns.last().unwrap_or(&0.0),
            s.rmsd.last().unwrap_or(&f64::NAN),
            best
        );
    }

    println!("\nfirst folded generation: {:?} (paper: 3)", data.report.first_folded_generation);
    println!(
        "best RMSD to native: {:.2} Å (paper: 0.6-0.7; this CG model's native basin ≈ 1 Å)",
        data.best_rmsd
    );
    let path = save_json("fig2_generations_series.json", &data.report.generations);
    eprintln!("[bench] series written to {}", path.display());
}
