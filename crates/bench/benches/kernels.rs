//! Criterion micro-benchmarks of the hot kernels at every level of the
//! Fig. 6 hierarchy: the non-bonded pair loop (serial vs threaded),
//! neighbour-list construction, RMSD superposition, k-centers clustering,
//! transition-matrix estimation, and the controller-activity DES.

use clustersim::{simulate_controller, MachineSpec, PerfModel, ProjectSpec};
use criterion::{criterion_group, criterion_main, Criterion};
use mdsim::model::villin::VillinModel;
use mdsim::{lj_fluid, LjFluidSpec};
use msm::{k_centers, rmsd, CountMatrix, TransitionMatrix};
use rand::Rng;
use std::hint::black_box;

fn bench_nonbonded(c: &mut Criterion) {
    let mut group = c.benchmark_group("nonbonded_force");
    for (label, threaded) in [("serial", false), ("rayon", true)] {
        let mut sim = lj_fluid(
            LjFluidSpec {
                n_particles: 500,
                threaded,
                ..LjFluidSpec::default()
            },
            1,
        );
        sim.run(10); // build lists, settle
        group.bench_function(label, |b| {
            b.iter(|| {
                sim.run(black_box(5));
            })
        });
    }
    group.finish();
}

fn bench_neighbor_list(c: &mut Criterion) {
    use mdsim::{NeighborList, SimBox, Topology};
    use mdsim::{LjParams, Particle};
    let n = 2_000;
    let l = 13.5; // density ~0.8
    let mut top = Topology::new();
    for _ in 0..n {
        top.add_particle(Particle::neutral(1.0, LjParams::new(1.0, 1.0)));
    }
    let mut rng = mdsim::rng_from_seed(7);
    let pos: Vec<mdsim::Vec3> = (0..n)
        .map(|_| {
            mdsim::v3(
                rng.random::<f64>() * l,
                rng.random::<f64>() * l,
                rng.random::<f64>() * l,
            )
        })
        .collect();
    let bx = SimBox::cubic(l);
    c.bench_function("neighbor_list_build_2000", |b| {
        b.iter(|| {
            let mut nl = NeighborList::new(2.5, 0.3);
            nl.build(black_box(&pos), &bx, &top);
            black_box(nl.pairs().len())
        })
    });
}

fn bench_rmsd(c: &mut Criterion) {
    let model = VillinModel::hp35();
    let a = model.native.clone();
    let b = model.unfolded_start(1);
    c.bench_function("rmsd_35_beads", |bch| {
        bch.iter(|| black_box(rmsd(black_box(&a), black_box(&b))))
    });
}

fn bench_kcenters(c: &mut Criterion) {
    let model = VillinModel::hp35();
    // 400 synthetic frames: perturbed native + coils.
    let mut frames = Vec::new();
    for i in 0..400u64 {
        if i % 2 == 0 {
            let mut f = model.native.clone();
            let mut rng = mdsim::rng_from_seed(i);
            for p in f.iter_mut() {
                p.x += 0.3 * rng.random::<f64>();
            }
            frames.push(f);
        } else {
            frames.push(model.unfolded_start(i));
        }
    }
    c.bench_function("kcenters_400_frames_k20", |b| {
        b.iter(|| {
            let cl = k_centers(black_box(&frames), 20, 0, |x, y| rmsd(x, y));
            black_box(cl.max_radius())
        })
    });
}

fn bench_msm_estimation(c: &mut Criterion) {
    // A 100-state random-walk dtraj.
    let mut rng = mdsim::rng_from_seed(3);
    let mut dtraj = vec![50usize];
    for _ in 0..50_000 {
        let cur = *dtraj.last().unwrap() as i64;
        let step: i64 = if rng.random::<f64>() < 0.5 { -1 } else { 1 };
        dtraj.push((cur + step).clamp(0, 99) as usize);
    }
    let counts = CountMatrix::from_dtrajs(&[dtraj], 100, 5);
    c.bench_function("reversible_mle_100_states", |b| {
        b.iter(|| {
            let t = TransitionMatrix::reversible_mle(black_box(&counts), 1e-4, 1_000);
            black_box(t.n_states())
        })
    });
    let t = TransitionMatrix::reversible_mle(&counts, 1e-4, 10_000);
    c.bench_function("stationary_100_states", |b| {
        b.iter(|| black_box(t.stationary(1e-10, 100_000)))
    });
}

fn bench_controller_des(c: &mut Criterion) {
    let project = ProjectSpec::villin_first_folded();
    let perf = PerfModel::villin();
    c.bench_function("controller_des_20k_cores", |b| {
        b.iter(|| {
            let outcome =
                simulate_controller(black_box(&project), &MachineSpec::new(20_000, 96), &perf);
            black_box(outcome.wallclock_hours)
        })
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(10);
    targets = bench_nonbonded, bench_neighbor_list, bench_rmsd, bench_kcenters,
              bench_msm_estimation, bench_controller_des
}
criterion_main!(kernels);
