//! Human-readable rendering of a telemetry snapshot, used by the
//! `copernicus report` subcommand and the bench artifact dumps.

use crate::json::Json;

/// Render a `Telemetry::snapshot()` JSON document as aligned text.
///
/// Layout: one line per metric — name, labels, then either the value
/// (counter/gauge) or count/mean/min/max (histogram) — followed by a
/// journal summary block when present.
pub fn render_text(snapshot: &Json) -> String {
    let mut out = String::new();
    let metrics = snapshot
        .get("metrics")
        .and_then(Json::as_array)
        .unwrap_or(&[]);

    let mut rows: Vec<(String, String)> = Vec::with_capacity(metrics.len());
    for m in metrics {
        let name = m.get("name").and_then(Json::as_str).unwrap_or("?");
        let labels = match m.get("labels").and_then(Json::as_object) {
            Some(map) if !map.is_empty() => {
                let pairs: Vec<String> = map
                    .iter()
                    .map(|(k, v)| format!("{k}={}", v.as_str().unwrap_or("?")))
                    .collect();
                format!("{{{}}}", pairs.join(","))
            }
            _ => String::new(),
        };
        let left = format!("{name}{labels}");
        let right = match m.get("type").and_then(Json::as_str) {
            Some("counter") => format!("{}", m.get("value").and_then(Json::as_u64).unwrap_or(0)),
            Some("gauge") => format!("{}", m.get("value").and_then(Json::as_f64).unwrap_or(0.0)),
            Some("histogram") => {
                let h = m.get("histogram");
                let count = h
                    .and_then(|h| h.get("count"))
                    .and_then(Json::as_u64)
                    .unwrap_or(0);
                if count == 0 {
                    "count=0".to_string()
                } else {
                    let f = |key: &str| {
                        h.and_then(|h| h.get(key))
                            .and_then(Json::as_f64)
                            .unwrap_or(0.0)
                    };
                    let mut row = format!(
                        "count={count} mean={} min={} max={}",
                        si(f("mean")),
                        si(f("min")),
                        si(f("max"))
                    );
                    // Interpolated quantiles (present when count > 0 on
                    // snapshots from this version onward).
                    if h.and_then(|h| h.get("p50")).is_some() {
                        row.push_str(&format!(" p50={} p99={}", si(f("p50")), si(f("p99"))));
                    }
                    row
                }
            }
            _ => "?".to_string(),
        };
        rows.push((left, right));
    }

    let width = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    out.push_str("== metrics ==\n");
    if rows.is_empty() {
        out.push_str("(none)\n");
    }
    for (left, right) in rows {
        out.push_str(&format!("{left:<width$}  {right}\n"));
    }

    if let Some(links) = render_wire_links(metrics) {
        out.push_str(&links);
    }

    if let Some(journal) = snapshot.get("journal") {
        out.push_str("\n== journal ==\n");
        let g = |key: &str| journal.get(key).and_then(Json::as_u64).unwrap_or(0);
        out.push_str(&format!(
            "events recorded={} retained={} dropped={}\n",
            g("total_recorded"),
            g("retained"),
            g("dropped")
        ));
    }
    out
}

/// Group the per-link `wire_*` counters (emitted by the wire layer's
/// `LinkStats`, one labelled series per worker connection or peer
/// link) into a per-link summary section. Returns `None` when the
/// snapshot has no wire traffic at all.
fn render_wire_links(metrics: &[Json]) -> Option<String> {
    // (link, role) -> [frames tx, frames rx, bytes tx, bytes rx,
    //                  reconnects, auth failures]
    let mut links: std::collections::BTreeMap<(String, String), [u64; 6]> =
        std::collections::BTreeMap::new();
    for m in metrics {
        let name = m.get("name").and_then(Json::as_str).unwrap_or("");
        let slot = match name {
            "wire_frames_sent" => 0,
            "wire_frames_recv" => 1,
            "wire_bytes_sent" => 2,
            "wire_bytes_recv" => 3,
            "wire_reconnects" => 4,
            "wire_auth_failures" => 5,
            _ => continue,
        };
        let labels = m.get("labels").and_then(Json::as_object);
        let label = |key: &str| {
            labels
                .and_then(|map| map.get(key))
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string()
        };
        let value = m.get("value").and_then(Json::as_u64).unwrap_or(0);
        links.entry((label("link"), label("role"))).or_default()[slot] += value;
    }
    if links.is_empty() {
        return None;
    }
    let mut out = String::from("\n== wire links ==\n");
    let width = links
        .keys()
        .map(|(link, role)| link.len() + role.len() + 3)
        .max()
        .unwrap_or(0);
    for ((link, role), v) in links {
        let left = format!("{link} ({role})");
        out.push_str(&format!(
            "{left:<width$}  frames {}/{} bytes {}/{} reconnects {} auth_failures {}\n",
            v[0],
            v[1],
            si(v[2] as f64),
            si(v[3] as f64),
            v[4],
            v[5]
        ));
    }
    Some(out)
}

/// Format a number with an SI-style suffix for readability.
fn si(v: f64) -> String {
    let a = v.abs();
    if a >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if a >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if a >= 1e3 {
        format!("{:.2}k", v / 1e3)
    } else if a >= 1.0 || a == 0.0 {
        format!("{v:.2}")
    } else if a >= 1e-3 {
        format!("{:.2}m", v * 1e3)
    } else if a >= 1e-6 {
        format!("{:.2}u", v * 1e6)
    } else {
        format!("{:.2}n", v * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    #[test]
    fn renders_counters_gauges_histograms() {
        let t = Telemetry::new();
        t.registry()
            .counter("commands_dispatched", crate::metrics::Labels::new())
            .add(12);
        t.registry()
            .gauge("queue_depth", crate::metrics::Labels::new())
            .set(3.0);
        t.registry()
            .histogram(
                "dispatch_latency_secs",
                crate::metrics::Labels::new(),
                crate::metrics::buckets::SECONDS,
            )
            .record(0.002);
        t.journal().note("hello");
        let text = render_text(&t.snapshot());
        assert!(text.contains("commands_dispatched"), "{text}");
        assert!(text.contains("12"), "{text}");
        assert!(text.contains("queue_depth"), "{text}");
        assert!(text.contains("dispatch_latency_secs"), "{text}");
        assert!(text.contains("count=1"), "{text}");
        assert!(text.contains("== journal =="), "{text}");
        assert!(text.contains("recorded=1"), "{text}");
    }

    #[test]
    fn renders_wire_link_section_grouped_per_link() {
        let t = Telemetry::new();
        for (link, role) in [("10.0.0.2:7878#0", "client"), ("10.0.0.9:7878", "peer")] {
            let labels = crate::metrics::Labels::new()
                .with("link", link)
                .with("role", role);
            t.registry()
                .counter("wire_frames_sent", labels.clone())
                .add(4);
            t.registry()
                .counter("wire_frames_recv", labels.clone())
                .add(3);
            t.registry()
                .counter("wire_bytes_sent", labels.clone())
                .add(2048);
            t.registry().counter("wire_bytes_recv", labels.clone()).add(512);
            t.registry().counter("wire_reconnects", labels.clone()).add(1);
            t.registry().counter("wire_auth_failures", labels).add(0);
        }
        let text = render_text(&t.snapshot());
        assert!(text.contains("== wire links =="), "{text}");
        assert!(text.contains("10.0.0.2:7878#0 (client)"), "{text}");
        assert!(text.contains("10.0.0.9:7878 (peer)"), "{text}");
        assert!(text.contains("frames 4/3"), "{text}");
        assert!(text.contains("bytes 2.05k/512.00"), "{text}");
        assert!(text.contains("reconnects 1"), "{text}");
    }

    #[test]
    fn no_wire_section_without_wire_metrics() {
        let t = Telemetry::new();
        t.registry()
            .counter("commands_dispatched", crate::metrics::Labels::new())
            .add(1);
        let text = render_text(&t.snapshot());
        assert!(!text.contains("== wire links =="), "{text}");
    }

    /// Golden rendering: byte-exact output for a fixed snapshot, so
    /// `copernicus report` text can be diffed across runs and machines.
    /// Locks row alignment, histogram quantile columns, the sorted
    /// `== wire links ==` section and the journal footer.
    #[test]
    fn golden_report_text() {
        let snapshot = Json::parse(
            r#"{
              "metrics": [
                {"name":"commands_dispatched","type":"counter","value":42},
                {"name":"dispatch_latency_secs","type":"histogram","histogram":
                  {"count":3,"mean":0.002,"min":0.001,"max":0.004,"p50":0.002,"p99":0.004}},
                {"name":"queue_depth","type":"gauge","value":3},
                {"name":"wire_frames_sent","labels":{"link":"a","role":"client"},
                 "type":"counter","value":7},
                {"name":"wire_frames_sent","labels":{"link":"b","role":"peer"},
                 "type":"counter","value":2}
              ],
              "journal": {"total_recorded":5,"retained":5,"dropped":0}
            }"#,
        )
        .unwrap();
        let expected = "\
== metrics ==
commands_dispatched                   42
dispatch_latency_secs                 count=3 mean=2.00m min=1.00m max=4.00m p50=2.00m p99=4.00m
queue_depth                           3
wire_frames_sent{link=a,role=client}  7
wire_frames_sent{link=b,role=peer}    2

== wire links ==
a (client)  frames 7/0 bytes 0.00/0.00 reconnects 0 auth_failures 0
b (peer)    frames 2/0 bytes 0.00/0.00 reconnects 0 auth_failures 0

== journal ==
events recorded=5 retained=5 dropped=0
";
        assert_eq!(render_text(&snapshot), expected);
        // And rendering is a pure function of the snapshot.
        assert_eq!(render_text(&snapshot), render_text(&snapshot));
    }

    #[test]
    fn live_report_is_deterministic_across_renders() {
        let t = Telemetry::new();
        t.registry()
            .counter("z_last", crate::metrics::Labels::new())
            .add(1);
        t.registry()
            .counter(
                "wire_frames_sent",
                crate::metrics::labels(&[("link", "b"), ("role", "peer")]),
            )
            .add(2);
        t.registry()
            .counter(
                "wire_frames_sent",
                crate::metrics::labels(&[("link", "a"), ("role", "client")]),
            )
            .add(1);
        let first = render_text(&t.snapshot());
        let second = render_text(&t.snapshot());
        assert_eq!(first, second);
        // The wire-link section sorts by (link, role), not insertion order.
        let a = first.find("a (client)").expect("a line");
        let b = first.find("b (peer)").expect("b line");
        assert!(a < b, "{first}");
    }

    #[test]
    fn si_suffixes() {
        assert_eq!(si(0.0), "0.00");
        assert_eq!(si(1500.0), "1.50k");
        assert_eq!(si(2.5e6), "2.50M");
        assert_eq!(si(0.002), "2.00m");
        assert_eq!(si(3.2e-7), "320.00n");
    }
}
