//! Structured event journal: typed events with monotonic timestamps,
//! span-style begin/end pairs, a bounded ring buffer, and JSONL export.
//!
//! Timestamps are nanoseconds since the journal was created (monotonic
//! `Instant`, never wall clock), so two events can always be ordered and
//! span durations are exact.

use crate::json::Json;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Typed journal events. Numeric ids are plain u64s so this crate does
/// not depend on the core id newtypes.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A command left the queue for a worker.
    CommandDispatched { command: u64, worker: u64 },
    /// A worker returned a completed command.
    CommandCompleted {
        command: u64,
        worker: u64,
        wall_secs: f64,
    },
    /// A worker reported an execution error.
    CommandFailed {
        command: u64,
        worker: u64,
        error: String,
    },
    /// The watchdog re-queued a command after losing its worker.
    CommandRequeued {
        command: u64,
        attempts: u64,
        had_checkpoint: bool,
    },
    /// A command exhausted its attempt budget and left the lifecycle
    /// without a result; the controller was told it will never finish.
    CommandDropped { command: u64, attempts: u64 },
    /// A result (completion or error) arrived carrying a stale attempt
    /// epoch, or for a command already in a terminal state, and was
    /// discarded so the controller's accounting stays exactly-once.
    StaleResultDropped { command: u64, epoch: u64 },
    /// A worker registered with the server.
    WorkerAnnounced { worker: u64, cores: u64 },
    /// The heartbeat watchdog declared a worker dead.
    WorkerLost { worker: u64 },
    /// A worker presumed dead spoke again and was marked alive.
    WorkerResurrected { worker: u64 },
    /// An authenticated peer server introduced itself on this server's
    /// listener (overlay `Hello`).
    PeerConnected { peer: String, projects: u64 },
    /// A command delegated to a peer server came back completed.
    DelegationCompleted { command: u64, peer: String },
    /// An executor deposited a checkpoint on the shared filesystem.
    CheckpointWritten { command: u64, bytes: u64 },
    /// The MSM controller finished clustering a generation.
    GenerationClustered {
        generation: u64,
        n_states: u64,
        n_trajectories: u64,
        n_respawned: u64,
    },
    /// Start of a named span (paired with `SpanEnd` via `span_id`).
    SpanBegin { span_id: u64, name: String },
    /// End of a named span.
    SpanEnd { span_id: u64, name: String },
    /// The repex controller evaluated a Metropolis exchange between two
    /// neighboring ladder slots at a sync point.
    ReplicaExchange {
        leg: u64,
        slot_lo: u64,
        slot_hi: u64,
        prob: f64,
        accepted: bool,
    },
    /// The repex controller permanently removed a replica from the
    /// ladder after its command exhausted its attempt budget.
    ReplicaDropped { slot: u64, leg: u64 },
    /// Free-form marker for anything without a dedicated variant.
    Note { text: String },
}

impl Event {
    pub fn kind(&self) -> &'static str {
        match self {
            Event::CommandDispatched { .. } => "command_dispatched",
            Event::CommandCompleted { .. } => "command_completed",
            Event::CommandFailed { .. } => "command_failed",
            Event::CommandRequeued { .. } => "command_requeued",
            Event::CommandDropped { .. } => "command_dropped",
            Event::StaleResultDropped { .. } => "stale_result_dropped",
            Event::WorkerAnnounced { .. } => "worker_announced",
            Event::WorkerLost { .. } => "worker_lost",
            Event::WorkerResurrected { .. } => "worker_resurrected",
            Event::PeerConnected { .. } => "peer_connected",
            Event::DelegationCompleted { .. } => "delegation_completed",
            Event::CheckpointWritten { .. } => "checkpoint_written",
            Event::GenerationClustered { .. } => "generation_clustered",
            Event::SpanBegin { .. } => "span_begin",
            Event::SpanEnd { .. } => "span_end",
            Event::ReplicaExchange { .. } => "replica_exchange",
            Event::ReplicaDropped { .. } => "replica_dropped",
            Event::Note { .. } => "note",
        }
    }

    fn fields(&self, obj: &mut Json) {
        match self {
            Event::CommandDispatched { command, worker } => {
                obj.set("command", *command).set("worker", *worker);
            }
            Event::CommandCompleted {
                command,
                worker,
                wall_secs,
            } => {
                obj.set("command", *command)
                    .set("worker", *worker)
                    .set("wall_secs", *wall_secs);
            }
            Event::CommandFailed {
                command,
                worker,
                error,
            } => {
                obj.set("command", *command)
                    .set("worker", *worker)
                    .set("error", error.as_str());
            }
            Event::CommandRequeued {
                command,
                attempts,
                had_checkpoint,
            } => {
                obj.set("command", *command)
                    .set("attempts", *attempts)
                    .set("had_checkpoint", *had_checkpoint);
            }
            Event::CommandDropped { command, attempts } => {
                obj.set("command", *command).set("attempts", *attempts);
            }
            Event::StaleResultDropped { command, epoch } => {
                obj.set("command", *command).set("epoch", *epoch);
            }
            Event::WorkerAnnounced { worker, cores } => {
                obj.set("worker", *worker).set("cores", *cores);
            }
            Event::WorkerLost { worker } | Event::WorkerResurrected { worker } => {
                obj.set("worker", *worker);
            }
            Event::PeerConnected { peer, projects } => {
                obj.set("peer", peer.as_str()).set("projects", *projects);
            }
            Event::DelegationCompleted { command, peer } => {
                obj.set("command", *command).set("peer", peer.as_str());
            }
            Event::CheckpointWritten { command, bytes } => {
                obj.set("command", *command).set("bytes", *bytes);
            }
            Event::GenerationClustered {
                generation,
                n_states,
                n_trajectories,
                n_respawned,
            } => {
                obj.set("generation", *generation)
                    .set("n_states", *n_states)
                    .set("n_trajectories", *n_trajectories)
                    .set("n_respawned", *n_respawned);
            }
            Event::SpanBegin { span_id, name } | Event::SpanEnd { span_id, name } => {
                obj.set("span_id", *span_id).set("span", name.as_str());
            }
            Event::ReplicaExchange {
                leg,
                slot_lo,
                slot_hi,
                prob,
                accepted,
            } => {
                obj.set("leg", *leg)
                    .set("slot_lo", *slot_lo)
                    .set("slot_hi", *slot_hi)
                    .set("prob", *prob)
                    .set("accepted", *accepted);
            }
            Event::ReplicaDropped { slot, leg } => {
                obj.set("slot", *slot).set("leg", *leg);
            }
            Event::Note { text } => {
                obj.set("text", text.as_str());
            }
        }
    }

    fn from_json(kind: &str, obj: &Json) -> Option<Event> {
        let u = |key: &str| obj.get(key).and_then(Json::as_u64);
        let s = |key: &str| obj.get(key).and_then(Json::as_str).map(str::to_string);
        Some(match kind {
            "command_dispatched" => Event::CommandDispatched {
                command: u("command")?,
                worker: u("worker")?,
            },
            "command_completed" => Event::CommandCompleted {
                command: u("command")?,
                worker: u("worker")?,
                wall_secs: obj.get("wall_secs").and_then(Json::as_f64)?,
            },
            "command_failed" => Event::CommandFailed {
                command: u("command")?,
                worker: u("worker")?,
                error: s("error")?,
            },
            "command_requeued" => Event::CommandRequeued {
                command: u("command")?,
                attempts: u("attempts")?,
                had_checkpoint: matches!(obj.get("had_checkpoint"), Some(Json::Bool(true))),
            },
            "command_dropped" => Event::CommandDropped {
                command: u("command")?,
                attempts: u("attempts")?,
            },
            "stale_result_dropped" => Event::StaleResultDropped {
                command: u("command")?,
                epoch: u("epoch")?,
            },
            "worker_announced" => Event::WorkerAnnounced {
                worker: u("worker")?,
                cores: u("cores")?,
            },
            "worker_lost" => Event::WorkerLost {
                worker: u("worker")?,
            },
            "worker_resurrected" => Event::WorkerResurrected {
                worker: u("worker")?,
            },
            "peer_connected" => Event::PeerConnected {
                peer: s("peer")?,
                projects: u("projects")?,
            },
            "delegation_completed" => Event::DelegationCompleted {
                command: u("command")?,
                peer: s("peer")?,
            },
            "checkpoint_written" => Event::CheckpointWritten {
                command: u("command")?,
                bytes: u("bytes")?,
            },
            "generation_clustered" => Event::GenerationClustered {
                generation: u("generation")?,
                n_states: u("n_states")?,
                n_trajectories: u("n_trajectories")?,
                n_respawned: u("n_respawned")?,
            },
            "span_begin" => Event::SpanBegin {
                span_id: u("span_id")?,
                name: s("span")?,
            },
            "span_end" => Event::SpanEnd {
                span_id: u("span_id")?,
                name: s("span")?,
            },
            "replica_exchange" => Event::ReplicaExchange {
                leg: u("leg")?,
                slot_lo: u("slot_lo")?,
                slot_hi: u("slot_hi")?,
                prob: obj.get("prob").and_then(Json::as_f64)?,
                accepted: matches!(obj.get("accepted"), Some(Json::Bool(true))),
            },
            "replica_dropped" => Event::ReplicaDropped {
                slot: u("slot")?,
                leg: u("leg")?,
            },
            "note" => Event::Note { text: s("text")? },
            _ => return None,
        })
    }
}

/// An event plus its monotonic timestamp (ns since journal creation)
/// and global sequence number.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    pub seq: u64,
    pub t_ns: u64,
    pub event: Event,
}

impl Entry {
    pub fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("seq", self.seq)
            .set("t_ns", self.t_ns)
            .set("kind", self.event.kind());
        self.event.fields(&mut obj);
        obj
    }

    pub fn from_json(obj: &Json) -> Option<Entry> {
        let kind = obj.get("kind")?.as_str()?;
        Some(Entry {
            seq: obj.get("seq")?.as_u64()?,
            t_ns: obj.get("t_ns")?.as_u64()?,
            event: Event::from_json(kind, obj)?,
        })
    }
}

struct Ring {
    entries: VecDeque<Entry>,
    capacity: usize,
    dropped: u64,
}

/// The journal. Cloning shares the underlying ring.
#[derive(Clone)]
pub struct Journal {
    origin: Instant,
    ring: Arc<Mutex<Ring>>,
    next_seq: Arc<AtomicU64>,
    next_span: Arc<AtomicU64>,
}

pub const DEFAULT_CAPACITY: usize = 4096;

impl Default for Journal {
    fn default() -> Journal {
        Journal::with_capacity(DEFAULT_CAPACITY)
    }
}

impl Journal {
    pub fn new() -> Journal {
        Journal::default()
    }

    pub fn with_capacity(capacity: usize) -> Journal {
        Journal {
            origin: Instant::now(),
            ring: Arc::new(Mutex::new(Ring {
                entries: VecDeque::with_capacity(capacity.min(1024)),
                capacity: capacity.max(1),
                dropped: 0,
            })),
            next_seq: Arc::new(AtomicU64::new(0)),
            next_span: Arc::new(AtomicU64::new(0)),
        }
    }

    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    /// Record an event; evicts the oldest entry when full.
    pub fn record(&self, event: Event) {
        let entry = Entry {
            seq: self.next_seq.fetch_add(1, Ordering::Relaxed),
            t_ns: self.now_ns(),
            event,
        };
        let mut ring = self.ring.lock().unwrap();
        if ring.entries.len() == ring.capacity {
            ring.entries.pop_front();
            ring.dropped += 1;
        }
        ring.entries.push_back(entry);
    }

    pub fn note(&self, text: impl Into<String>) {
        self.record(Event::Note { text: text.into() });
    }

    /// Begin a span; the returned guard records the matching `SpanEnd`
    /// when dropped.
    pub fn span(&self, name: impl Into<String>) -> SpanGuard {
        let name = name.into();
        let span_id = self.next_span.fetch_add(1, Ordering::Relaxed);
        self.record(Event::SpanBegin {
            span_id,
            name: name.clone(),
        });
        SpanGuard {
            journal: self.clone(),
            span_id,
            name,
            start: Instant::now(),
        }
    }

    /// Number of events evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().unwrap().dropped
    }

    /// Total events ever recorded (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed)
    }

    /// Snapshot of the retained entries, oldest first.
    pub fn entries(&self) -> Vec<Entry> {
        self.ring.lock().unwrap().entries.iter().cloned().collect()
    }

    /// Export retained entries as JSONL (one compact object per line).
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for entry in self.entries() {
            out.push_str(&entry.to_json().to_string());
            out.push('\n');
        }
        out
    }

    /// Parse a JSONL export back into entries. Fails on the first
    /// malformed line (reported 1-based).
    pub fn parse_jsonl(text: &str) -> Result<Vec<Entry>, JournalParseError> {
        let mut entries = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let obj = Json::parse(line).map_err(|e| JournalParseError {
                line: i + 1,
                reason: e.to_string(),
            })?;
            let entry = Entry::from_json(&obj).ok_or_else(|| JournalParseError {
                line: i + 1,
                reason: "missing or mistyped event fields".to_string(),
            })?;
            entries.push(entry);
        }
        Ok(entries)
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalParseError {
    pub line: usize,
    pub reason: String,
}

impl std::fmt::Display for JournalParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "journal line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for JournalParseError {}

/// RAII guard ending a span on drop.
pub struct SpanGuard {
    journal: Journal,
    span_id: u64,
    name: String,
    start: Instant,
}

impl SpanGuard {
    /// Elapsed time since the span began.
    pub fn elapsed(&self) -> std::time::Duration {
        self.start.elapsed()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.journal.record(Event::SpanEnd {
            span_id: self.span_id,
            name: std::mem::take(&mut self.name),
        });
    }
}

/// Check that every `SpanBegin` in `entries` has a matching `SpanEnd`
/// with the same id and name, and ends after it begins. Returns the
/// number of matched pairs.
pub fn matched_span_pairs(entries: &[Entry]) -> Result<usize, String> {
    use std::collections::HashMap;
    let mut open: HashMap<u64, (&str, u64)> = HashMap::new();
    let mut matched = 0;
    for entry in entries {
        match &entry.event {
            Event::SpanBegin { span_id, name } => {
                open.insert(*span_id, (name.as_str(), entry.t_ns));
            }
            Event::SpanEnd { span_id, name } => {
                // A begin may have been evicted from the ring; only
                // verify pairs whose begin we still hold.
                if let Some((begin_name, begin_t)) = open.remove(span_id) {
                    if begin_name != name {
                        return Err(format!(
                            "span {span_id} began as '{begin_name}' but ended as '{name}'"
                        ));
                    }
                    if entry.t_ns < begin_t {
                        return Err(format!("span {span_id} ends before it begins"));
                    }
                    matched += 1;
                }
            }
            _ => {}
        }
    }
    if open.is_empty() {
        Ok(matched)
    } else {
        Err(format!("{} span(s) never ended", open.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_eviction_order() {
        let j = Journal::with_capacity(3);
        for i in 0..5u64 {
            j.record(Event::WorkerLost { worker: i });
        }
        let entries = j.entries();
        assert_eq!(entries.len(), 3);
        assert_eq!(j.dropped(), 2);
        assert_eq!(j.total_recorded(), 5);
        // Oldest first, and the two oldest (workers 0, 1) were evicted.
        let workers: Vec<u64> = entries
            .iter()
            .map(|e| match e.event {
                Event::WorkerLost { worker } => worker,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(workers, vec![2, 3, 4]);
        // Timestamps and seqs are monotonic.
        assert!(entries.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
        assert!(entries.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn jsonl_roundtrip_all_variants() {
        let j = Journal::new();
        j.record(Event::CommandDispatched {
            command: 1,
            worker: 2,
        });
        j.record(Event::CommandCompleted {
            command: 1,
            worker: 2,
            wall_secs: 0.25,
        });
        j.record(Event::CommandFailed {
            command: 3,
            worker: 2,
            error: "boom \"quoted\"".to_string(),
        });
        j.record(Event::CommandRequeued {
            command: 3,
            attempts: 2,
            had_checkpoint: true,
        });
        j.record(Event::CommandDropped {
            command: 3,
            attempts: 5,
        });
        j.record(Event::StaleResultDropped {
            command: 3,
            epoch: 1,
        });
        j.record(Event::WorkerAnnounced {
            worker: 2,
            cores: 8,
        });
        j.record(Event::WorkerLost { worker: 2 });
        j.record(Event::WorkerResurrected { worker: 2 });
        j.record(Event::CheckpointWritten {
            command: 3,
            bytes: 512,
        });
        j.record(Event::GenerationClustered {
            generation: 1,
            n_states: 20,
            n_trajectories: 6,
            n_respawned: 2,
        });
        j.record(Event::PeerConnected {
            peer: "beta".to_string(),
            projects: 1,
        });
        j.record(Event::DelegationCompleted {
            command: 3,
            peer: "beta".to_string(),
        });
        j.note("free-form");
        {
            let _span = j.span("clustering");
        }
        let text = j.export_jsonl();
        let parsed = Journal::parse_jsonl(&text).unwrap();
        assert_eq!(parsed, j.entries());
        assert_eq!(matched_span_pairs(&parsed), Ok(1));
    }

    #[test]
    fn span_guard_pairs_nest() {
        let j = Journal::new();
        {
            let _outer = j.span("outer");
            let _inner = j.span("inner");
        }
        let entries = j.entries();
        assert_eq!(entries.len(), 4);
        assert_eq!(matched_span_pairs(&entries), Ok(2));
        // Inner ends before outer (drop order).
        match (&entries[2].event, &entries[3].event) {
            (Event::SpanEnd { name: a, .. }, Event::SpanEnd { name: b, .. }) => {
                assert_eq!(a, "inner");
                assert_eq!(b, "outer");
            }
            other => panic!("unexpected tail: {other:?}"),
        }
    }

    #[test]
    fn unmatched_span_detected() {
        let j = Journal::new();
        j.record(Event::SpanBegin {
            span_id: 9,
            name: "orphan".to_string(),
        });
        assert!(matched_span_pairs(&j.entries()).is_err());
    }

    #[test]
    fn parse_rejects_malformed_line() {
        let err = Journal::parse_jsonl("{\"seq\":0}\n").unwrap_err();
        assert_eq!(err.line, 1);
        let err = Journal::parse_jsonl("{nope\n").unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn end_after_evicted_begin_is_tolerated() {
        // Simulate a ring that evicted a SpanBegin: the dangling end
        // must not fail the check.
        let j = Journal::new();
        j.record(Event::SpanEnd {
            span_id: 99,
            name: "lost".to_string(),
        });
        assert_eq!(matched_span_pairs(&j.entries()), Ok(0));
    }
}
