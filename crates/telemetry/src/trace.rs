//! Distributed command tracing: causal span trees that survive process
//! boundaries.
//!
//! A [`TraceContext`] is minted by the owning server when a command is
//! enqueued and rides inside the command through every hop — worker
//! dispatch, peer delegation, retries — so each process can attach its
//! own spans to the same tree. Timestamps are monotonic nanosecond
//! offsets from the local [`Tracer`]'s origin (the same `Instant`-based
//! design as the journal: never wall clock on the hot path). Each tracer
//! also captures one wall-clock anchor at construction; merging logs
//! from several processes uses the anchors to project every span onto a
//! shared wall timeline (accurate to clock sync between hosts — see
//! DESIGN.md §13 for the exact semantics).
//!
//! Finished spans land in a bounded in-memory ring and, when a sink file
//! is attached, are appended to a JSONL span log beside the journal.
//! [`merge`] joins logs from multiple processes by `trace_id`, and
//! [`MergedTrace::chrome_json`] exports Chrome trace-event JSON that
//! Perfetto / `chrome://tracing` render directly.

use crate::json::Json;
use std::collections::{BTreeMap, VecDeque};
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default capacity of the finished-span ring.
pub const DEFAULT_SPAN_CAPACITY: usize = 65_536;

/// Well-known span names, so producers and the bench/export tooling
/// agree on the taxonomy without stringly-typed drift.
pub mod span_names {
    /// Root span: the whole command lifecycle as seen by the owning
    /// server, enqueue → terminal state.
    pub const COMMAND: &str = "command";
    /// One wait-in-queue period: enqueue (or re-queue) → dispatch.
    pub const QUEUED: &str = "queued";
    /// One dispatch attempt (per attempt epoch): dispatch → result,
    /// fault, or cancellation, as seen by the owning server.
    pub const ATTEMPT: &str = "attempt";
    /// Worker-side execution: workload received → result sent.
    pub const EXEC: &str = "exec";
    /// Delegate-side hold: a delegated command accepted from a peer
    /// owner → its result forwarded back.
    pub const DELEGATED: &str = "delegated";
    /// Instant event attached to a span when a heartbeat covering the
    /// command arrives.
    pub const HEARTBEAT: &str = "heartbeat";
}

/// The propagated context: which trace a span belongs to and which span
/// is its causal parent. Copy-cheap; rides inside `Command` across the
/// wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    pub trace_id: u64,
    pub span_id: u64,
    pub parent_span_id: Option<u64>,
}

impl TraceContext {
    /// A context for a child span of `self` with the given span id.
    pub fn child(&self, span_id: u64) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id,
            parent_span_id: Some(self.span_id),
        }
    }
}

/// An instant event inside a span (e.g. a heartbeat).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    pub name: String,
    pub t_ns: u64,
}

/// A finished span as recorded by one process.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    pub trace_id: u64,
    pub span_id: u64,
    pub parent_span_id: Option<u64>,
    pub name: String,
    /// Logical track within the process (worker name, "server", …);
    /// becomes the Chrome trace "thread".
    pub actor: String,
    pub t_start_ns: u64,
    pub t_end_ns: u64,
    pub attrs: Vec<(String, String)>,
    pub events: Vec<SpanEvent>,
}

impl Span {
    pub fn duration_ns(&self) -> u64 {
        self.t_end_ns.saturating_sub(self.t_start_ns)
    }

    fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("kind", "span")
            .set("trace_id", self.trace_id)
            .set("span_id", self.span_id)
            .set("name", self.name.as_str())
            .set("actor", self.actor.as_str())
            .set("t_start_ns", self.t_start_ns)
            .set("t_end_ns", self.t_end_ns);
        match self.parent_span_id {
            Some(p) => obj.set("parent_span_id", p),
            None => obj.set("parent_span_id", Json::Null),
        };
        if !self.attrs.is_empty() {
            let mut attrs = Json::object();
            for (k, v) in &self.attrs {
                attrs.set(k, v.as_str());
            }
            obj.set("attrs", attrs);
        }
        if !self.events.is_empty() {
            let events = self
                .events
                .iter()
                .map(|e| {
                    let mut ev = Json::object();
                    ev.set("name", e.name.as_str()).set("t_ns", e.t_ns);
                    ev
                })
                .collect();
            obj.set("events", Json::Array(events));
        }
        obj
    }

    fn from_json(v: &Json) -> Option<Span> {
        let get_u64 = |key: &str| v.get(key).and_then(Json::as_u64);
        let get_str = |key: &str| v.get(key).and_then(Json::as_str);
        let mut attrs = Vec::new();
        if let Some(map) = v.get("attrs").and_then(Json::as_object) {
            for (k, val) in map {
                attrs.push((k.clone(), val.as_str().unwrap_or("?").to_string()));
            }
        }
        let mut events = Vec::new();
        if let Some(items) = v.get("events").and_then(Json::as_array) {
            for e in items {
                events.push(SpanEvent {
                    name: e.get("name").and_then(Json::as_str).unwrap_or("?").to_string(),
                    t_ns: e.get("t_ns").and_then(Json::as_u64).unwrap_or(0),
                });
            }
        }
        Some(Span {
            trace_id: get_u64("trace_id")?,
            span_id: get_u64("span_id")?,
            parent_span_id: v.get("parent_span_id").and_then(Json::as_u64),
            name: get_str("name")?.to_string(),
            actor: get_str("actor").unwrap_or("?").to_string(),
            t_start_ns: get_u64("t_start_ns")?,
            t_end_ns: get_u64("t_end_ns")?,
            attrs,
            events,
        })
    }
}

struct TracerInner {
    process: String,
    origin: Instant,
    /// Wall-clock ns since the Unix epoch captured at `origin`; lets the
    /// merge step align monotonic offsets from different processes.
    wall_anchor_ns: u64,
    /// Mixed into span/trace ids so ids from different processes never
    /// collide in a merged tree.
    id_seed: u64,
    next_id: AtomicU64,
    spans: Mutex<SpanRing>,
    /// Optional streaming sink: finished spans are appended as JSONL.
    sink: Mutex<Option<std::io::BufWriter<std::fs::File>>>,
}

struct SpanRing {
    ring: VecDeque<Span>,
    capacity: usize,
    dropped: u64,
}

/// Records finished spans for one process. Cloning shares state.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new("main")
    }
}

/// FNV-1a, the same construction the overlay uses for namespaced worker
/// ids; good enough to salt per-process id streams.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// SplitMix64 finalizer: cheap, well-mixed.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn unix_now_ns() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

impl Tracer {
    pub fn new(process: &str) -> Tracer {
        Tracer::with_capacity(process, DEFAULT_SPAN_CAPACITY)
    }

    pub fn with_capacity(process: &str, capacity: usize) -> Tracer {
        let wall_anchor_ns = unix_now_ns();
        Tracer {
            inner: Arc::new(TracerInner {
                process: process.to_string(),
                origin: Instant::now(),
                wall_anchor_ns,
                id_seed: splitmix64(fnv1a(process.as_bytes()) ^ wall_anchor_ns),
                next_id: AtomicU64::new(1),
                spans: Mutex::new(SpanRing {
                    ring: VecDeque::with_capacity(capacity.min(1024)),
                    capacity: capacity.max(1),
                    dropped: 0,
                }),
                sink: Mutex::new(None),
            }),
        }
    }

    pub fn process(&self) -> &str {
        &self.inner.process
    }

    pub fn wall_anchor_ns(&self) -> u64 {
        self.inner.wall_anchor_ns
    }

    /// Monotonic ns since this tracer was created.
    pub fn now_ns(&self) -> u64 {
        self.inner.origin.elapsed().as_nanos() as u64
    }

    /// A fresh id, unique across processes with overwhelming
    /// probability (per-process salt mixed through SplitMix64).
    pub fn next_id(&self) -> u64 {
        let n = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        splitmix64(self.inner.id_seed ^ n)
    }

    /// Mint the root context for a brand-new trace.
    pub fn mint_trace(&self) -> TraceContext {
        TraceContext {
            trace_id: self.next_id(),
            span_id: self.next_id(),
            parent_span_id: None,
        }
    }

    /// Start a span as a child of `parent` (or a root span when `None`
    /// — the caller has a minted context for it).
    pub fn start_child(&self, name: &str, actor: &str, parent: &TraceContext) -> ActiveSpan {
        let ctx = parent.child(self.next_id());
        self.start_with_context(name, actor, ctx)
    }

    /// Start a span with an explicit, already-minted context (e.g. the
    /// root `command` span using the context stored in the command).
    pub fn start_with_context(&self, name: &str, actor: &str, ctx: TraceContext) -> ActiveSpan {
        ActiveSpan {
            tracer: self.clone(),
            span: Some(Span {
                trace_id: ctx.trace_id,
                span_id: ctx.span_id,
                parent_span_id: ctx.parent_span_id,
                name: name.to_string(),
                actor: actor.to_string(),
                t_start_ns: self.now_ns(),
                t_end_ns: 0,
                attrs: Vec::new(),
                events: Vec::new(),
            }),
        }
    }

    /// Append finished spans to `path` as JSONL from now on. Writes the
    /// process header line immediately; flushed per span so a crashed
    /// process still leaves a readable log.
    pub fn stream_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        let mut writer = std::io::BufWriter::new(file);
        writer.write_all(self.header_json().to_string().as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        *self.inner.sink.lock().unwrap() = Some(writer);
        Ok(())
    }

    fn header_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("kind", "process")
            .set("process", self.inner.process.as_str())
            .set("wall_anchor_ns", self.inner.wall_anchor_ns)
            .set("version", 1u64);
        obj
    }

    fn record(&self, span: Span) {
        if let Some(writer) = self.inner.sink.lock().unwrap().as_mut() {
            let _ = writer.write_all(span.to_json().to_string().as_bytes());
            let _ = writer.write_all(b"\n");
            let _ = writer.flush();
        }
        let mut guard = self.inner.spans.lock().unwrap();
        if guard.ring.len() == guard.capacity {
            guard.ring.pop_front();
            guard.dropped += 1;
        }
        guard.ring.push_back(span);
    }

    /// Finished spans currently retained (oldest first).
    pub fn spans(&self) -> Vec<Span> {
        self.inner.spans.lock().unwrap().ring.iter().cloned().collect()
    }

    pub fn dropped(&self) -> u64 {
        self.inner.spans.lock().unwrap().dropped
    }

    /// The whole retained log as JSONL: process header + one span per
    /// line. This is the same shape `stream_to` appends incrementally.
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header_json().to_string());
        out.push('\n');
        for span in self.inner.spans.lock().unwrap().ring.iter() {
            out.push_str(&span.to_json().to_string());
            out.push('\n');
        }
        out
    }
}

/// An in-flight span. Record instants and attributes on it; it records
/// itself into the tracer when finished (or dropped).
pub struct ActiveSpan {
    tracer: Tracer,
    span: Option<Span>,
}

impl ActiveSpan {
    /// The context to propagate to children of this span.
    pub fn context(&self) -> TraceContext {
        let span = self.span.as_ref().expect("span already finished");
        TraceContext {
            trace_id: span.trace_id,
            span_id: span.span_id,
            parent_span_id: span.parent_span_id,
        }
    }

    pub fn set_attr(&mut self, key: &str, value: impl Into<String>) {
        if let Some(span) = self.span.as_mut() {
            let value = value.into();
            match span.attrs.iter_mut().find(|(k, _)| k == key) {
                Some(slot) => slot.1 = value,
                None => span.attrs.push((key.to_string(), value)),
            }
        }
    }

    /// Attach an instant event (e.g. a heartbeat) at "now".
    pub fn add_event(&mut self, name: &str) {
        let t_ns = self.tracer.now_ns();
        if let Some(span) = self.span.as_mut() {
            span.events.push(SpanEvent {
                name: name.to_string(),
                t_ns,
            });
        }
    }

    /// Finish explicitly. Equivalent to dropping, but reads better at
    /// call sites that hand the span around first.
    pub fn finish(mut self) {
        self.finish_inner();
    }

    fn finish_inner(&mut self) {
        if let Some(mut span) = self.span.take() {
            span.t_end_ns = self.tracer.now_ns();
            self.tracer.record(span);
        }
    }
}

impl Drop for ActiveSpan {
    fn drop(&mut self) {
        self.finish_inner();
    }
}

// ---------------------------------------------------------------------
// Parsing, merging, Chrome export
// ---------------------------------------------------------------------

/// One process's parsed span log.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessLog {
    pub process: String,
    pub wall_anchor_ns: u64,
    pub spans: Vec<Span>,
}

/// Parse one JSONL span log. Lines that fail to parse are reported with
/// their (1-based) line number; a missing process header yields a log
/// with process "unknown" and anchor 0.
pub fn parse_jsonl(text: &str) -> (ProcessLog, Vec<(usize, String)>) {
    let mut log = ProcessLog {
        process: "unknown".to_string(),
        wall_anchor_ns: 0,
        spans: Vec::new(),
    };
    let mut errors = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let value = match Json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                errors.push((i + 1, e.to_string()));
                continue;
            }
        };
        match value.get("kind").and_then(Json::as_str) {
            Some("process") => {
                if let Some(p) = value.get("process").and_then(Json::as_str) {
                    log.process = p.to_string();
                }
                log.wall_anchor_ns = value
                    .get("wall_anchor_ns")
                    .and_then(Json::as_u64)
                    .unwrap_or(0);
            }
            Some("span") => match Span::from_json(&value) {
                Some(span) => log.spans.push(span),
                None => errors.push((i + 1, "span line missing required fields".to_string())),
            },
            _ => errors.push((i + 1, "unknown line kind".to_string())),
        }
    }
    (log, errors)
}

/// A span projected onto the shared wall timeline during a merge.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedSpan {
    pub process: String,
    pub span: Span,
    pub wall_start_ns: u64,
    pub wall_end_ns: u64,
}

/// Logs from several processes joined by trace id, on one wall-clock
/// timeline (each process's monotonic offsets shifted by its anchor).
#[derive(Debug, Clone, Default)]
pub struct MergedTrace {
    /// Distinct process names in first-seen order.
    pub processes: Vec<String>,
    /// trace_id → spans, sorted by wall start time.
    pub traces: BTreeMap<u64, Vec<MergedSpan>>,
}

impl MergedTrace {
    pub fn trace_ids(&self) -> Vec<u64> {
        self.traces.keys().copied().collect()
    }

    pub fn spans_of(&self, trace_id: u64) -> &[MergedSpan] {
        self.traces.get(&trace_id).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Root spans (no parent, or parent not present in the trace).
    pub fn roots_of(&self, trace_id: u64) -> Vec<&MergedSpan> {
        let spans = self.spans_of(trace_id);
        spans
            .iter()
            .filter(|s| match s.span.parent_span_id {
                None => true,
                Some(p) => !spans.iter().any(|o| o.span.span_id == p),
            })
            .collect()
    }

    pub fn children_of(&self, trace_id: u64, span_id: u64) -> Vec<&MergedSpan> {
        self.spans_of(trace_id)
            .iter()
            .filter(|s| s.span.parent_span_id == Some(span_id))
            .collect()
    }

    /// Distinct processes contributing spans to one trace.
    pub fn processes_of(&self, trace_id: u64) -> Vec<String> {
        let mut seen = Vec::new();
        for s in self.spans_of(trace_id) {
            if !seen.contains(&s.process) {
                seen.push(s.process.clone());
            }
        }
        seen
    }

    /// Chrome trace-event JSON (the `{"traceEvents": [...]}` envelope
    /// Perfetto and `chrome://tracing` load). Spans become "X" complete
    /// events, span events become "i" instants; pid/tid are small
    /// stable integers with "M" metadata naming them after the process
    /// and actor. Timestamps are µs relative to the earliest span.
    pub fn chrome_json(&self) -> Json {
        let mut events = Vec::new();
        let mut pids: BTreeMap<&str, u64> = BTreeMap::new();
        let mut tids: BTreeMap<(&str, &str), u64> = BTreeMap::new();
        for (i, p) in self.processes.iter().enumerate() {
            pids.insert(p.as_str(), i as u64 + 1);
            let mut meta = Json::object();
            let mut args = Json::object();
            args.set("name", p.as_str());
            meta.set("ph", "M")
                .set("name", "process_name")
                .set("pid", i as u64 + 1)
                .set("tid", 0u64)
                .set("args", args);
            events.push(meta);
        }
        let t0 = self
            .traces
            .values()
            .flat_map(|spans| spans.iter().map(|s| s.wall_start_ns))
            .min()
            .unwrap_or(0);
        for spans in self.traces.values() {
            for s in spans {
                let pid = *pids.get(s.process.as_str()).unwrap_or(&0);
                let n_tids = tids.len() as u64;
                let tid = *tids
                    .entry((s.process.as_str(), s.span.actor.as_str()))
                    .or_insert(n_tids + 1);
                let ts_us = (s.wall_start_ns.saturating_sub(t0)) as f64 / 1e3;
                let dur_us = s.span.duration_ns() as f64 / 1e3;
                let mut args = Json::object();
                args.set("trace_id", s.span.trace_id)
                    .set("span_id", s.span.span_id);
                if let Some(p) = s.span.parent_span_id {
                    args.set("parent_span_id", p);
                }
                for (k, v) in &s.span.attrs {
                    args.set(k, v.as_str());
                }
                let mut ev = Json::object();
                ev.set("ph", "X")
                    .set("name", s.span.name.as_str())
                    .set("cat", "copernicus")
                    .set("pid", pid)
                    .set("tid", tid)
                    .set("ts", ts_us)
                    .set("dur", dur_us)
                    .set("args", args);
                events.push(ev);
                for e in &s.span.events {
                    let anchor = s.wall_start_ns.saturating_sub(s.span.t_start_ns);
                    let ev_ts = (anchor + e.t_ns).saturating_sub(t0) as f64 / 1e3;
                    let mut inst = Json::object();
                    inst.set("ph", "i")
                        .set("name", e.name.as_str())
                        .set("cat", "copernicus")
                        .set("pid", pid)
                        .set("tid", tid)
                        .set("ts", ev_ts)
                        .set("s", "t");
                    events.push(inst);
                }
            }
        }
        // Thread-name metadata after the fact (tids are assigned above).
        for ((process, actor), tid) in &tids {
            let pid = *pids.get(process).unwrap_or(&0);
            let mut args = Json::object();
            args.set("name", *actor);
            let mut meta = Json::object();
            meta.set("ph", "M")
                .set("name", "thread_name")
                .set("pid", pid)
                .set("tid", *tid)
                .set("args", args);
            events.push(meta);
        }
        let mut root = Json::object();
        root.set("traceEvents", Json::Array(events))
            .set("displayTimeUnit", "ms");
        root
    }
}

/// Join several process logs into one merged view. Spans keep their
/// identity; timestamps are projected to wall ns via each log's anchor.
pub fn merge(logs: &[ProcessLog]) -> MergedTrace {
    let mut merged = MergedTrace::default();
    for log in logs {
        if !merged.processes.contains(&log.process) {
            merged.processes.push(log.process.clone());
        }
        for span in &log.spans {
            merged.traces.entry(span.trace_id).or_default().push(MergedSpan {
                process: log.process.clone(),
                wall_start_ns: log.wall_anchor_ns.saturating_add(span.t_start_ns),
                wall_end_ns: log.wall_anchor_ns.saturating_add(span.t_end_ns),
                span: span.clone(),
            });
        }
    }
    for spans in merged.traces.values_mut() {
        spans.sort_by_key(|s| (s.wall_start_ns, s.span.span_id));
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_span(trace: u64, span: u64, parent: Option<u64>, name: &str, t0: u64, t1: u64) -> Span {
        Span {
            trace_id: trace,
            span_id: span,
            parent_span_id: parent,
            name: name.to_string(),
            actor: "server".to_string(),
            t_start_ns: t0,
            t_end_ns: t1,
            attrs: Vec::new(),
            events: Vec::new(),
        }
    }

    #[test]
    fn mint_and_child_contexts_chain() {
        let tracer = Tracer::new("owner");
        let root = tracer.mint_trace();
        assert_eq!(root.parent_span_id, None);
        let child = root.child(tracer.next_id());
        assert_eq!(child.trace_id, root.trace_id);
        assert_eq!(child.parent_span_id, Some(root.span_id));
        assert_ne!(child.span_id, root.span_id);
    }

    #[test]
    fn ids_unique_across_processes() {
        let a = Tracer::new("a");
        let b = Tracer::new("b");
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            assert!(seen.insert(a.next_id()));
            assert!(seen.insert(b.next_id()));
        }
    }

    #[test]
    fn active_span_records_on_finish_and_drop() {
        let tracer = Tracer::new("p");
        let root = tracer.mint_trace();
        let mut span = tracer.start_with_context(span_names::COMMAND, "server", root);
        span.set_attr("command", "7");
        span.set_attr("command", "8"); // overwrite, not duplicate
        span.add_event(span_names::HEARTBEAT);
        span.finish();
        {
            let _dropped = tracer.start_child(span_names::QUEUED, "server", &root);
        }
        let spans = tracer.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "command");
        assert_eq!(spans[0].attrs, vec![("command".to_string(), "8".to_string())]);
        assert_eq!(spans[0].events.len(), 1);
        assert_eq!(spans[1].name, "queued");
        assert_eq!(spans[1].parent_span_id, Some(root.span_id));
        assert!(spans.iter().all(|s| s.t_end_ns >= s.t_start_ns));
    }

    #[test]
    fn ring_bounds_and_counts_drops() {
        let tracer = Tracer::with_capacity("p", 2);
        let root = tracer.mint_trace();
        for _ in 0..5 {
            tracer.start_child("x", "a", &root).finish();
        }
        assert_eq!(tracer.spans().len(), 2);
        assert_eq!(tracer.dropped(), 3);
    }

    #[test]
    fn jsonl_roundtrip_preserves_spans() {
        let tracer = Tracer::new("owner");
        let root = tracer.mint_trace();
        let mut s = tracer.start_with_context(span_names::COMMAND, "server", root);
        s.set_attr("project", "villin");
        s.add_event(span_names::HEARTBEAT);
        s.finish();
        tracer.start_child(span_names::ATTEMPT, "worker-1", &root).finish();
        let text = tracer.export_jsonl();
        let (log, errors) = parse_jsonl(&text);
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(log.process, "owner");
        assert_eq!(log.wall_anchor_ns, tracer.wall_anchor_ns());
        assert_eq!(log.spans, tracer.spans());
    }

    #[test]
    fn parse_reports_bad_lines_with_numbers() {
        let text = "{\"kind\":\"process\",\"process\":\"p\",\"wall_anchor_ns\":5}\nnot json\n{\"kind\":\"span\"}\n{\"kind\":\"mystery\"}\n";
        let (log, errors) = parse_jsonl(text);
        assert_eq!(log.process, "p");
        assert_eq!(errors.len(), 3);
        assert_eq!(errors[0].0, 2);
        assert_eq!(errors[1].0, 3);
        assert_eq!(errors[2].0, 4);
    }

    #[test]
    fn merge_joins_processes_on_wall_timeline() {
        let owner = ProcessLog {
            process: "owner".to_string(),
            wall_anchor_ns: 1_000_000,
            spans: vec![
                test_span(42, 1, None, "command", 0, 900),
                test_span(42, 2, Some(1), "attempt", 100, 800),
            ],
        };
        let delegate = ProcessLog {
            process: "delegate".to_string(),
            wall_anchor_ns: 1_000_300,
            spans: vec![test_span(42, 3, Some(2), "exec", 0, 400)],
        };
        let merged = merge(&[owner, delegate]);
        assert_eq!(merged.trace_ids(), vec![42]);
        assert_eq!(merged.processes_of(42), vec!["owner", "delegate"]);
        let spans = merged.spans_of(42);
        assert_eq!(spans.len(), 3);
        // exec (anchor 1_000_300 + 0) sorts between command and attempt ends.
        assert_eq!(spans[0].span.name, "command");
        assert_eq!(spans[1].span.name, "attempt");
        assert_eq!(spans[2].span.name, "exec");
        assert_eq!(spans[2].wall_start_ns, 1_000_300);
        // Tree: command → attempt → exec, across processes.
        let roots = merged.roots_of(42);
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].span.name, "command");
        let kids = merged.children_of(42, 1);
        assert_eq!(kids.len(), 1);
        assert_eq!(kids[0].span.name, "attempt");
        let grandkids = merged.children_of(42, 2);
        assert_eq!(grandkids.len(), 1);
        assert_eq!(grandkids[0].process, "delegate");
    }

    #[test]
    fn chrome_export_parses_and_nests() {
        let owner = ProcessLog {
            process: "owner".to_string(),
            wall_anchor_ns: 1_000,
            spans: vec![{
                let mut s = test_span(7, 1, None, "command", 0, 500);
                s.events.push(SpanEvent {
                    name: "heartbeat".to_string(),
                    t_ns: 250,
                });
                s
            }],
        };
        let merged = merge(&[owner]);
        let chrome = merged.chrome_json();
        let parsed = Json::parse(&chrome.to_string()).unwrap();
        let events = parsed.get("traceEvents").unwrap().as_array().unwrap();
        // process_name meta + span + instant + thread_name meta.
        assert_eq!(events.len(), 4);
        let x = events
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .unwrap();
        assert_eq!(x.get("name").unwrap().as_str(), Some("command"));
        assert_eq!(x.get("dur").unwrap().as_f64(), Some(0.5));
        let i = events
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("i"))
            .unwrap();
        assert_eq!(i.get("ts").unwrap().as_f64(), Some(0.25));
    }

    #[test]
    fn stream_to_appends_spans_live() {
        let dir = std::env::temp_dir().join(format!(
            "copernicus-trace-test-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("spans.jsonl");
        let _ = std::fs::remove_file(&path);
        let tracer = Tracer::new("streamer");
        tracer.stream_to(&path).unwrap();
        let root = tracer.mint_trace();
        tracer.start_with_context("command", "server", root).finish();
        let text = std::fs::read_to_string(&path).unwrap();
        let (log, errors) = parse_jsonl(&text);
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(log.process, "streamer");
        assert_eq!(log.spans.len(), 1);
        let _ = std::fs::remove_file(&path);
    }
}
