//! Prometheus text exposition (version 0.0.4) of a registry snapshot.
//!
//! Renders the same deterministic snapshot JSON that `--report` and the
//! bench artifacts consume, so a scrape and a report can never disagree.
//! Counters and gauges map 1:1; histograms become the classic
//! cumulative `_bucket{le=...}` / `_sum` / `_count` triple.

use crate::json::Json;

/// Render `Registry::snapshot()` / `Telemetry::snapshot()` JSON as
/// Prometheus text exposition. Metric and label names are sanitized to
/// the Prometheus charset; `# TYPE` headers are emitted once per metric
/// name (the snapshot is already sorted by name).
pub fn render_prometheus(snapshot: &Json) -> String {
    let metrics = snapshot
        .get("metrics")
        .and_then(Json::as_array)
        .unwrap_or(&[]);
    let mut out = String::new();
    let mut last_typed: Option<(String, &str)> = None;
    for m in metrics {
        let raw_name = m.get("name").and_then(Json::as_str).unwrap_or("unnamed");
        let name = sanitize(raw_name);
        let kind = match m.get("type").and_then(Json::as_str) {
            Some("counter") => "counter",
            Some("gauge") => "gauge",
            Some("histogram") => "histogram",
            _ => continue,
        };
        if last_typed.as_ref().map(|(n, k)| (n.as_str(), *k)) != Some((name.as_str(), kind)) {
            out.push_str(&format!("# TYPE {name} {kind}\n"));
            last_typed = Some((name.clone(), kind));
        }
        let labels = render_labels(m.get("labels"), &[]);
        match kind {
            "counter" => {
                let v = m.get("value").and_then(Json::as_u64).unwrap_or(0);
                out.push_str(&format!("{name}{labels} {v}\n"));
            }
            "gauge" => {
                let v = m.get("value").and_then(Json::as_f64).unwrap_or(0.0);
                out.push_str(&format!("{name}{labels} {}\n", num(v)));
            }
            "histogram" => {
                let h = m.get("histogram");
                let bounds: Vec<f64> = h
                    .and_then(|h| h.get("bounds"))
                    .and_then(Json::as_array)
                    .map(|a| a.iter().filter_map(Json::as_f64).collect())
                    .unwrap_or_default();
                let buckets: Vec<u64> = h
                    .and_then(|h| h.get("buckets"))
                    .and_then(Json::as_array)
                    .map(|a| a.iter().filter_map(Json::as_u64).collect())
                    .unwrap_or_default();
                let mut cum = 0u64;
                for (i, &count) in buckets.iter().enumerate() {
                    cum += count;
                    let le = match bounds.get(i) {
                        Some(b) => num(*b),
                        None => "+Inf".to_string(),
                    };
                    let le_labels = render_labels(m.get("labels"), &[("le", &le)]);
                    out.push_str(&format!("{name}_bucket{le_labels} {cum}\n"));
                }
                let sum = h
                    .and_then(|h| h.get("sum"))
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0);
                let count = h
                    .and_then(|h| h.get("count"))
                    .and_then(Json::as_u64)
                    .unwrap_or(0);
                out.push_str(&format!("{name}_sum{labels} {}\n", num(sum)));
                out.push_str(&format!("{name}_count{labels} {count}\n"));
            }
            _ => unreachable!(),
        }
    }
    out
}

/// Render a label set (from snapshot JSON) plus extra pairs as
/// `{k="v",...}`, or an empty string when there are none.
fn render_labels(labels: Option<&Json>, extra: &[(&str, &str)]) -> String {
    let mut pairs: Vec<(String, String)> = Vec::new();
    if let Some(map) = labels.and_then(Json::as_object) {
        for (k, v) in map {
            pairs.push((sanitize(k), v.as_str().unwrap_or("?").to_string()));
        }
    }
    for (k, v) in extra {
        pairs.push((sanitize(k), v.to_string()));
    }
    if pairs.is_empty() {
        return String::new();
    }
    let body: Vec<String> = pairs
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Restrict to the Prometheus metric/label-name charset
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic()
            || c == '_'
            || c == ':'
            || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Prometheus float formatting: integral values without a trailing
/// `.0`, everything else via Rust's shortest roundtrip formatting.
fn num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{buckets, labels, Labels, Registry};

    #[test]
    fn counters_and_gauges_expose_with_types() {
        let reg = Registry::new();
        reg.counter("commands_dispatched", Labels::new()).add(12);
        reg.counter("wire_bytes_sent", labels(&[("link", "10.0.0.2:7878"), ("role", "client")]))
            .add(2048);
        reg.gauge("queue_depth", Labels::new()).set(3.0);
        let text = render_prometheus(&reg.snapshot());
        assert!(text.contains("# TYPE commands_dispatched counter\n"), "{text}");
        assert!(text.contains("commands_dispatched 12\n"), "{text}");
        assert!(text.contains("# TYPE queue_depth gauge\n"), "{text}");
        assert!(text.contains("queue_depth 3\n"), "{text}");
        assert!(
            text.contains("wire_bytes_sent{link=\"10.0.0.2:7878\",role=\"client\"} 2048\n"),
            "{text}"
        );
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_inf() {
        let reg = Registry::new();
        let h = reg.histogram("lat", Labels::new(), &[1.0, 10.0]);
        h.record(0.5);
        h.record(5.0);
        h.record(100.0);
        let text = render_prometheus(&reg.snapshot());
        assert!(text.contains("# TYPE lat histogram\n"), "{text}");
        assert!(text.contains("lat_bucket{le=\"1\"} 1\n"), "{text}");
        assert!(text.contains("lat_bucket{le=\"10\"} 2\n"), "{text}");
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 3\n"), "{text}");
        assert!(text.contains("lat_count 3\n"), "{text}");
        assert!(text.contains("lat_sum 105.5\n"), "{text}");
    }

    #[test]
    fn type_header_emitted_once_across_series() {
        let reg = Registry::new();
        reg.counter("hits", labels(&[("k", "a")])).inc();
        reg.counter("hits", labels(&[("k", "b")])).inc();
        let text = render_prometheus(&reg.snapshot());
        assert_eq!(text.matches("# TYPE hits counter").count(), 1, "{text}");
        assert!(text.contains("hits{k=\"a\"} 1\n"), "{text}");
        assert!(text.contains("hits{k=\"b\"} 1\n"), "{text}");
    }

    #[test]
    fn names_and_values_sanitized() {
        let reg = Registry::new();
        reg.counter("md.force-ns", labels(&[("path", "a\"b\\c\nd")])).inc();
        let text = render_prometheus(&reg.snapshot());
        assert!(text.contains("md_force_ns{path=\"a\\\"b\\\\c\\nd\"} 1\n"), "{text}");
    }

    #[test]
    fn seconds_ladder_renders_parseable_les() {
        let reg = Registry::new();
        let h = reg.histogram("d", Labels::new(), buckets::SECONDS);
        h.record(0.002);
        let text = render_prometheus(&reg.snapshot());
        // Every bucket line has a le label and a cumulative count.
        let bucket_lines: Vec<&str> =
            text.lines().filter(|l| l.starts_with("d_bucket")).collect();
        assert_eq!(bucket_lines.len(), buckets::SECONDS.len() + 1);
        assert!(bucket_lines.last().unwrap().contains("le=\"+Inf\"} 1"), "{text}");
    }
}
