//! Thread-safe metrics registry: counters, gauges, fixed-bucket
//! histograms, all addressable by (name, labels).
//!
//! Design constraints, in order:
//! 1. Hot-path updates (counter increment, histogram record) are a few
//!    atomic ops with `Relaxed` ordering — no locks after the handle is
//!    created.
//! 2. Handles are `Arc`-backed and cheap to clone, so call sites cache
//!    them once and never touch the registry map again.
//! 3. `snapshot()` is allowed to be slow-ish (it takes the registry
//!    lock) and produces deterministic, diffable JSON: metrics sorted by
//!    name then label string.

use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A label set: ordered key=value pairs identifying one series of a
/// metric (e.g. `{"kind": "mdrun"}`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Labels(Vec<(String, String)>);

impl Labels {
    pub fn new() -> Labels {
        Labels::default()
    }

    pub fn with(mut self, key: &str, value: impl Into<String>) -> Labels {
        let value = value.into();
        match self.0.binary_search_by(|(k, _)| k.as_str().cmp(key)) {
            Ok(i) => self.0[i].1 = value,
            Err(i) => self.0.insert(i, (key.to_string(), value)),
        }
        self
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.0.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    fn to_json(&self) -> Json {
        let mut obj = Json::object();
        for (k, v) in self.iter() {
            obj.set(k, v);
        }
        obj
    }
}

/// Shorthand: `labels(&[("kind", "mdrun")])`.
pub fn labels(pairs: &[(&str, &str)]) -> Labels {
    let mut l = Labels::new();
    for (k, v) in pairs {
        l = l.with(k, *v);
    }
    l
}

/// Monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-value-wins gauge (f64 stored as bits in an AtomicU64).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Gauge {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Atomically add `delta` (CAS loop; gauges are not hot-path).
    pub fn add(&self, delta: f64) {
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self.bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }
}

/// Fixed-bucket histogram. Buckets are cumulative-style upper bounds
/// (`le`); values above the last bound land in the implicit +Inf bucket.
/// Also tracks count/sum/min/max for mean and range reporting.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum in micro-units (value * 1e6 rounded) so it fits an atomic
    /// without a CAS float loop; reported back as f64.
    sum_micro: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Histogram {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_micro: AtomicU64::new(0),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Record one observation.
    pub fn record(&self, value: f64) {
        // partition_point: first bound with value <= bound (le semantics).
        let idx = self.bounds.partition_point(|&b| b < value);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let micro = (value.max(0.0) * 1e6).round() as u64;
        self.sum_micro.fetch_add(micro, Ordering::Relaxed);
        update_extreme(&self.min_bits, value, |new, cur| new < cur);
        update_extreme(&self.max_bits, value, |new, cur| new > cur);
    }

    /// Record a duration in seconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_secs_f64());
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> f64 {
        self.sum_micro.load(Ordering::Relaxed) as f64 / 1e6
    }

    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Estimate the `q`-quantile (0 ≤ q ≤ 1) by linear interpolation
    /// within the bucket containing the target rank — the same scheme
    /// Prometheus's `histogram_quantile` uses, sharpened with the
    /// tracked min/max: the first bucket's lower edge is the observed
    /// minimum (not 0) and the overflow bucket's upper edge is the
    /// observed maximum (not +Inf). Returns 0.0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let min = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        let max = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        let target = q.clamp(0.0, 1.0) * total as f64;
        let mut cum = 0.0;
        for (i, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cum + c as f64;
            if next >= target {
                let lower = if i == 0 { min } else { self.bounds[i - 1].max(min) };
                let upper = if i == self.bounds.len() {
                    max
                } else {
                    self.bounds[i].min(max)
                };
                if upper <= lower {
                    return lower.clamp(min, max);
                }
                let frac = ((target - cum) / c as f64).clamp(0.0, 1.0);
                return (lower + (upper - lower) * frac).clamp(min, max);
            }
            cum = next;
        }
        max
    }

    /// Median estimate (bucket-interpolated).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 99th-percentile estimate (bucket-interpolated).
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Per-bucket counts (not cumulative), one per bound plus the
    /// overflow bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    fn to_json(&self) -> Json {
        let n = self.count();
        let mut obj = Json::object();
        obj.set("count", n).set("sum", self.sum());
        if n > 0 {
            obj.set("mean", self.mean())
                .set("min", f64::from_bits(self.min_bits.load(Ordering::Relaxed)))
                .set("max", f64::from_bits(self.max_bits.load(Ordering::Relaxed)))
                .set("p50", self.p50())
                .set("p99", self.p99());
        }
        obj.set(
            "bounds",
            Json::Array(self.bounds.iter().map(|&b| Json::F64(b)).collect()),
        );
        obj.set(
            "buckets",
            Json::Array(self.bucket_counts().into_iter().map(Json::U64).collect()),
        );
        obj
    }
}

fn update_extreme(cell: &AtomicU64, value: f64, better: impl Fn(f64, f64) -> bool) {
    let mut current = cell.load(Ordering::Relaxed);
    while better(value, f64::from_bits(current)) {
        match cell.compare_exchange_weak(
            current,
            value.to_bits(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return,
            Err(actual) => current = actual,
        }
    }
}

/// Standard bucket ladders.
pub mod buckets {
    /// Seconds: 1 µs … ~100 s, roughly ×4 per step. Fits everything from
    /// a force-loop step to a full MD segment.
    pub const SECONDS: &[f64] = &[
        1e-6, 4e-6, 1.6e-5, 6.4e-5, 2.56e-4, 1.024e-3, 4.096e-3, 1.6384e-2, 6.5536e-2, 0.262144,
        1.048576, 4.194304, 16.777216, 67.108864,
    ];
    /// Nanoseconds per step: 10 ns … ~100 ms.
    pub const NANOS: &[f64] = &[1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8];
    /// Bytes: 64 B … 64 MB.
    pub const BYTES: &[f64] = &[
        64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0, 4194304.0, 16777216.0,
        67108864.0,
    ];
    /// Small cardinalities (cluster counts, respawn counts…).
    pub const COUNTS: &[f64] = &[1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0];
}

/// The registry: a named, labelled map of metrics. Cloning shares state.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<BTreeMap<(String, Labels), MetricSlot>>>,
}

enum MetricSlot {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or create a counter. Panics if the name+labels already exist
    /// as a different metric kind (a wiring bug, never data-dependent).
    pub fn counter(&self, name: &str, labels: Labels) -> Arc<Counter> {
        let mut map = self.inner.lock().unwrap();
        let slot = map
            .entry((name.to_string(), labels))
            .or_insert_with(|| MetricSlot::Counter(Arc::new(Counter::default())));
        match slot {
            MetricSlot::Counter(c) => c.clone(),
            _ => panic!("metric '{name}' already registered with a different kind"),
        }
    }

    pub fn gauge(&self, name: &str, labels: Labels) -> Arc<Gauge> {
        let mut map = self.inner.lock().unwrap();
        let slot = map
            .entry((name.to_string(), labels))
            .or_insert_with(|| MetricSlot::Gauge(Arc::new(Gauge::default())));
        match slot {
            MetricSlot::Gauge(g) => g.clone(),
            _ => panic!("metric '{name}' already registered with a different kind"),
        }
    }

    pub fn histogram(&self, name: &str, labels: Labels, bounds: &[f64]) -> Arc<Histogram> {
        let mut map = self.inner.lock().unwrap();
        let slot = map
            .entry((name.to_string(), labels))
            .or_insert_with(|| MetricSlot::Histogram(Arc::new(Histogram::new(bounds))));
        match slot {
            MetricSlot::Histogram(h) => h.clone(),
            _ => panic!("metric '{name}' already registered with a different kind"),
        }
    }

    /// Look up an existing counter without creating it.
    pub fn find_counter(&self, name: &str, labels: &Labels) -> Option<Arc<Counter>> {
        let map = self.inner.lock().unwrap();
        match map.get(&(name.to_string(), labels.clone())) {
            Some(MetricSlot::Counter(c)) => Some(c.clone()),
            _ => None,
        }
    }

    /// Sum a counter across all label sets with the given name.
    pub fn counter_total(&self, name: &str) -> u64 {
        let map = self.inner.lock().unwrap();
        map.iter()
            .filter(|((n, _), _)| n == name)
            .filter_map(|(_, slot)| match slot {
                MetricSlot::Counter(c) => Some(c.get()),
                _ => None,
            })
            .sum()
    }

    /// All (labels, value) series for a named counter.
    pub fn counter_series(&self, name: &str) -> Vec<(Labels, u64)> {
        let map = self.inner.lock().unwrap();
        map.iter()
            .filter(|((n, _), _)| n == name)
            .filter_map(|((_, l), slot)| match slot {
                MetricSlot::Counter(c) => Some((l.clone(), c.get())),
                _ => None,
            })
            .collect()
    }

    /// Look up an existing histogram without creating it.
    pub fn find_histogram(&self, name: &str, labels: &Labels) -> Option<Arc<Histogram>> {
        let map = self.inner.lock().unwrap();
        match map.get(&(name.to_string(), labels.clone())) {
            Some(MetricSlot::Histogram(h)) => Some(h.clone()),
            _ => None,
        }
    }

    /// Deterministic JSON snapshot: an array of metric objects sorted by
    /// (name, labels).
    pub fn snapshot(&self) -> Json {
        let map = self.inner.lock().unwrap();
        let mut metrics = Vec::with_capacity(map.len());
        for ((name, labels), slot) in map.iter() {
            let mut obj = Json::object();
            obj.set("name", name.as_str());
            if !labels.is_empty() {
                obj.set("labels", labels.to_json());
            }
            match slot {
                MetricSlot::Counter(c) => {
                    obj.set("type", "counter").set("value", c.get());
                }
                MetricSlot::Gauge(g) => {
                    obj.set("type", "gauge").set("value", g.get());
                }
                MetricSlot::Histogram(h) => {
                    obj.set("type", "histogram").set("histogram", h.to_json());
                }
            }
            metrics.push(obj);
        }
        let mut root = Json::object();
        root.set("metrics", Json::Array(metrics));
        root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counter_concurrency_exact_total() {
        let reg = Registry::new();
        let c = reg.counter("ops", Labels::new());
        let n_threads = 8;
        let per_thread = 10_000;
        let handles: Vec<_> = (0..n_threads)
            .map(|_| {
                let c = c.clone();
                thread::spawn(move || {
                    for _ in 0..per_thread {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), n_threads * per_thread);
        // Same handle from the registry.
        assert_eq!(
            reg.counter("ops", Labels::new()).get(),
            n_threads * per_thread
        );
    }

    #[test]
    fn gauge_add_concurrency() {
        let reg = Registry::new();
        let g = reg.gauge("depth", Labels::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let g = g.clone();
                thread::spawn(move || {
                    for _ in 0..1000 {
                        g.add(1.0);
                    }
                    for _ in 0..1000 {
                        g.add(-1.0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(g.get(), 0.0);
        g.set(7.5);
        assert_eq!(g.get(), 7.5);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        let h = Histogram::new(&[1.0, 10.0, 100.0]);
        // le semantics: a value exactly on a bound lands in that bucket.
        h.record(0.5); // bucket 0 (le 1)
        h.record(1.0); // bucket 0 (le 1)
        h.record(1.0001); // bucket 1 (le 10)
        h.record(10.0); // bucket 1
        h.record(99.9); // bucket 2 (le 100)
        h.record(100.0); // bucket 2
        h.record(1e6); // overflow bucket
        assert_eq!(h.bucket_counts(), vec![2, 2, 2, 1]);
        assert_eq!(h.count(), 7);
        assert!((h.sum() - (0.5 + 1.0 + 1.0001 + 10.0 + 99.9 + 100.0 + 1e6)).abs() < 0.01);
    }

    #[test]
    fn histogram_concurrent_counts() {
        let reg = Registry::new();
        let h = reg.histogram("lat", Labels::new(), buckets::SECONDS);
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let h = h.clone();
                thread::spawn(move || {
                    for j in 0..5_000u64 {
                        h.record(1e-6 * (1 + (i + j) % 100) as f64);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(h.count(), 20_000);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 20_000);
    }

    #[test]
    fn quantile_empty_histogram_is_zero() {
        let h = Histogram::new(&[1.0, 10.0]);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.p99(), 0.0);
    }

    #[test]
    fn quantile_single_observation_is_exact() {
        let h = Histogram::new(&[1.0, 10.0, 100.0]);
        h.record(7.0);
        // min == max == 7 pins both bucket edges.
        assert_eq!(h.p50(), 7.0);
        assert_eq!(h.p99(), 7.0);
        assert_eq!(h.quantile(0.0), 7.0);
        assert_eq!(h.quantile(1.0), 7.0);
    }

    #[test]
    fn quantile_interpolates_within_bucket() {
        let h = Histogram::new(&[0.0, 10.0, 20.0]);
        // 10 values spread through (0, 10]: ranks land mid-bucket.
        for i in 1..=10 {
            h.record(i as f64);
        }
        let p50 = h.p50();
        // Target rank 5 of 10 in a bucket spanning [1, 10] (min-sharpened
        // lower edge): linear interpolation gives 1 + 9 * 0.5 = 5.5.
        assert!((p50 - 5.5).abs() < 1e-9, "p50 = {p50}");
        let p90 = h.quantile(0.9);
        assert!((p90 - 9.1).abs() < 1e-9, "p90 = {p90}");
        assert!(h.p99() <= 10.0);
        assert!(h.p99() >= p90);
    }

    #[test]
    fn quantile_spans_buckets_monotonically() {
        let h = Histogram::new(&[1e-3, 1e-2, 1e-1, 1.0]);
        for _ in 0..90 {
            h.record(5e-3); // bucket (1e-3, 1e-2]
        }
        for _ in 0..10 {
            h.record(0.5); // bucket (1e-1, 1.0]
        }
        let p50 = h.p50();
        assert!(p50 > 1e-3 && p50 <= 1e-2, "p50 = {p50}");
        let p99 = h.p99();
        assert!(p99 > 1e-1 && p99 <= 0.5, "p99 = {p99}");
        // Quantiles never decrease in q.
        let qs: Vec<f64> = (0..=20).map(|i| h.quantile(i as f64 / 20.0)).collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1] + 1e-12), "{qs:?}");
    }

    #[test]
    fn quantile_overflow_bucket_clamped_to_observed_max() {
        let h = Histogram::new(&[1.0]);
        h.record(0.5);
        h.record(5000.0); // overflow bucket, no finite upper bound
        let p99 = h.p99();
        assert!(p99 <= 5000.0, "p99 = {p99}");
        assert!(p99 > 1.0, "p99 = {p99}");
        assert_eq!(h.quantile(1.0), 5000.0);
    }

    #[test]
    fn labels_sorted_and_deduped() {
        let l = labels(&[("b", "2"), ("a", "1"), ("b", "3")]);
        let pairs: Vec<_> = l.iter().collect();
        assert_eq!(pairs, vec![("a", "1"), ("b", "3")]);
    }

    #[test]
    fn snapshot_is_deterministic_json() {
        let reg = Registry::new();
        reg.counter("z_last", Labels::new()).add(3);
        reg.counter("a_first", labels(&[("kind", "mdrun")])).add(1);
        reg.gauge("depth", Labels::new()).set(2.0);
        reg.histogram("lat", Labels::new(), &[1.0, 2.0]).record(1.5);
        let snap = reg.snapshot();
        let text = snap.to_string_pretty();
        let again = reg.snapshot().to_string_pretty();
        assert_eq!(text, again);
        let parsed = Json::parse(&text).unwrap();
        let metrics = parsed.get("metrics").unwrap().as_array().unwrap();
        assert_eq!(metrics.len(), 4);
        // Sorted by name.
        assert_eq!(metrics[0].get("name").unwrap().as_str(), Some("a_first"));
        assert_eq!(metrics[3].get("name").unwrap().as_str(), Some("z_last"));
    }

    #[test]
    fn counter_total_sums_across_labels() {
        let reg = Registry::new();
        reg.counter("bytes", labels(&[("level", "cluster")]))
            .add(10);
        reg.counter("bytes", labels(&[("level", "overlay")]))
            .add(32);
        assert_eq!(reg.counter_total("bytes"), 42);
        assert_eq!(reg.counter_series("bytes").len(), 2);
    }
}
