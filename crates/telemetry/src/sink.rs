//! The near-zero-cost instrumentation boundary for hot loops.
//!
//! The MD inner loop runs millions of steps; it cannot afford a branch
//! on an `Option<Telemetry>` per force evaluation, let alone an atomic.
//! Instead the engine is generic over a [`TelemetrySink`] with an
//! associated `const ENABLED`. With [`NullSink`] every instrumentation
//! call compiles to nothing (the `if S::ENABLED` guards are
//! const-folded by monomorphization); with [`RecordingSink`] per-step
//! timings land in histograms.

use crate::metrics::Histogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Phases of one MD step, as reported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepPhase {
    /// Full force-field evaluation.
    Force,
    /// Integration minus force evaluation.
    Integrate,
    /// Neighbor-list build/refresh.
    Neighbor,
}

/// Receiver for per-step timings. Implementations with
/// `ENABLED = false` are guaranteed never to be called through the
/// engine's guarded paths.
pub trait TelemetrySink {
    /// Compile-time switch; `false` removes all instrumentation code.
    const ENABLED: bool = true;

    /// One phase of one step took `ns` nanoseconds.
    fn record_phase_ns(&self, phase: StepPhase, ns: u64);

    /// A neighbor list was rebuilt from scratch.
    fn record_neighbor_rebuild(&self) {}
}

/// The disabled sink: all instrumentation compiles out.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record_phase_ns(&self, _phase: StepPhase, _ns: u64) {}
}

/// A sink backed by three histograms (ns units) plus a rebuild counter.
/// Cheap to clone; typically built via `Telemetry::step_sink()`.
#[derive(Clone)]
pub struct RecordingSink {
    pub force_ns: Arc<Histogram>,
    pub integrate_ns: Arc<Histogram>,
    pub neighbor_ns: Arc<Histogram>,
    rebuilds: Arc<AtomicU64>,
}

impl RecordingSink {
    pub fn new(
        force_ns: Arc<Histogram>,
        integrate_ns: Arc<Histogram>,
        neighbor_ns: Arc<Histogram>,
    ) -> RecordingSink {
        RecordingSink {
            force_ns,
            integrate_ns,
            neighbor_ns,
            rebuilds: Arc::new(AtomicU64::new(0)),
        }
    }

    pub fn rebuilds(&self) -> u64 {
        self.rebuilds.load(Ordering::Relaxed)
    }
}

impl TelemetrySink for RecordingSink {
    const ENABLED: bool = true;

    #[inline]
    fn record_phase_ns(&self, phase: StepPhase, ns: u64) {
        let h = match phase {
            StepPhase::Force => &self.force_ns,
            StepPhase::Integrate => &self.integrate_ns,
            StepPhase::Neighbor => &self.neighbor_ns,
        };
        h.record(ns as f64);
    }

    #[inline]
    fn record_neighbor_rebuild(&self) {
        self.rebuilds.fetch_add(1, Ordering::Relaxed);
    }
}

/// References delegate, so engines can take `&sink` without cloning.
impl<S: TelemetrySink> TelemetrySink for &S {
    const ENABLED: bool = S::ENABLED;

    #[inline]
    fn record_phase_ns(&self, phase: StepPhase, ns: u64) {
        (*self).record_phase_ns(phase, ns);
    }

    #[inline]
    fn record_neighbor_rebuild(&self) {
        (*self).record_neighbor_rebuild();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{buckets, Labels, Registry};

    #[test]
    fn null_sink_is_disabled_at_compile_time() {
        // The guard the engine uses: a NullSink branch is const-false.
        fn guarded<S: TelemetrySink>(_sink: &S) -> bool {
            S::ENABLED
        }
        assert!(!guarded(&NullSink));
    }

    #[test]
    fn recording_sink_routes_phases() {
        let reg = Registry::new();
        let sink = RecordingSink::new(
            reg.histogram("force_ns", Labels::new(), buckets::NANOS),
            reg.histogram("integrate_ns", Labels::new(), buckets::NANOS),
            reg.histogram("neighbor_ns", Labels::new(), buckets::NANOS),
        );
        sink.record_phase_ns(StepPhase::Force, 1_000);
        sink.record_phase_ns(StepPhase::Force, 2_000);
        sink.record_phase_ns(StepPhase::Integrate, 500);
        sink.record_phase_ns(StepPhase::Neighbor, 30_000);
        sink.record_neighbor_rebuild();
        assert_eq!(sink.force_ns.count(), 2);
        assert_eq!(sink.integrate_ns.count(), 1);
        assert_eq!(sink.neighbor_ns.count(), 1);
        assert_eq!(sink.rebuilds(), 1);
        // Through a reference, too.
        let by_ref: &RecordingSink = &sink;
        by_ref.record_phase_ns(StepPhase::Force, 100);
        assert_eq!(sink.force_ns.count(), 3);
    }
}
