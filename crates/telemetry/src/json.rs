//! Minimal JSON value type, writer, and recursive-descent parser.
//!
//! This crate deliberately has no dependencies (it sits under the MD
//! inner loop), so it carries its own small JSON layer instead of
//! serde_json. Only what telemetry snapshots and journal export need:
//! objects, arrays, strings, f64/u64/i64 numbers, bools, null.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Object keys are ordered (BTreeMap) so snapshots are
/// deterministic and diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Unsigned integers keep full u64 precision (counter values).
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Array(Vec<Json>),
    Object(BTreeMap<String, Json>),
}

impl Json {
    pub fn object() -> Json {
        Json::Object(BTreeMap::new())
    }

    /// Insert into an object; panics if `self` is not an object (a
    /// programming error inside this crate, never data-dependent).
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Self {
        match self {
            Json::Object(map) => {
                map.insert(key.to_string(), value.into());
            }
            _ => panic!("Json::set on non-object"),
        }
        self
    }

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::I64(v) if v >= 0 => Some(v as u64),
            Json::F64(v) if v >= 0.0 && v.fract() == 0.0 => Some(v as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::U64(v) => i64::try_from(v).ok(),
            Json::I64(v) => Some(v),
            Json::F64(v) if v.fract() == 0.0 => Some(v as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Object(map) => Some(map),
            _ => None,
        }
    }

    /// Compact single-line encoding.
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty-printed encoding with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (full input must be consumed, modulo
    /// trailing whitespace).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::at(p.pos, "trailing characters"));
        }
        Ok(value)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::U64(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::I64(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Array(v)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_nan() || v.is_infinite() {
        // JSON has no NaN/Inf; null is the least-surprising encoding.
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{:.1}", v);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl JsonError {
    fn at(offset: usize, message: &str) -> JsonError {
        JsonError {
            offset,
            message: message.to_string(),
        }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::at(
                self.pos,
                &format!("expected '{}'", byte as char),
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::at(self.pos, &format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(JsonError::at(self.pos, "expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(JsonError::at(self.pos, "expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(JsonError::at(self.pos, "expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::at(self.pos, "unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let start = self.pos + 1;
                            let hex = self
                                .bytes
                                .get(start..start + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| JsonError::at(self.pos, "bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError::at(self.pos, "bad \\u escape"))?;
                            // Surrogate pairs are not needed for telemetry
                            // payloads; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(JsonError::at(self.pos, "bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so slices
                    // at char boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| JsonError::at(self.pos, "invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::at(start, "invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| JsonError::at(start, "invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let mut obj = Json::object();
        obj.set("name", "dispatch_latency")
            .set("count", 42u64)
            .set("mean", 1.5)
            .set("neg", -3i64)
            .set("ok", true)
            .set("none", Json::Null)
            .set("tags", Json::Array(vec![Json::from("a"), Json::from("b")]));
        let text = obj.to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, obj);
    }

    #[test]
    fn parses_nested_and_pretty() {
        let text = r#"{"a": [1, 2.5, {"b": "x\ny"}], "c": null}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        let pretty = v.to_string_pretty();
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn escapes_control_characters() {
        let v = Json::Str("tab\there \"quote\" \u{1}".to_string());
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn u64_precision_preserved() {
        let big = u64::MAX - 1;
        let text = Json::U64(big).to_string();
        assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(big));
    }
}
