//! # copernicus-telemetry
//!
//! Observability layer for the Copernicus reproduction: a thread-safe
//! metrics [`Registry`] (counters / gauges / fixed-bucket histograms
//! with labels), a structured event [`Journal`] (typed events, monotonic
//! timestamps, span begin/end pairs, bounded ring, JSONL export), and a
//! near-zero-cost [`TelemetrySink`] trait for the MD inner loop.
//!
//! The paper's pitch (§2) is that "the progress and the results of a
//! project can be monitored in real time"; Figs. 6–9 quantify overhead
//! per parallelism level. This crate is the measurement substrate for
//! both: every level of the stack (server, worker, MD kernel, controller
//! plugin, network simulator) pushes into the same [`Telemetry`] handle,
//! and `Telemetry::snapshot()` turns it into one deterministic JSON
//! document.
//!
//! Zero dependencies by design — it sits underneath `mdsim`'s inner
//! loop and carries its own tiny JSON layer ([`json::Json`]).

pub mod journal;
pub mod json;
pub mod metrics;
pub mod prom;
pub mod report;
pub mod sink;
pub mod trace;

pub use journal::{matched_span_pairs, Entry, Event, Journal, SpanGuard};
pub use json::{Json, JsonError};
pub use metrics::{buckets, labels, Counter, Gauge, Histogram, Labels, Registry};
pub use prom::render_prometheus;
pub use report::render_text;
pub use sink::{NullSink, RecordingSink, StepPhase, TelemetrySink};
pub use trace::{span_names, ActiveSpan, MergedTrace, ProcessLog, Span, TraceContext, Tracer};

use std::sync::Arc;

/// Well-known metric names, so producers and consumers agree without
/// stringly-typed drift.
pub mod names {
    pub const COMMANDS_DISPATCHED: &str = "commands_dispatched";
    pub const COMMANDS_COMPLETED: &str = "commands_completed";
    pub const COMMANDS_FAILED: &str = "commands_failed";
    pub const COMMANDS_REQUEUED: &str = "commands_requeued";
    /// Commands that exhausted their attempt budget and were dropped.
    pub const COMMANDS_DROPPED: &str = "commands_dropped";
    /// Results (completions or errors) discarded as duplicates of an
    /// already-accepted result or as carrying a stale attempt epoch.
    pub const STALE_RESULTS_DROPPED: &str = "stale_results_dropped";
    /// Backoff delay applied before re-queueing an errored command (s).
    pub const RETRY_BACKOFF: &str = "retry_backoff_secs";
    pub const WORKERS_CONNECTED: &str = "workers_connected";
    pub const WORKERS_LOST: &str = "workers_lost";
    pub const QUEUE_DEPTH: &str = "queue_depth";
    pub const RUNNING_COMMANDS: &str = "running_commands";
    pub const BYTES_RECEIVED: &str = "bytes_received";
    /// Time a command spent queued before dispatch (seconds).
    pub const DISPATCH_LATENCY: &str = "dispatch_latency_secs";
    /// Dispatch-to-completion time as seen by the server (seconds).
    pub const COMMAND_TURNAROUND: &str = "command_turnaround_secs";
    /// Per-command executor wall time as seen by the worker (seconds).
    pub const COMMAND_WALL: &str = "command_wall_secs";
    /// Checkpoint serialization + deposit time (seconds).
    pub const CHECKPOINT_WRITE: &str = "checkpoint_write_secs";
    pub const CHECKPOINT_BYTES: &str = "checkpoint_bytes";
    /// MD force-field evaluation per step (nanoseconds).
    pub const FORCE_LOOP_NS: &str = "md_force_ns_per_step";
    /// Integration (minus force) per step (nanoseconds).
    pub const INTEGRATE_NS: &str = "md_integrate_ns_per_step";
    /// Neighbor-list refresh per step (nanoseconds).
    pub const NEIGHBOR_NS: &str = "md_neighbor_ns_per_step";
    pub const NEIGHBOR_REBUILDS: &str = "md_neighbor_rebuilds";
    /// Non-bonded pairs streamed by the inner kernel (cumulative count;
    /// divide by wall time for pairs/sec).
    pub const NB_PAIRS: &str = "md_nonbonded_pairs";
    /// Resident bytes of the packed pair list (gauge).
    pub const NB_PACKED_BYTES: &str = "md_packed_list_bytes";
    /// MSM clustering time per generation (seconds).
    pub const CLUSTERING_SECS: &str = "msm_clustering_secs";
    pub const MSM_STATES: &str = "msm_states";
    /// Simulated network payload delivered end-to-end, by kind (bytes).
    pub const NET_BYTES: &str = "net_bytes";
    /// Simulated per-link carried traffic, by link and level (bytes).
    pub const NET_LINK_BYTES: &str = "net_link_bytes";
    /// Real wire-transport traffic, per link (`link`/`role` labels):
    /// payload + framing bytes written to the socket.
    pub const WIRE_BYTES_SENT: &str = "wire_bytes_sent";
    /// Real wire-transport traffic, per link: bytes read off the socket.
    pub const WIRE_BYTES_RECV: &str = "wire_bytes_recv";
    pub const WIRE_FRAMES_SENT: &str = "wire_frames_sent";
    pub const WIRE_FRAMES_RECV: &str = "wire_frames_recv";
    /// Successful link re-establishments after a drop (client side).
    pub const WIRE_RECONNECTS: &str = "wire_reconnects";
    /// Handshakes rejected (bad pre-shared key, bad magic, malformed).
    pub const WIRE_AUTH_FAILURES: &str = "wire_auth_failures";
    /// Replica-exchange Metropolis attempts evaluated at sync points.
    pub const REPEX_EXCHANGE_ATTEMPTS: &str = "repex_exchange_attempts";
    /// Replica-exchange attempts that were accepted (temperatures swapped).
    pub const REPEX_EXCHANGE_ACCEPTS: &str = "repex_exchange_accepts";
    /// Walkers that completed a full bottom-to-top-to-bottom traversal
    /// of the temperature ladder.
    pub const REPEX_ROUND_TRIPS: &str = "repex_round_trips";
    /// Replicas permanently removed from the ladder after their command
    /// exhausted its attempt budget.
    pub const REPEX_REPLICAS_DROPPED: &str = "repex_replicas_dropped";
}

/// The facade the rest of the workspace passes around: a shared
/// [`Registry`], a shared [`Journal`], and a shared [`Tracer`].
/// Cloning shares all three.
#[derive(Clone, Default)]
pub struct Telemetry {
    registry: Registry,
    journal: Journal,
    tracer: Tracer,
}

impl Telemetry {
    pub fn new() -> Telemetry {
        Telemetry::default()
    }

    /// A telemetry handle whose tracer is labelled with a process name
    /// (server name, worker pool, bench role…) so merged traces show
    /// which process each span came from. The default is "main".
    pub fn for_process(process: &str) -> Telemetry {
        Telemetry {
            registry: Registry::new(),
            journal: Journal::default(),
            tracer: Tracer::new(process),
        }
    }

    /// Journal ring capacity other than [`journal::DEFAULT_CAPACITY`].
    pub fn with_journal_capacity(capacity: usize) -> Telemetry {
        Telemetry {
            registry: Registry::new(),
            journal: Journal::with_capacity(capacity),
            tracer: Tracer::default(),
        }
    }

    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// A [`RecordingSink`] feeding the standard MD step histograms,
    /// labelled (e.g. by model or worker).
    pub fn step_sink(&self, labels: Labels) -> RecordingSink {
        RecordingSink::new(
            self.registry
                .histogram(names::FORCE_LOOP_NS, labels.clone(), buckets::NANOS),
            self.registry
                .histogram(names::INTEGRATE_NS, labels.clone(), buckets::NANOS),
            self.registry
                .histogram(names::NEIGHBOR_NS, labels, buckets::NANOS),
        )
    }

    /// One JSON document: all metrics plus a journal summary.
    pub fn snapshot(&self) -> Json {
        let mut snap = self.registry.snapshot();
        let mut journal = Json::object();
        journal
            .set("total_recorded", self.journal.total_recorded())
            .set("retained", self.journal.entries().len())
            .set("dropped", self.journal.dropped());
        snap.set("journal", journal);
        snap
    }

    pub fn snapshot_pretty(&self) -> String {
        self.snapshot().to_string_pretty()
    }

    /// The journal as JSONL (one event per line).
    pub fn export_journal_jsonl(&self) -> String {
        self.journal.export_jsonl()
    }

    /// The finished-span log as JSONL (process header + one span per
    /// line) — the input format of `copernicus trace merge`.
    pub fn export_trace_jsonl(&self) -> String {
        self.tracer.export_jsonl()
    }

    /// Prometheus text exposition of the current metrics (what
    /// `--metrics-addr` serves).
    pub fn render_prometheus(&self) -> String {
        prom::render_prometheus(&self.registry.snapshot())
    }

    /// Aligned-text rendering of the snapshot (`copernicus report`).
    pub fn render_report(&self) -> String {
        render_text(&self.snapshot())
    }
}

/// Time a closure, returning (result, nanoseconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let start = std::time::Instant::now();
    let result = f();
    (result, start.elapsed().as_nanos() as u64)
}

/// Shared handle alias used by call sites that want `Option<&Telemetry>`
/// threading without the generic sink machinery.
pub type SharedTelemetry = Arc<Telemetry>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_snapshot_combines_registry_and_journal() {
        let t = Telemetry::new();
        t.registry()
            .counter(names::COMMANDS_DISPATCHED, Labels::new())
            .add(3);
        t.journal().record(Event::WorkerLost { worker: 1 });
        let snap = t.snapshot();
        let metrics = snap.get("metrics").unwrap().as_array().unwrap();
        assert_eq!(metrics.len(), 1);
        assert_eq!(
            snap.get("journal")
                .unwrap()
                .get("total_recorded")
                .unwrap()
                .as_u64(),
            Some(1)
        );
        // Round-trips through the parser.
        let text = snap.to_string_pretty();
        assert_eq!(Json::parse(&text).unwrap(), snap);
    }

    #[test]
    fn step_sink_feeds_named_histograms() {
        let t = Telemetry::new();
        let sink = t.step_sink(labels(&[("model", "villin")]));
        sink.record_phase_ns(StepPhase::Force, 2_000);
        let h = t
            .registry()
            .find_histogram(names::FORCE_LOOP_NS, &labels(&[("model", "villin")]))
            .unwrap();
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn clones_share_state() {
        let t = Telemetry::new();
        let t2 = t.clone();
        t.registry().counter("x", Labels::new()).inc();
        t2.journal().note("shared");
        assert_eq!(t2.registry().counter_total("x"), 1);
        assert_eq!(t.journal().total_recorded(), 1);
    }

    #[test]
    fn timed_measures_something() {
        let (value, ns) = timed(|| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            42
        });
        assert_eq!(value, 42);
        assert!(ns >= 1_000_000, "ns = {ns}");
    }
}
