//! Write-ahead log of server lifecycle transitions.
//!
//! The server is the coordination point for a whole project, yet until
//! this module existed its queue, attempt epochs and checkpoint
//! bookkeeping lived only in process memory — the one fault the
//! exactly-once lifecycle could not survive was the server itself
//! dying. `Wal` persists every transition that flows through the
//! single `Server::transition` chokepoint (plus spawn/finish actions
//! and checkpoint deposits) as length-prefixed, CRC-checksummed JSONL
//! records, and replays them on restart to the exact pre-crash state:
//! queued work is re-queued, in-flight commands keep their attempt
//! epochs (so duplicate results from surviving workers are still
//! deduped) and are re-orphaned by the ordinary watchdog when their
//! pre-crash workers never resume heartbeating.
//!
//! The record encoding reuses the telemetry journal machinery — the
//! dependency-free [`Json`] value type with its deterministic
//! (BTreeMap-ordered) writer — rather than serde, so a WAL written by
//! one build replays byte-identically under another.
//!
//! ## Frame format
//!
//! ```text
//! llllllll cccccccc {"kind":"dispatched",...}\n
//! ```
//!
//! `llllllll` is the JSON byte length in lower-case hex, `cccccccc`
//! the CRC-32 (IEEE) of those bytes. A torn tail — short header, short
//! body, bad checksum, missing trailing newline, or unparseable JSON —
//! ends replay at the last clean record and is truncated away on open;
//! a partially-written record is therefore dropped cleanly, never
//! half-applied.
//!
//! ## Snapshot + compaction
//!
//! The log would otherwise grow without bound, so after
//! [`COMPACT_EVERY`] terminal transitions (the cadence is keyed to the
//! sharded ledger's terminal set: completions, drops and cancels) the
//! WAL rewrites itself as a snapshot of the live state — a fresh
//! record sequence that replays to the identical [`RecoveredState`] —
//! into a temp file, fsyncs it, and atomically renames it over the
//! log. Counters accumulated by retired records are carried by a
//! single `counters` record at the head of each snapshot.

use crate::command::Command;
use crate::ids::{CommandId, ProjectId, WorkerId};
use crate::resources::Resources;
use copernicus_telemetry::Json;
use std::collections::{BTreeMap, BTreeSet};
use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Terminal transitions between snapshot/compaction passes.
pub const COMPACT_EVERY: u32 = 256;

/// Name of the log file inside the state directory.
pub const WAL_FILE: &str = "wal.log";

/// When appended records are flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncMode {
    /// fsync after every record: no acknowledged transition is ever
    /// lost, at a syscall per transition.
    Always,
    /// fsync at most once per interval: bounded data loss window,
    /// amortized cost. Records are still *written* immediately — only
    /// the flush to stable storage is deferred.
    Every(Duration),
    /// Never fsync explicitly; rely on the OS page cache. Survives a
    /// process kill (the write() happened) but not a host crash.
    Never,
}

impl Default for FsyncMode {
    fn default() -> Self {
        FsyncMode::Always
    }
}

impl FsyncMode {
    /// Parse a CLI spelling: `always`, `never`, or a millisecond
    /// interval (`250` or `250ms`).
    pub fn parse(s: &str) -> Option<FsyncMode> {
        match s {
            "always" => Some(FsyncMode::Always),
            "never" => Some(FsyncMode::Never),
            other => other
                .strip_suffix("ms")
                .unwrap_or(other)
                .parse::<u64>()
                .ok()
                .map(|ms| FsyncMode::Every(Duration::from_millis(ms))),
        }
    }
}

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// One durable lifecycle event. The taxonomy mirrors the transitions
/// of the lifecycle machine plus the bookkeeping the server needs to
/// restore itself (see DESIGN.md §15).
#[derive(Debug, Clone)]
pub enum WalRecord {
    /// `ProjectStarted` has been delivered to the controller; replay
    /// must not deliver it again.
    Started,
    /// A command entered the queue (spawn or snapshot). Carries the
    /// full schedulable command, including its current attempt count.
    Spawned { cmd: Command },
    /// Queued → Dispatched on `worker` at attempt `epoch`.
    Dispatched {
        command: CommandId,
        worker: WorkerId,
        epoch: u32,
    },
    /// Terminal: result accepted (`bytes` = result payload size).
    Completed { command: CommandId, bytes: u64 },
    /// Fault with retry budget left: back to Queued with the burned
    /// attempt recorded.
    Requeued { command: CommandId, attempts: u32 },
    /// Terminal: retry budget exhausted.
    Dropped { command: CommandId, attempts: u32 },
    /// Terminal: cancelled (duplicate overtaken by an accepted result,
    /// or an explicit controller cancel).
    Cancelled { command: CommandId },
    /// A checkpoint deposit from a (possibly failed) execution.
    /// `data` is the checkpoint serialized as a JSON string.
    CheckpointStored { command: CommandId, data: String },
    /// The checkpoint was retired (terminal transition).
    CheckpointCleared { command: CommandId },
    /// A worker was declared lost (counter only; the per-command
    /// consequences arrive as their own `Requeued`/`Dropped` records).
    WorkerLost { worker: WorkerId },
    /// A stale (wrong-epoch) result was discarded.
    StaleResult,
    /// Opaque controller snapshot (serialized JSON string), replacing
    /// any earlier one.
    ControllerState { state: String },
    /// The project finished with this serialized result.
    Finished { result: String },
    /// Counter baseline written at the head of a compaction snapshot.
    Counters { counters: WalCounters },
}

/// The `ProjectResult` counters a replay reconstructs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalCounters {
    pub commands_completed: u64,
    pub commands_requeued: u64,
    pub commands_dropped: u64,
    pub stale_results_dropped: u64,
    pub workers_lost: u64,
    pub bytes_received: u64,
}

fn command_to_json(cmd: &Command) -> Json {
    let mut obj = Json::object();
    obj.set("id", cmd.id.0)
        .set("project", cmd.project.0)
        .set("type", cmd.command_type.as_str())
        .set("priority", cmd.priority as i64)
        .set("cores", cmd.required.cores)
        .set("memory_mb", cmd.required.memory_mb)
        .set("attempts", cmd.attempts)
        .set(
            "payload",
            serde_json::to_string(&cmd.payload).unwrap_or_else(|_| "null".to_string()),
        );
    if let Some(cp) = &cmd.checkpoint {
        obj.set(
            "checkpoint",
            serde_json::to_string(cp).unwrap_or_else(|_| "null".to_string()),
        );
    }
    obj
}

fn command_from_json(obj: &Json) -> Option<Command> {
    let cores = obj.get("cores")?.as_u64()? as usize;
    Some(Command {
        id: CommandId(obj.get("id")?.as_u64()?),
        project: ProjectId(obj.get("project")?.as_u64()?),
        command_type: obj.get("type")?.as_str()?.to_string(),
        priority: obj.get("priority")?.as_i64()? as i32,
        required: Resources::new(cores.max(1), obj.get("memory_mb")?.as_u64()?),
        payload: serde_json::from_str(obj.get("payload")?.as_str()?).ok()?,
        checkpoint: match obj.get("checkpoint") {
            Some(cp) => Some(serde_json::from_str(cp.as_str()?).ok()?),
            None => None,
        },
        attempts: obj.get("attempts")?.as_u64()? as u32,
        not_before: None,
        trace: None,
    })
}

impl WalRecord {
    pub fn kind(&self) -> &'static str {
        match self {
            WalRecord::Started => "started",
            WalRecord::Spawned { .. } => "spawned",
            WalRecord::Dispatched { .. } => "dispatched",
            WalRecord::Completed { .. } => "completed",
            WalRecord::Requeued { .. } => "requeued",
            WalRecord::Dropped { .. } => "dropped",
            WalRecord::Cancelled { .. } => "cancelled",
            WalRecord::CheckpointStored { .. } => "ckpt_stored",
            WalRecord::CheckpointCleared { .. } => "ckpt_cleared",
            WalRecord::WorkerLost { .. } => "worker_lost",
            WalRecord::StaleResult => "stale_result",
            WalRecord::ControllerState { .. } => "controller",
            WalRecord::Finished { .. } => "finished",
            WalRecord::Counters { .. } => "counters",
        }
    }

    /// Whether this record retires a command from the live set — the
    /// unit the compaction cadence counts.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            WalRecord::Completed { .. } | WalRecord::Dropped { .. } | WalRecord::Cancelled { .. }
        )
    }

    fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("kind", self.kind());
        match self {
            WalRecord::Started | WalRecord::StaleResult => {}
            WalRecord::Spawned { cmd } => {
                obj.set("cmd", command_to_json(cmd));
            }
            WalRecord::Dispatched {
                command,
                worker,
                epoch,
            } => {
                obj.set("command", command.0)
                    .set("worker", worker.0)
                    .set("epoch", *epoch);
            }
            WalRecord::Completed { command, bytes } => {
                obj.set("command", command.0).set("bytes", *bytes);
            }
            WalRecord::Requeued { command, attempts }
            | WalRecord::Dropped { command, attempts } => {
                obj.set("command", command.0).set("attempts", *attempts);
            }
            WalRecord::Cancelled { command } | WalRecord::CheckpointCleared { command } => {
                obj.set("command", command.0);
            }
            WalRecord::CheckpointStored { command, data } => {
                obj.set("command", command.0).set("data", data.as_str());
            }
            WalRecord::WorkerLost { worker } => {
                obj.set("worker", worker.0);
            }
            WalRecord::ControllerState { state } => {
                obj.set("state", state.as_str());
            }
            WalRecord::Finished { result } => {
                obj.set("result", result.as_str());
            }
            WalRecord::Counters { counters } => {
                obj.set("completed", counters.commands_completed)
                    .set("requeued", counters.commands_requeued)
                    .set("dropped", counters.commands_dropped)
                    .set("stale", counters.stale_results_dropped)
                    .set("lost", counters.workers_lost)
                    .set("bytes", counters.bytes_received);
            }
        }
        obj
    }

    fn from_json(obj: &Json) -> Option<WalRecord> {
        let command = || obj.get("command").and_then(Json::as_u64).map(CommandId);
        Some(match obj.get("kind")?.as_str()? {
            "started" => WalRecord::Started,
            "stale_result" => WalRecord::StaleResult,
            "spawned" => WalRecord::Spawned {
                cmd: command_from_json(obj.get("cmd")?)?,
            },
            "dispatched" => WalRecord::Dispatched {
                command: command()?,
                worker: WorkerId(obj.get("worker")?.as_u64()?),
                epoch: obj.get("epoch")?.as_u64()? as u32,
            },
            "completed" => WalRecord::Completed {
                command: command()?,
                bytes: obj.get("bytes")?.as_u64()?,
            },
            "requeued" => WalRecord::Requeued {
                command: command()?,
                attempts: obj.get("attempts")?.as_u64()? as u32,
            },
            "dropped" => WalRecord::Dropped {
                command: command()?,
                attempts: obj.get("attempts")?.as_u64()? as u32,
            },
            "cancelled" => WalRecord::Cancelled {
                command: command()?,
            },
            "ckpt_stored" => WalRecord::CheckpointStored {
                command: command()?,
                data: obj.get("data")?.as_str()?.to_string(),
            },
            "ckpt_cleared" => WalRecord::CheckpointCleared {
                command: command()?,
            },
            "worker_lost" => WalRecord::WorkerLost {
                worker: WorkerId(obj.get("worker")?.as_u64()?),
            },
            "controller" => WalRecord::ControllerState {
                state: obj.get("state")?.as_str()?.to_string(),
            },
            "finished" => WalRecord::Finished {
                result: obj.get("result")?.as_str()?.to_string(),
            },
            "counters" => WalRecord::Counters {
                counters: WalCounters {
                    commands_completed: obj.get("completed")?.as_u64()?,
                    commands_requeued: obj.get("requeued")?.as_u64()?,
                    commands_dropped: obj.get("dropped")?.as_u64()?,
                    stale_results_dropped: obj.get("stale")?.as_u64()?,
                    workers_lost: obj.get("lost")?.as_u64()?,
                    bytes_received: obj.get("bytes")?.as_u64()?,
                },
            },
            _ => return None,
        })
    }
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE) — hand-rolled so the frame format has no dependency.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = u32::MAX;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Frame header: 8 hex digits of length, space, 8 hex digits of CRC,
/// space. The body is the JSON record followed by a newline.
const HEADER_LEN: usize = 18;

fn encode_frame(record: &WalRecord) -> Vec<u8> {
    let json = record.to_json().to_string();
    let mut out = Vec::with_capacity(HEADER_LEN + json.len() + 1);
    out.extend_from_slice(format!("{:08x} {:08x} ", json.len(), crc32(json.as_bytes())).as_bytes());
    out.extend_from_slice(json.as_bytes());
    out.push(b'\n');
    out
}

/// Parse one frame at the start of `bytes`. Returns the record and the
/// total frame length, or `None` for anything torn or corrupt.
fn parse_frame(bytes: &[u8]) -> Option<(WalRecord, usize)> {
    if bytes.len() < HEADER_LEN {
        return None;
    }
    let header = std::str::from_utf8(&bytes[..HEADER_LEN]).ok()?;
    if header.as_bytes()[8] != b' ' || header.as_bytes()[17] != b' ' {
        return None;
    }
    let len = usize::from_str_radix(&header[..8], 16).ok()?;
    let crc = u32::from_str_radix(&header[9..17], 16).ok()?;
    let end = HEADER_LEN.checked_add(len)?;
    if bytes.len() < end + 1 || bytes[end] != b'\n' {
        return None;
    }
    let body = &bytes[HEADER_LEN..end];
    if crc32(body) != crc {
        return None;
    }
    let json = Json::parse(std::str::from_utf8(body).ok()?).ok()?;
    let record = WalRecord::from_json(&json)?;
    Some((record, end + 1))
}

// ---------------------------------------------------------------------------
// Replay state
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LivePhase {
    Queued,
    Running(WorkerId),
}

/// The state a WAL replays to: the live command set with phases and
/// attempt epochs, surviving checkpoints, the controller snapshot, the
/// counter totals and the project-level flags. The `Wal` keeps one as
/// a shadow of the running server (updated on every append) so
/// compaction can snapshot without asking the server anything.
#[derive(Debug, Clone, Default)]
pub struct RecoveredState {
    /// `ProjectStarted` already delivered.
    pub started: bool,
    /// Project finished with this serialized result.
    pub finished: Option<String>,
    /// Latest controller snapshot (serialized JSON), if any.
    pub controller: Option<String>,
    pub counters: WalCounters,
    /// Live commands keyed by id (BTreeMap: deterministic iteration).
    live: BTreeMap<u64, (Command, LivePhase)>,
    /// Serialized checkpoints for live commands.
    checkpoints: BTreeMap<u64, String>,
    /// Ids retired since the last compaction — late checkpoint deposits
    /// for these are ignored rather than resurrected as leaks.
    retired: BTreeSet<u64>,
    /// Highest command id ever seen (`None` when no command was).
    max_id: Option<u64>,
}

impl RecoveredState {
    pub fn is_empty(&self) -> bool {
        !self.started && self.live.is_empty() && self.finished.is_none()
    }

    /// First command id that is safe to mint after recovery.
    pub fn next_command_id(&self) -> u64 {
        self.max_id.map_or(0, |max| max + 1)
    }

    pub fn n_live(&self) -> usize {
        self.live.len()
    }

    /// Commands to re-queue, in id order, with attempt counts preserved
    /// and checkpoints re-attached.
    pub fn queued(&self) -> Vec<Command> {
        self.live
            .values()
            .filter(|(_, phase)| *phase == LivePhase::Queued)
            .map(|(cmd, _)| self.with_checkpoint(cmd))
            .collect()
    }

    /// In-flight commands with the workers that held them at the crash,
    /// in id order. `cmd.attempts` is the dispatched epoch, so a
    /// surviving worker's result still matches and a re-dispatch after
    /// the watchdog re-orphans still outranks it.
    pub fn running(&self) -> Vec<(Command, WorkerId)> {
        self.live
            .values()
            .filter_map(|(cmd, phase)| match phase {
                LivePhase::Running(worker) => Some((self.with_checkpoint(cmd), *worker)),
                LivePhase::Queued => None,
            })
            .collect()
    }

    /// Surviving checkpoints as (id, parsed value) pairs, id order.
    pub fn checkpoints(&self) -> Vec<(CommandId, serde_json::Value)> {
        self.checkpoints
            .iter()
            .filter_map(|(id, data)| serde_json::from_str(data).ok().map(|v| (CommandId(*id), v)))
            .collect()
    }

    fn with_checkpoint(&self, cmd: &Command) -> Command {
        let mut cmd = cmd.clone();
        if let Some(data) = self.checkpoints.get(&cmd.id.0) {
            if let Ok(v) = serde_json::from_str(data) {
                cmd.checkpoint = Some(v);
            }
        }
        cmd
    }

    /// Apply one record. Total: unknown ids and out-of-order records
    /// are ignored rather than trusted (a WAL is still external input).
    pub fn apply(&mut self, record: &WalRecord) {
        match record {
            WalRecord::Started => self.started = true,
            WalRecord::Spawned { cmd } => {
                self.max_id = Some(self.max_id.map_or(cmd.id.0, |max| max.max(cmd.id.0)));
                self.retired.remove(&cmd.id.0);
                self.live.insert(cmd.id.0, (cmd.clone(), LivePhase::Queued));
            }
            WalRecord::Dispatched {
                command,
                worker,
                epoch,
            } => {
                if let Some((cmd, phase)) = self.live.get_mut(&command.0) {
                    cmd.attempts = *epoch;
                    *phase = LivePhase::Running(*worker);
                }
            }
            WalRecord::Requeued { command, attempts } => {
                self.counters.commands_requeued += 1;
                if let Some((cmd, phase)) = self.live.get_mut(&command.0) {
                    cmd.attempts = *attempts;
                    *phase = LivePhase::Queued;
                }
            }
            WalRecord::Completed { command, bytes } => {
                self.counters.commands_completed += 1;
                self.counters.bytes_received += bytes;
                self.retire(*command);
            }
            WalRecord::Dropped { command, .. } => {
                self.counters.commands_dropped += 1;
                self.retire(*command);
            }
            WalRecord::Cancelled { command } => {
                self.retire(*command);
            }
            WalRecord::CheckpointStored { command, data } => {
                if !self.retired.contains(&command.0) {
                    self.checkpoints.insert(command.0, data.clone());
                }
            }
            WalRecord::CheckpointCleared { command } => {
                self.checkpoints.remove(&command.0);
            }
            WalRecord::WorkerLost { .. } => self.counters.workers_lost += 1,
            WalRecord::StaleResult => self.counters.stale_results_dropped += 1,
            WalRecord::ControllerState { state } => self.controller = Some(state.clone()),
            WalRecord::Finished { result } => self.finished = Some(result.clone()),
            WalRecord::Counters { counters } => self.counters = *counters,
        }
    }

    fn retire(&mut self, command: CommandId) {
        self.live.remove(&command.0);
        self.checkpoints.remove(&command.0);
        self.retired.insert(command.0);
    }

    /// The record sequence a compaction snapshot writes: replaying it
    /// yields a state identical to `self` (minus the retired-id set,
    /// which only guards against late deposits within one log
    /// generation).
    fn snapshot_records(&self) -> Vec<WalRecord> {
        let mut records = Vec::new();
        if self.started {
            records.push(WalRecord::Started);
        }
        records.push(WalRecord::Counters {
            counters: self.counters,
        });
        if let Some(state) = &self.controller {
            records.push(WalRecord::ControllerState {
                state: state.clone(),
            });
        }
        for (cmd, phase) in self.live.values() {
            records.push(WalRecord::Spawned { cmd: cmd.clone() });
            if let LivePhase::Running(worker) = phase {
                records.push(WalRecord::Dispatched {
                    command: cmd.id,
                    worker: *worker,
                    epoch: cmd.attempts,
                });
            }
        }
        for (id, data) in &self.checkpoints {
            records.push(WalRecord::CheckpointStored {
                command: CommandId(*id),
                data: data.clone(),
            });
        }
        if let Some(result) = &self.finished {
            records.push(WalRecord::Finished {
                result: result.clone(),
            });
        }
        records
    }

    /// Deterministic single-line dump of the whole state: same state →
    /// byte-identical string (BTreeMap key order everywhere). The CI
    /// replay-determinism check compares two independent replays with
    /// this.
    pub fn dump(&self) -> String {
        let mut obj = Json::object();
        obj.set("started", self.started)
            .set("next_id", self.next_command_id())
            .set(
                "finished",
                match &self.finished {
                    Some(r) => Json::from(r.as_str()),
                    None => Json::Null,
                },
            )
            .set(
                "controller",
                match &self.controller {
                    Some(s) => Json::from(s.as_str()),
                    None => Json::Null,
                },
            );
        let mut counters = Json::object();
        counters
            .set("completed", self.counters.commands_completed)
            .set("requeued", self.counters.commands_requeued)
            .set("dropped", self.counters.commands_dropped)
            .set("stale", self.counters.stale_results_dropped)
            .set("lost", self.counters.workers_lost)
            .set("bytes", self.counters.bytes_received);
        obj.set("counters", counters);
        let commands: Vec<Json> = self
            .live
            .values()
            .map(|(cmd, phase)| {
                let mut c = command_to_json(cmd);
                match phase {
                    LivePhase::Queued => c.set("phase", "queued"),
                    LivePhase::Running(worker) => c.set("phase", "running").set("worker", worker.0),
                };
                c
            })
            .collect();
        obj.set("commands", commands);
        let checkpoints: Vec<Json> = self
            .checkpoints
            .iter()
            .map(|(id, data)| {
                let mut c = Json::object();
                c.set("command", *id).set("data", data.as_str());
                c
            })
            .collect();
        obj.set("checkpoints", checkpoints);
        obj.to_string()
    }
}

/// Replay a byte buffer: returns the state and the length of the clean
/// prefix (everything past it is a torn or corrupt tail).
pub fn replay_bytes(bytes: &[u8]) -> (RecoveredState, usize) {
    let mut state = RecoveredState::default();
    let mut pos = 0;
    while let Some((record, frame_len)) = parse_frame(&bytes[pos..]) {
        state.apply(&record);
        pos += frame_len;
    }
    (state, pos)
}

/// Read-only replay of a state directory (no truncation, no append
/// handle): what `Wal::open` would recover, for determinism checks and
/// inspection tooling.
pub fn replay_dir(dir: &Path) -> io::Result<RecoveredState> {
    let path = dir.join(WAL_FILE);
    if !path.exists() {
        return Ok(RecoveredState::default());
    }
    let mut bytes = Vec::new();
    File::open(&path)?.read_to_end(&mut bytes)?;
    Ok(replay_bytes(&bytes).0)
}

// ---------------------------------------------------------------------------
// The log itself
// ---------------------------------------------------------------------------

struct WalInner {
    file: File,
    path: PathBuf,
    mode: FsyncMode,
    last_sync: Instant,
    /// Writes since the last fsync (Every mode flushes lazily).
    dirty: bool,
    state: RecoveredState,
    terminals_since_compact: u32,
}

/// Cloneable handle to the write-ahead log. All appends serialize
/// through one mutex (the frame format demands it); the lock is
/// poison-tolerant for the same reason the shard locks are — a
/// panicking thread must not take durability down with it.
#[derive(Clone)]
pub struct Wal {
    inner: Arc<Mutex<WalInner>>,
}

impl Wal {
    /// Open (or create) the WAL in `dir`, replaying any existing log.
    /// A torn tail is truncated away so the next append lands on a
    /// clean record boundary. Returns the handle and the recovered
    /// pre-crash state.
    pub fn open(dir: &Path, mode: FsyncMode) -> io::Result<(Wal, RecoveredState)> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(WAL_FILE);
        let mut state = RecoveredState::default();
        if path.exists() {
            let mut bytes = Vec::new();
            File::open(&path)?.read_to_end(&mut bytes)?;
            let (recovered, clean_len) = replay_bytes(&bytes);
            state = recovered;
            if clean_len < bytes.len() {
                // Drop the torn tail now, while nothing is appending.
                OpenOptions::new()
                    .write(true)
                    .open(&path)?
                    .set_len(clean_len as u64)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let wal = Wal {
            inner: Arc::new(Mutex::new(WalInner {
                file,
                path,
                mode,
                last_sync: Instant::now(),
                dirty: false,
                state: state.clone(),
                terminals_since_compact: 0,
            })),
        };
        Ok((wal, state))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, WalInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Append one record durably (per the fsync mode) and fold it into
    /// the shadow state; triggers compaction on terminal-count cadence.
    pub fn append(&self, record: &WalRecord) -> io::Result<()> {
        let mut inner = self.lock();
        inner.state.apply(record);
        let frame = encode_frame(record);
        inner.file.write_all(&frame)?;
        inner.dirty = true;
        match inner.mode {
            FsyncMode::Always => {
                inner.file.sync_data()?;
                inner.dirty = false;
                inner.last_sync = Instant::now();
            }
            FsyncMode::Every(interval) => {
                if inner.last_sync.elapsed() >= interval {
                    inner.file.sync_data()?;
                    inner.dirty = false;
                    inner.last_sync = Instant::now();
                }
            }
            FsyncMode::Never => {}
        }
        if record.is_terminal() {
            inner.terminals_since_compact += 1;
            if inner.terminals_since_compact >= COMPACT_EVERY {
                compact_locked(&mut inner)?;
            }
        }
        Ok(())
    }

    /// Force an fsync regardless of mode.
    pub fn sync(&self) -> io::Result<()> {
        let mut inner = self.lock();
        inner.file.sync_data()?;
        inner.dirty = false;
        inner.last_sync = Instant::now();
        Ok(())
    }

    /// Rewrite the log as a snapshot of the live state now.
    pub fn compact(&self) -> io::Result<()> {
        compact_locked(&mut self.lock())
    }

    /// Deterministic dump of the shadow state (see
    /// [`RecoveredState::dump`]).
    pub fn state_dump(&self) -> String {
        self.lock().state.dump()
    }

    /// Bytes currently in the log file (compaction observability).
    pub fn log_len(&self) -> u64 {
        self.lock().file.metadata().map(|m| m.len()).unwrap_or(0)
    }
}

fn compact_locked(inner: &mut WalInner) -> io::Result<()> {
    let tmp = inner.path.with_extension("log.tmp");
    {
        let mut out = File::create(&tmp)?;
        for record in inner.state.snapshot_records() {
            out.write_all(&encode_frame(&record))?;
        }
        out.sync_data()?;
    }
    std::fs::rename(&tmp, &inner.path)?;
    // Best-effort directory fsync so the rename itself is durable.
    if let Some(dir) = inner.path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    inner.file = OpenOptions::new().append(true).open(&inner.path)?;
    inner.terminals_since_compact = 0;
    inner.state.retired.clear();
    inner.last_sync = Instant::now();
    inner.dirty = false;
    Ok(())
}

impl Drop for WalInner {
    fn drop(&mut self) {
        if self.dirty {
            let _ = self.file.sync_data();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::CommandSpec;
    use serde_json::json;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "copernicus_wal_{}_{}_{}",
            tag,
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn cmd(id: u64, payload: serde_json::Value) -> Command {
        let mut c = Command::from_spec(
            CommandId(id),
            ProjectId(7),
            CommandSpec::new("mdrun", Resources::new(2, 64), payload).with_priority(3),
        );
        c.attempts = 1;
        c
    }

    /// splitmix64: same generator the wire fragmentation sweeps use.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn test_seed() -> u64 {
        std::env::var("COPERNICUS_TEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0xC0FFEE)
    }

    /// A seeded mixed-record workload touching every variant.
    fn seeded_records(seed: u64, n_commands: u64) -> Vec<WalRecord> {
        let mut rng = seed;
        let mut records = vec![WalRecord::Started];
        for id in 1..=n_commands {
            // Keep generated ints < 2^32: the shadow harness backs
            // serde_json numbers with f64.
            let v = splitmix64(&mut rng) & 0xFFFF_FFFF;
            records.push(WalRecord::Spawned {
                cmd: cmd(id, json!({ "seed_val": v })),
            });
            records.push(WalRecord::Dispatched {
                command: CommandId(id),
                worker: WorkerId(100 + id % 3),
                epoch: 1,
            });
            match splitmix64(&mut rng) % 4 {
                0 => records.push(WalRecord::Completed {
                    command: CommandId(id),
                    bytes: v % 1000,
                }),
                1 => {
                    records.push(WalRecord::CheckpointStored {
                        command: CommandId(id),
                        data: format!("{{\"step\":{}}}", v % 100),
                    });
                    records.push(WalRecord::Requeued {
                        command: CommandId(id),
                        attempts: 1,
                    });
                }
                2 => records.push(WalRecord::Dropped {
                    command: CommandId(id),
                    attempts: 3,
                }),
                // Leave the command in flight.
                _ => {}
            }
        }
        records.push(WalRecord::ControllerState {
            state: "{\"round\":2}".to_string(),
        });
        records
    }

    #[test]
    fn records_roundtrip_through_frames() {
        let records = seeded_records(test_seed(), 8);
        for record in &records {
            let frame = encode_frame(record);
            let (back, len) = parse_frame(&frame).expect("frame must parse");
            assert_eq!(len, frame.len());
            // Re-encoding equality is the stronger property (and
            // `Command` carries no `PartialEq`).
            assert_eq!(encode_frame(&back), frame);
        }
    }

    #[test]
    fn open_append_reopen_recovers_identical_state() {
        let dir = temp_dir("reopen");
        let (wal, initial) = Wal::open(&dir, FsyncMode::Always).unwrap();
        assert!(initial.is_empty());
        for record in seeded_records(test_seed(), 10) {
            wal.append(&record).unwrap();
        }
        let dump = wal.state_dump();
        drop(wal);

        let (wal2, recovered) = Wal::open(&dir, FsyncMode::Never).unwrap();
        assert_eq!(recovered.dump(), dump, "replay must match the shadow state");
        assert!(!recovered.is_empty());
        assert!(recovered.started);
        drop(wal2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovered_state_splits_queued_and_running_with_epochs() {
        let mut state = RecoveredState::default();
        state.apply(&WalRecord::Started);
        state.apply(&WalRecord::Spawned {
            cmd: cmd(1, json!({"i": 1})),
        });
        state.apply(&WalRecord::Spawned {
            cmd: cmd(2, json!({"i": 2})),
        });
        state.apply(&WalRecord::Spawned {
            cmd: cmd(3, json!({"i": 3})),
        });
        state.apply(&WalRecord::Dispatched {
            command: CommandId(2),
            worker: WorkerId(9),
            epoch: 4,
        });
        state.apply(&WalRecord::CheckpointStored {
            command: CommandId(1),
            data: "{\"step\":5}".to_string(),
        });
        state.apply(&WalRecord::Completed {
            command: CommandId(3),
            bytes: 10,
        });

        let queued = state.queued();
        assert_eq!(queued.len(), 1);
        assert_eq!(queued[0].id, CommandId(1));
        assert_eq!(
            queued[0].checkpoint,
            Some(json!({"step": 5})),
            "checkpoint re-attached on recovery"
        );
        let running = state.running();
        assert_eq!(running.len(), 1);
        assert_eq!(running[0].0.id, CommandId(2));
        assert_eq!(running[0].0.attempts, 4, "epoch preserved");
        assert_eq!(running[0].1, WorkerId(9));
        assert_eq!(state.next_command_id(), 4);
        assert_eq!(state.counters.commands_completed, 1);
    }

    #[test]
    fn late_checkpoint_for_retired_command_is_ignored() {
        let mut state = RecoveredState::default();
        state.apply(&WalRecord::Spawned {
            cmd: cmd(1, json!(null)),
        });
        state.apply(&WalRecord::Cancelled {
            command: CommandId(1),
        });
        state.apply(&WalRecord::CheckpointStored {
            command: CommandId(1),
            data: "{}".to_string(),
        });
        assert!(state.checkpoints().is_empty(), "terminal id must not leak");
    }

    /// Satellite: torn-write sweep. Truncate the log at **every** byte
    /// boundary of the final record and assert replay either fully
    /// applies it or cleanly drops the tail — never panics, never
    /// double-applies, never resurrects half a record.
    #[test]
    fn torn_tail_truncation_sweep_never_panics_or_double_applies() {
        let records = seeded_records(test_seed(), 6);
        let (without_last, last) = records.split_at(records.len() - 1);
        let mut prefix = Vec::new();
        for record in without_last {
            prefix.extend_from_slice(&encode_frame(record));
        }
        let final_frame = encode_frame(&last[0]);

        let mut prefix_state = RecoveredState::default();
        for record in without_last {
            prefix_state.apply(record);
        }
        let prefix_dump = prefix_state.dump();
        let mut full_state = prefix_state.clone();
        full_state.apply(&last[0]);
        let full_dump = full_state.dump();

        for cut in 0..=final_frame.len() {
            let mut bytes = prefix.clone();
            bytes.extend_from_slice(&final_frame[..cut]);
            let (state, clean_len) = replay_bytes(&bytes);
            if cut == final_frame.len() {
                assert_eq!(state.dump(), full_dump, "cut={cut}: full frame applies");
                assert_eq!(clean_len, bytes.len());
            } else {
                assert_eq!(
                    state.dump(),
                    prefix_dump,
                    "cut={cut}: torn tail must be dropped whole"
                );
                assert_eq!(clean_len, prefix.len(), "cut={cut}");
            }
        }
    }

    /// A corrupted byte *inside* the tail record (bad CRC) also drops
    /// the tail cleanly.
    #[test]
    fn corrupt_tail_checksum_drops_the_tail() {
        let records = seeded_records(test_seed(), 3);
        let mut bytes = Vec::new();
        for record in &records {
            bytes.extend_from_slice(&encode_frame(record));
        }
        let (clean, _) = replay_bytes(&bytes);
        let body_byte = bytes.len() - 2; // inside the final record's JSON
        bytes[body_byte] ^= 0x01;
        let (state, clean_len) = replay_bytes(&bytes);
        assert!(clean_len < bytes.len());
        let mut expect = RecoveredState::default();
        for record in &records[..records.len() - 1] {
            expect.apply(record);
        }
        assert_eq!(state.dump(), expect.dump());
        assert_ne!(state.dump(), clean.dump());
    }

    /// Torn tails are truncated on open, so the next append lands on a
    /// record boundary and the log stays parseable end to end.
    #[test]
    fn open_truncates_torn_tail_and_appends_cleanly() {
        let dir = temp_dir("torn");
        let (wal, _) = Wal::open(&dir, FsyncMode::Always).unwrap();
        wal.append(&WalRecord::Started).unwrap();
        wal.append(&WalRecord::Spawned {
            cmd: cmd(1, json!(1u32)),
        })
        .unwrap();
        drop(wal);

        let path = dir.join(WAL_FILE);
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();

        let (wal, recovered) = Wal::open(&dir, FsyncMode::Always).unwrap();
        assert!(recovered.started);
        assert_eq!(recovered.n_live(), 0, "torn spawn must be dropped");
        wal.append(&WalRecord::Spawned {
            cmd: cmd(2, json!(2u32)),
        })
        .unwrap();
        drop(wal);

        let recovered = replay_dir(&dir).unwrap();
        assert_eq!(recovered.n_live(), 1);
        assert_eq!(recovered.queued()[0].id, CommandId(2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// CI determinism check: two independent replays of the same log
    /// produce byte-identical dumps.
    #[test]
    fn replay_twice_is_byte_identical() {
        let dir = temp_dir("determinism");
        let (wal, _) = Wal::open(&dir, FsyncMode::Every(Duration::from_millis(50))).unwrap();
        for record in seeded_records(test_seed(), 12) {
            wal.append(&record).unwrap();
        }
        drop(wal);
        let first = replay_dir(&dir).unwrap().dump();
        let second = replay_dir(&dir).unwrap().dump();
        assert_eq!(first, second);
        assert!(!first.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Compaction rewrites the log as a snapshot that replays to the
    /// identical state, and the file shrinks.
    #[test]
    fn compaction_preserves_state_and_shrinks_log() {
        let dir = temp_dir("compact");
        let (wal, _) = Wal::open(&dir, FsyncMode::Never).unwrap();
        // Enough terminal records to trip the automatic cadence.
        for round in 0..(COMPACT_EVERY as u64 + 8) {
            let id = round + 1;
            wal.append(&WalRecord::Spawned {
                cmd: cmd(id, json!({"r": id})),
            })
            .unwrap();
            wal.append(&WalRecord::Dispatched {
                command: CommandId(id),
                worker: WorkerId(1),
                epoch: 1,
            })
            .unwrap();
            wal.append(&WalRecord::Completed {
                command: CommandId(id),
                bytes: 5,
            })
            .unwrap();
        }
        // One live command so the snapshot is not empty.
        wal.append(&WalRecord::Spawned {
            cmd: cmd(9999, json!({"live": true})),
        })
        .unwrap();
        let dump = wal.state_dump();
        let len_after_auto = wal.log_len();
        assert!(
            len_after_auto < (COMPACT_EVERY as u64) * 40,
            "auto compaction must have rewritten the log ({len_after_auto} bytes)"
        );
        drop(wal);

        let recovered = replay_dir(&dir).unwrap();
        assert_eq!(recovered.dump(), dump);
        assert_eq!(
            recovered.counters.commands_completed,
            COMPACT_EVERY as u64 + 8,
            "counters survive compaction via the baseline record"
        );
        assert_eq!(recovered.n_live(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_mode_parses_cli_spellings() {
        assert_eq!(FsyncMode::parse("always"), Some(FsyncMode::Always));
        assert_eq!(FsyncMode::parse("never"), Some(FsyncMode::Never));
        assert_eq!(
            FsyncMode::parse("250ms"),
            Some(FsyncMode::Every(Duration::from_millis(250)))
        );
        assert_eq!(
            FsyncMode::parse("250"),
            Some(FsyncMode::Every(Duration::from_millis(250)))
        );
        assert_eq!(FsyncMode::parse("sometimes"), None);
        assert_eq!(FsyncMode::parse(""), None);
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    /// The WAL mutex is poison-tolerant: a panic elsewhere must not
    /// take durability down with it.
    #[test]
    fn append_survives_a_poisoned_lock() {
        let dir = temp_dir("poison");
        let (wal, _) = Wal::open(&dir, FsyncMode::Never).unwrap();
        let wal2 = wal.clone();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = wal2.inner.lock().unwrap();
            panic!("poison the wal lock");
        }));
        wal.append(&WalRecord::Started).unwrap();
        assert!(replay_dir(&dir).unwrap().started);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
