//! Binary codec for the worker↔server message set.
//!
//! Frames on the wire (see `copernicus-wire`) carry opaque byte
//! payloads; this module maps [`ToServer`]/[`ToWorker`] to and from
//! those bytes. The encoding is deliberately boring: big-endian
//! fixed-width integers, `u32`-length-prefixed UTF-8 strings, one tag
//! byte per enum variant, one presence byte per `Option`. JSON payload
//! fields ([`serde_json::Value`]) travel as JSON text in a
//! length-prefixed string — they are already schema-free, so re-encoding
//! them binary would buy nothing.
//!
//! Decoding is total: any input — truncated, oversized counts, garbage
//! tags, invalid UTF-8, malformed JSON, trailing bytes — yields a
//! [`CodecError`], never a panic or an allocation proportional to a
//! length field the buffer cannot actually back.

use crate::command::{Command, CommandOutput};
use crate::ids::{CommandId, ProjectId, WorkerId};
use crate::messages::{PeerMsg, ToServer, ToWorker};
use crate::resources::{ExecutableSpec, Platform, Resources, WorkerDescription};
use copernicus_telemetry::TraceContext;
use std::fmt;

/// Why a byte buffer could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

fn err<T>(what: impl Into<String>) -> Result<T, CodecError> {
    Err(CodecError(what.into()))
}

// ---------------------------------------------------------------- writer

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_i32(out: &mut Vec<u8>, v: i32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_be_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_json(out: &mut Vec<u8>, v: &serde_json::Value) {
    // `Value` serialization cannot fail; the fallback keeps this path
    // infallible without an unwrap in release builds.
    let text = serde_json::to_string(v).unwrap_or_else(|_| "null".to_string());
    put_str(out, &text);
}

fn put_opt_json(out: &mut Vec<u8>, v: &Option<serde_json::Value>) {
    match v {
        Some(v) => {
            put_u8(out, 1);
            put_json(out, v);
        }
        None => put_u8(out, 0),
    }
}

// ---------------------------------------------------------------- reader

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return err(format!(
                "truncated: need {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            ));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i32(&mut self) -> Result<i32, CodecError> {
        Ok(i32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(u64::from_be_bytes(
            self.take(8)?.try_into().unwrap(),
        )))
    }

    fn str(&mut self) -> Result<String, CodecError> {
        let len = self.u32()? as usize;
        // The length is attacker-controlled until checked against the
        // buffer; `take` rejects anything the buffer cannot back, so no
        // allocation happens on a lying prefix.
        let bytes = self.take(len)?;
        match std::str::from_utf8(bytes) {
            Ok(s) => Ok(s.to_string()),
            Err(_) => err("string field is not valid UTF-8"),
        }
    }

    fn json(&mut self) -> Result<serde_json::Value, CodecError> {
        let text = self.str()?;
        let value: serde_json::Value = match serde_json::from_str(&text) {
            Ok(v) => v,
            Err(_) => return err("JSON field does not parse"),
        };
        Ok(value)
    }

    fn opt_json(&mut self) -> Result<Option<serde_json::Value>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.json()?)),
            other => err(format!("bad Option presence byte {other}")),
        }
    }

    /// A collection length. Every element costs at least one byte, so a
    /// count exceeding the remaining buffer is a lie — reject it before
    /// reserving anything.
    fn count(&mut self) -> Result<usize, CodecError> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return err(format!(
                "count {n} exceeds remaining {} bytes",
                self.remaining()
            ));
        }
        Ok(n)
    }

    fn finish(&self) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            return err(format!("{} trailing bytes after message", self.remaining()));
        }
        Ok(())
    }
}

fn put_opt_trace(out: &mut Vec<u8>, trace: &Option<TraceContext>) {
    match trace {
        Some(ctx) => {
            put_u8(out, 1);
            put_u64(out, ctx.trace_id);
            put_u64(out, ctx.span_id);
            match ctx.parent_span_id {
                Some(p) => {
                    put_u8(out, 1);
                    put_u64(out, p);
                }
                None => put_u8(out, 0),
            }
        }
        None => put_u8(out, 0),
    }
}

fn get_opt_trace(r: &mut Reader) -> Result<Option<TraceContext>, CodecError> {
    match r.u8()? {
        0 => Ok(None),
        1 => {
            let trace_id = r.u64()?;
            let span_id = r.u64()?;
            let parent_span_id = match r.u8()? {
                0 => None,
                1 => Some(r.u64()?),
                other => return err(format!("bad trace parent presence byte {other}")),
            };
            Ok(Some(TraceContext {
                trace_id,
                span_id,
                parent_span_id,
            }))
        }
        other => err(format!("bad trace presence byte {other}")),
    }
}

// ----------------------------------------------------------- components

fn put_platform(out: &mut Vec<u8>, p: Platform) {
    put_u8(
        out,
        match p {
            Platform::Smp => 0,
            Platform::Mpi => 1,
            Platform::Gpu => 2,
        },
    );
}

fn get_platform(r: &mut Reader) -> Result<Platform, CodecError> {
    match r.u8()? {
        0 => Ok(Platform::Smp),
        1 => Ok(Platform::Mpi),
        2 => Ok(Platform::Gpu),
        other => err(format!("unknown platform tag {other}")),
    }
}

fn put_resources(out: &mut Vec<u8>, res: &Resources) {
    put_u64(out, res.cores as u64);
    put_u64(out, res.memory_mb);
}

fn get_resources(r: &mut Reader) -> Result<Resources, CodecError> {
    let cores = r.u64()?;
    let memory_mb = r.u64()?;
    if cores == 0 {
        return err("resources with zero cores");
    }
    Ok(Resources {
        cores: cores as usize,
        memory_mb,
    })
}

fn put_description(out: &mut Vec<u8>, desc: &WorkerDescription) {
    put_platform(out, desc.platform);
    put_resources(out, &desc.resources);
    put_u32(out, desc.executables.len() as u32);
    for e in &desc.executables {
        put_str(out, &e.command_type);
        put_platform(out, e.platform);
        put_str(out, &e.version);
    }
}

fn get_description(r: &mut Reader) -> Result<WorkerDescription, CodecError> {
    let platform = get_platform(r)?;
    let resources = get_resources(r)?;
    let n = r.count()?;
    let mut executables = Vec::new();
    for _ in 0..n {
        let command_type = r.str()?;
        let platform = get_platform(r)?;
        let version = r.str()?;
        executables.push(ExecutableSpec {
            command_type,
            platform,
            version,
        });
    }
    Ok(WorkerDescription {
        platform,
        resources,
        executables,
    })
}

fn put_command(out: &mut Vec<u8>, cmd: &Command) {
    put_u64(out, cmd.id.0);
    put_u64(out, cmd.project.0);
    put_str(out, &cmd.command_type);
    put_i32(out, cmd.priority);
    put_resources(out, &cmd.required);
    put_json(out, &cmd.payload);
    put_opt_json(out, &cmd.checkpoint);
    put_u32(out, cmd.attempts);
    put_opt_trace(out, &cmd.trace);
    // `not_before` is process-local scheduling state; like serde's
    // `#[serde(skip)]`, it does not cross the wire.
}

fn get_command(r: &mut Reader) -> Result<Command, CodecError> {
    Ok(Command {
        id: CommandId(r.u64()?),
        project: ProjectId(r.u64()?),
        command_type: r.str()?,
        priority: r.i32()?,
        required: get_resources(r)?,
        payload: r.json()?,
        checkpoint: r.opt_json()?,
        attempts: r.u32()?,
        trace: get_opt_trace(r)?,
        not_before: None,
    })
}

fn put_output(out: &mut Vec<u8>, o: &CommandOutput) {
    put_u64(out, o.command.0);
    put_u64(out, o.project.0);
    put_u64(out, o.worker.0);
    put_str(out, &o.command_type);
    put_u32(out, o.epoch);
    put_json(out, &o.data);
    put_f64(out, o.wall_secs);
    put_u64(out, o.bytes);
    put_opt_trace(out, &o.trace);
}

fn get_output(r: &mut Reader) -> Result<CommandOutput, CodecError> {
    Ok(CommandOutput {
        command: CommandId(r.u64()?),
        project: ProjectId(r.u64()?),
        worker: WorkerId(r.u64()?),
        command_type: r.str()?,
        epoch: r.u32()?,
        data: r.json()?,
        wall_secs: r.f64()?,
        bytes: r.u64()?,
        trace: get_opt_trace(r)?,
    })
}

// ------------------------------------------------------------- messages

const TS_ANNOUNCE: u8 = 0;
const TS_REQUEST_WORK: u8 = 1;
const TS_COMPLETED: u8 = 2;
const TS_COMMAND_ERROR: u8 = 3;
const TS_HEARTBEAT: u8 = 4;
const TS_BATCH: u8 = 5;
const TS_WORKER_DEPARTED: u8 = 6;

/// Collect the non-batch messages of a (possibly nested) batch in
/// order. Encoding flattens, so the wire carries exactly one level of
/// batching and the decoder can reject nesting outright.
fn flatten_batch<'a>(msgs: &'a [ToServer], leaves: &mut Vec<&'a ToServer>) {
    for msg in msgs {
        match msg {
            ToServer::Batch(inner) => flatten_batch(inner, leaves),
            leaf => leaves.push(leaf),
        }
    }
}

fn put_to_server_leaf(out: &mut Vec<u8>, msg: &ToServer) {
    match msg {
        ToServer::Announce { worker, desc } => {
            put_u8(out, TS_ANNOUNCE);
            put_u64(out, worker.0);
            put_description(out, desc);
        }
        ToServer::RequestWork { worker } => {
            put_u8(out, TS_REQUEST_WORK);
            put_u64(out, worker.0);
        }
        ToServer::Completed { output } => {
            put_u8(out, TS_COMPLETED);
            put_output(out, output);
        }
        ToServer::CommandError {
            worker,
            project,
            command,
            epoch,
            error,
        } => {
            put_u8(out, TS_COMMAND_ERROR);
            put_u64(out, worker.0);
            put_u64(out, project.0);
            put_u64(out, command.0);
            put_u32(out, *epoch);
            put_str(out, error);
        }
        ToServer::Heartbeat { worker } => {
            put_u8(out, TS_HEARTBEAT);
            put_u64(out, worker.0);
        }
        // Normally synthesized server-side, but encodable so relaying
        // transports (overlay hops) can forward the departure.
        ToServer::WorkerDeparted { worker } => {
            put_u8(out, TS_WORKER_DEPARTED);
            put_u64(out, worker.0);
        }
        // `encode_to_server` flattens batches before reaching here.
        ToServer::Batch(_) => unreachable!("nested batches are flattened at encode"),
    }
}

/// Encode a worker→server message.
pub fn encode_to_server(msg: &ToServer) -> Vec<u8> {
    let mut out = Vec::new();
    match msg {
        ToServer::Batch(msgs) => {
            let mut leaves = Vec::new();
            flatten_batch(msgs, &mut leaves);
            put_u8(&mut out, TS_BATCH);
            put_u32(&mut out, leaves.len() as u32);
            for leaf in leaves {
                put_to_server_leaf(&mut out, leaf);
            }
        }
        leaf => put_to_server_leaf(&mut out, leaf),
    }
    out
}

fn get_to_server_leaf(r: &mut Reader, tag: u8) -> Result<ToServer, CodecError> {
    Ok(match tag {
        TS_ANNOUNCE => ToServer::Announce {
            worker: WorkerId(r.u64()?),
            desc: get_description(r)?,
        },
        TS_REQUEST_WORK => ToServer::RequestWork {
            worker: WorkerId(r.u64()?),
        },
        TS_COMPLETED => ToServer::Completed {
            output: get_output(r)?,
        },
        TS_COMMAND_ERROR => ToServer::CommandError {
            worker: WorkerId(r.u64()?),
            project: ProjectId(r.u64()?),
            command: CommandId(r.u64()?),
            epoch: r.u32()?,
            error: r.str()?,
        },
        TS_HEARTBEAT => ToServer::Heartbeat {
            worker: WorkerId(r.u64()?),
        },
        TS_WORKER_DEPARTED => ToServer::WorkerDeparted {
            worker: WorkerId(r.u64()?),
        },
        TS_BATCH => return err("nested Batch"),
        other => return err(format!("unknown ToServer tag {other}")),
    })
}

/// Decode a worker→server message. Total over arbitrary input.
pub fn decode_to_server(buf: &[u8]) -> Result<ToServer, CodecError> {
    let mut r = Reader::new(buf);
    let msg = match r.u8()? {
        TS_BATCH => {
            let n = r.count()?;
            if n == 0 {
                return err("empty Batch");
            }
            let mut msgs = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                let tag = r.u8()?;
                msgs.push(get_to_server_leaf(&mut r, tag)?);
            }
            ToServer::Batch(msgs)
        }
        tag => get_to_server_leaf(&mut r, tag)?,
    };
    r.finish()?;
    Ok(msg)
}

const TW_WORKLOAD: u8 = 0;
const TW_NO_WORK: u8 = 1;
const TW_SHUTDOWN: u8 = 2;

/// Encode a server→worker message.
pub fn encode_to_worker(msg: &ToWorker) -> Vec<u8> {
    let mut out = Vec::new();
    match msg {
        ToWorker::Workload(commands) => {
            put_u8(&mut out, TW_WORKLOAD);
            put_u32(&mut out, commands.len() as u32);
            for cmd in commands {
                put_command(&mut out, cmd);
            }
        }
        ToWorker::NoWork => put_u8(&mut out, TW_NO_WORK),
        ToWorker::Shutdown => put_u8(&mut out, TW_SHUTDOWN),
    }
    out
}

/// Decode a server→worker message. Total over arbitrary input.
pub fn decode_to_worker(buf: &[u8]) -> Result<ToWorker, CodecError> {
    let mut r = Reader::new(buf);
    let msg = match r.u8()? {
        TW_WORKLOAD => {
            let n = r.count()?;
            let mut commands = Vec::new();
            for _ in 0..n {
                commands.push(get_command(&mut r)?);
            }
            ToWorker::Workload(commands)
        }
        TW_NO_WORK => ToWorker::NoWork,
        TW_SHUTDOWN => ToWorker::Shutdown,
        other => return err(format!("unknown ToWorker tag {other}")),
    };
    r.finish()?;
    Ok(msg)
}

// The peer sub-protocol lives in its own tag namespace (0x50+), so a
// server listener can tell worker traffic from peer traffic by the
// first payload byte — see [`decode_inbound`].
const TP_HELLO: u8 = 0x50;
const TP_OFFER_WORK: u8 = 0x51;
const TP_DELEGATE_COMMAND: u8 = 0x52;
const TP_DELEGATED_RESULT: u8 = 0x53;
const TP_DELEGATED_ERROR: u8 = 0x54;
const TP_HEARTBEAT: u8 = 0x55;
const TP_SHUTDOWN: u8 = 0x56;
const TP_HEARTBEATS: u8 = 0x57;

/// Encode a server↔server peer message.
pub fn encode_peer(msg: &PeerMsg) -> Vec<u8> {
    let mut out = Vec::new();
    match msg {
        PeerMsg::Hello { server, projects } => {
            put_u8(&mut out, TP_HELLO);
            put_str(&mut out, server);
            put_u32(&mut out, projects.len() as u32);
            for p in projects {
                put_u64(&mut out, p.0);
            }
        }
        PeerMsg::OfferWork {
            offer,
            worker,
            desc,
        } => {
            put_u8(&mut out, TP_OFFER_WORK);
            put_u64(&mut out, *offer);
            put_u64(&mut out, worker.0);
            put_description(&mut out, desc);
        }
        PeerMsg::DelegateCommand {
            offer,
            worker,
            commands,
        } => {
            put_u8(&mut out, TP_DELEGATE_COMMAND);
            put_u64(&mut out, *offer);
            put_u64(&mut out, worker.0);
            put_u32(&mut out, commands.len() as u32);
            for cmd in commands {
                put_command(&mut out, cmd);
            }
        }
        PeerMsg::DelegatedResult { output } => {
            put_u8(&mut out, TP_DELEGATED_RESULT);
            put_output(&mut out, output);
        }
        PeerMsg::DelegatedError {
            worker,
            project,
            command,
            epoch,
            error,
        } => {
            put_u8(&mut out, TP_DELEGATED_ERROR);
            put_u64(&mut out, worker.0);
            put_u64(&mut out, project.0);
            put_u64(&mut out, command.0);
            put_u32(&mut out, *epoch);
            put_str(&mut out, error);
        }
        PeerMsg::Heartbeat { worker } => {
            put_u8(&mut out, TP_HEARTBEAT);
            put_u64(&mut out, worker.0);
        }
        PeerMsg::Heartbeats { workers } => {
            put_u8(&mut out, TP_HEARTBEATS);
            put_u32(&mut out, workers.len() as u32);
            for w in workers {
                put_u64(&mut out, w.0);
            }
        }
        PeerMsg::Shutdown => put_u8(&mut out, TP_SHUTDOWN),
    }
    out
}

/// Decode a server↔server peer message. Total over arbitrary input.
pub fn decode_peer(buf: &[u8]) -> Result<PeerMsg, CodecError> {
    let mut r = Reader::new(buf);
    let msg = match r.u8()? {
        TP_HELLO => {
            let server = r.str()?;
            let n = r.count()?;
            let mut projects = Vec::new();
            for _ in 0..n {
                projects.push(ProjectId(r.u64()?));
            }
            PeerMsg::Hello { server, projects }
        }
        TP_OFFER_WORK => PeerMsg::OfferWork {
            offer: r.u64()?,
            worker: WorkerId(r.u64()?),
            desc: get_description(&mut r)?,
        },
        TP_DELEGATE_COMMAND => {
            let offer = r.u64()?;
            let worker = WorkerId(r.u64()?);
            let n = r.count()?;
            let mut commands = Vec::new();
            for _ in 0..n {
                commands.push(get_command(&mut r)?);
            }
            PeerMsg::DelegateCommand {
                offer,
                worker,
                commands,
            }
        }
        TP_DELEGATED_RESULT => PeerMsg::DelegatedResult {
            output: get_output(&mut r)?,
        },
        TP_DELEGATED_ERROR => PeerMsg::DelegatedError {
            worker: WorkerId(r.u64()?),
            project: ProjectId(r.u64()?),
            command: CommandId(r.u64()?),
            epoch: r.u32()?,
            error: r.str()?,
        },
        TP_HEARTBEAT => PeerMsg::Heartbeat {
            worker: WorkerId(r.u64()?),
        },
        TP_HEARTBEATS => {
            let n = r.count()?;
            let mut workers = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                workers.push(WorkerId(r.u64()?));
            }
            PeerMsg::Heartbeats { workers }
        }
        TP_SHUTDOWN => PeerMsg::Shutdown,
        other => return err(format!("unknown PeerMsg tag {other}")),
    };
    r.finish()?;
    Ok(msg)
}

/// Anything that can arrive on a server's listener: worker traffic or
/// peer traffic, told apart by the tag byte's namespace.
#[derive(Debug, Clone)]
pub enum Inbound {
    Worker(ToServer),
    Peer(PeerMsg),
}

/// Decode one inbound listener frame. Total over arbitrary input.
pub fn decode_inbound(buf: &[u8]) -> Result<Inbound, CodecError> {
    match buf.first() {
        None => err("empty frame"),
        Some(&tag) if tag >= TP_HELLO => Ok(Inbound::Peer(decode_peer(buf)?)),
        Some(_) => Ok(Inbound::Worker(decode_to_server(buf)?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::CommandSpec;
    use serde_json::json;

    fn sample_command() -> Command {
        let mut cmd = Command::from_spec(
            CommandId(7),
            ProjectId(3),
            CommandSpec::new("mdrun", Resources::new(4, 2048), json!({"steps": 5000}))
                .with_priority(-2),
        );
        cmd.attempts = 2;
        cmd.checkpoint = Some(json!({"frame": 120}));
        cmd.trace = Some(TraceContext {
            trace_id: 0xDEAD_BEEF_1234_5678,
            span_id: 42,
            parent_span_id: Some(41),
        });
        cmd
    }

    fn sample_desc() -> WorkerDescription {
        WorkerDescription {
            platform: Platform::Gpu,
            resources: Resources::new(8, 16_000),
            executables: vec![
                ExecutableSpec::new("mdrun", Platform::Gpu, "4.5"),
                ExecutableSpec::new("fep-sample", Platform::Smp, "1.0"),
            ],
        }
    }

    #[test]
    fn to_server_variants_roundtrip() {
        let msgs = vec![
            ToServer::Announce {
                worker: WorkerId(11),
                desc: sample_desc(),
            },
            ToServer::RequestWork {
                worker: WorkerId(5),
            },
            ToServer::Completed {
                output: CommandOutput::new(
                    &sample_command(),
                    WorkerId(9),
                    json!({"frames": vec![1.5, 2.5]}),
                    0.25,
                ),
            },
            ToServer::CommandError {
                worker: WorkerId(1),
                project: ProjectId(2),
                command: CommandId(3),
                epoch: 4,
                error: "bad payload: missing \"steps\"".to_string(),
            },
            ToServer::Heartbeat {
                worker: WorkerId(42),
            },
            ToServer::WorkerDeparted {
                worker: WorkerId(42),
            },
        ];
        for msg in msgs {
            let bytes = encode_to_server(&msg);
            let back = decode_to_server(&bytes).expect("roundtrip");
            // Compare via re-encoding: the message types don't carry
            // PartialEq, and byte equality is the stronger property here.
            assert_eq!(encode_to_server(&back), bytes);
            assert_eq!(back.worker(), msg.worker());
        }
    }

    #[test]
    fn batch_roundtrips_and_preserves_order() {
        let msg = ToServer::Batch(vec![
            ToServer::Heartbeat {
                worker: WorkerId(1),
            },
            ToServer::RequestWork {
                worker: WorkerId(1),
            },
            ToServer::Completed {
                output: CommandOutput::new(
                    &sample_command(),
                    WorkerId(1),
                    json!({"done": true}),
                    0.5,
                ),
            },
        ]);
        let bytes = encode_to_server(&msg);
        let back = decode_to_server(&bytes).expect("roundtrip");
        assert_eq!(encode_to_server(&back), bytes);
        let ToServer::Batch(msgs) = back else {
            panic!("wrong variant");
        };
        assert_eq!(msgs.len(), 3);
        assert!(matches!(msgs[0], ToServer::Heartbeat { .. }));
        assert!(matches!(msgs[1], ToServer::RequestWork { .. }));
        assert!(matches!(msgs[2], ToServer::Completed { .. }));
    }

    #[test]
    fn nested_batches_flatten_at_encode_and_are_rejected_on_decode() {
        // Encoding a batch-in-batch must produce the flat wire form.
        let nested = ToServer::Batch(vec![
            ToServer::Heartbeat {
                worker: WorkerId(1),
            },
            ToServer::Batch(vec![ToServer::RequestWork {
                worker: WorkerId(2),
            }]),
        ]);
        let flat = ToServer::Batch(vec![
            ToServer::Heartbeat {
                worker: WorkerId(1),
            },
            ToServer::RequestWork {
                worker: WorkerId(2),
            },
        ]);
        assert_eq!(encode_to_server(&nested), encode_to_server(&flat));

        // A hand-built nested batch on the wire is rejected.
        let inner = encode_to_server(&ToServer::Batch(vec![ToServer::Heartbeat {
            worker: WorkerId(1),
        }]));
        let mut bytes = vec![TS_BATCH];
        bytes.extend_from_slice(&1u32.to_be_bytes());
        bytes.extend_from_slice(&inner);
        assert!(decode_to_server(&bytes).is_err());

        // So is an empty one — batches always speak for some worker.
        let mut bytes = vec![TS_BATCH];
        bytes.extend_from_slice(&0u32.to_be_bytes());
        assert!(decode_to_server(&bytes).is_err());
    }

    #[test]
    fn batch_truncations_error_without_panicking() {
        let full = encode_to_server(&ToServer::Batch(vec![
            ToServer::Heartbeat {
                worker: WorkerId(1),
            },
            ToServer::Announce {
                worker: WorkerId(2),
                desc: sample_desc(),
            },
        ]));
        for len in 0..full.len() {
            assert!(
                decode_to_server(&full[..len]).is_err(),
                "prefix of {len} bytes decoded"
            );
        }
    }

    #[test]
    fn to_worker_variants_roundtrip() {
        let msgs = vec![
            ToWorker::Workload(vec![sample_command()]),
            ToWorker::Workload(vec![]),
            ToWorker::NoWork,
            ToWorker::Shutdown,
        ];
        for msg in msgs {
            let bytes = encode_to_worker(&msg);
            let back = decode_to_worker(&bytes).expect("roundtrip");
            assert_eq!(encode_to_worker(&back), bytes);
        }
    }

    #[test]
    fn workload_preserves_command_fields() {
        let bytes = encode_to_worker(&ToWorker::Workload(vec![sample_command()]));
        let ToWorker::Workload(cmds) = decode_to_worker(&bytes).unwrap() else {
            panic!("wrong variant");
        };
        let cmd = &cmds[0];
        assert_eq!(cmd.id, CommandId(7));
        assert_eq!(cmd.project, ProjectId(3));
        assert_eq!(cmd.command_type, "mdrun");
        assert_eq!(cmd.priority, -2);
        assert_eq!(cmd.attempts, 2);
        assert_eq!(cmd.payload["steps"], 5000);
        assert_eq!(cmd.checkpoint.as_ref().unwrap()["frame"], 120);
        assert!(cmd.not_before.is_none());
        let trace = cmd.trace.expect("trace context crossed the wire");
        assert_eq!(trace.trace_id, 0xDEAD_BEEF_1234_5678);
        assert_eq!(trace.span_id, 42);
        assert_eq!(trace.parent_span_id, Some(41));
    }

    #[test]
    fn trace_context_roundtrips_in_all_shapes() {
        for trace in [
            None,
            Some(TraceContext {
                trace_id: 1,
                span_id: 2,
                parent_span_id: None,
            }),
            Some(TraceContext {
                trace_id: u64::MAX,
                span_id: 0,
                parent_span_id: Some(u64::MAX),
            }),
        ] {
            let mut cmd = sample_command();
            cmd.trace = trace;
            let bytes = encode_to_worker(&ToWorker::Workload(vec![cmd]));
            let ToWorker::Workload(cmds) = decode_to_worker(&bytes).unwrap() else {
                panic!("wrong variant");
            };
            assert_eq!(cmds[0].trace, trace);

            let mut out = CommandOutput::new(&sample_command(), WorkerId(9), json!({"ok": 1}), 0.5);
            out.trace = trace;
            let bytes = encode_to_server(&ToServer::Completed { output: out });
            let ToServer::Completed { output } = decode_to_server(&bytes).unwrap() else {
                panic!("wrong variant");
            };
            assert_eq!(output.trace, trace);
        }
    }

    #[test]
    fn bad_trace_presence_bytes_are_rejected() {
        // A valid heartbeat is one byte + u64; build a Workload of one
        // command and corrupt its trace presence byte (last byte since
        // trace is the final field).
        let bytes = encode_to_worker(&ToWorker::Workload(vec![{
            let mut cmd = sample_command();
            cmd.trace = None;
            cmd
        }]));
        let mut corrupt = bytes.clone();
        *corrupt.last_mut().unwrap() = 7;
        assert!(decode_to_worker(&corrupt).is_err());
    }

    #[test]
    fn every_truncation_errors_without_panicking() {
        let full = encode_to_server(&ToServer::Announce {
            worker: WorkerId(11),
            desc: sample_desc(),
        });
        for len in 0..full.len() {
            assert!(
                decode_to_server(&full[..len]).is_err(),
                "prefix of {len} bytes decoded"
            );
        }
        let full = encode_to_worker(&ToWorker::Workload(vec![sample_command()]));
        for len in 0..full.len() {
            assert!(
                decode_to_worker(&full[..len]).is_err(),
                "prefix of {len} bytes decoded"
            );
        }
    }

    #[test]
    fn garbage_and_bad_tags_are_rejected() {
        assert!(decode_to_server(&[]).is_err());
        assert!(decode_to_server(&[99]).is_err());
        assert!(decode_to_worker(&[200, 1, 2, 3]).is_err());
        let noise: Vec<u8> = (0..64u8).map(|i| i.wrapping_mul(37)).collect();
        assert!(decode_to_server(&noise).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_to_server(&ToServer::Heartbeat {
            worker: WorkerId(1),
        });
        bytes.push(0);
        assert!(decode_to_server(&bytes).is_err());
    }

    #[test]
    fn lying_count_is_rejected_before_allocation() {
        // Workload claiming u32::MAX commands backed by no bytes.
        let mut bytes = vec![TW_WORKLOAD];
        bytes.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(decode_to_worker(&bytes).is_err());
    }

    #[test]
    fn lying_string_length_is_rejected() {
        // CommandError whose error-string length claims far more than
        // the buffer holds.
        let mut bytes = vec![TS_COMMAND_ERROR];
        bytes.extend_from_slice(&1u64.to_be_bytes());
        bytes.extend_from_slice(&2u64.to_be_bytes());
        bytes.extend_from_slice(&3u64.to_be_bytes());
        bytes.extend_from_slice(&0u32.to_be_bytes());
        bytes.extend_from_slice(&0xFFFF_FFFFu32.to_be_bytes());
        bytes.extend_from_slice(b"short");
        assert!(decode_to_server(&bytes).is_err());
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut bytes = vec![TS_COMMAND_ERROR];
        bytes.extend_from_slice(&1u64.to_be_bytes());
        bytes.extend_from_slice(&2u64.to_be_bytes());
        bytes.extend_from_slice(&3u64.to_be_bytes());
        bytes.extend_from_slice(&0u32.to_be_bytes());
        bytes.extend_from_slice(&2u32.to_be_bytes());
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        assert!(decode_to_server(&bytes).is_err());
    }

    #[test]
    fn peer_variants_roundtrip() {
        let msgs = vec![
            PeerMsg::Hello {
                server: "alpha".to_string(),
                projects: vec![ProjectId(0), ProjectId(7)],
            },
            PeerMsg::OfferWork {
                offer: 41,
                worker: WorkerId(9),
                desc: sample_desc(),
            },
            PeerMsg::DelegateCommand {
                offer: 41,
                worker: WorkerId(9),
                commands: vec![sample_command()],
            },
            PeerMsg::DelegateCommand {
                offer: 42,
                worker: WorkerId(9),
                commands: vec![],
            },
            PeerMsg::DelegatedResult {
                output: CommandOutput::new(
                    &sample_command(),
                    WorkerId(9),
                    json!({"ok": true}),
                    0.125,
                ),
            },
            PeerMsg::DelegatedError {
                worker: WorkerId(1),
                project: ProjectId(2),
                command: CommandId(3),
                epoch: 4,
                error: "delegation declined".to_string(),
            },
            PeerMsg::Heartbeat {
                worker: WorkerId(8),
            },
            PeerMsg::Heartbeats {
                workers: vec![WorkerId(8), WorkerId(9), WorkerId(10)],
            },
            PeerMsg::Heartbeats { workers: vec![] },
            PeerMsg::Shutdown,
        ];
        for msg in msgs {
            let bytes = encode_peer(&msg);
            let back = decode_peer(&bytes).expect("roundtrip");
            assert_eq!(encode_peer(&back), bytes);
            // Peer frames land in the peer half of the inbound split.
            assert!(matches!(decode_inbound(&bytes), Ok(Inbound::Peer(_))));
        }
    }

    #[test]
    fn inbound_split_routes_by_tag_namespace() {
        let worker = encode_to_server(&ToServer::Heartbeat {
            worker: WorkerId(1),
        });
        assert!(matches!(
            decode_inbound(&worker),
            Ok(Inbound::Worker(ToServer::Heartbeat { .. }))
        ));
        assert!(decode_inbound(&[]).is_err());
        // A tag in the gap between the namespaces fails both decoders.
        assert!(decode_inbound(&[0x30]).is_err());
        assert!(decode_inbound(&[0x60]).is_err());
    }

    #[test]
    fn truncated_peer_frames_error_without_panicking() {
        let full = encode_peer(&PeerMsg::OfferWork {
            offer: 1,
            worker: WorkerId(2),
            desc: sample_desc(),
        });
        for len in 0..full.len() {
            assert!(
                decode_peer(&full[..len]).is_err(),
                "prefix of {len} bytes decoded"
            );
        }
    }

    #[test]
    fn malformed_json_payload_is_rejected() {
        // Hand-build a Completed whose data field holds non-JSON text.
        let mut bytes = vec![TS_COMPLETED];
        bytes.extend_from_slice(&1u64.to_be_bytes()); // command
        bytes.extend_from_slice(&2u64.to_be_bytes()); // project
        bytes.extend_from_slice(&3u64.to_be_bytes()); // worker
        bytes.extend_from_slice(&1u32.to_be_bytes()); // command_type len
        bytes.push(b't');
        bytes.extend_from_slice(&0u32.to_be_bytes()); // epoch
        bytes.extend_from_slice(&7u32.to_be_bytes()); // data len
        bytes.extend_from_slice(b"not js("); // malformed JSON
        bytes.extend_from_slice(&0.5f64.to_bits().to_be_bytes());
        bytes.extend_from_slice(&0u64.to_be_bytes());
        assert!(decode_to_server(&bytes).is_err());
    }
}
