//! Worker platforms, resources and executables (§2.3 of the paper).
//!
//! A worker announces its platform (the plugin that launches binaries —
//! OpenMPI, SMP, …), its resources (cores, memory), and the set of
//! installed 'executables': descriptions of how to run specific command
//! types on that platform. The server matches queued commands against
//! these announcements.

use serde::{Deserialize, Serialize};

/// Software platform a worker runs commands under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Platform {
    /// Shared-memory node (threads).
    Smp,
    /// Message-passing across nodes.
    Mpi,
    /// GPU-accelerated node.
    Gpu,
}

/// Compute resources a worker offers or a command requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Resources {
    pub cores: usize,
    pub memory_mb: u64,
}

impl Resources {
    pub fn new(cores: usize, memory_mb: u64) -> Self {
        assert!(cores > 0, "resources must include at least one core");
        Resources { cores, memory_mb }
    }

    /// Can an offer of `self` satisfy a request of `req`?
    pub fn satisfies(&self, req: &Resources) -> bool {
        self.cores >= req.cores && self.memory_mb >= req.memory_mb
    }

    /// Subtract a granted request from this offer.
    pub fn minus(&self, req: &Resources) -> Resources {
        Resources {
            cores: self.cores.saturating_sub(req.cores),
            memory_mb: self.memory_mb.saturating_sub(req.memory_mb),
        }
    }
}

/// An installed 'executable': how to run one command type on one platform.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutableSpec {
    /// Command type it can execute (e.g. "mdrun", "fep-sample").
    pub command_type: String,
    pub platform: Platform,
    pub version: String,
}

impl ExecutableSpec {
    pub fn new(
        command_type: impl Into<String>,
        platform: Platform,
        version: impl Into<String>,
    ) -> Self {
        ExecutableSpec {
            command_type: command_type.into(),
            platform,
            version: version.into(),
        }
    }
}

/// What a worker tells the server when it presents itself.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkerDescription {
    pub platform: Platform,
    pub resources: Resources,
    pub executables: Vec<ExecutableSpec>,
}

impl WorkerDescription {
    pub fn can_run(&self, command_type: &str) -> bool {
        self.executables
            .iter()
            .any(|e| e.command_type == command_type)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn satisfaction_is_componentwise() {
        let offer = Resources::new(8, 16_000);
        assert!(offer.satisfies(&Resources::new(8, 16_000)));
        assert!(offer.satisfies(&Resources::new(1, 100)));
        assert!(!offer.satisfies(&Resources::new(9, 100)));
        assert!(!offer.satisfies(&Resources::new(1, 32_000)));
    }

    #[test]
    fn minus_saturates() {
        let offer = Resources::new(8, 1000);
        let rest = offer.minus(&Resources::new(3, 400));
        assert_eq!(rest.cores, 5);
        assert_eq!(rest.memory_mb, 600);
        let drained = rest.minus(&Resources::new(100, 10_000));
        assert_eq!(drained.cores, 0);
    }

    #[test]
    fn worker_capability_lookup() {
        let w = WorkerDescription {
            platform: Platform::Smp,
            resources: Resources::new(4, 8000),
            executables: vec![
                ExecutableSpec::new("mdrun", Platform::Smp, "4.5.3"),
                ExecutableSpec::new("fep-sample", Platform::Smp, "1.0"),
            ],
        };
        assert!(w.can_run("mdrun"));
        assert!(!w.can_run("quantum-espresso"));
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_core_resources_rejected() {
        let _ = Resources::new(0, 100);
    }
}
