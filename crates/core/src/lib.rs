//! # copernicus-core — the parallel adaptive molecular dynamics framework
//!
//! A Rust reproduction of the Copernicus framework (Pronk et al., SC11):
//! projects consisting of many coupled parallel simulations are executed
//! as a single job. A project server holds a command queue and a
//! controller plugin; workers announce their platform, resources and
//! installed executables, receive matched workloads, heartbeat while they
//! run, and return outputs. Lost workers are detected by heartbeat
//! timeout and their commands re-queued with the latest shared-filesystem
//! checkpoint, so another worker transparently continues the run (§2.3).
//!
//! The two controller plugins the paper ships — Markov-state-model
//! adaptive sampling and Bennett-acceptance-ratio free energies — live in
//! [`plugins`].
//!
//! ```no_run
//! use copernicus_core::prelude::*;
//! use std::sync::Arc;
//!
//! let controller = MsmController::new(MsmProjectConfig::default());
//! let registry = ExecutorRegistry::new()
//!     .with(Arc::new(MdRunExecutor::new(controller.model())))
//!     .with(Arc::new(MsmBuildExecutor));
//! let result = run_project(Box::new(controller), registry, RuntimeConfig::default());
//! println!("{}", result.result);
//! ```

pub mod broker;
pub mod codec;
pub mod command;
pub mod controller;
pub mod executor;
pub mod faults;
pub mod fs;
pub mod ids;
pub mod lifecycle;
pub mod md_executors;
pub mod messages;
pub mod monitor;
pub mod peer;
pub mod plugins;
pub(crate) mod queue;
pub mod resources;
pub mod runtime;
pub mod server;
pub(crate) mod shard;
pub mod tcp;
pub mod transport;
pub mod wal;
pub mod worker;

pub use broker::{
    spawn_broker, spawn_router, BrokerConfig, LocalUpstream, Offer, RouterHandle, Upstream,
    UpstreamGone,
};
pub use command::{Command, CommandOutput, CommandSpec};
pub use controller::{Action, Controller, ControllerCtx, ControllerEvent, DropReason};
pub use executor::{
    CommandExecutor, ExecContext, ExecError, ExecutorRegistry, FepSampleExecutor, FepSampleOutput,
    FepSampleSpec, MdRunExecutor, MdRunOutput, MdRunSpec, MsmBuildExecutor, MsmBuildOutput,
    MsmBuildSpec, SleepExecutor,
};
pub use faults::{ChaosExecutor, ChaosProfile, CrashingExecutor, ExecutionLog, FlakyExecutor};
pub use fs::SharedFs;
pub use ids::{CommandId, IdGen, ProjectId, WorkerId};
pub use lifecycle::{Disposition, FaultKind, Phase, RetryPolicy, Verdict};
pub use monitor::{Monitor, ProjectStatus, LOG_CAPACITY};
pub use peer::{namespaced_worker, PeerEndpoint, PeerIdentity, PeerLink, PeerLinkConfig};
pub use resources::{ExecutableSpec, Platform, Resources, WorkerDescription};
pub use runtime::{run_project, start_project, OverlayConfig, RunningProject, RuntimeConfig};
pub use server::{ConfigError, ProjectResult, Server, ServerConfig, ServerConfigBuilder};
pub use tcp::{
    connect_workers, serve_project, ServingProject, TcpServerTransport, TcpWorkerTransport,
};
pub use transport::{
    ChannelHub, ServerRecvError, ServerTransport, TransportClosed, WorkerRecvError, WorkerSender,
    WorkerTransport,
};
pub use wal::{FsyncMode, RecoveredState, Wal, WalRecord};
pub use worker::{spawn_worker, WorkerConfig, WorkerHandle};

/// The framed, authenticated TCP link layer, re-exported so binaries
/// and tests reach `AuthKey`, `ReconnectPolicy` etc. without a direct
/// dependency on `copernicus-wire`.
pub use copernicus_wire as wire;
pub use copernicus_wire::AuthKey;

/// The structured telemetry layer (metrics registry, event journal,
/// step-timing sinks), re-exported for downstream crates and binaries.
pub use copernicus_telemetry as telemetry;
pub use copernicus_telemetry::Telemetry;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::command::{Command, CommandOutput, CommandSpec};
    pub use crate::controller::{Action, Controller, ControllerCtx, ControllerEvent, DropReason};
    pub use crate::executor::{
        CommandExecutor, ExecutorRegistry, FepSampleExecutor, MdRunExecutor, MsmBuildExecutor,
        SleepExecutor,
    };
    pub use crate::fs::SharedFs;
    pub use crate::ids::{CommandId, ProjectId, WorkerId};
    pub use crate::lifecycle::{Phase, RetryPolicy};
    pub use crate::monitor::{Monitor, ProjectStatus};
    pub use crate::plugins::{
        AdaptiveMode, ExchangeMode, FepController, FepProjectConfig, FepProjectReport,
        MsmController, MsmProjectConfig, MsmProjectReport, RepexController, RepexProjectConfig,
        RepexProjectReport,
    };
    pub use crate::resources::{ExecutableSpec, Platform, Resources, WorkerDescription};
    pub use crate::runtime::{run_project, start_project, RunningProject, RuntimeConfig};
    pub use crate::server::{ProjectResult, ServerConfig};
    pub use crate::tcp::{connect_workers, serve_project};
    pub use crate::transport::{ServerTransport, WorkerTransport};
    pub use crate::wal::FsyncMode;
    pub use crate::worker::WorkerConfig;
    pub use copernicus_telemetry::Telemetry;
    pub use copernicus_wire::AuthKey;
}
