//! The command queue and resource matching (§2.3).
//!
//! The server matches a presenting worker's executables and resources
//! against queued commands and constructs a workload that *"maximally
//! utilizes the available resources given the preferred resource
//! requirements of the commands"* — a greedy best-fit over the priority
//! order.

use crate::command::Command;
use crate::resources::WorkerDescription;
use std::time::Instant;

/// Priority command queue with capability-aware matching.
#[derive(Debug, Default)]
pub struct CommandQueue {
    /// Kept sorted on insert: highest priority first, FIFO within equal
    /// priority.
    items: Vec<Command>,
}

impl CommandQueue {
    pub fn new() -> Self {
        CommandQueue::default()
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Insert a command in priority order (stable for equal priorities).
    pub fn enqueue(&mut self, cmd: Command) {
        let pos = self.items.partition_point(|c| c.priority >= cmd.priority);
        self.items.insert(pos, cmd);
    }

    /// Peek at the queued commands in dispatch order.
    pub fn iter(&self) -> impl Iterator<Item = &Command> {
        self.items.iter()
    }

    /// Build a workload for a presenting worker: walk the queue in
    /// priority order, taking every command the worker can execute while
    /// uncommitted resources remain. Returns the workload (possibly
    /// empty).
    ///
    /// Commands under a retry-backoff embargo (`not_before` after `now`)
    /// are skipped but retained in place, so their priority/FIFO slot is
    /// preserved for when the embargo expires.
    pub fn match_workload(&mut self, desc: &WorkerDescription, now: Instant) -> Vec<Command> {
        let mut remaining = desc.resources;
        let mut taken = Vec::new();
        let mut kept = Vec::with_capacity(self.items.len());
        for cmd in self.items.drain(..) {
            let fits = cmd.ready_at(now)
                && desc.can_run(&cmd.command_type)
                && remaining.satisfies(&cmd.required);
            if fits {
                remaining = remaining.minus(&cmd.required);
                taken.push(cmd);
            } else {
                kept.push(cmd);
            }
        }
        self.items = kept;
        taken
    }

    /// Remove and return a specific command (e.g. a controller
    /// terminating queued work, or the server cancelling a re-queued
    /// duplicate whose original attempt delivered a result).
    pub fn remove(&mut self, id: crate::ids::CommandId) -> Option<Command> {
        let pos = self.items.iter().position(|c| c.id == id)?;
        Some(self.items.remove(pos))
    }

    /// Look up a queued command by id.
    pub fn get(&self, id: crate::ids::CommandId) -> Option<&Command> {
        self.items.iter().find(|c| c.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::CommandSpec;
    use crate::ids::{CommandId, ProjectId};
    use crate::resources::{ExecutableSpec, Platform, Resources};
    use serde_json::json;

    fn cmd(id: u64, ctype: &str, cores: usize, priority: i32) -> Command {
        Command::from_spec(
            CommandId(id),
            ProjectId(0),
            CommandSpec::new(ctype, Resources::new(cores, 1), json!(null)).with_priority(priority),
        )
    }

    fn worker(cores: usize, types: &[&str]) -> WorkerDescription {
        WorkerDescription {
            platform: Platform::Smp,
            resources: Resources::new(cores, 1_000_000),
            executables: types
                .iter()
                .map(|t| ExecutableSpec::new(*t, Platform::Smp, "1"))
                .collect(),
        }
    }

    #[test]
    fn priority_order_with_fifo_ties() {
        let mut q = CommandQueue::new();
        q.enqueue(cmd(1, "a", 1, 0));
        q.enqueue(cmd(2, "a", 1, 5));
        q.enqueue(cmd(3, "a", 1, 0));
        let ids: Vec<u64> = q.iter().map(|c| c.id.0).collect();
        assert_eq!(ids, vec![2, 1, 3]);
    }

    #[test]
    fn matching_respects_capabilities() {
        let mut q = CommandQueue::new();
        q.enqueue(cmd(1, "mdrun", 1, 0));
        q.enqueue(cmd(2, "fep", 1, 0));
        let w = worker(8, &["mdrun"]);
        let load = q.match_workload(&w, Instant::now());
        assert_eq!(load.len(), 1);
        assert_eq!(load[0].id.0, 1);
        assert_eq!(q.len(), 1, "incompatible command stays queued");
    }

    #[test]
    fn matching_fills_resources() {
        let mut q = CommandQueue::new();
        for i in 0..5 {
            q.enqueue(cmd(i, "mdrun", 2, 0));
        }
        let w = worker(5, &["mdrun"]);
        let load = q.match_workload(&w, Instant::now());
        // 5 cores fit two 2-core commands.
        assert_eq!(load.len(), 2);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn matching_prefers_high_priority() {
        let mut q = CommandQueue::new();
        q.enqueue(cmd(1, "mdrun", 4, 0));
        q.enqueue(cmd(2, "mdrun", 4, 10));
        let w = worker(4, &["mdrun"]);
        let load = q.match_workload(&w, Instant::now());
        assert_eq!(load.len(), 1);
        assert_eq!(load[0].id.0, 2);
    }

    #[test]
    fn smaller_commands_backfill() {
        let mut q = CommandQueue::new();
        q.enqueue(cmd(1, "mdrun", 8, 5)); // too big for the worker
        q.enqueue(cmd(2, "mdrun", 2, 0)); // fits
        let w = worker(4, &["mdrun"]);
        let load = q.match_workload(&w, Instant::now());
        assert_eq!(load.len(), 1);
        assert_eq!(load[0].id.0, 2, "queue skips oversized commands");
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn remove_by_id() {
        let mut q = CommandQueue::new();
        q.enqueue(cmd(1, "a", 1, 0));
        q.enqueue(cmd(2, "a", 1, 0));
        assert!(q.remove(CommandId(1)).is_some());
        assert!(q.remove(CommandId(1)).is_none());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn empty_queue_gives_empty_workload() {
        let mut q = CommandQueue::new();
        let w = worker(4, &["mdrun"]);
        assert!(q.match_workload(&w, Instant::now()).is_empty());
        assert!(q.is_empty());
    }

    #[test]
    fn embargoed_command_is_skipped_but_retained() {
        use std::time::Duration;
        let now = Instant::now();
        let mut q = CommandQueue::new();
        let mut embargoed = cmd(1, "mdrun", 1, 0);
        embargoed.not_before = Some(now + Duration::from_secs(60));
        q.enqueue(embargoed);
        q.enqueue(cmd(2, "mdrun", 1, 0));
        let w = worker(8, &["mdrun"]);

        let load = q.match_workload(&w, now);
        assert_eq!(load.len(), 1, "only the ready command dispatches");
        assert_eq!(load[0].id.0, 2);
        assert_eq!(q.len(), 1, "embargoed command stays queued");

        // Once the embargo expires the command dispatches normally.
        let load = q.match_workload(&w, now + Duration::from_secs(61));
        assert_eq!(load.len(), 1);
        assert_eq!(load[0].id.0, 1);
        assert!(q.is_empty());
    }

    #[test]
    fn embargo_preserves_priority_and_fifo_order() {
        use std::time::Duration;
        let now = Instant::now();
        let mut q = CommandQueue::new();
        let mut high = cmd(1, "mdrun", 1, 10);
        high.not_before = Some(now + Duration::from_millis(50));
        q.enqueue(high);
        q.enqueue(cmd(2, "mdrun", 1, 0));
        q.enqueue(cmd(3, "mdrun", 1, 0));

        // While embargoed, lower-priority work flows around it without
        // disturbing its slot.
        let w = worker(1, &["mdrun"]);
        let load = q.match_workload(&w, now);
        assert_eq!(load[0].id.0, 2);
        let ids: Vec<u64> = q.iter().map(|c| c.id.0).collect();
        assert_eq!(ids, vec![1, 3], "embargoed high-priority keeps its slot");

        // After expiry the high-priority command dispatches first.
        let load = q.match_workload(&w, now + Duration::from_millis(51));
        assert_eq!(load[0].id.0, 1);
        let ids: Vec<u64> = q.iter().map(|c| c.id.0).collect();
        assert_eq!(ids, vec![3]);
    }
}
