//! Fault-injection executables for lifecycle testing.
//!
//! These executors misbehave *deterministically* so the e2e fault suite
//! (`tests/faults.rs`) can drive the server's command lifecycle through
//! its error, orphan and drop paths and assert exactly-once accounting:
//!
//! * [`FlakyExecutor`] — fails each command's first `fail_times`
//!   executions with a reportable error, then succeeds (the
//!   "errored-then-healthy" retry/backoff path).
//! * [`CrashingExecutor`] — kills the whole worker (simulated node
//!   death) for each command's first `crash_times` executions, then
//!   succeeds (the orphan/re-queue path).
//! * [`ChaosExecutor`] — picks error / crash / success per execution
//!   from a seeded hash of `(seed, command, attempt)`, for randomized
//!   soak tests that stay reproducible.
//!
//! All three are dependency-free and share [`ExecutionLog`], a
//! cross-worker record of every execution used by tests to assert how
//! often each command actually ran.

use crate::executor::{CommandExecutor, ExecContext, ExecError};
use crate::ids::CommandId;
use crate::resources::{ExecutableSpec, Platform};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Shared record of executions per command (across every worker and
/// executor clone in a test).
#[derive(Clone, Default)]
pub struct ExecutionLog {
    counts: Arc<Mutex<HashMap<CommandId, u32>>>,
}

impl ExecutionLog {
    pub fn new() -> Self {
        ExecutionLog::default()
    }

    /// Record one execution; returns the execution number (1-based).
    pub fn bump(&self, cmd: CommandId) -> u32 {
        let mut counts = self.counts.lock();
        let n = counts.entry(cmd).or_insert(0);
        *n += 1;
        *n
    }

    /// How many times a command has been executed so far.
    pub fn executions(&self, cmd: CommandId) -> u32 {
        self.counts.lock().get(&cmd).copied().unwrap_or(0)
    }

    /// Total executions across all commands.
    pub fn total(&self) -> u64 {
        self.counts.lock().values().map(|&n| n as u64).sum()
    }
}

fn success_output(ctx: &ExecContext<'_>, executions: u32) -> serde_json::Value {
    serde_json::json!({
        "command": ctx.command.id.0,
        "attempts": ctx.command.attempts,
        "executions": executions,
    })
}

// ---------------------------------------------------------------------------
// Flaky: error N times, then succeed
// ---------------------------------------------------------------------------

/// Fails each command's first `fail_times` executions with a reportable
/// [`ExecError::Failed`], then succeeds.
pub struct FlakyExecutor {
    command_type: String,
    fail_times: u32,
    log: ExecutionLog,
}

impl FlakyExecutor {
    pub const COMMAND_TYPE: &'static str = "flaky";

    pub fn new(fail_times: u32, log: ExecutionLog) -> Self {
        FlakyExecutor {
            command_type: Self::COMMAND_TYPE.to_string(),
            fail_times,
            log,
        }
    }

    /// Same behaviour under a different announced command type.
    pub fn with_command_type(mut self, command_type: impl Into<String>) -> Self {
        self.command_type = command_type.into();
        self
    }
}

impl CommandExecutor for FlakyExecutor {
    fn executables(&self) -> Vec<ExecutableSpec> {
        vec![ExecutableSpec::new(
            &self.command_type,
            Platform::Smp,
            "fault-0.1",
        )]
    }

    fn execute(&self, ctx: ExecContext<'_>) -> Result<serde_json::Value, ExecError> {
        let n = self.log.bump(ctx.command.id);
        if n <= self.fail_times {
            return Err(ExecError::Failed(format!(
                "injected failure {n}/{}",
                self.fail_times
            )));
        }
        Ok(success_output(&ctx, n))
    }
}

// ---------------------------------------------------------------------------
// Crashing: kill the worker N times, then succeed
// ---------------------------------------------------------------------------

/// Simulates node death: each command's first `crash_times` executions
/// return [`ExecError::SimulatedCrash`], which makes the worker fall
/// silent (no report, no further heartbeats). Later executions — on a
/// replacement worker — succeed.
pub struct CrashingExecutor {
    crash_times: u32,
    log: ExecutionLog,
}

impl CrashingExecutor {
    pub const COMMAND_TYPE: &'static str = "crashy";

    pub fn new(crash_times: u32, log: ExecutionLog) -> Self {
        CrashingExecutor { crash_times, log }
    }
}

impl CommandExecutor for CrashingExecutor {
    fn executables(&self) -> Vec<ExecutableSpec> {
        vec![ExecutableSpec::new(
            Self::COMMAND_TYPE,
            Platform::Smp,
            "fault-0.1",
        )]
    }

    fn execute(&self, ctx: ExecContext<'_>) -> Result<serde_json::Value, ExecError> {
        let n = self.log.bump(ctx.command.id);
        if n <= self.crash_times {
            return Err(ExecError::SimulatedCrash);
        }
        Ok(success_output(&ctx, n))
    }
}

// ---------------------------------------------------------------------------
// Chaos: seeded random misbehaviour
// ---------------------------------------------------------------------------

/// Per-execution outcome distribution for [`ChaosExecutor`], in percent.
/// Whatever `error_pct + crash_pct` leaves of 100 is the success rate.
#[derive(Debug, Clone, Copy)]
pub struct ChaosProfile {
    pub seed: u64,
    pub error_pct: u32,
    pub crash_pct: u32,
}

/// Misbehaves at random — but the randomness is a pure hash of
/// `(seed, command, execution number)`, so a failing run replays
/// exactly from its seed.
pub struct ChaosExecutor {
    profile: ChaosProfile,
    log: ExecutionLog,
}

impl ChaosExecutor {
    pub const COMMAND_TYPE: &'static str = "chaos";

    pub fn new(profile: ChaosProfile, log: ExecutionLog) -> Self {
        assert!(
            profile.error_pct + profile.crash_pct <= 100,
            "outcome percentages exceed 100"
        );
        ChaosExecutor { profile, log }
    }
}

/// splitmix64: tiny, dependency-free, good enough to decorrelate the
/// (seed, command, execution) stream.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

impl CommandExecutor for ChaosExecutor {
    fn executables(&self) -> Vec<ExecutableSpec> {
        vec![ExecutableSpec::new(
            Self::COMMAND_TYPE,
            Platform::Smp,
            "fault-0.1",
        )]
    }

    fn execute(&self, ctx: ExecContext<'_>) -> Result<serde_json::Value, ExecError> {
        let n = self.log.bump(ctx.command.id);
        let roll = mix(mix(self.profile.seed ^ ctx.command.id.0).wrapping_add(n as u64)) % 100;
        if roll < self.profile.error_pct as u64 {
            return Err(ExecError::Failed(format!("chaos error (roll {roll})")));
        }
        if roll < (self.profile.error_pct + self.profile.crash_pct) as u64 {
            return Err(ExecError::SimulatedCrash);
        }
        Ok(success_output(&ctx, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{Command, CommandSpec};
    use crate::ids::{ProjectId, WorkerId};
    use crate::resources::Resources;

    fn cmd(id: u64, ctype: &str, attempts: u32) -> Command {
        let mut c = Command::from_spec(
            CommandId(id),
            ProjectId(0),
            CommandSpec::new(ctype, Resources::new(1, 1), serde_json::Value::Null),
        );
        c.attempts = attempts;
        c
    }

    fn ctx(c: &Command) -> ExecContext<'_> {
        ExecContext {
            command: c,
            worker: WorkerId(0),
            shared_fs: None,
            telemetry: None,
        }
    }

    #[test]
    fn flaky_fails_n_times_then_succeeds() {
        let log = ExecutionLog::new();
        let exec = FlakyExecutor::new(2, log.clone());
        let c = cmd(1, FlakyExecutor::COMMAND_TYPE, 1);
        assert!(matches!(exec.execute(ctx(&c)), Err(ExecError::Failed(_))));
        assert!(matches!(exec.execute(ctx(&c)), Err(ExecError::Failed(_))));
        let out = exec.execute(ctx(&c)).expect("third execution succeeds");
        assert_eq!(out["executions"], 3);
        assert_eq!(log.executions(CommandId(1)), 3);
        // Failure counting is per command.
        let c2 = cmd(2, FlakyExecutor::COMMAND_TYPE, 1);
        assert!(exec.execute(ctx(&c2)).is_err());
    }

    #[test]
    fn crashing_crashes_then_succeeds() {
        let log = ExecutionLog::new();
        let exec = CrashingExecutor::new(1, log.clone());
        let c = cmd(3, CrashingExecutor::COMMAND_TYPE, 1);
        assert_eq!(
            exec.execute(ctx(&c)).unwrap_err(),
            ExecError::SimulatedCrash
        );
        assert!(exec.execute(ctx(&c)).is_ok());
        assert_eq!(log.total(), 2);
    }

    #[test]
    fn chaos_is_deterministic_per_seed() {
        let profile = ChaosProfile {
            seed: 42,
            error_pct: 30,
            crash_pct: 20,
        };
        let run = || {
            let exec = ChaosExecutor::new(profile, ExecutionLog::new());
            (0..50)
                .map(|i| {
                    let c = cmd(i, ChaosExecutor::COMMAND_TYPE, 1);
                    match exec.execute(ctx(&c)) {
                        Ok(_) => 0u8,
                        Err(ExecError::Failed(_)) => 1,
                        Err(ExecError::SimulatedCrash) => 2,
                        Err(ExecError::BadPayload(_)) => 3,
                    }
                })
                .collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run(), "same seed must replay the same outcomes");
        // The profile actually produces all three outcomes.
        assert!(a.contains(&0) && a.contains(&1) && a.contains(&2));
    }
}
