//! Shared-filesystem abstraction for checkpoint hand-off.
//!
//! §2.3 of the paper: *"If the server the worker connects to has access
//! to the same file system as the worker… this also allows commands that
//! do checkpointing… to have another client transparently continue from
//! the last checkpoint."* Workers periodically deposit checkpoints here;
//! when a worker is declared lost, the server re-queues its command with
//! the latest checkpoint attached.

use crate::ids::CommandId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// An in-process stand-in for a cluster shared filesystem.
#[derive(Clone, Default)]
pub struct SharedFs {
    inner: Arc<Mutex<HashMap<CommandId, serde_json::Value>>>,
}

impl SharedFs {
    pub fn new() -> Self {
        SharedFs::default()
    }

    /// Deposit (overwrite) the latest checkpoint for a command.
    pub fn store_checkpoint(&self, cmd: CommandId, checkpoint: serde_json::Value) {
        self.inner.lock().insert(cmd, checkpoint);
    }

    /// Latest checkpoint for a command, if any.
    pub fn checkpoint(&self, cmd: CommandId) -> Option<serde_json::Value> {
        self.inner.lock().get(&cmd).cloned()
    }

    /// Drop a command's checkpoint. Part of every *terminal* lifecycle
    /// transition (`Completed` and `Dropped`): whatever path retires a
    /// command must also retire its checkpoint or the shared filesystem
    /// leaks one entry per fault. Returns the evicted checkpoint, if
    /// one existed.
    pub fn clear(&self, cmd: CommandId) -> Option<serde_json::Value> {
        self.inner.lock().remove(&cmd)
    }

    pub fn n_checkpoints(&self) -> usize {
        self.inner.lock().len()
    }

    /// Ids that still hold a checkpoint (diagnostics for leak asserts).
    pub fn checkpointed_commands(&self) -> Vec<CommandId> {
        let mut ids: Vec<CommandId> = self.inner.lock().keys().copied().collect();
        ids.sort();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn store_fetch_clear() {
        let fs = SharedFs::new();
        assert!(fs.checkpoint(CommandId(1)).is_none());
        fs.store_checkpoint(CommandId(1), json!({"step": 100}));
        assert_eq!(fs.checkpoint(CommandId(1)).unwrap()["step"], 100);
        fs.store_checkpoint(CommandId(1), json!({"step": 200}));
        assert_eq!(fs.checkpoint(CommandId(1)).unwrap()["step"], 200);
        assert_eq!(fs.n_checkpoints(), 1);
        fs.clear(CommandId(1));
        assert!(fs.checkpoint(CommandId(1)).is_none());
    }

    #[test]
    fn clones_share_state() {
        let fs = SharedFs::new();
        let fs2 = fs.clone();
        fs.store_checkpoint(CommandId(7), json!(42));
        assert_eq!(fs2.checkpoint(CommandId(7)).unwrap(), json!(42));
    }
}
