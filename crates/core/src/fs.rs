//! Shared-filesystem abstraction for checkpoint hand-off.
//!
//! §2.3 of the paper: *"If the server the worker connects to has access
//! to the same file system as the worker… this also allows commands that
//! do checkpointing… to have another client transparently continue from
//! the last checkpoint."* Workers periodically deposit checkpoints here;
//! when a worker is declared lost, the server re-queues its command with
//! the latest checkpoint attached.
//!
//! Two durability concerns live here beyond the plain map:
//!
//! - **Retired-id fence.** Checkpoint deposits arrive from worker
//!   threads concurrently with the server retiring the command (a
//!   result can be accepted while a late heartbeat-piggybacked deposit
//!   is still in flight). `clear` therefore *retires* the id: a deposit
//!   for a retired command is dropped instead of re-creating an entry
//!   that nothing will ever clear again — the leak the chaos suites
//!   assert against with `n_checkpoints() == 0`.
//! - **Write-ahead logging.** When a [`Wal`] is attached (server
//!   configured with a state dir), every deposit and retirement is
//!   journaled so a restarted server re-attaches the latest checkpoint
//!   to re-queued work instead of restarting runs from step zero.

use crate::ids::CommandId;
use crate::wal::{Wal, WalRecord};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

#[derive(Default)]
struct Inner {
    map: HashMap<CommandId, serde_json::Value>,
    /// Ids whose checkpoints were cleared by a terminal transition;
    /// late deposits for these are ignored.
    retired: HashSet<CommandId>,
    wal: Option<Wal>,
}

/// An in-process stand-in for a cluster shared filesystem.
#[derive(Clone, Default)]
pub struct SharedFs {
    inner: Arc<Mutex<Inner>>,
}

impl SharedFs {
    pub fn new() -> Self {
        SharedFs::default()
    }

    /// Journal deposits and retirements to `wal` from now on. Shared
    /// by every clone (they share `inner`).
    pub fn attach_wal(&self, wal: Wal) {
        self.inner.lock().wal = Some(wal);
    }

    /// Preload a recovered checkpoint without journaling it again
    /// (recovery replay only).
    pub fn preload_checkpoint(&self, cmd: CommandId, checkpoint: serde_json::Value) {
        let mut inner = self.inner.lock();
        inner.retired.remove(&cmd);
        inner.map.insert(cmd, checkpoint);
    }

    /// Deposit (overwrite) the latest checkpoint for a command. A
    /// deposit for a retired command — one a terminal transition
    /// already cleared — is dropped: the late write lost the race and
    /// must not resurrect an entry nothing will clear again.
    pub fn store_checkpoint(&self, cmd: CommandId, checkpoint: serde_json::Value) {
        let mut inner = self.inner.lock();
        if inner.retired.contains(&cmd) {
            return;
        }
        if let Some(wal) = &inner.wal {
            let data = serde_json::to_string(&checkpoint).unwrap_or_else(|_| "null".to_string());
            let _ = wal.append(&WalRecord::CheckpointStored { command: cmd, data });
        }
        inner.map.insert(cmd, checkpoint);
    }

    /// Latest checkpoint for a command, if any.
    pub fn checkpoint(&self, cmd: CommandId) -> Option<serde_json::Value> {
        self.inner.lock().map.get(&cmd).cloned()
    }

    /// Retire a command's checkpoint. Part of every *terminal*
    /// lifecycle transition (`Completed`, `Dropped` and `Cancelled`):
    /// whatever path retires a command must also retire its checkpoint
    /// or the shared filesystem leaks one entry per fault. Marks the
    /// id retired so a racing late deposit cannot leak either. Returns
    /// the evicted checkpoint, if one existed.
    pub fn clear(&self, cmd: CommandId) -> Option<serde_json::Value> {
        let mut inner = self.inner.lock();
        inner.retired.insert(cmd);
        let evicted = inner.map.remove(&cmd);
        if let Some(wal) = &inner.wal {
            if evicted.is_some() {
                let _ = wal.append(&WalRecord::CheckpointCleared { command: cmd });
            }
        }
        evicted
    }

    pub fn n_checkpoints(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Ids that still hold a checkpoint (diagnostics for leak asserts).
    pub fn checkpointed_commands(&self) -> Vec<CommandId> {
        let mut ids: Vec<CommandId> = self.inner.lock().map.keys().copied().collect();
        ids.sort();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn store_fetch_clear() {
        let fs = SharedFs::new();
        assert!(fs.checkpoint(CommandId(1)).is_none());
        fs.store_checkpoint(CommandId(1), json!({"step": 100}));
        assert_eq!(fs.checkpoint(CommandId(1)).unwrap()["step"], 100);
        fs.store_checkpoint(CommandId(1), json!({"step": 200}));
        assert_eq!(fs.checkpoint(CommandId(1)).unwrap()["step"], 200);
        assert_eq!(fs.n_checkpoints(), 1);
        fs.clear(CommandId(1));
        assert!(fs.checkpoint(CommandId(1)).is_none());
    }

    #[test]
    fn clones_share_state() {
        let fs = SharedFs::new();
        let fs2 = fs.clone();
        fs.store_checkpoint(CommandId(7), json!(42));
        assert_eq!(fs2.checkpoint(CommandId(7)).unwrap(), json!(42));
    }

    /// The leak regression: a deposit that loses the race against the
    /// terminal transition's `clear` must not re-create the entry.
    #[test]
    fn late_deposit_after_clear_does_not_leak() {
        let fs = SharedFs::new();
        fs.store_checkpoint(CommandId(3), json!({"step": 1}));
        fs.clear(CommandId(3));
        fs.store_checkpoint(CommandId(3), json!({"step": 2}));
        assert_eq!(fs.n_checkpoints(), 0, "late deposit leaked a checkpoint");
        assert!(fs.checkpoint(CommandId(3)).is_none());
    }

    /// A clear with no deposit yet still fences later deposits — the
    /// decline/re-queue paths can retire a command that never
    /// checkpointed.
    #[test]
    fn clear_before_any_deposit_still_fences() {
        let fs = SharedFs::new();
        assert!(fs.clear(CommandId(9)).is_none());
        fs.store_checkpoint(CommandId(9), json!(1));
        assert_eq!(fs.n_checkpoints(), 0);
    }

    /// Re-spawning an id after recovery preload works (preload lifts
    /// the fence).
    #[test]
    fn preload_lifts_the_retired_fence() {
        let fs = SharedFs::new();
        fs.clear(CommandId(4));
        fs.preload_checkpoint(CommandId(4), json!({"step": 7}));
        assert_eq!(fs.checkpoint(CommandId(4)).unwrap()["step"], 7);
        fs.store_checkpoint(CommandId(4), json!({"step": 8}));
        assert_eq!(fs.checkpoint(CommandId(4)).unwrap()["step"], 8);
    }
}
