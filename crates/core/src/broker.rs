//! Work-request routing across multiple project servers (§2.2).
//!
//! *"The network must support routing of requests both to specific
//! servers, and to the first server with available commands."* A
//! [`Broker`] sits between a worker pool and several project servers
//! (Fig. 1 runs `msm_titin`, `msm_villin` and `free_energy`
//! simultaneously): worker announcements fan out to every server,
//! work requests are offered to the servers in rotating order and the
//! first one with matching commands wins, completions are routed back to
//! the server that issued the command, and heartbeats reach every
//! server. Workers are shut down once every project has finished.
//!
//! To its workers the broker *is* a server: it consumes messages
//! through a [`ServerTransport`] like any server does. Upstream it
//! plays worker to each real server, holding one proxy
//! [`ChannelWorkerTransport`] per (server, worker) pair so each
//! server's replies come back tagged with the worker they belong to.

use crate::ids::{CommandId, ProjectId, WorkerId};
use crate::messages::{ToServer, ToWorker};
use crate::transport::{
    channel, ChannelHub, ChannelWorkerTransport, ServerRecvError, ServerTransport, WorkerRecvError,
    WorkerTransport,
};
use std::collections::HashMap;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long one upstream offer waits between liveness checks. A server
/// deep in a controller step (clustering) can take arbitrarily long to
/// answer; the broker just keeps waiting unless the link closes.
const OFFER_PATIENCE: Duration = Duration::from_secs(1);

struct ServerLink {
    hub: ChannelHub,
    /// Per-worker proxy transports (broker plays worker to the server).
    proxies: HashMap<WorkerId, ChannelWorkerTransport>,
    /// Finished or disconnected.
    done: bool,
}

/// The relay. Create with [`spawn_broker`].
pub struct Broker {
    servers: Vec<ServerLink>,
    /// Which server issued each in-flight command. Command ids are only
    /// unique per project, so the key includes the project.
    command_owner: HashMap<(ProjectId, CommandId), usize>,
    /// Rotates the first server tried, for fairness between projects.
    next_first: usize,
    /// The worker-facing side: the broker is the workers' "server".
    transport: Box<dyn ServerTransport>,
}

impl Broker {
    fn new(servers: Vec<ChannelHub>, transport: Box<dyn ServerTransport>) -> Self {
        Broker {
            servers: servers
                .into_iter()
                .map(|hub| ServerLink {
                    hub,
                    proxies: HashMap::new(),
                    done: false,
                })
                .collect(),
            command_owner: HashMap::new(),
            next_first: 0,
            transport,
        }
    }

    fn run(mut self) {
        loop {
            match self.transport.recv_timeout(Duration::from_millis(100)) {
                Ok(msg) => self.handle(msg),
                Err(ServerRecvError::Timeout) => {}
                Err(ServerRecvError::Closed) => break,
            }
        }
    }

    fn all_done(&self) -> bool {
        self.servers.iter().all(|s| s.done)
    }

    fn handle(&mut self, msg: ToServer) {
        if std::env::var("BROKER_DEBUG").is_ok() {
            let tag = match &msg {
                ToServer::Announce { worker, .. } => format!("announce {worker}"),
                ToServer::RequestWork { worker } => format!("request {worker}"),
                ToServer::Completed { output } => format!("completed {}", output.command),
                ToServer::CommandError { command, epoch, .. } => {
                    format!("error {command} (epoch {epoch})")
                }
                ToServer::Heartbeat { .. } => String::new(),
            };
            if !tag.is_empty() {
                eprintln!("[broker] {tag}");
            }
        }
        match msg {
            ToServer::Announce { worker, desc } => {
                for link in self.servers.iter_mut().filter(|s| !s.done) {
                    let mut proxy = link.hub.attach(worker);
                    if proxy
                        .announce(ToServer::Announce {
                            worker,
                            desc: desc.clone(),
                        })
                        .is_err()
                    {
                        link.done = true;
                        continue;
                    }
                    link.proxies.insert(worker, proxy);
                }
            }
            ToServer::RequestWork { worker } => {
                let n = self.servers.len();
                let first = self.next_first;
                self.next_first = (self.next_first + 1) % n.max(1);

                for offset in 0..n {
                    let idx = (first + offset) % n;
                    if self.servers[idx].done {
                        continue;
                    }
                    let offer = self.offer_to_server(idx, worker);
                    if std::env::var("BROKER_DEBUG").is_ok() {
                        let what = match &offer {
                            Offer::Workload(c) => format!("workload x{}", c.len()),
                            Offer::NoWork => "nowork".into(),
                            Offer::ServerDone => "done".into(),
                        };
                        eprintln!("[broker] offer srv{idx} -> {what}");
                    }
                    match offer {
                        Offer::Workload(cmds) => {
                            for cmd in &cmds {
                                self.command_owner.insert((cmd.project, cmd.id), idx);
                            }
                            self.transport.send(worker, ToWorker::Workload(cmds));
                            return;
                        }
                        Offer::NoWork => continue,
                        Offer::ServerDone => {
                            self.servers[idx].done = true;
                            continue;
                        }
                    }
                }
                self.transport.send(
                    worker,
                    if self.all_done() {
                        ToWorker::Shutdown
                    } else {
                        ToWorker::NoWork
                    },
                );
            }
            ToServer::Completed { output } => {
                if let Some(idx) = self.command_owner.remove(&(output.project, output.command)) {
                    if self.servers[idx]
                        .hub
                        .send(ToServer::Completed { output })
                        .is_err()
                    {
                        self.servers[idx].done = true;
                    }
                }
            }
            ToServer::CommandError {
                worker,
                project,
                command,
                epoch,
                error,
            } => {
                if let Some(idx) = self.command_owner.remove(&(project, command)) {
                    let _ = self.servers[idx].hub.send(ToServer::CommandError {
                        worker,
                        project,
                        command,
                        epoch,
                        error,
                    });
                }
            }
            ToServer::Heartbeat { worker } => {
                for link in self.servers.iter_mut().filter(|s| !s.done) {
                    if link.hub.send(ToServer::Heartbeat { worker }).is_err() {
                        link.done = true;
                    }
                }
            }
        }
    }

    /// Offer a work request to one server and wait for its verdict.
    fn offer_to_server(&mut self, idx: usize, worker: WorkerId) -> Offer {
        let link = &mut self.servers[idx];
        let Some(proxy) = link.proxies.get_mut(&worker) else {
            return Offer::NoWork; // worker never announced to this server
        };
        if proxy.send(ToServer::RequestWork { worker }).is_err() {
            return Offer::ServerDone;
        }
        // Wait until the reply to *this* request arrives; unsolicited
        // Shutdown broadcasts mean the server finished its project.
        loop {
            match proxy.recv_timeout(OFFER_PATIENCE) {
                Ok(ToWorker::Workload(cmds)) => return Offer::Workload(cmds),
                Ok(ToWorker::NoWork) => return Offer::NoWork,
                Ok(ToWorker::Shutdown) => return Offer::ServerDone,
                // Channel transports never reconnect, and a slow server
                // is just slow: keep waiting.
                Err(WorkerRecvError::Timeout) | Err(WorkerRecvError::Reconnected) => {}
                Err(WorkerRecvError::Closed(_)) => return Offer::ServerDone,
            }
        }
    }
}

enum Offer {
    Workload(Vec<crate::command::Command>),
    NoWork,
    ServerDone,
}

/// Spawn a broker thread in front of the given server hubs. Returns
/// the hub workers should attach to, plus the broker's join handle
/// (exits when all workers have disconnected).
pub fn spawn_broker(servers: Vec<ChannelHub>) -> (ChannelHub, JoinHandle<()>) {
    assert!(!servers.is_empty(), "broker needs at least one server");
    let (hub, transport) = channel();
    let broker = Broker::new(servers, Box::new(transport));
    let handle = std::thread::spawn(move || broker.run());
    (hub, handle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{Action, Controller, ControllerEvent};
    use crate::executor::{ExecutorRegistry, SleepExecutor};
    use crate::fs::SharedFs;
    use crate::ids::ProjectId;
    use crate::monitor::Monitor;
    use crate::resources::Resources;
    use crate::server::{Server, ServerConfig};
    use crate::worker::{spawn_worker, WorkerConfig};
    use crate::CommandSpec;
    use serde_json::json;
    use std::sync::Arc;

    /// Controller that runs `n` sleep commands then finishes with its
    /// own label.
    struct SleepProject {
        label: &'static str,
        n: usize,
        done: usize,
    }

    impl Controller for SleepProject {
        fn name(&self) -> &str {
            self.label
        }
        fn on_event(&mut self, event: ControllerEvent<'_>) -> Vec<Action> {
            match event {
                ControllerEvent::ProjectStarted => {
                    let specs = (0..self.n)
                        .map(|_| {
                            CommandSpec::new("sleep", Resources::new(1, 1), json!({ "millis": 2 }))
                        })
                        .collect();
                    vec![Action::Spawn(specs)]
                }
                ControllerEvent::CommandFinished(_) => {
                    self.done += 1;
                    if self.done == self.n {
                        vec![Action::FinishProject {
                            result: json!(self.label),
                        }]
                    } else {
                        vec![]
                    }
                }
                _ => vec![],
            }
        }
    }

    #[test]
    fn one_worker_pool_serves_two_projects() {
        let mut server_hubs = Vec::new();
        let mut server_threads = Vec::new();
        for (p, label) in ["alpha", "beta"].iter().enumerate() {
            let (hub, transport) = channel();
            let server = Server::new(
                ProjectId(p as u64),
                Box::new(SleepProject {
                    label,
                    n: 6,
                    done: 0,
                }),
                ServerConfig::default(),
                SharedFs::new(),
                Monitor::new(),
                Box::new(transport),
            );
            server_hubs.push(hub);
            server_threads.push(std::thread::spawn(move || server.run()));
        }
        let (broker_hub, broker_handle) = spawn_broker(server_hubs);

        let registry = ExecutorRegistry::new().with(Arc::new(SleepExecutor));
        let workers: Vec<_> = (0..3)
            .map(|i| {
                let id = WorkerId(i);
                spawn_worker(
                    id,
                    WorkerConfig::default(),
                    registry.clone(),
                    Box::new(broker_hub.attach(id)),
                )
            })
            .collect();
        drop(broker_hub);

        let mut results: Vec<_> = server_threads
            .into_iter()
            .map(|t| t.join().unwrap())
            .collect();
        for w in workers {
            w.join();
        }
        broker_handle.join().unwrap();

        results.sort_by_key(|r| r.project);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].result, json!("alpha"));
        assert_eq!(results[1].result, json!("beta"));
        assert_eq!(results[0].commands_completed, 6);
        assert_eq!(results[1].commands_completed, 6);
    }

    #[test]
    fn broker_requires_servers() {
        let result = std::panic::catch_unwind(|| spawn_broker(vec![]));
        assert!(result.is_err());
    }
}
