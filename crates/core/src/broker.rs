//! Work-request routing across multiple upstreams (§2.2).
//!
//! *"The network must support routing of requests both to specific
//! servers, and to the first server with available commands."* A
//! [`Broker`] sits between a worker pool and several work sources
//! (Fig. 1 runs `msm_titin`, `msm_villin` and `free_energy`
//! simultaneously): worker announcements fan out to every upstream,
//! work requests are offered to the upstreams in rotating order and
//! the first one with matching commands wins, completions are routed
//! back to the upstream that issued the command, and heartbeats reach
//! every upstream. Workers are shut down once every upstream has
//! finished.
//!
//! An upstream is anything implementing [`Upstream`]: a local project
//! server behind a channel hub ([`LocalUpstream`]), or a *remote* peer
//! server dialed over the wire ([`crate::peer::PeerLink`]). The second
//! kind is what turns the broker into the overlay router — a server
//! with idle workers offers them to peers with backlog and pulls
//! delegated commands, while every command stays owned (queued,
//! retried, deduplicated) by the server that spawned it.
//!
//! Offers are *bounded*: an upstream that does not answer within
//! [`BrokerConfig::offer_patience`] forfeits that offer and the worker
//! is offered elsewhere. A late workload from a forfeited offer is
//! never run — it is declined back to its owner (one `CommandError`
//! per command, carrying the dispatch epoch) so the owner re-queues
//! it. That costs one attempt but guarantees no command leaks into a
//! workload nobody is tracking, and it is what keeps a server stalled
//! in a long controller step (clustering) from starving the others.
//!
//! To its workers the broker *is* a server: it consumes messages
//! through a [`ServerTransport`] like any server does.

use crate::command::{Command, CommandOutput};
use crate::ids::{CommandId, ProjectId, WorkerId};
use crate::messages::{ToServer, ToWorker};
use crate::resources::WorkerDescription;
use crate::transport::{
    channel, ChannelHub, ChannelWorkerTransport, ServerRecvError, ServerTransport, WorkerRecvError,
    WorkerTransport,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// An upstream's answer to one bounded work offer.
pub enum Offer {
    /// Commands for the offered worker.
    Workload(Vec<Command>),
    /// Nothing matched (or the offer timed out); try elsewhere.
    NoWork,
    /// The upstream has finished (or its link is gone) — stop offering.
    Done,
}

/// The upstream's link is unusable; the router marks it done.
#[derive(Debug)]
pub struct UpstreamGone;

/// A source of work the router can offer idle workers to. Implemented
/// by [`LocalUpstream`] (channel hub to an in-process server) and
/// [`crate::peer::PeerLink`] (wire link to a peer server).
pub trait Upstream: Send {
    /// Human-readable name for logs.
    fn label(&self) -> String;

    /// A worker joined the pool: make it known upstream so later
    /// offers on its behalf can be answered.
    fn register(&mut self, worker: WorkerId, desc: &WorkerDescription) -> Result<(), UpstreamGone>;

    /// Offer `worker` and wait up to `patience` for a verdict. An
    /// implementation that abandons a timed-out offer must guarantee
    /// the late reply's commands are declined back to their owner,
    /// never silently dropped.
    fn offer(&mut self, worker: WorkerId, patience: Duration) -> Offer;

    /// Route a completion back to the upstream that owns the command.
    fn completed(&mut self, output: CommandOutput) -> Result<(), UpstreamGone>;

    /// Route a reportable failure back to the owning upstream.
    fn error(
        &mut self,
        worker: WorkerId,
        project: ProjectId,
        command: CommandId,
        epoch: u32,
        error: String,
    ) -> Result<(), UpstreamGone>;

    /// Forward a worker's liveness signal.
    fn heartbeat(&mut self, worker: WorkerId) -> Result<(), UpstreamGone>;
}

/// Router tuning.
#[derive(Debug, Clone)]
pub struct BrokerConfig {
    /// How long one offer waits for an upstream's verdict before the
    /// worker is offered elsewhere.
    pub offer_patience: Duration,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig {
            offer_patience: Duration::from_secs(5),
        }
    }
}

// ---------------------------------------------------------------------
// Local upstream: an in-process server behind a channel hub
// ---------------------------------------------------------------------

/// A project server reached through its [`ChannelHub`]. The router
/// plays worker to it, holding one proxy transport per worker so the
/// server's replies come back tagged with the worker they belong to.
pub struct LocalUpstream {
    label: String,
    hub: ChannelHub,
    proxies: HashMap<WorkerId, ChannelWorkerTransport>,
    /// Outstanding abandoned requests per worker. Channels are FIFO
    /// and lossless and the server answers every announced worker's
    /// request, so the replies to abandoned offers arrive — in order —
    /// ahead of the current one, and a simple count tells stale from
    /// fresh.
    pending: HashMap<WorkerId, u32>,
}

impl LocalUpstream {
    pub fn new(label: impl Into<String>, hub: ChannelHub) -> LocalUpstream {
        LocalUpstream {
            label: label.into(),
            hub,
            proxies: HashMap::new(),
            pending: HashMap::new(),
        }
    }

    /// Return a stale workload to the server so its lifecycle
    /// re-queues the commands (burning one attempt each).
    fn decline(&mut self, worker: WorkerId, commands: &[Command]) -> Result<(), UpstreamGone> {
        for cmd in commands {
            self.hub
                .send(ToServer::CommandError {
                    worker,
                    project: cmd.project,
                    command: cmd.id,
                    epoch: cmd.attempts,
                    error: "offer abandoned by router".to_string(),
                })
                .map_err(|_| UpstreamGone)?;
        }
        Ok(())
    }
}

impl Upstream for LocalUpstream {
    fn label(&self) -> String {
        self.label.clone()
    }

    fn register(&mut self, worker: WorkerId, desc: &WorkerDescription) -> Result<(), UpstreamGone> {
        let mut proxy = self.hub.attach(worker);
        proxy
            .announce(ToServer::Announce {
                worker,
                desc: desc.clone(),
            })
            .map_err(|_| UpstreamGone)?;
        self.proxies.insert(worker, proxy);
        self.pending.insert(worker, 0);
        Ok(())
    }

    fn offer(&mut self, worker: WorkerId, patience: Duration) -> Offer {
        let Some(proxy) = self.proxies.get_mut(&worker) else {
            return Offer::NoWork; // worker never announced here
        };
        if proxy.send(ToServer::RequestWork { worker }).is_err() {
            return Offer::Done;
        }
        let deadline = Instant::now() + patience;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                // Abandon this offer; its eventual reply is consumed
                // (and any workload declined) by a later offer.
                *self.pending.entry(worker).or_insert(0) += 1;
                return Offer::NoWork;
            }
            let stale = self.pending.get(&worker).copied().unwrap_or(0);
            let reply = match self
                .proxies
                .get_mut(&worker)
                .unwrap()
                .recv_timeout(remaining)
            {
                Ok(reply) => reply,
                Err(WorkerRecvError::Timeout) | Err(WorkerRecvError::Reconnected) => continue,
                Err(WorkerRecvError::Closed(_)) => return Offer::Done,
            };
            match reply {
                ToWorker::Workload(cmds) => {
                    if stale > 0 {
                        self.pending.insert(worker, stale - 1);
                        if self.decline(worker, &cmds).is_err() {
                            return Offer::Done;
                        }
                        continue;
                    }
                    return Offer::Workload(cmds);
                }
                ToWorker::NoWork => {
                    if stale > 0 {
                        self.pending.insert(worker, stale - 1);
                        continue;
                    }
                    return Offer::NoWork;
                }
                // Unsolicited Shutdown broadcasts mean the server
                // finished its project.
                ToWorker::Shutdown => return Offer::Done,
            }
        }
    }

    fn completed(&mut self, output: CommandOutput) -> Result<(), UpstreamGone> {
        self.hub
            .send(ToServer::Completed { output })
            .map_err(|_| UpstreamGone)
    }

    fn error(
        &mut self,
        worker: WorkerId,
        project: ProjectId,
        command: CommandId,
        epoch: u32,
        error: String,
    ) -> Result<(), UpstreamGone> {
        self.hub
            .send(ToServer::CommandError {
                worker,
                project,
                command,
                epoch,
                error,
            })
            .map_err(|_| UpstreamGone)
    }

    fn heartbeat(&mut self, worker: WorkerId) -> Result<(), UpstreamGone> {
        self.hub
            .send(ToServer::Heartbeat { worker })
            .map_err(|_| UpstreamGone)
    }
}

// ---------------------------------------------------------------------
// The router
// ---------------------------------------------------------------------

struct UpstreamSlot {
    up: Box<dyn Upstream>,
    done: bool,
}

/// The relay. Create with [`spawn_router`] (or [`spawn_broker`] for
/// the all-local case).
pub struct Broker {
    upstreams: Vec<UpstreamSlot>,
    /// Which upstream issued each in-flight command. Command ids are
    /// only unique per project, so the key includes the project.
    command_owner: HashMap<(ProjectId, CommandId), usize>,
    /// Rotates the first upstream tried, for fairness between projects.
    next_first: usize,
    /// The worker-facing side: the broker is the workers' "server".
    transport: Box<dyn ServerTransport>,
    config: BrokerConfig,
}

impl Broker {
    fn new(
        upstreams: Vec<Box<dyn Upstream>>,
        transport: Box<dyn ServerTransport>,
        config: BrokerConfig,
    ) -> Self {
        Broker {
            upstreams: upstreams
                .into_iter()
                .map(|up| UpstreamSlot { up, done: false })
                .collect(),
            command_owner: HashMap::new(),
            next_first: 0,
            transport,
            config,
        }
    }

    fn run(mut self, stop: &AtomicBool) {
        loop {
            if stop.load(Ordering::Relaxed) {
                return; // abrupt stop: no shutdown courtesy, like a crash
            }
            match self.transport.recv_timeout(Duration::from_millis(100)) {
                Ok(msg) => self.handle(msg),
                Err(ServerRecvError::Timeout) => continue,
                Err(ServerRecvError::Closed) => return,
            }
            if self.all_done() {
                // Every upstream has finished; release the pool. A
                // worker mid-poll also gets Shutdown as its reply.
                self.transport.broadcast(ToWorker::Shutdown);
                return;
            }
        }
    }

    fn all_done(&self) -> bool {
        self.upstreams.iter().all(|s| s.done)
    }

    fn mark_done(&mut self, idx: usize) {
        if !self.upstreams[idx].done {
            self.upstreams[idx].done = true;
            if std::env::var("BROKER_DEBUG").is_ok() {
                eprintln!("[broker] upstream {} done", self.upstreams[idx].up.label());
            }
        }
    }

    fn handle(&mut self, msg: ToServer) {
        if std::env::var("BROKER_DEBUG").is_ok() {
            let tag = match &msg {
                ToServer::Announce { worker, .. } => format!("announce {worker}"),
                ToServer::RequestWork { worker } => format!("request {worker}"),
                ToServer::Completed { output } => format!("completed {}", output.command),
                ToServer::CommandError { command, epoch, .. } => {
                    format!("error {command} (epoch {epoch})")
                }
                ToServer::Heartbeat { .. } => String::new(),
                ToServer::WorkerDeparted { worker } => format!("departed {worker}"),
                ToServer::Batch(msgs) => format!("batch x{}", msgs.len()),
            };
            if !tag.is_empty() {
                eprintln!("[broker] {tag}");
            }
        }
        match msg {
            ToServer::Batch(msgs) => {
                for m in msgs {
                    self.handle(m);
                }
            }
            ToServer::Announce { worker, desc } => {
                for idx in 0..self.upstreams.len() {
                    if self.upstreams[idx].done {
                        continue;
                    }
                    if self.upstreams[idx].up.register(worker, &desc).is_err() {
                        self.mark_done(idx);
                    }
                }
            }
            ToServer::RequestWork { worker } => {
                let n = self.upstreams.len();
                let first = self.next_first;
                self.next_first = (self.next_first + 1) % n.max(1);

                for offset in 0..n {
                    let idx = (first + offset) % n;
                    if self.upstreams[idx].done {
                        continue;
                    }
                    let offer = self.upstreams[idx]
                        .up
                        .offer(worker, self.config.offer_patience);
                    if std::env::var("BROKER_DEBUG").is_ok() {
                        let what = match &offer {
                            Offer::Workload(c) => format!("workload x{}", c.len()),
                            Offer::NoWork => "nowork".into(),
                            Offer::Done => "done".into(),
                        };
                        eprintln!(
                            "[broker] offer {} -> {what}",
                            self.upstreams[idx].up.label()
                        );
                    }
                    match offer {
                        Offer::Workload(cmds) => {
                            for cmd in &cmds {
                                self.command_owner.insert((cmd.project, cmd.id), idx);
                            }
                            self.transport.send(worker, ToWorker::Workload(cmds));
                            return;
                        }
                        Offer::NoWork => continue,
                        Offer::Done => {
                            self.mark_done(idx);
                            continue;
                        }
                    }
                }
                self.transport.send(
                    worker,
                    if self.all_done() {
                        ToWorker::Shutdown
                    } else {
                        ToWorker::NoWork
                    },
                );
            }
            ToServer::Completed { output } => {
                if let Some(idx) = self.command_owner.remove(&(output.project, output.command)) {
                    if self.upstreams[idx].up.completed(output).is_err() {
                        self.mark_done(idx);
                    }
                }
            }
            ToServer::CommandError {
                worker,
                project,
                command,
                epoch,
                error,
            } => {
                if let Some(idx) = self.command_owner.remove(&(project, command)) {
                    if self.upstreams[idx]
                        .up
                        .error(worker, project, command, epoch, error)
                        .is_err()
                    {
                        self.mark_done(idx);
                    }
                }
            }
            ToServer::Heartbeat { worker } => {
                for idx in 0..self.upstreams.len() {
                    if self.upstreams[idx].done {
                        continue;
                    }
                    if self.upstreams[idx].up.heartbeat(worker).is_err() {
                        self.mark_done(idx);
                    }
                }
            }
            ToServer::WorkerDeparted { .. } => {
                // The broker simply stops relaying the worker's
                // heartbeats; each upstream owner's watchdog draws the
                // worker-lost verdict on its own schedule.
            }
        }
    }
}

/// Handle to a running router thread.
pub struct RouterHandle {
    stop: Arc<AtomicBool>,
    thread: JoinHandle<()>,
}

impl RouterHandle {
    /// Ask the router to exit at its next loop iteration, *without*
    /// notifying upstreams or workers — from their point of view this
    /// is indistinguishable from a crash (which is what the fault
    /// tests use it for).
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    pub fn join(self) {
        let _ = self.thread.join();
    }

    pub fn stop_and_join(self) {
        self.stop();
        self.join();
    }
}

/// Spawn a router thread in front of the given upstreams, serving
/// workers through `transport`.
pub fn spawn_router(
    upstreams: Vec<Box<dyn Upstream>>,
    transport: Box<dyn ServerTransport>,
    config: BrokerConfig,
) -> RouterHandle {
    assert!(!upstreams.is_empty(), "router needs at least one upstream");
    let stop = Arc::new(AtomicBool::new(false));
    let flag = stop.clone();
    let broker = Broker::new(upstreams, transport, config);
    let thread = std::thread::spawn(move || broker.run(&flag));
    RouterHandle { stop, thread }
}

/// Spawn a broker thread in front of the given (local) server hubs.
/// Returns the hub workers should attach to, plus the broker's join
/// handle (exits when all projects finish or all workers disconnect).
pub fn spawn_broker(servers: Vec<ChannelHub>) -> (ChannelHub, JoinHandle<()>) {
    assert!(!servers.is_empty(), "broker needs at least one server");
    let (hub, transport) = channel();
    let upstreams: Vec<Box<dyn Upstream>> = servers
        .into_iter()
        .enumerate()
        .map(|(i, hub)| Box::new(LocalUpstream::new(format!("srv{i}"), hub)) as Box<dyn Upstream>)
        .collect();
    let broker = Broker::new(upstreams, Box::new(transport), BrokerConfig::default());
    let stop = Arc::new(AtomicBool::new(false));
    let handle = std::thread::spawn(move || broker.run(&stop));
    (hub, handle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{Action, Controller, ControllerCtx, ControllerEvent};
    use crate::executor::{ExecutorRegistry, SleepExecutor};
    use crate::fs::SharedFs;
    use crate::ids::ProjectId;
    use crate::monitor::Monitor;
    use crate::resources::Resources;
    use crate::server::{Server, ServerConfig};
    use crate::worker::{spawn_worker, WorkerConfig};
    use crate::CommandSpec;
    use serde_json::json;
    use std::sync::Arc;

    /// Controller that runs `n` sleep commands then finishes with its
    /// own label.
    struct SleepProject {
        label: &'static str,
        n: usize,
        done: usize,
    }

    impl Controller for SleepProject {
        fn name(&self) -> &str {
            self.label
        }
        fn on_event(&mut self, _ctx: ControllerCtx<'_>, event: ControllerEvent<'_>) -> Vec<Action> {
            match event {
                ControllerEvent::ProjectStarted => {
                    let specs = (0..self.n)
                        .map(|_| {
                            CommandSpec::new("sleep", Resources::new(1, 1), json!({ "millis": 2 }))
                        })
                        .collect();
                    vec![Action::Spawn(specs)]
                }
                ControllerEvent::CommandFinished(_) => {
                    self.done += 1;
                    if self.done == self.n {
                        vec![Action::FinishProject {
                            result: json!(self.label),
                        }]
                    } else {
                        vec![]
                    }
                }
                _ => vec![],
            }
        }
    }

    #[test]
    fn one_worker_pool_serves_two_projects() {
        let mut server_hubs = Vec::new();
        let mut server_threads = Vec::new();
        for (p, label) in ["alpha", "beta"].iter().enumerate() {
            let (hub, transport) = channel();
            let server = Server::new(
                ProjectId(p as u64),
                Box::new(SleepProject {
                    label,
                    n: 6,
                    done: 0,
                }),
                ServerConfig::default(),
                SharedFs::new(),
                Monitor::new(),
                Box::new(transport),
            );
            server_hubs.push(hub);
            server_threads.push(std::thread::spawn(move || server.run()));
        }
        let (broker_hub, broker_handle) = spawn_broker(server_hubs);

        let registry = ExecutorRegistry::new().with(Arc::new(SleepExecutor));
        let workers: Vec<_> = (0..3)
            .map(|i| {
                let id = WorkerId(i);
                spawn_worker(
                    id,
                    WorkerConfig::default(),
                    registry.clone(),
                    Box::new(broker_hub.attach(id)),
                )
            })
            .collect();
        drop(broker_hub);

        let mut results: Vec<_> = server_threads
            .into_iter()
            .map(|t| t.join().unwrap())
            .collect();
        for w in workers {
            w.join();
        }
        broker_handle.join().unwrap();

        results.sort_by_key(|r| r.project);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].result, json!("alpha"));
        assert_eq!(results[1].result, json!("beta"));
        assert_eq!(results[0].commands_completed, 6);
        assert_eq!(results[1].commands_completed, 6);
    }

    #[test]
    fn broker_requires_servers() {
        let result = std::panic::catch_unwind(|| spawn_broker(vec![]));
        assert!(result.is_err());
    }
}
