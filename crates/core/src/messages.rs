//! Wire messages between workers and the project server.
//!
//! Both enums are **pure data**: `Clone + Serialize + Deserialize`,
//! no channels, no handles. Reply routing is the transport's job (see
//! [`crate::transport`]): in-process transports pair each worker with a
//! crossbeam channel, the TCP transport pairs it with an authenticated
//! connection. The message set is identical either way, which is what
//! lets one `Server`/`Worker` implementation run in both modes (§2.2 of
//! the paper: the same request/response protocol over SSL links or
//! inside one process).

use crate::command::{Command, CommandOutput};
use crate::ids::{CommandId, ProjectId, WorkerId};
use crate::resources::WorkerDescription;
use serde::{Deserialize, Serialize};

/// Messages a worker (or client) sends to a server.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ToServer {
    /// A worker presents itself: platform, resources, executables
    /// (§2.3). Where replies go is transport state, not message
    /// content — the transport learns the return path from the
    /// connection (or channel) this arrived on.
    Announce {
        worker: WorkerId,
        desc: WorkerDescription,
    },
    /// Ask for a workload.
    RequestWork { worker: WorkerId },
    /// A command finished successfully.
    Completed { output: CommandOutput },
    /// A command failed in a reportable way (bad payload, executor
    /// failure — *not* a crash, which manifests as silence).
    CommandError {
        worker: WorkerId,
        project: ProjectId,
        command: CommandId,
        /// The attempt epoch the failure belongs to (the command's
        /// `attempts` at dispatch). Stale-epoch errors are dropped by
        /// the server rather than charged against the current attempt.
        epoch: u32,
        error: String,
    },
    /// Periodic liveness signal.
    Heartbeat { worker: WorkerId },
    /// The transport observed the worker's link die (connection reset,
    /// or evicted at the write-backlog cap). Synthesized by transports,
    /// never sent by workers: the server orphans the worker's in-flight
    /// commands immediately instead of waiting out the heartbeat
    /// watchdog.
    WorkerDeparted { worker: WorkerId },
    /// Several messages coalesced into one wire frame. Transports use
    /// this to amortize framing and syscall cost on chatty paths
    /// (heartbeats riding along with the next request); the server
    /// processes the contents in order, exactly as if they had arrived
    /// as individual frames. The codec flattens nested batches at
    /// encode time and rejects them on decode, so the wire never
    /// carries more than one level.
    Batch(Vec<ToServer>),
}

impl ToServer {
    /// The worker this message speaks for. Transports use it to bind a
    /// connection to a worker identity (and the watchdog to a liveness
    /// record) without peeking into variant internals. A batch speaks
    /// for its first member (transports expand batches before routing,
    /// so this is only a fallback; an empty batch maps to the null
    /// worker id).
    pub fn worker(&self) -> WorkerId {
        match self {
            ToServer::Announce { worker, .. }
            | ToServer::RequestWork { worker }
            | ToServer::CommandError { worker, .. }
            | ToServer::Heartbeat { worker }
            | ToServer::WorkerDeparted { worker } => *worker,
            ToServer::Completed { output } => output.worker,
            ToServer::Batch(msgs) => msgs.first().map(ToServer::worker).unwrap_or(WorkerId(0)),
        }
    }
}

/// Messages a server sends to a worker.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ToWorker {
    /// Commands to execute.
    Workload(Vec<Command>),
    /// Nothing matched; poll again later.
    NoWork,
    /// The project is over; exit.
    Shutdown,
}

/// The server↔server peer protocol (§2.2, Fig. 1: the network of
/// project servers). A server with idle workers dials a peer with
/// backlog and *pulls* matching commands; the dialed server — the
/// owner — keeps the commands in its own ledger throughout, so the
/// attempt-epoch/exactly-once lifecycle needs no distributed state.
/// See [`crate::peer`] for the two endpoint roles.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum PeerMsg {
    /// First frame in each direction on a peer link: who I am and which
    /// projects I host. The listener side replies with its own hello.
    Hello {
        server: String,
        projects: Vec<ProjectId>,
    },
    /// Delegate → owner: worker `worker` (the delegate's real worker
    /// id) is idle and matches `desc`; send work if any. `offer` is a
    /// link-local nonce echoed in the reply so the delegate can tell a
    /// late answer to an abandoned offer from the current one.
    OfferWork {
        offer: u64,
        worker: WorkerId,
        desc: WorkerDescription,
    },
    /// Owner → delegate: commands for `worker`, answering offer
    /// `offer`. An empty command list means nothing matched.
    DelegateCommand {
        offer: u64,
        worker: WorkerId,
        commands: Vec<Command>,
    },
    /// Delegate → owner: a delegated command finished; `output.worker`
    /// is the delegate's real worker id (the owner re-namespaces it).
    DelegatedResult { output: CommandOutput },
    /// Delegate → owner: a delegated command failed — or was *declined*
    /// (the reply to an abandoned offer), which deliberately burns one
    /// attempt so the owner re-queues instead of leaking the command.
    DelegatedError {
        worker: WorkerId,
        project: ProjectId,
        command: CommandId,
        epoch: u32,
        error: String,
    },
    /// Delegate → owner: the named remote worker is still alive. Each
    /// remote worker heartbeats individually so the owner's watchdog
    /// can orphan exactly the commands of a worker that died while the
    /// delegate itself lives on.
    Heartbeat { worker: WorkerId },
    /// Delegate → owner: several workers' liveness in one frame. The
    /// delegate buffers its workers' heartbeats briefly and flushes
    /// them coalesced, so a delegate fronting hundreds of workers
    /// costs the owner one frame per tick instead of one per worker.
    /// Semantically identical to that many [`PeerMsg::Heartbeat`]s.
    Heartbeats { workers: Vec<WorkerId> },
    /// Owner → delegate: my project is over; stop offering.
    Shutdown,
}
