//! Wire messages between workers and the project server.
//!
//! In the real deployment these travel as SSL request/response pairs over
//! the overlay network (modeled in the `netsim` crate); inside one
//! process they travel over crossbeam channels. The message set is the
//! same either way.

use crate::command::{Command, CommandOutput};
use crate::ids::{CommandId, ProjectId, WorkerId};
use crate::resources::WorkerDescription;
use crossbeam::channel::Sender;

/// Messages a worker (or client) sends to a server.
pub enum ToServer {
    /// A worker presents itself: platform, resources, executables
    /// (§2.3), plus its reply channel.
    Announce {
        worker: WorkerId,
        desc: WorkerDescription,
        reply: Sender<ToWorker>,
    },
    /// Ask for a workload.
    RequestWork { worker: WorkerId },
    /// A command finished successfully.
    Completed { output: CommandOutput },
    /// A command failed in a reportable way (bad payload, executor
    /// failure — *not* a crash, which manifests as silence).
    CommandError {
        worker: WorkerId,
        project: ProjectId,
        command: CommandId,
        /// The attempt epoch the failure belongs to (the command's
        /// `attempts` at dispatch). Stale-epoch errors are dropped by
        /// the server rather than charged against the current attempt.
        epoch: u32,
        error: String,
    },
    /// Periodic liveness signal.
    Heartbeat { worker: WorkerId },
}

/// Messages a server sends to a worker.
#[derive(Debug)]
pub enum ToWorker {
    /// Commands to execute.
    Workload(Vec<Command>),
    /// Nothing matched; poll again later.
    NoWork,
    /// The project is over; exit.
    Shutdown,
}
