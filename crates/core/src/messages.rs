//! Wire messages between workers and the project server.
//!
//! Both enums are **pure data**: `Clone + Serialize + Deserialize`,
//! no channels, no handles. Reply routing is the transport's job (see
//! [`crate::transport`]): in-process transports pair each worker with a
//! crossbeam channel, the TCP transport pairs it with an authenticated
//! connection. The message set is identical either way, which is what
//! lets one `Server`/`Worker` implementation run in both modes (§2.2 of
//! the paper: the same request/response protocol over SSL links or
//! inside one process).

use crate::command::{Command, CommandOutput};
use crate::ids::{CommandId, ProjectId, WorkerId};
use crate::resources::WorkerDescription;
use serde::{Deserialize, Serialize};

/// Messages a worker (or client) sends to a server.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ToServer {
    /// A worker presents itself: platform, resources, executables
    /// (§2.3). Where replies go is transport state, not message
    /// content — the transport learns the return path from the
    /// connection (or channel) this arrived on.
    Announce {
        worker: WorkerId,
        desc: WorkerDescription,
    },
    /// Ask for a workload.
    RequestWork { worker: WorkerId },
    /// A command finished successfully.
    Completed { output: CommandOutput },
    /// A command failed in a reportable way (bad payload, executor
    /// failure — *not* a crash, which manifests as silence).
    CommandError {
        worker: WorkerId,
        project: ProjectId,
        command: CommandId,
        /// The attempt epoch the failure belongs to (the command's
        /// `attempts` at dispatch). Stale-epoch errors are dropped by
        /// the server rather than charged against the current attempt.
        epoch: u32,
        error: String,
    },
    /// Periodic liveness signal.
    Heartbeat { worker: WorkerId },
}

impl ToServer {
    /// The worker this message speaks for. Transports use it to bind a
    /// connection to a worker identity (and the watchdog to a liveness
    /// record) without peeking into variant internals.
    pub fn worker(&self) -> WorkerId {
        match self {
            ToServer::Announce { worker, .. }
            | ToServer::RequestWork { worker }
            | ToServer::CommandError { worker, .. }
            | ToServer::Heartbeat { worker } => *worker,
            ToServer::Completed { output } => output.worker,
        }
    }
}

/// Messages a server sends to a worker.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ToWorker {
    /// Commands to execute.
    Workload(Vec<Command>),
    /// Nothing matched; poll again later.
    NoWork,
    /// The project is over; exit.
    Shutdown,
}
