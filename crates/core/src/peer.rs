//! Server overlay: authenticated server↔server links with cross-server
//! work delegation (§2.2, Fig. 1 — the *network* of project servers
//! that routes work requests "both to specific servers, and to the
//! first server with available commands").
//!
//! Topology: a server dials its peers over the same PSK-authenticated
//! wire protocol workers use. The first frame each way is
//! [`PeerMsg::Hello`] (identity + hosted projects); after that the
//! *dialing* side pulls work for its idle workers with
//! [`PeerMsg::OfferWork`] and the *listening* side — the owner of the
//! backlog — answers with [`PeerMsg::DelegateCommand`]. Results,
//! errors and per-worker heartbeats flow back over the link. Work only
//! flows listener → dialer; peer both directions for a full mesh.
//!
//! Ownership never moves. A delegated command stays in the owner's
//! queue and ledger, dispatched to a *namespaced* synthetic worker id
//! ([`namespaced_worker`]) that stands for "worker w behind peer p".
//! The owner's ordinary lifecycle machinery — attempt epochs, the
//! heartbeat watchdog, the retry budget, exactly-once accounting —
//! then polices remote execution exactly as it does local workers:
//!
//! * the delegate forwards each of its workers' heartbeats, so the
//!   owner's watchdog tracks every remote worker individually;
//! * if the delegate (or one remote worker) dies, those heartbeats
//!   stop, the watchdog orphans the synthetic worker, and the command
//!   re-queues at the owner — no distributed state to reconcile;
//! * a result for a superseded attempt is dropped by the owner's
//!   epoch dedup like any other stale result.
//!
//! The delegate never executes work it did not just ask for: a
//! `DelegateCommand` answering an offer it has abandoned (bounded
//! patience expired, or the link bounced) is *declined* with one
//! [`PeerMsg::DelegatedError`] per command. Declining deliberately
//! burns one attempt so the owner re-queues promptly instead of
//! waiting for the watchdog — the price of never leaking a command
//! into a workload nobody is tracking.
//!
//! **Owner crash and restart.** Because ownership never moves, an
//! owner restarting from its write-ahead log (`--state-dir`, see
//! [`crate::wal`]) recovers delegated commands like any other
//! in-flight work: the namespaced synthetic worker is restored as a
//! heartbeat-tracked placeholder. If the delegate is still alive it
//! reconnects (the peer link redials), its forwarded heartbeats keep
//! the placeholder fresh, and the delegated result lands under its
//! original attempt epoch; if the delegate never returns, the watchdog
//! orphans the placeholder and the command re-queues locally. The
//! delegate side holds no durable state at all — a decline or a
//! redial resolves anything a dead owner left dangling on its side.
//!
//! Two types implement the two roles:
//!
//! * [`PeerEndpoint`] — owner side, composed into the TCP server
//!   transport ([`crate::tcp::TcpServerTransport`]). It translates
//!   peer frames into ordinary [`ToServer`] messages, so the `Server`
//!   itself is overlay-oblivious.
//! * [`PeerLink`] — delegate side, a dialing client that implements
//!   the router's [`Upstream`] trait, so the broker treats a remote
//!   peer exactly like a local project server.

use crate::codec;
use crate::command::CommandOutput;
use crate::ids::{CommandId, ProjectId, WorkerId};
use crate::messages::{PeerMsg, ToServer, ToWorker};
use crate::resources::WorkerDescription;
use copernicus_telemetry::{span_names, ActiveSpan, Event, Telemetry};
use copernicus_wire::{
    AuthKey, ConnId, ConnectError, LinkStats, ReconnectPolicy, RecvError, WireClient,
};
use std::collections::HashMap;
use std::time::{Duration, Instant};

use crate::broker::{Offer, Upstream, UpstreamGone};
use crate::command::Command;

/// What a server calls itself on the overlay, and which projects it
/// hosts. The name keys worker-id namespacing, so it should be unique
/// per deployment (the CLI defaults it to the bind address).
#[derive(Debug, Clone)]
pub struct PeerIdentity {
    pub name: String,
    pub projects: Vec<ProjectId>,
}

/// The synthetic worker id the owner uses for "worker `remote` behind
/// peer `peer`". Keyed by the peer's *name* rather than its connection
/// or session, so the id survives a link bounce: the re-dialed peer's
/// heartbeats keep feeding the same liveness record and in-flight
/// delegations are not spuriously orphaned. FNV-1a over the name,
/// then a splitmix64-style finalizer mixing in the remote id.
pub fn namespaced_worker(peer: &str, remote: WorkerId) -> WorkerId {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in peer.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut x = h ^ remote.0.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    WorkerId(x)
}

// ---------------------------------------------------------------------
// Owner side
// ---------------------------------------------------------------------

/// A peer that has said `Hello` on some listener connection.
#[derive(Debug, Clone)]
pub struct PeerInfo {
    pub name: String,
    pub projects: Vec<ProjectId>,
}

/// One active delegation route: which connection and remote worker a
/// namespaced worker id stands for, plus the offer nonce the next
/// workload reply must echo.
struct Delegation {
    conn: ConnId,
    remote: WorkerId,
    offer: u64,
}

/// What [`PeerEndpoint::handle`] wants done with one inbound message.
#[derive(Default)]
pub struct PeerActions {
    /// Messages to feed the server loop (announces, work requests,
    /// rewritten results/errors, heartbeats).
    pub inbound: Vec<ToServer>,
    /// A frame to send back on the same connection (the hello reply).
    pub reply: Option<Vec<u8>>,
    /// Protocol violation: drop the connection.
    pub kick: bool,
    /// Lines for the project monitor's log.
    pub log: Vec<String>,
}

/// Owner-side peer state, composed into the TCP server transport. To
/// the server behind it, every remote worker is just another worker;
/// this endpoint does the translation both ways.
pub struct PeerEndpoint {
    identity: PeerIdentity,
    telemetry: Option<Telemetry>,
    peers: HashMap<ConnId, PeerInfo>,
    route: HashMap<WorkerId, Delegation>,
}

impl PeerEndpoint {
    pub fn new(identity: PeerIdentity, telemetry: Option<Telemetry>) -> PeerEndpoint {
        PeerEndpoint {
            identity,
            telemetry,
            peers: HashMap::new(),
            route: HashMap::new(),
        }
    }

    /// Translate one inbound peer message.
    pub fn handle(&mut self, conn: ConnId, msg: PeerMsg) -> PeerActions {
        let mut act = PeerActions::default();
        if let PeerMsg::Hello { server, projects } = msg {
            act.log.push(format!(
                "peer '{server}' connected on {conn} ({} project(s))",
                projects.len()
            ));
            if let Some(t) = &self.telemetry {
                t.journal().record(Event::PeerConnected {
                    peer: server.clone(),
                    projects: projects.len() as u64,
                });
            }
            self.peers.insert(
                conn,
                PeerInfo {
                    name: server,
                    projects,
                },
            );
            act.reply = Some(codec::encode_peer(&PeerMsg::Hello {
                server: self.identity.name.clone(),
                projects: self.identity.projects.clone(),
            }));
            return act;
        }
        let Some(info) = self.peers.get(&conn) else {
            // Protocol rule: Hello first. Anything else from an
            // un-introduced connection is a broken peer.
            act.kick = true;
            act.log
                .push(format!("{conn} sent peer traffic before Hello; kicked"));
            return act;
        };
        let peer_name = info.name.clone();
        match msg {
            PeerMsg::Hello { .. } => unreachable!("handled above"),
            PeerMsg::OfferWork {
                offer,
                worker,
                desc,
            } => {
                let ns = namespaced_worker(&peer_name, worker);
                // Announce only when the synthetic worker is new or has
                // moved connections; a repeat offer just requests work
                // (which also refreshes the liveness record).
                let announce = match self.route.get(&ns) {
                    Some(d) => d.conn != conn,
                    None => true,
                };
                self.route.insert(
                    ns,
                    Delegation {
                        conn,
                        remote: worker,
                        offer,
                    },
                );
                if announce {
                    act.inbound.push(ToServer::Announce { worker: ns, desc });
                }
                act.inbound.push(ToServer::RequestWork { worker: ns });
            }
            PeerMsg::DelegatedResult { mut output } => {
                if let Some(t) = &self.telemetry {
                    t.journal().record(Event::DelegationCompleted {
                        command: output.command.0,
                        peer: peer_name.clone(),
                    });
                }
                output.worker = namespaced_worker(&peer_name, output.worker);
                act.inbound.push(ToServer::Completed { output });
            }
            PeerMsg::DelegatedError {
                worker,
                project,
                command,
                epoch,
                error,
            } => {
                act.inbound.push(ToServer::CommandError {
                    worker: namespaced_worker(&peer_name, worker),
                    project,
                    command,
                    epoch,
                    error,
                });
            }
            PeerMsg::Heartbeat { worker } => {
                act.inbound.push(ToServer::Heartbeat {
                    worker: namespaced_worker(&peer_name, worker),
                });
            }
            PeerMsg::Heartbeats { workers } => {
                // One coalesced frame stands for that many individual
                // heartbeats; each still feeds its own liveness record.
                for worker in workers {
                    act.inbound.push(ToServer::Heartbeat {
                        worker: namespaced_worker(&peer_name, worker),
                    });
                }
            }
            PeerMsg::Shutdown => {
                act.log.push(format!("peer '{peer_name}' finished"));
            }
            // Owner-bound traffic only; a delegate-bound frame landing
            // here is version skew, not worth killing the link over.
            PeerMsg::DelegateCommand { .. } => {}
        }
        act
    }

    /// Whether `worker` is a namespaced delegate rather than a directly
    /// connected worker.
    pub fn is_delegate(&self, worker: WorkerId) -> bool {
        self.route.contains_key(&worker)
    }

    /// Encode a server reply bound for a namespaced worker as the peer
    /// frame its delegate expects, with the connection to send it on.
    pub fn delegate_frame(&self, worker: WorkerId, msg: ToWorker) -> Option<(ConnId, Vec<u8>)> {
        let d = self.route.get(&worker)?;
        let peer_msg = match msg {
            ToWorker::Workload(commands) => PeerMsg::DelegateCommand {
                offer: d.offer,
                worker: d.remote,
                commands,
            },
            ToWorker::NoWork => PeerMsg::DelegateCommand {
                offer: d.offer,
                worker: d.remote,
                commands: Vec::new(),
            },
            ToWorker::Shutdown => PeerMsg::Shutdown,
        };
        Some((d.conn, codec::encode_peer(&peer_msg)))
    }

    /// Connections with a completed `Hello`, for shutdown broadcast.
    pub fn conns(&self) -> Vec<ConnId> {
        self.peers.keys().copied().collect()
    }

    /// Forget a dropped connection; returns the peer's name if one was
    /// registered on it. Routes through it die too — the watchdog will
    /// orphan their in-flight commands when the heartbeats stop.
    pub fn drop_conn(&mut self, conn: ConnId) -> Option<String> {
        self.route.retain(|_, d| d.conn != conn);
        self.peers.remove(&conn).map(|p| p.name)
    }
}

// ---------------------------------------------------------------------
// Delegate side
// ---------------------------------------------------------------------

/// Tuning for a dialing peer link.
#[derive(Clone)]
pub struct PeerLinkConfig {
    /// How long [`PeerLink::dial`] waits for the remote `Hello` before
    /// proceeding without an identity (the link still works; the hello
    /// is absorbed whenever it arrives).
    pub hello_timeout: Duration,
    pub reconnect: ReconnectPolicy,
    /// How long workers' heartbeats may pool before going out as one
    /// [`PeerMsg::Heartbeats`] frame. Must stay well under the owner's
    /// watchdog slack (the added delivery delay is at most this);
    /// callers scale it down with their heartbeat interval.
    pub heartbeat_flush: Duration,
}

impl Default for PeerLinkConfig {
    fn default() -> Self {
        PeerLinkConfig {
            hello_timeout: Duration::from_secs(2),
            reconnect: ReconnectPolicy::default(),
            heartbeat_flush: Duration::from_millis(25),
        }
    }
}

const DECLINE: &str = "delegation declined (stale offer)";

/// Delegate-side link to one owning peer. Implements [`Upstream`], so
/// the router offers idle workers to it exactly as it does to local
/// project servers.
pub struct PeerLink {
    client: WireClient,
    addr: String,
    remote: Option<PeerInfo>,
    /// Descriptions of the workers the router has registered; each
    /// offer re-sends the description, so peers need no announce step.
    descs: HashMap<WorkerId, WorkerDescription>,
    next_offer: u64,
    done: bool,
    /// Local tracer for delegate-side spans (None = tracing off).
    telemetry: Option<Telemetry>,
    /// Open `delegated` spans: accepted from the owner → result (or
    /// error) forwarded back. Keyed like the broker's ownership map —
    /// command ids are only unique per project.
    holds: HashMap<(ProjectId, CommandId), ActiveSpan>,
    /// Heartbeats pooling for the next coalesced flush, and when the
    /// last flush happened.
    hb_buf: Vec<WorkerId>,
    hb_flushed: Instant,
    heartbeat_flush: Duration,
}

impl PeerLink {
    /// Dial `addr`, authenticate with `key`, introduce ourselves as
    /// `identity` (pinned, so it replays after every reconnect), and
    /// wait up to `config.hello_timeout` for the peer's own hello.
    pub fn dial(
        addr: &str,
        key: AuthKey,
        identity: &PeerIdentity,
        config: PeerLinkConfig,
        stats: LinkStats,
    ) -> Result<PeerLink, ConnectError> {
        let client = WireClient::connect(addr, key, config.reconnect.clone(), stats)?;
        let hello = codec::encode_peer(&PeerMsg::Hello {
            server: identity.name.clone(),
            projects: identity.projects.clone(),
        });
        let _ = client.send_session(&hello);
        let mut link = PeerLink {
            client,
            addr: addr.to_string(),
            remote: None,
            descs: HashMap::new(),
            next_offer: 1,
            done: false,
            telemetry: None,
            holds: HashMap::new(),
            hb_buf: Vec::new(),
            hb_flushed: Instant::now(),
            heartbeat_flush: config.heartbeat_flush,
        };
        let deadline = Instant::now() + config.hello_timeout;
        while link.remote.is_none() && !link.done {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break;
            }
            match link.client.recv_timeout(remaining) {
                Ok(payload) => link.absorb(&payload),
                Err(RecvError::Timeout) => break,
                Err(RecvError::Reconnected) => continue,
                Err(RecvError::Closed(_)) => link.done = true,
            }
        }
        Ok(link)
    }

    /// The peer's identity, once its hello has arrived.
    pub fn remote(&self) -> Option<&PeerInfo> {
        self.remote.as_ref()
    }

    /// Attach telemetry: accepted delegations get a `delegated` span
    /// (parented on the owner's attempt context riding in the command)
    /// that closes when the result or error is forwarded back.
    pub fn with_telemetry(mut self, telemetry: Option<Telemetry>) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Open the delegate-side hold spans for an accepted workload and
    /// re-stamp each command so local worker `exec` spans nest under
    /// the delegation rather than directly under the owner's attempt.
    fn open_holds(&mut self, commands: &mut [Command]) {
        let Some(t) = &self.telemetry else { return };
        for cmd in commands {
            let Some(ctx) = &cmd.trace else { continue };
            let mut span = t
                .tracer()
                .start_child(span_names::DELEGATED, "delegate", ctx);
            span.set_attr("command", cmd.id.to_string());
            span.set_attr("owner", self.label());
            cmd.trace = Some(span.context());
            self.holds.insert((cmd.project, cmd.id), span);
        }
    }

    /// Close one hold span with a terminal disposition.
    fn close_hold(&mut self, project: ProjectId, command: CommandId, disposition: &str) {
        if let Some(mut span) = self.holds.remove(&(project, command)) {
            span.set_attr("disposition", disposition);
            span.finish();
        }
    }

    /// Tear the link down (used when aborting the overlay).
    pub fn close(&self) {
        self.client.close();
    }

    /// Bookkeep one frame received outside an offer exchange: record
    /// hellos, honour shutdowns, and decline workloads nobody asked
    /// for so they re-queue at the owner.
    fn absorb(&mut self, payload: &[u8]) {
        match codec::decode_peer(payload) {
            Ok(PeerMsg::Hello { server, projects }) => {
                self.remote = Some(PeerInfo {
                    name: server,
                    projects,
                });
            }
            Ok(PeerMsg::Shutdown) => self.done = true,
            Ok(PeerMsg::DelegateCommand {
                worker, commands, ..
            }) => self.decline(worker, &commands),
            // Owner-bound or undecodable traffic: the peer is the
            // trusted end, skip it.
            Ok(_) | Err(_) => {}
        }
    }

    /// Refuse a workload we are not going to run: one `DelegatedError`
    /// per command, carrying the dispatch epoch, so the owner's
    /// lifecycle re-queues each command (at the cost of one attempt).
    fn decline(&mut self, worker: WorkerId, commands: &[Command]) {
        for cmd in commands {
            let msg = PeerMsg::DelegatedError {
                worker,
                project: cmd.project,
                command: cmd.id,
                epoch: cmd.attempts,
                error: DECLINE.to_string(),
            };
            if self.client.send(&codec::encode_peer(&msg)).is_err() {
                self.done = true;
                return;
            }
        }
    }

    fn push(&mut self, msg: &PeerMsg) -> Result<(), UpstreamGone> {
        if self.done {
            return Err(UpstreamGone);
        }
        if self.client.send(&codec::encode_peer(msg)).is_err() {
            self.done = true;
            return Err(UpstreamGone);
        }
        Ok(())
    }
}

impl Upstream for PeerLink {
    fn label(&self) -> String {
        match &self.remote {
            Some(r) => format!("peer '{}' ({})", r.name, self.addr),
            None => format!("peer {}", self.addr),
        }
    }

    fn register(&mut self, worker: WorkerId, desc: &WorkerDescription) -> Result<(), UpstreamGone> {
        if self.done {
            return Err(UpstreamGone);
        }
        self.descs.insert(worker, desc.clone());
        Ok(())
    }

    fn offer(&mut self, worker: WorkerId, patience: Duration) -> Offer {
        if self.done {
            return Offer::Done;
        }
        let Some(desc) = self.descs.get(&worker).cloned() else {
            return Offer::NoWork;
        };
        let offer = self.next_offer;
        self.next_offer += 1;
        let msg = PeerMsg::OfferWork {
            offer,
            worker,
            desc,
        };
        if self.client.send(&codec::encode_peer(&msg)).is_err() {
            self.done = true;
            return Offer::Done;
        }
        let deadline = Instant::now() + patience;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                // Abandon the offer. If its reply arrives later it
                // fails the nonce check below and is declined.
                return Offer::NoWork;
            }
            match self.client.recv_timeout(remaining) {
                Ok(payload) => match codec::decode_peer(&payload) {
                    Ok(PeerMsg::DelegateCommand {
                        offer: o,
                        worker: w,
                        mut commands,
                    }) => {
                        if o == offer && w == worker {
                            if commands.is_empty() {
                                return Offer::NoWork;
                            }
                            self.open_holds(&mut commands);
                            return Offer::Workload(commands);
                        }
                        // Answer to an abandoned offer: refuse it so
                        // the owner re-queues instead of leaking the
                        // commands into a workload nobody tracks.
                        self.decline(w, &commands);
                        if self.done {
                            return Offer::Done;
                        }
                    }
                    Ok(PeerMsg::Hello { server, projects }) => {
                        self.remote = Some(PeerInfo {
                            name: server,
                            projects,
                        });
                    }
                    Ok(PeerMsg::Shutdown) => {
                        self.done = true;
                        return Offer::Done;
                    }
                    Ok(_) | Err(_) => {}
                },
                Err(RecvError::Timeout) => return Offer::NoWork,
                // The link bounced; the pinned hello replayed but this
                // offer may be lost on either leg. Abandon it — a late
                // reply is refused by its stale nonce.
                Err(RecvError::Reconnected) => return Offer::NoWork,
                Err(RecvError::Closed(_)) => {
                    self.done = true;
                    return Offer::Done;
                }
            }
        }
    }

    fn completed(&mut self, output: CommandOutput) -> Result<(), UpstreamGone> {
        self.close_hold(output.project, output.command, "completed");
        self.push(&PeerMsg::DelegatedResult { output })
    }

    fn error(
        &mut self,
        worker: WorkerId,
        project: ProjectId,
        command: CommandId,
        epoch: u32,
        error: String,
    ) -> Result<(), UpstreamGone> {
        self.close_hold(project, command, "error");
        self.push(&PeerMsg::DelegatedError {
            worker,
            project,
            command,
            epoch,
            error,
        })
    }

    fn heartbeat(&mut self, worker: WorkerId) -> Result<(), UpstreamGone> {
        if self.done {
            return Err(UpstreamGone);
        }
        // Pool heartbeats and flush them as one frame per window: a
        // delegate fronting hundreds of workers costs the owner one
        // coalesced frame instead of one frame per worker. Repeats
        // within a window collapse — a heartbeat carries no payload
        // beyond "this worker is alive now".
        if !self.hb_buf.contains(&worker) {
            self.hb_buf.push(worker);
        }
        if self.hb_flushed.elapsed() >= self.heartbeat_flush {
            let workers = std::mem::take(&mut self.hb_buf);
            self.hb_flushed = Instant::now();
            return self.push(&PeerMsg::Heartbeats { workers });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namespacing_is_stable_and_peer_scoped() {
        let a1 = namespaced_worker("alpha", WorkerId(1));
        assert_eq!(a1, namespaced_worker("alpha", WorkerId(1)));
        assert_ne!(a1, namespaced_worker("alpha", WorkerId(2)));
        assert_ne!(a1, namespaced_worker("beta", WorkerId(1)));
        // Synthetic ids must not collide with small local ids.
        assert!(a1.0 > u32::MAX as u64);
    }

    #[test]
    fn offer_before_hello_is_kicked() {
        let mut ep = PeerEndpoint::new(
            PeerIdentity {
                name: "owner".into(),
                projects: vec![ProjectId(0)],
            },
            None,
        );
        let act = ep.handle(
            ConnId(1),
            PeerMsg::Heartbeat {
                worker: WorkerId(1),
            },
        );
        assert!(act.kick);
        assert!(act.inbound.is_empty());
    }

    #[test]
    fn hello_registers_and_offers_become_requests() {
        let mut ep = PeerEndpoint::new(
            PeerIdentity {
                name: "owner".into(),
                projects: vec![ProjectId(0)],
            },
            None,
        );
        let act = ep.handle(
            ConnId(1),
            PeerMsg::Hello {
                server: "beta".into(),
                projects: vec![],
            },
        );
        assert!(act.reply.is_some());
        assert!(!act.kick);

        let desc = WorkerDescription {
            platform: crate::resources::Platform::Smp,
            resources: crate::resources::Resources::new(1, 64),
            executables: vec![],
        };
        let act = ep.handle(
            ConnId(1),
            PeerMsg::OfferWork {
                offer: 7,
                worker: WorkerId(3),
                desc: desc.clone(),
            },
        );
        let ns = namespaced_worker("beta", WorkerId(3));
        assert_eq!(act.inbound.len(), 2);
        assert!(matches!(
            act.inbound[0],
            ToServer::Announce { worker, .. } if worker == ns
        ));
        assert!(matches!(
            act.inbound[1],
            ToServer::RequestWork { worker } if worker == ns
        ));
        assert!(ep.is_delegate(ns));

        // A repeat offer on the same connection skips the announce.
        let act = ep.handle(
            ConnId(1),
            PeerMsg::OfferWork {
                offer: 8,
                worker: WorkerId(3),
                desc,
            },
        );
        assert_eq!(act.inbound.len(), 1);
        assert!(matches!(act.inbound[0], ToServer::RequestWork { .. }));

        // Replies for the namespaced worker become DelegateCommand
        // frames echoing the latest offer nonce.
        let (conn, frame) = ep.delegate_frame(ns, ToWorker::NoWork).unwrap();
        assert_eq!(conn, ConnId(1));
        match codec::decode_peer(&frame).unwrap() {
            PeerMsg::DelegateCommand {
                offer,
                worker,
                commands,
            } => {
                assert_eq!(offer, 8);
                assert_eq!(worker, WorkerId(3));
                assert!(commands.is_empty());
            }
            other => panic!("unexpected frame: {other:?}"),
        }

        // Dropping the connection forgets the peer and its routes.
        assert_eq!(ep.drop_conn(ConnId(1)).as_deref(), Some("beta"));
        assert!(!ep.is_delegate(ns));
    }

    #[test]
    fn results_and_heartbeats_are_renamespaced() {
        let mut ep = PeerEndpoint::new(
            PeerIdentity {
                name: "owner".into(),
                projects: vec![],
            },
            None,
        );
        ep.handle(
            ConnId(2),
            PeerMsg::Hello {
                server: "gamma".into(),
                projects: vec![],
            },
        );
        let act = ep.handle(
            ConnId(2),
            PeerMsg::Heartbeat {
                worker: WorkerId(5),
            },
        );
        let ns = namespaced_worker("gamma", WorkerId(5));
        assert!(matches!(
            act.inbound[0],
            ToServer::Heartbeat { worker } if worker == ns
        ));
        // A coalesced heartbeat frame expands to one namespaced
        // heartbeat per named worker, in order.
        let act = ep.handle(
            ConnId(2),
            PeerMsg::Heartbeats {
                workers: vec![WorkerId(5), WorkerId(6)],
            },
        );
        assert_eq!(act.inbound.len(), 2);
        assert!(matches!(
            act.inbound[0],
            ToServer::Heartbeat { worker } if worker == ns
        ));
        assert!(matches!(
            act.inbound[1],
            ToServer::Heartbeat { worker }
                if worker == namespaced_worker("gamma", WorkerId(6))
        ));
        let act = ep.handle(
            ConnId(2),
            PeerMsg::DelegatedError {
                worker: WorkerId(5),
                project: ProjectId(0),
                command: CommandId(9),
                epoch: 1,
                error: "boom".into(),
            },
        );
        assert!(matches!(
            act.inbound[0],
            ToServer::CommandError { worker, .. } if worker == ns
        ));
    }
}
