//! TCP implementations of the transport traits (§2.2 of the paper:
//! workers scattered across clusters dial the project server over
//! authenticated links).
//!
//! [`TcpServerTransport`] adapts a [`WireListener`] to
//! [`ServerTransport`]: inbound frames are decoded with
//! [`crate::codec`], the connection a message arrives on becomes that
//! worker's reply path, and a connection that sends an undecodable
//! frame is kicked — the codec is total, so garbage never reaches the
//! server loop. [`TcpWorkerTransport`] adapts a [`WireClient`]:
//! announces are pinned as session frames (replayed after every
//! reconnect), and a mid-project reconnect surfaces as
//! [`WorkerRecvError::Reconnected`] so the worker re-requests work —
//! safe under the server's attempt-epoch dedup.
//!
//! Worker *liveness* verdicts stay with the lifecycle watchdog, but the
//! transport reports what it sees: a dropped connection unmaps the
//! reply path **and** surfaces as a synthesized
//! [`ToServer::WorkerDeparted`], so the server orphans the worker's
//! in-flight commands immediately (a link evicted at the write-backlog
//! cap would otherwise sit on its commands until the heartbeat timeout).
//! If the worker reconnects, the new connection takes over the mapping
//! and its next heartbeat resurrects it — safe under the server's
//! attempt-epoch dedup.

use crate::broker::{spawn_router, BrokerConfig, LocalUpstream, RouterHandle, Upstream};
use crate::codec;
use crate::controller::Controller;
use crate::executor::ExecutorRegistry;
use crate::fs::SharedFs;
use crate::ids::{ProjectId, WorkerId};
use crate::messages::{PeerMsg, ToServer, ToWorker};
use crate::monitor::Monitor;
use crate::peer::{PeerEndpoint, PeerIdentity, PeerLink, PeerLinkConfig};
use crate::runtime::RuntimeConfig;
use crate::server::{ProjectResult, Server};
use crate::transport::{
    channel, ServerRecvError, ServerTransport, TransportClosed, WorkerRecvError, WorkerSender,
    WorkerTransport,
};
use crate::worker::{spawn_worker, WorkerConfig, WorkerHandle};
use copernicus_telemetry::Telemetry;
use copernicus_wire::{
    AuthKey, ConnId, ConnectError, LinkStats, ListenerConfig, ReconnectPolicy, WireClient,
    WireEvent, WireListener,
};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Server side
// ---------------------------------------------------------------------

/// [`ServerTransport`] over an authenticated TCP listener.
pub struct TcpServerTransport {
    listener: WireListener,
    /// Reply routing, learned from inbound traffic: the connection a
    /// worker's message arrived on is where its replies go.
    conn_of: HashMap<WorkerId, ConnId>,
    worker_of: HashMap<ConnId, WorkerId>,
    monitor: Option<Monitor>,
    /// Owner-side overlay state: dialing peers speak the `PeerMsg`
    /// protocol on this same listener, and their offers surface as
    /// ordinary announce/request messages from namespaced workers.
    peer: PeerEndpoint,
    /// One wire frame can expand into several server messages (a peer
    /// offer becomes announce + request); the surplus queues here.
    pending: VecDeque<ToServer>,
}

impl TcpServerTransport {
    /// Bind `addr` and start accepting authenticated connections.
    pub fn bind(
        addr: &str,
        key: AuthKey,
        config: ListenerConfig,
        stats: LinkStats,
    ) -> io::Result<TcpServerTransport> {
        Ok(TcpServerTransport {
            listener: WireListener::bind(addr, key, config, stats)?,
            conn_of: HashMap::new(),
            worker_of: HashMap::new(),
            monitor: None,
            peer: PeerEndpoint::new(
                PeerIdentity {
                    name: addr.to_string(),
                    projects: vec![ProjectId(0)],
                },
                None,
            ),
            pending: VecDeque::new(),
        })
    }

    /// Route connection-level log lines (auth failures, disconnects)
    /// into a project monitor.
    pub fn with_monitor(mut self, monitor: Monitor) -> Self {
        self.monitor = Some(monitor);
        self
    }

    /// Set the identity announced to dialing peers (and the telemetry
    /// handle their journal events go to). Without this the transport
    /// still accepts peers, introducing itself by its bind address.
    pub fn with_peer_identity(
        mut self,
        identity: PeerIdentity,
        telemetry: Option<Telemetry>,
    ) -> Self {
        self.peer = PeerEndpoint::new(identity, telemetry);
        self
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr()
    }

    fn log(&self, line: String) {
        if let Some(m) = &self.monitor {
            m.log(line);
        }
    }

    /// Bind a worker identity to the connection its message arrived on.
    /// A reconnected worker shows up on a fresh connection; the newest
    /// mapping wins and the stale one is forgotten.
    fn learn(&mut self, worker: WorkerId, conn: ConnId) {
        match self.conn_of.insert(worker, conn) {
            Some(old) if old != conn => {
                self.worker_of.remove(&old);
                self.worker_of.insert(conn, worker);
                self.log(format!("{worker} moved {old} -> {conn}"));
            }
            _ => {
                self.worker_of.insert(conn, worker);
            }
        }
    }

    /// Turn one wire event into at most one server message.
    fn absorb(&mut self, event: WireEvent) -> Option<ToServer> {
        match event {
            WireEvent::Connected {
                conn,
                session,
                peer,
            } => {
                self.log(format!("{conn} from {peer} (session {session:#018x})"));
                None
            }
            WireEvent::Frame { conn, payload } => match codec::decode_inbound(&payload) {
                Ok(codec::Inbound::Worker(ToServer::Batch(msgs))) => {
                    // A coalesced frame expands into its members here,
                    // so the server loop (and the reply-path learning)
                    // sees exactly the traffic of the unbatched wire.
                    for msg in msgs {
                        self.learn(msg.worker(), conn);
                        self.pending.push_back(msg);
                    }
                    self.pending.pop_front()
                }
                Ok(codec::Inbound::Worker(msg)) => {
                    self.learn(msg.worker(), conn);
                    Some(msg)
                }
                Ok(codec::Inbound::Peer(msg)) => {
                    // Replies to namespaced workers route through the
                    // peer endpoint, not `conn_of`, so no `learn` here.
                    let act = self.peer.handle(conn, msg);
                    for line in act.log {
                        self.log(line);
                    }
                    if let Some(reply) = act.reply {
                        let _ = self.listener.send(conn, &reply);
                    }
                    if act.kick {
                        self.listener.kick(conn);
                    }
                    self.pending.extend(act.inbound);
                    self.pending.pop_front()
                }
                Err(e) => {
                    // An authenticated peer speaking garbage is broken
                    // or hostile either way; drop it. Never panics,
                    // never reaches the server loop.
                    self.log(format!("{conn} sent undecodable frame ({e}); kicked"));
                    self.listener.kick(conn);
                    None
                }
            },
            WireEvent::Disconnected { conn, reason } => {
                if let Some(worker) = self.worker_of.remove(&conn) {
                    self.conn_of.remove(&worker);
                    self.log(format!("{conn} ({worker}) dropped: {reason}"));
                    // Tell the server now rather than letting the
                    // worker's commands ride out the heartbeat timeout.
                    // Only the *current* connection of a worker counts:
                    // a reconnected worker's stale link was already
                    // unmapped by `learn`, so its close lands in the
                    // anonymous branch below.
                    Some(ToServer::WorkerDeparted { worker })
                } else if let Some(peer) = self.peer.drop_conn(conn) {
                    self.log(format!("{conn} (peer '{peer}') dropped: {reason}"));
                    None
                } else {
                    self.log(format!("{conn} dropped: {reason}"));
                    None
                }
            }
            WireEvent::AuthFailed { peer, reason } => {
                self.log(format!("handshake from {peer} rejected: {reason}"));
                None
            }
        }
    }
}

impl ServerTransport for TcpServerTransport {
    fn recv_timeout(&mut self, timeout: Duration) -> Result<ToServer, ServerRecvError> {
        if let Some(msg) = self.pending.pop_front() {
            return Ok(msg);
        }
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match self.listener.recv_timeout(remaining) {
                Some(event) => {
                    if let Some(msg) = self.absorb(event) {
                        return Ok(msg);
                    }
                }
                // A TCP server is never "closed" from the workers' side;
                // it outlives any individual connection.
                None => return Err(ServerRecvError::Timeout),
            }
        }
    }

    fn try_recv(&mut self) -> Option<ToServer> {
        if let Some(msg) = self.pending.pop_front() {
            return Some(msg);
        }
        while let Some(event) = self.listener.try_recv() {
            if let Some(msg) = self.absorb(event) {
                return Some(msg);
            }
        }
        None
    }

    fn send(&mut self, worker: WorkerId, msg: ToWorker) {
        if self.peer.is_delegate(worker) {
            if let Some((conn, frame)) = self.peer.delegate_frame(worker, msg) {
                if self.listener.send(conn, &frame).is_err() {
                    self.log(format!("delegate send for {worker} on {conn} failed"));
                }
            }
            return;
        }
        if let Some(&conn) = self.conn_of.get(&worker) {
            if self
                .listener
                .send(conn, &codec::encode_to_worker(&msg))
                .is_err()
            {
                // Connection died under us; the reader thread will emit
                // Disconnected and the maps get cleaned there.
                self.log(format!("send to {worker} on {conn} failed"));
            }
        }
    }

    fn broadcast(&mut self, msg: ToWorker) {
        // Tell connected peers the project is over so they stop
        // offering workers (their links see `PeerMsg::Shutdown`).
        if matches!(msg, ToWorker::Shutdown) {
            let bytes = codec::encode_peer(&PeerMsg::Shutdown);
            for conn in self.peer.conns() {
                let _ = self.listener.send(conn, &bytes);
            }
        }
        let bytes = codec::encode_to_worker(&msg);
        for &conn in self.conn_of.values() {
            let _ = self.listener.send(conn, &bytes);
        }
    }
}

// ---------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------

/// How recently the worker loop must have sent a frame for the
/// heartbeat ticker to bet on piggybacking: within this window the
/// loop is actively talking (request/poll cycle), so the heartbeat is
/// deferred and rides in a [`ToServer::Batch`] with the next frame
/// instead of costing its own. Outside it — the worker is deep in a
/// long command — the heartbeat goes out immediately, exactly as an
/// unbatched one would, so liveness never depends on the bet.
const PIGGYBACK_WINDOW: Duration = Duration::from_millis(10);

/// Deferred-heartbeat state shared between a [`TcpWorkerTransport`]
/// and the detached senders it hands out (the heartbeat ticker).
struct Coalesce {
    /// At most one deferred heartbeat (the ticker flushes rather than
    /// defers when one is already waiting, bounding staleness to one
    /// heartbeat interval), plus when the link last sent any frame.
    state: std::sync::Mutex<(Vec<ToServer>, Instant)>,
}

impl Coalesce {
    fn new() -> std::sync::Arc<Coalesce> {
        std::sync::Arc::new(Coalesce {
            state: std::sync::Mutex::new((Vec::new(), Instant::now())),
        })
    }

    /// Fold `msg` together with anything deferred into one encoded
    /// frame (a [`ToServer::Batch`] only when there is company) and
    /// stamp the send time.
    fn take_with(&self, msg: ToServer) -> Vec<u8> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.1 = Instant::now();
        if st.0.is_empty() {
            codec::encode_to_server(&msg)
        } else {
            let mut msgs = std::mem::take(&mut st.0);
            msgs.push(msg);
            codec::encode_to_server(&ToServer::Batch(msgs))
        }
    }

    /// Try to defer a heartbeat. `None` means it was buffered for the
    /// next frame; otherwise the message comes back for the caller to
    /// send now (folded with any deferred company via [`take_with`]).
    fn defer(&self, msg: ToServer) -> Option<ToServer> {
        if !matches!(msg, ToServer::Heartbeat { .. }) {
            return Some(msg);
        }
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.0.is_empty() && st.1.elapsed() < PIGGYBACK_WINDOW {
            st.0.push(msg);
            return None;
        }
        Some(msg)
    }
}

/// [`WorkerTransport`] over a supervised, reconnecting TCP client.
pub struct TcpWorkerTransport {
    client: WireClient,
    coalesce: std::sync::Arc<Coalesce>,
}

impl TcpWorkerTransport {
    /// Dial and authenticate. Socket failures retry per `policy`; a key
    /// rejection is fatal.
    pub fn connect(
        addr: &str,
        key: AuthKey,
        policy: ReconnectPolicy,
        stats: LinkStats,
    ) -> Result<TcpWorkerTransport, ConnectError> {
        Ok(TcpWorkerTransport {
            client: WireClient::connect(addr, key, policy, stats)?,
            coalesce: Coalesce::new(),
        })
    }

    /// The worker identity minted by the handshake: both ends derive
    /// the same id from the key and the session nonces, so TCP workers
    /// need no shared id allocator.
    pub fn session_worker_id(&self) -> WorkerId {
        WorkerId(self.client.session_id())
    }
}

impl WorkerTransport for TcpWorkerTransport {
    fn announce(&mut self, msg: ToServer) -> Result<(), TransportClosed> {
        // Pinned as a session frame: replayed after every reconnect so
        // the server re-learns the reply path before any other traffic.
        self.client
            .send_session(&codec::encode_to_server(&msg))
            .map_err(|_| TransportClosed)
    }

    fn send(&mut self, msg: ToServer) -> Result<(), TransportClosed> {
        // Any deferred heartbeat rides along in the same frame.
        self.client
            .send(&self.coalesce.take_with(msg))
            .map_err(|_| TransportClosed)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<ToWorker, WorkerRecvError> {
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match self.client.recv_timeout(remaining) {
                Ok(payload) => match codec::decode_to_worker(&payload) {
                    Ok(msg) => return Ok(msg),
                    // The server is the trusted end; an undecodable
                    // frame means version skew, not an attack. Skip it
                    // and keep listening — the request will be retried
                    // on timeout.
                    Err(_) => continue,
                },
                Err(copernicus_wire::RecvError::Timeout) => return Err(WorkerRecvError::Timeout),
                Err(copernicus_wire::RecvError::Reconnected) => {
                    return Err(WorkerRecvError::Reconnected)
                }
                Err(copernicus_wire::RecvError::Closed(why)) => {
                    return Err(WorkerRecvError::Closed(why))
                }
            }
        }
    }

    fn sender(&self) -> Box<dyn WorkerSender> {
        Box::new(TcpWorkerSender {
            client: self.client.clone(),
            coalesce: self.coalesce.clone(),
        })
    }
}

struct TcpWorkerSender {
    client: WireClient,
    coalesce: std::sync::Arc<Coalesce>,
}

impl WorkerSender for TcpWorkerSender {
    fn send(&self, msg: ToServer) -> Result<(), TransportClosed> {
        // A heartbeat on a link that just carried a frame piggybacks
        // on the loop's next send instead of costing its own.
        let Some(msg) = self.coalesce.defer(msg) else {
            return Ok(());
        };
        self.client
            .send(&self.coalesce.take_with(msg))
            .map_err(|_| TransportClosed)
    }
}

// ---------------------------------------------------------------------
// Process-level wiring (what `copernicus serve` / `work` run)
// ---------------------------------------------------------------------

/// A project server listening on TCP (and, when peers are configured,
/// the router delegating idle local workers to them).
pub struct ServingProject {
    pub monitor: Monitor,
    pub shared_fs: SharedFs,
    /// The actually bound address (resolves `:0` ephemeral ports).
    pub local_addr: SocketAddr,
    server_thread: JoinHandle<ProjectResult>,
    /// Present only in the peered topology (`ServerConfig::peers`
    /// non-empty): the thread offering this server's workers to the
    /// local project and to every dialed peer.
    router: Option<RouterHandle>,
    /// Flipping this makes the server loop return abruptly — no
    /// shutdown broadcast, no result — the crash-test SIGKILL.
    kill_switch: Arc<AtomicBool>,
}

impl ServingProject {
    /// Kill the router abruptly — no shutdown courtesy to peers or
    /// workers, as if the process died. Used by fault tests to sever a
    /// delegate mid-command; a no-op in the unpeered topology.
    pub fn stop_router(&self) {
        if let Some(r) = &self.router {
            r.stop();
        }
    }

    /// SIGKILL stand-in for crash tests: the server loop stops dead at
    /// its next iteration — no shutdown broadcast to workers, no
    /// courtesy to peers, nothing flushed beyond what the WAL fsync
    /// policy already forced. `join` afterwards returns whatever
    /// counters stood at the moment of death. Restart by calling
    /// [`serve_project`] again with the same `state_dir`.
    pub fn kill(&self) {
        self.kill_switch.store(true, Ordering::Relaxed);
        if let Some(r) = &self.router {
            r.stop();
        }
    }

    /// Block until the controller finishes the project. Any router is
    /// stopped once the local project is over: this process's workers
    /// are released even if a peer's project is still running.
    pub fn join(self) -> ProjectResult {
        let result = self
            .server_thread
            .join()
            .expect("server thread must not panic");
        if let Some(r) = self.router {
            r.stop_and_join();
        }
        result
    }
}

/// Start a project server on `config.server.bind`, accepting workers
/// that present `config.server.auth_key`.
///
/// Unlike the in-process runtime there is no shared filesystem between
/// processes: remote workers run without checkpoint deposits, so a
/// faulted command restarts instead of resuming. Everything else —
/// matching, heartbeat watchdog, retry budgets, exactly-once accounting
/// — is identical.
pub fn serve_project(
    controller: Box<dyn Controller>,
    config: RuntimeConfig,
) -> io::Result<ServingProject> {
    let bind = config.server.bind.clone().ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "ServerConfig.bind is not set")
    })?;
    let key = config.server.auth_key.ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            "ServerConfig.auth_key is not set",
        )
    })?;
    let shared_fs = SharedFs::new();
    let monitor = config
        .telemetry
        .clone()
        .map(Monitor::with_telemetry)
        .unwrap_or_default();
    let stats = match &config.telemetry {
        Some(t) => LinkStats::new(t.registry(), &bind, "server"),
        None => LinkStats::detached(),
    };
    // Give the wire layer a longer leash than the lifecycle watchdog:
    // worker loss is the watchdog's verdict (2× heartbeat); the socket
    // idle timeout only reaps connections the watchdog has long since
    // written off.
    let listener_config = ListenerConfig {
        idle_timeout: (4 * config.server.heartbeat_interval).max(Duration::from_secs(5)),
        ..ListenerConfig::default()
    };
    let identity = PeerIdentity {
        name: config.server.name.clone().unwrap_or_else(|| bind.clone()),
        projects: vec![ProjectId(0)],
    };
    let transport = TcpServerTransport::bind(&bind, key, listener_config, stats)?
        .with_monitor(monitor.clone())
        .with_peer_identity(identity.clone(), config.telemetry.clone());
    let local_addr = transport.local_addr();

    let kill_switch = Arc::new(AtomicBool::new(false));

    if config.server.peers.is_empty() {
        // Unpeered: the server consumes the TCP transport directly.
        // Dial-ins from peers still work — the transport's peer
        // endpoint turns their offers into ordinary worker traffic.
        let server = Server::new(
            ProjectId(0),
            controller,
            config.server,
            shared_fs.clone(),
            monitor.clone(),
            Box::new(transport),
        )
        .with_kill_switch(kill_switch.clone());
        let server_thread = std::thread::spawn(move || server.run());
        return Ok(ServingProject {
            monitor,
            shared_fs,
            local_addr,
            server_thread,
            router: None,
            kill_switch,
        });
    }

    // Peered: the server moves onto an in-process hub and the TCP side
    // goes to a router, so every worker dialing in is offered first to
    // the local project and then to each peer in rotation.
    let peers = config.server.peers.clone();
    let heartbeat_interval = config.server.heartbeat_interval;
    let (hub, hub_transport) = channel();
    let server = Server::new(
        ProjectId(0),
        controller,
        config.server,
        shared_fs.clone(),
        monitor.clone(),
        Box::new(hub_transport),
    )
    .with_kill_switch(kill_switch.clone());
    let server_thread = std::thread::spawn(move || server.run());

    let mut upstreams: Vec<Box<dyn Upstream>> = vec![Box::new(LocalUpstream::new("local", hub))];
    let link_config = PeerLinkConfig {
        hello_timeout: config.overlay.hello_timeout,
        // Coalesced heartbeats may pool for at most a quarter of the
        // heartbeat interval, keeping their added delivery delay well
        // inside the watchdog's 2x-interval slack.
        heartbeat_flush: (heartbeat_interval / 4).min(PeerLinkConfig::default().heartbeat_flush),
        ..PeerLinkConfig::default()
    };
    for addr in &peers {
        let stats = match &config.telemetry {
            Some(t) => LinkStats::new(t.registry(), addr, "peer"),
            None => LinkStats::detached(),
        };
        let link = PeerLink::dial(addr, key, &identity, link_config.clone(), stats)
            .map_err(|e| {
                io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    format!("peer {addr}: {e}"),
                )
            })?
            .with_telemetry(config.telemetry.clone());
        monitor.log(format!("peer link up: {}", link.label()));
        upstreams.push(Box::new(link));
    }
    let router = spawn_router(
        upstreams,
        Box::new(transport),
        BrokerConfig {
            offer_patience: config.overlay.offer_patience,
        },
    );
    Ok(ServingProject {
        monitor,
        shared_fs,
        local_addr,
        server_thread,
        router: Some(router),
        kill_switch,
    })
}

/// Dial `addr` and spawn `n` workers over authenticated links. Worker
/// identities come from the handshake session ids.
///
/// Connects every link *before* starting any worker loop: if workers
/// started as soon as their own link was up, the first few could drain
/// a small backlog (finishing the project and closing the server's
/// listener) while later dials are still in flight, and those dials
/// would be refused. Two phases make the pool all-or-nothing.
pub fn connect_workers(
    addr: &str,
    key: AuthKey,
    n: usize,
    config: WorkerConfig,
    registry: ExecutorRegistry,
) -> Result<Vec<WorkerHandle>, ConnectError> {
    let transports: Vec<TcpWorkerTransport> = (0..n)
        .map(|i| {
            let stats = match &config.telemetry {
                Some(t) => LinkStats::new(t.registry(), &format!("{addr}#{i}"), "client"),
                None => LinkStats::detached(),
            };
            TcpWorkerTransport::connect(addr, key, ReconnectPolicy::default(), stats)
        })
        .collect::<Result<_, _>>()?;
    Ok(transports
        .into_iter()
        .map(|transport| {
            let id = transport.session_worker_id();
            spawn_worker(id, config.clone(), registry.clone(), Box::new(transport))
        })
        .collect())
}
