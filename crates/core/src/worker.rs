//! The worker client: announces itself, polls for workloads, executes
//! commands, heartbeats, and (for fault-tolerance tests) can crash on
//! cue.

use crate::executor::{ExecContext, ExecError, ExecutorRegistry};
use crate::fs::SharedFs;
use crate::ids::WorkerId;
use crate::messages::{ToServer, ToWorker};
use crate::command::CommandOutput;
use crate::resources::{Platform, Resources, WorkerDescription};
use copernicus_telemetry::{buckets, labels, names, Telemetry};
use crossbeam::channel::{bounded, Sender};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Worker configuration.
#[derive(Clone)]
pub struct WorkerConfig {
    pub platform: Platform,
    pub resources: Resources,
    /// Heartbeat send period (must be ≤ the server's expectation).
    pub heartbeat_interval: Duration,
    /// Poll period while the queue is empty.
    pub poll_interval: Duration,
    /// Whether this worker shares a filesystem with the server (enables
    /// checkpoint deposits).
    pub shared_fs: Option<SharedFs>,
    /// Telemetry handle: per-command wall-time histograms plus
    /// instrumented execution (checkpoint I/O, MD step timings).
    pub telemetry: Option<Telemetry>,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            platform: Platform::Smp,
            resources: Resources::new(1, 1024),
            heartbeat_interval: Duration::from_millis(100),
            poll_interval: Duration::from_millis(5),
            shared_fs: None,
            telemetry: None,
        }
    }
}

/// Handle to a spawned worker thread.
pub struct WorkerHandle {
    pub id: WorkerId,
    thread: JoinHandle<()>,
    heartbeat: JoinHandle<()>,
}

impl WorkerHandle {
    /// Wait for the worker to exit (after server shutdown or crash).
    pub fn join(self) {
        let _ = self.thread.join();
        let _ = self.heartbeat.join();
    }
}

/// Spawn a worker thread serving the given executor registry.
pub fn spawn_worker(
    id: WorkerId,
    config: WorkerConfig,
    registry: ExecutorRegistry,
    server: Sender<ToServer>,
) -> WorkerHandle {
    let alive = Arc::new(AtomicBool::new(true));

    // Heartbeat ticker: a separate thread so a long-running command does
    // not silence the worker (mirrors the real client's design).
    let heartbeat = {
        let alive = alive.clone();
        let server = server.clone();
        let interval = config.heartbeat_interval;
        std::thread::spawn(move || {
            while alive.load(Ordering::Relaxed) {
                if server.send(ToServer::Heartbeat { worker: id }).is_err() {
                    break;
                }
                std::thread::sleep(interval);
            }
        })
    };

    let thread = std::thread::spawn(move || {
        worker_loop(id, config, registry, server, alive);
    });

    WorkerHandle {
        id,
        thread,
        heartbeat,
    }
}

fn worker_loop(
    id: WorkerId,
    config: WorkerConfig,
    registry: ExecutorRegistry,
    server: Sender<ToServer>,
    alive: Arc<AtomicBool>,
) {
    let (reply_tx, reply_rx) = bounded::<ToWorker>(4);
    let desc = WorkerDescription {
        platform: config.platform,
        resources: config.resources,
        executables: registry.executables(),
    };
    if server
        .send(ToServer::Announce {
            worker: id,
            desc,
            reply: reply_tx,
        })
        .is_err()
    {
        alive.store(false, Ordering::Relaxed);
        return;
    }

    'outer: loop {
        if server.send(ToServer::RequestWork { worker: id }).is_err() {
            break;
        }
        match reply_rx.recv() {
            Ok(ToWorker::Workload(commands)) => {
                for cmd in commands {
                    let Some(executor) = registry.lookup(&cmd.command_type) else {
                        let _ = server.send(ToServer::CommandError {
                            worker: id,
                            project: cmd.project,
                            command: cmd.id,
                            error: format!("no executable for '{}'", cmd.command_type),
                        });
                        continue;
                    };
                    let t0 = Instant::now();
                    let result = executor.execute(ExecContext {
                        command: &cmd,
                        worker: id,
                        shared_fs: config.shared_fs.as_ref(),
                        telemetry: config.telemetry.as_ref(),
                    });
                    match result {
                        Ok(data) => {
                            let wall = t0.elapsed();
                            if let Some(t) = &config.telemetry {
                                t.registry()
                                    .histogram(
                                        names::COMMAND_WALL,
                                        labels(&[("kind", &cmd.command_type)]),
                                        buckets::SECONDS,
                                    )
                                    .record_duration(wall);
                            }
                            let output =
                                CommandOutput::new(&cmd, id, data, wall.as_secs_f64());
                            if server.send(ToServer::Completed { output }).is_err() {
                                break 'outer;
                            }
                        }
                        Err(ExecError::SimulatedCrash) => {
                            // Die silently: no report, no more heartbeats.
                            break 'outer;
                        }
                        Err(ExecError::BadPayload(e)) => {
                            let _ = server.send(ToServer::CommandError {
                                worker: id,
                                project: cmd.project,
                                command: cmd.id,
                                error: e,
                            });
                        }
                    }
                }
            }
            Ok(ToWorker::NoWork) => {
                std::thread::sleep(config.poll_interval);
            }
            Ok(ToWorker::Shutdown) | Err(_) => break,
        }
    }
    alive.store(false, Ordering::Relaxed);
}
