//! The worker client: announces itself, polls for workloads, executes
//! commands, heartbeats, and (for fault-tolerance tests) can crash on
//! cue.
//!
//! The loop is written against [`WorkerTransport`], so the same code
//! serves both in-process channel workers and TCP workers dialing a
//! remote server. The transport differences that matter here:
//!
//! * a reply can *time out* (server busy in a long controller step) —
//!   the worker simply re-requests; the server dedups by attempt epoch;
//! * a TCP link can drop and come back ([`WorkerRecvError::Reconnected`])
//!   — the announce was replayed by the transport, so the worker
//!   re-requests work and carries on.

use crate::command::CommandOutput;
use crate::executor::{ExecContext, ExecError, ExecutorRegistry};
use crate::fs::SharedFs;
use crate::ids::WorkerId;
use crate::messages::{ToServer, ToWorker};
use crate::resources::{Platform, Resources, WorkerDescription};
use crate::transport::{WorkerRecvError, WorkerTransport};
use copernicus_telemetry::{buckets, labels, names, span_names, Telemetry};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Worker configuration.
#[derive(Clone)]
pub struct WorkerConfig {
    pub platform: Platform,
    pub resources: Resources,
    /// Heartbeat send period (must be ≤ the server's expectation).
    pub heartbeat_interval: Duration,
    /// Poll period while the queue is empty.
    pub poll_interval: Duration,
    /// How long to wait for the reply to one work request before
    /// re-requesting. Bounds how long a lost reply (dropped TCP link,
    /// server mid-clustering) stalls the worker; duplicated requests
    /// are safe under the server's attempt-epoch dedup.
    pub reply_timeout: Duration,
    /// Whether this worker shares a filesystem with the server (enables
    /// checkpoint deposits).
    pub shared_fs: Option<SharedFs>,
    /// Telemetry handle: per-command wall-time histograms plus
    /// instrumented execution (checkpoint I/O, MD step timings).
    pub telemetry: Option<Telemetry>,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            platform: Platform::Smp,
            resources: Resources::new(1, 1024),
            heartbeat_interval: Duration::from_millis(100),
            poll_interval: Duration::from_millis(5),
            reply_timeout: Duration::from_secs(30),
            shared_fs: None,
            telemetry: None,
        }
    }
}

/// Shutdown gate shared between the worker loop and its heartbeat
/// ticker. The ticker parks on a condvar with the heartbeat interval as
/// timeout, so closing the gate wakes it *immediately* — joining a
/// worker costs microseconds instead of a full heartbeat period.
#[derive(Default)]
struct Gate {
    closed: Mutex<bool>,
    wake: Condvar,
}

impl Gate {
    /// Signal shutdown and wake every parked waiter.
    fn close(&self) {
        *self.closed.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.wake.notify_all();
    }

    fn is_closed(&self) -> bool {
        *self.closed.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Park for up to `timeout`; returns `true` if the gate is closed
    /// (shutdown), `false` on an ordinary tick.
    fn wait(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut closed = self.closed.lock().unwrap_or_else(|e| e.into_inner());
        while !*closed {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .wake
                .wait_timeout(closed, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            closed = guard;
        }
        true
    }
}

/// Handle to a spawned worker thread.
pub struct WorkerHandle {
    pub id: WorkerId,
    thread: JoinHandle<()>,
    heartbeat: JoinHandle<()>,
    gate: Arc<Gate>,
}

impl WorkerHandle {
    /// Wait for the worker to exit (after server shutdown or crash).
    /// The heartbeat ticker is woken through the shutdown gate, so this
    /// returns as soon as the worker loop ends rather than after a
    /// trailing heartbeat sleep.
    pub fn join(self) {
        let _ = self.thread.join();
        // The loop closed the gate on exit; closing again is a no-op but
        // guards against a worker thread that panicked before closing.
        self.gate.close();
        let _ = self.heartbeat.join();
    }

    /// Whether the worker loop has exited (crashed or shut down).
    pub fn is_finished(&self) -> bool {
        self.thread.is_finished()
    }
}

/// Spawn a worker thread serving the given executor registry over the
/// given transport (in-process channel or TCP — the loop cannot tell).
pub fn spawn_worker(
    id: WorkerId,
    config: WorkerConfig,
    registry: ExecutorRegistry,
    transport: Box<dyn WorkerTransport>,
) -> WorkerHandle {
    let gate = Arc::new(Gate::default());

    // Heartbeat ticker: a separate thread so a long-running command does
    // not silence the worker (mirrors the real client's design). It
    // holds a detached sender, leaving the receiving half to the loop.
    let heartbeat = {
        let gate = gate.clone();
        let sender = transport.sender();
        let interval = config.heartbeat_interval;
        std::thread::spawn(move || {
            while !gate.is_closed() {
                if sender.send(ToServer::Heartbeat { worker: id }).is_err() {
                    break;
                }
                if gate.wait(interval) {
                    break;
                }
            }
        })
    };

    let thread = {
        let gate = gate.clone();
        std::thread::spawn(move || {
            worker_loop(id, config, registry, transport, &gate);
        })
    };

    WorkerHandle {
        id,
        thread,
        heartbeat,
        gate,
    }
}

fn worker_loop(
    id: WorkerId,
    config: WorkerConfig,
    registry: ExecutorRegistry,
    mut transport: Box<dyn WorkerTransport>,
    gate: &Gate,
) {
    let desc = WorkerDescription {
        platform: config.platform,
        resources: config.resources,
        executables: registry.executables(),
    };
    if transport
        .announce(ToServer::Announce { worker: id, desc })
        .is_err()
    {
        gate.close();
        return;
    }

    'outer: loop {
        if transport
            .send(ToServer::RequestWork { worker: id })
            .is_err()
        {
            break;
        }
        match transport.recv_timeout(config.reply_timeout) {
            Ok(ToWorker::Workload(commands)) => {
                for cmd in commands {
                    let Some(executor) = registry.lookup(&cmd.command_type) else {
                        let _ = transport.send(ToServer::CommandError {
                            worker: id,
                            project: cmd.project,
                            command: cmd.id,
                            epoch: cmd.attempts,
                            error: format!("no executable for '{}'", cmd.command_type),
                        });
                        continue;
                    };
                    // Trace: an `exec` span parented on the attempt
                    // context the server stamped into the command, so
                    // worker-side wall time nests under the owner's
                    // attempt in a merged trace.
                    let mut exec_span = match (&config.telemetry, &cmd.trace) {
                        (Some(t), Some(ctx)) => {
                            let actor = format!("worker-{}", id.0);
                            let mut span = t.tracer().start_child(span_names::EXEC, &actor, ctx);
                            span.set_attr("command", cmd.id.to_string());
                            span.set_attr("epoch", cmd.attempts.to_string());
                            Some(span)
                        }
                        _ => None,
                    };
                    let t0 = Instant::now();
                    let result = executor.execute(ExecContext {
                        command: &cmd,
                        worker: id,
                        shared_fs: config.shared_fs.as_ref(),
                        telemetry: config.telemetry.as_ref(),
                    });
                    if let Some(span) = exec_span.as_mut() {
                        span.set_attr(
                            "outcome",
                            match &result {
                                Ok(_) => "ok",
                                Err(ExecError::SimulatedCrash) => "crash",
                                Err(_) => "error",
                            },
                        );
                    }
                    drop(exec_span);
                    match result {
                        Ok(data) => {
                            let wall = t0.elapsed();
                            if let Some(t) = &config.telemetry {
                                t.registry()
                                    .histogram(
                                        names::COMMAND_WALL,
                                        labels(&[("kind", &cmd.command_type)]),
                                        buckets::SECONDS,
                                    )
                                    .record_duration(wall);
                            }
                            let output = CommandOutput::new(&cmd, id, data, wall.as_secs_f64());
                            if transport.send(ToServer::Completed { output }).is_err() {
                                break 'outer;
                            }
                        }
                        Err(ExecError::SimulatedCrash) => {
                            // Die silently: no report, no more heartbeats.
                            break 'outer;
                        }
                        Err(err @ (ExecError::BadPayload(_) | ExecError::Failed(_))) => {
                            let _ = transport.send(ToServer::CommandError {
                                worker: id,
                                project: cmd.project,
                                command: cmd.id,
                                epoch: cmd.attempts,
                                error: err.report().unwrap_or("unknown").to_string(),
                            });
                        }
                    }
                }
            }
            Ok(ToWorker::NoWork) => {
                std::thread::sleep(config.poll_interval);
            }
            Ok(ToWorker::Shutdown) => break,
            // Reply lost or slow: re-request. A stale workload that
            // arrives later is still executed; its results judge
            // normally under the server's epoch dedup.
            Err(WorkerRecvError::Timeout) | Err(WorkerRecvError::Reconnected) => continue 'outer,
            Err(WorkerRecvError::Closed(_)) => break,
        }
    }
    gate.close();
}
