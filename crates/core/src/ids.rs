//! Identifier newtypes used across the framework.
//!
//! These are re-exports from the shared [`copernicus_ids`] crate so the
//! runtime, the overlay simulation (`netsim`) and the wire transport all
//! name workers, commands, projects and nodes identically.

pub use copernicus_ids::{CommandId, IdGen, NodeId, ProjectId, WorkerId};
