//! Identifier newtypes used across the framework.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
        )]
        pub struct $name(pub u64);

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A worker client (one parallel simulation slot).
    WorkerId,
    "worker-"
);
id_type!(
    /// One unit of work (e.g. a 50-ns trajectory extension).
    CommandId,
    "cmd-"
);
id_type!(
    /// A project: a coupled ensemble of commands driven by a controller.
    ProjectId,
    "project-"
);

/// Monotonic id generator (thread-safe).
#[derive(Debug, Default)]
pub struct IdGen {
    next: AtomicU64,
}

impl IdGen {
    pub fn new() -> Self {
        IdGen::default()
    }

    pub fn next_u64(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    pub fn next_command(&self) -> CommandId {
        CommandId(self.next_u64())
    }

    pub fn next_worker(&self) -> WorkerId {
        WorkerId(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(WorkerId(3).to_string(), "worker-3");
        assert_eq!(CommandId(7).to_string(), "cmd-7");
        assert_eq!(ProjectId(0).to_string(), "project-0");
    }

    #[test]
    fn idgen_is_monotonic() {
        let g = IdGen::new();
        let a = g.next_command();
        let b = g.next_command();
        assert!(b.0 > a.0);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(CommandId(1));
        s.insert(CommandId(1));
        s.insert(CommandId(2));
        assert_eq!(s.len(), 2);
        assert!(CommandId(1) < CommandId(2));
    }
}
