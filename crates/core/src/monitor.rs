//! Real-time project monitoring (§2: "Progress and results can be
//! monitored in real time through a web interface").
//!
//! The server updates a shared [`ProjectStatus`]; clients (examples, the
//! bench harness, tests) poll a [`Monitor`] handle from any thread.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Snapshot of a running project.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProjectStatus {
    pub commands_queued: usize,
    pub commands_running: usize,
    pub commands_completed: u64,
    pub commands_failed: u64,
    pub commands_requeued: u64,
    pub workers_connected: usize,
    pub workers_lost: u64,
    /// Total output payload received (ensemble-level traffic).
    pub bytes_received: u64,
    /// Controller progress notes, newest last.
    pub log: Vec<String>,
    pub finished: bool,
}

/// Shared monitoring handle.
#[derive(Clone, Default)]
pub struct Monitor {
    inner: Arc<Mutex<ProjectStatus>>,
}

impl Monitor {
    pub fn new() -> Self {
        Monitor::default()
    }

    /// Current snapshot (cloned; cheap relative to command granularity).
    pub fn status(&self) -> ProjectStatus {
        self.inner.lock().clone()
    }

    pub fn update(&self, f: impl FnOnce(&mut ProjectStatus)) {
        f(&mut self.inner.lock());
    }

    pub fn log(&self, line: impl Into<String>) {
        self.inner.lock().log.push(line.into());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn updates_are_visible_to_clones() {
        let m = Monitor::new();
        let m2 = m.clone();
        m.update(|s| s.commands_completed = 5);
        m.log("generation 1 clustered");
        let snap = m2.status();
        assert_eq!(snap.commands_completed, 5);
        assert_eq!(snap.log, vec!["generation 1 clustered".to_string()]);
        assert!(!snap.finished);
    }

    #[test]
    fn status_is_a_snapshot() {
        let m = Monitor::new();
        let snap = m.status();
        m.update(|s| s.commands_completed = 1);
        assert_eq!(snap.commands_completed, 0, "snapshots must not alias");
    }
}
