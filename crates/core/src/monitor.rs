//! Real-time project monitoring (§2: "Progress and results can be
//! monitored in real time through a web interface").
//!
//! The server updates a shared [`ProjectStatus`]; clients (examples, the
//! bench harness, tests) poll a [`Monitor`] handle from any thread. A
//! `Monitor` can also carry a [`Telemetry`] handle, composing the live
//! counters with the metrics registry and event journal into the
//! `copernicus report` dump.

use copernicus_telemetry::{Json, Telemetry};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Retained log lines. Long ensemble runs emit a line per generation and
/// per failure; the ring keeps the newest window and counts evictions so
/// the status never grows without bound.
pub const LOG_CAPACITY: usize = 256;

/// Snapshot of a running project.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProjectStatus {
    pub commands_queued: usize,
    pub commands_running: usize,
    pub commands_completed: u64,
    pub commands_failed: u64,
    pub commands_requeued: u64,
    /// Commands that exhausted their attempt budget and were dropped.
    #[serde(default)]
    pub commands_dropped: u64,
    pub workers_connected: usize,
    pub workers_lost: u64,
    /// Total output payload received (ensemble-level traffic).
    pub bytes_received: u64,
    /// Controller progress notes, newest last — the most recent
    /// [`LOG_CAPACITY`] lines only.
    pub log: Vec<String>,
    /// Lines evicted from `log` to honour [`LOG_CAPACITY`].
    #[serde(default)]
    pub log_dropped: u64,
    /// Lines ever logged (`log_dropped + log.len()`).
    #[serde(default)]
    pub log_total: u64,
    pub finished: bool,
}

/// Shared monitoring handle.
#[derive(Clone, Default)]
pub struct Monitor {
    inner: Arc<Mutex<ProjectStatus>>,
    telemetry: Option<Telemetry>,
}

impl Monitor {
    pub fn new() -> Self {
        Monitor::default()
    }

    /// A monitor that also exposes (and reports through) `telemetry`.
    pub fn with_telemetry(telemetry: Telemetry) -> Self {
        Monitor {
            inner: Arc::default(),
            telemetry: Some(telemetry),
        }
    }

    /// The attached telemetry handle, if any.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_ref()
    }

    /// Current snapshot (cloned; cheap relative to command granularity).
    pub fn status(&self) -> ProjectStatus {
        self.inner.lock().clone()
    }

    pub fn update(&self, f: impl FnOnce(&mut ProjectStatus)) {
        f(&mut self.inner.lock());
    }

    pub fn log(&self, line: impl Into<String>) {
        let mut status = self.inner.lock();
        status.log.push(line.into());
        status.log_total += 1;
        if status.log.len() > LOG_CAPACITY {
            let excess = status.log.len() - LOG_CAPACITY;
            status.log.drain(..excess);
            status.log_dropped += excess as u64;
        }
    }

    /// Log lines not yet seen by a caller that has consumed `seen_total`
    /// lines so far. Returns `(new_lines, new_seen_total)`; lines evicted
    /// before the caller got to them are silently skipped (they are
    /// accounted in [`ProjectStatus::log_dropped`]).
    pub fn log_since(&self, seen_total: u64) -> (Vec<String>, u64) {
        let status = self.inner.lock();
        let oldest_retained = status.log_total - status.log.len() as u64;
        let skip = seen_total.saturating_sub(oldest_retained) as usize;
        let lines: Vec<String> = status.log.iter().skip(skip).cloned().collect();
        (lines, status.log_total)
    }

    /// One JSON document: project status plus (when telemetry is
    /// attached) the full metrics snapshot and journal summary.
    pub fn report_json(&self) -> String {
        let status = self.status();
        let mut root = match &self.telemetry {
            Some(t) => t.snapshot(),
            None => Json::object(),
        };
        root.set("status", status_to_json(&status));
        root.to_string_pretty()
    }

    /// Aligned-text report for terminals (`copernicus report`).
    pub fn report_text(&self) -> String {
        let status = self.status();
        let mut out = String::new();
        out.push_str("== project ==\n");
        out.push_str(&format!(
            "queued={} running={} completed={} failed={} requeued={} dropped={}\n",
            status.commands_queued,
            status.commands_running,
            status.commands_completed,
            status.commands_failed,
            status.commands_requeued,
            status.commands_dropped,
        ));
        out.push_str(&format!(
            "workers connected={} lost={}  bytes_received={}  finished={}\n",
            status.workers_connected, status.workers_lost, status.bytes_received, status.finished,
        ));
        out.push_str(&format!(
            "log: {} line(s) retained, {} dropped\n",
            status.log.len(),
            status.log_dropped
        ));
        if let Some(t) = &self.telemetry {
            out.push('\n');
            out.push_str(&t.render_report());
        }
        out
    }
}

fn status_to_json(s: &ProjectStatus) -> Json {
    let mut obj = Json::object();
    obj.set("commands_queued", s.commands_queued)
        .set("commands_running", s.commands_running)
        .set("commands_completed", s.commands_completed)
        .set("commands_failed", s.commands_failed)
        .set("commands_requeued", s.commands_requeued)
        .set("commands_dropped", s.commands_dropped)
        .set("workers_connected", s.workers_connected)
        .set("workers_lost", s.workers_lost)
        .set("bytes_received", s.bytes_received)
        .set("log_dropped", s.log_dropped)
        .set("log_total", s.log_total)
        .set("finished", s.finished)
        .set(
            "log",
            Json::Array(s.log.iter().map(|l| Json::from(l.as_str())).collect()),
        );
    obj
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn updates_are_visible_to_clones() {
        let m = Monitor::new();
        let m2 = m.clone();
        m.update(|s| s.commands_completed = 5);
        m.log("generation 1 clustered");
        let snap = m2.status();
        assert_eq!(snap.commands_completed, 5);
        assert_eq!(snap.log, vec!["generation 1 clustered".to_string()]);
        assert!(!snap.finished);
    }

    #[test]
    fn status_is_a_snapshot() {
        let m = Monitor::new();
        let snap = m.status();
        m.update(|s| s.commands_completed = 1);
        assert_eq!(snap.commands_completed, 0, "snapshots must not alias");
    }

    #[test]
    fn log_is_bounded_and_counts_drops() {
        let m = Monitor::new();
        for i in 0..LOG_CAPACITY + 10 {
            m.log(format!("line {i}"));
        }
        let snap = m.status();
        assert_eq!(snap.log.len(), LOG_CAPACITY);
        assert_eq!(snap.log_dropped, 10);
        assert_eq!(snap.log_total, (LOG_CAPACITY + 10) as u64);
        // Newest retained; oldest evicted.
        assert_eq!(snap.log.first().unwrap(), "line 10");
        assert_eq!(
            snap.log.last().unwrap(),
            &format!("line {}", LOG_CAPACITY + 9)
        );
    }

    #[test]
    fn log_since_tracks_incremental_readers() {
        let m = Monitor::new();
        m.log("a");
        m.log("b");
        let (lines, seen) = m.log_since(0);
        assert_eq!(lines, vec!["a", "b"]);
        assert_eq!(seen, 2);
        let (lines, seen) = m.log_since(seen);
        assert!(lines.is_empty());
        m.log("c");
        let (lines, seen) = m.log_since(seen);
        assert_eq!(lines, vec!["c"]);
        assert_eq!(seen, 3);
    }

    #[test]
    fn log_since_skips_evicted_lines() {
        let m = Monitor::new();
        for i in 0..LOG_CAPACITY + 5 {
            m.log(format!("line {i}"));
        }
        // A reader that saw nothing gets only the retained window.
        let (lines, seen) = m.log_since(0);
        assert_eq!(lines.len(), LOG_CAPACITY);
        assert_eq!(lines[0], "line 5");
        assert_eq!(seen, (LOG_CAPACITY + 5) as u64);
    }

    #[test]
    fn report_includes_telemetry_when_attached() {
        use copernicus_telemetry::{Labels, Telemetry};
        let t = Telemetry::new();
        t.registry().counter("x", Labels::new()).add(7);
        let m = Monitor::with_telemetry(t);
        m.update(|s| s.commands_completed = 2);
        let json = m.report_json();
        let parsed = Json::parse(&json).unwrap();
        assert_eq!(
            parsed
                .get("status")
                .and_then(|s| s.get("commands_completed"))
                .and_then(Json::as_u64),
            Some(2)
        );
        assert!(parsed.get("metrics").is_some());
        let text = m.report_text();
        assert!(text.contains("== project =="));
        assert!(text.contains("== metrics =="));
        // Plain monitor still reports, minus metrics.
        let plain = Monitor::new();
        assert!(plain.report_json().contains("status"));
        assert!(plain.telemetry().is_none());
    }
}
