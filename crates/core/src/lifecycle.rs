//! The command lifecycle state machine (§2.3 fault semantics).
//!
//! Every command moves through an explicit set of phases:
//!
//! ```text
//!            dispatch                    result accepted
//!   Queued ────────────► Dispatched ─────────────────────► Completed
//!     ▲                   │      │
//!     │   retry (budget   │      │  attempts exhausted
//!     │   left)           │      ▼
//!     ├──◄── Errored ◄────┤    Dropped
//!     │      (backoff)    │      ▲
//!     └──◄── Orphaned ◄───┘      │ attempts exhausted
//!            (immediate)─────────┘
//! ```
//!
//! `Errored` (a worker reported a command-level failure) and `Orphaned`
//! (the heartbeat watchdog lost the worker) are transient fault phases:
//! policy immediately resolves them to a retry — re-queued with the
//! latest shared-filesystem checkpoint — or to `Dropped` once the
//! attempt budget is spent. Errored retries carry an exponential
//! backoff so a deterministically failing command cannot burn its whole
//! budget in milliseconds; orphan retries re-queue immediately because
//! worker loss says nothing about the command itself.
//!
//! This module is the *pure* half of the machine: phase/verdict types,
//! the retry policy, and the result-acceptance judge. The effectful
//! half — queue and running-set edits, checkpoint clearing, controller
//! notification, telemetry — lives in `Server::transition`, the single
//! function every message path routes through.

use std::time::Duration;

/// Phases a tracked command can be in. `Completed` and `Dropped` are
/// terminal: the server forgets the command (and clears its checkpoint)
/// on entry, so any later result for it is a duplicate by definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// In the command queue, possibly embargoed until a backoff expires.
    Queued,
    /// On a worker, tagged with the attempt epoch it was dispatched
    /// under.
    Dispatched,
    /// A transient fault phase: the executor reported an error.
    Errored,
    /// A transient fault phase: the worker stopped heartbeating.
    Orphaned,
    /// Result accepted and the controller notified — exactly once.
    Completed,
    /// Attempt budget exhausted; the controller was told the command
    /// will never finish.
    Dropped,
}

impl Phase {
    /// Whether the machine may move from `self` to `next`.
    pub fn can_transition(self, next: Phase) -> bool {
        use Phase::*;
        matches!(
            (self, next),
            (Queued, Dispatched)
                // A queued duplicate is completed/cancelled when the
                // original attempt's result arrives from a resurrected
                // worker.
                | (Queued, Completed)
                | (Queued, Dropped)
                | (Dispatched, Completed)
                | (Dispatched, Errored)
                | (Dispatched, Orphaned)
                | (Errored, Queued)
                | (Errored, Dropped)
                | (Orphaned, Queued)
                | (Orphaned, Dropped)
        )
    }

    pub fn is_terminal(self) -> bool {
        matches!(self, Phase::Completed | Phase::Dropped)
    }
}

/// What kind of fault hit a dispatched command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker reported a command-level error (`ToServer::CommandError`).
    Error,
    /// The heartbeat watchdog declared the executing worker lost.
    WorkerLost,
}

/// How a fault resolves: re-queue (with an optional backoff embargo) or
/// give up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Re-queue with the latest checkpoint; the command must not be
    /// re-dispatched before `delay` has elapsed.
    Retry { delay: Duration },
    /// Attempt budget exhausted: drop, clear the checkpoint, notify the
    /// controller.
    Drop,
}

/// Retry policy: attempt budget plus exponential error backoff.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Give up after this many dispatch attempts.
    pub max_attempts: u32,
    /// Backoff before the second attempt after an error; doubles per
    /// subsequent error.
    pub backoff_base: Duration,
    /// Upper clamp on the error backoff.
    pub backoff_max: Duration,
}

impl RetryPolicy {
    /// Exponential backoff after `attempts` consumed attempts:
    /// `base * 2^(attempts-1)`, clamped to `backoff_max`.
    pub fn backoff(&self, attempts: u32) -> Duration {
        let exp = attempts.saturating_sub(1).min(16);
        self.backoff_base
            .saturating_mul(1u32 << exp)
            .min(self.backoff_max)
    }

    /// Resolve a fault on a command that has consumed `attempts`
    /// dispatch attempts so far.
    pub fn on_fault(&self, kind: FaultKind, attempts: u32) -> Disposition {
        if attempts >= self.max_attempts {
            return Disposition::Drop;
        }
        match kind {
            // Worker loss says nothing about the command: retry now.
            FaultKind::WorkerLost => Disposition::Retry {
                delay: Duration::ZERO,
            },
            // A command-level error is likely to repeat: back off so a
            // deterministic failure cannot hot-loop through the budget.
            FaultKind::Error => Disposition::Retry {
                delay: self.backoff(attempts),
            },
        }
    }
}

/// The judge's ruling on an incoming result (completion or error).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Count it: transition the command.
    Accept,
    /// A success delivered by a resurrected worker while the re-queued
    /// duplicate sat in the queue: accept it and cancel the duplicate.
    AcceptCancelQueued,
    /// A success from a stale attempt while a newer attempt is running:
    /// accept it (the work is identical) and forget the running
    /// duplicate — its eventual result becomes a duplicate and is
    /// dropped.
    AcceptCancelRunning,
    /// Stale or duplicate: discard, count in `stale_results_dropped`.
    DropStale,
}

/// Judge a *successful* result carrying `result_epoch` against the
/// command's current phase and epoch (`None` when the command is no
/// longer tracked, i.e. already terminal).
///
/// Successes are accepted from any epoch — the work of attempt 1 is the
/// same work as attempt 2, and accepting the first result to arrive is
/// both correct and fastest — but only *once*: terminal commands judge
/// every further result a duplicate.
pub fn judge_success(current: Option<(Phase, u32)>, result_epoch: u32) -> Verdict {
    match current {
        None => Verdict::DropStale,
        Some((Phase::Queued, _)) => Verdict::AcceptCancelQueued,
        Some((Phase::Dispatched, epoch)) if epoch == result_epoch => Verdict::Accept,
        Some((Phase::Dispatched, _)) => Verdict::AcceptCancelRunning,
        // Transient/terminal phases never hold between transitions, but
        // be explicit: anything else is stale.
        Some(_) => Verdict::DropStale,
    }
}

/// Judge an *error* report. Unlike successes, errors are only honoured
/// for the exact attempt they belong to: an error from a stale epoch
/// must not burn the current attempt's budget or re-queue a command
/// that a newer attempt is executing fine.
pub fn judge_error(current: Option<(Phase, u32)>, result_epoch: u32) -> Verdict {
    match current {
        Some((Phase::Dispatched, epoch)) if epoch == result_epoch => Verdict::Accept,
        _ => Verdict::DropStale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            backoff_base: Duration::from_millis(100),
            backoff_max: Duration::from_secs(2),
        }
    }

    #[test]
    fn backoff_doubles_and_clamps() {
        let p = policy();
        assert_eq!(p.backoff(1), Duration::from_millis(100));
        assert_eq!(p.backoff(2), Duration::from_millis(200));
        assert_eq!(p.backoff(3), Duration::from_millis(400));
        assert_eq!(p.backoff(6), Duration::from_secs(2), "clamped");
        assert_eq!(p.backoff(40), Duration::from_secs(2), "shift saturates");
    }

    #[test]
    fn errors_retry_with_backoff_until_budget() {
        let p = policy();
        assert_eq!(
            p.on_fault(FaultKind::Error, 1),
            Disposition::Retry {
                delay: Duration::from_millis(100)
            }
        );
        assert_eq!(
            p.on_fault(FaultKind::Error, 3),
            Disposition::Retry {
                delay: Duration::from_millis(400)
            }
        );
        assert_eq!(p.on_fault(FaultKind::Error, 4), Disposition::Drop);
        assert_eq!(p.on_fault(FaultKind::Error, 9), Disposition::Drop);
    }

    #[test]
    fn worker_loss_retries_immediately() {
        let p = policy();
        assert_eq!(
            p.on_fault(FaultKind::WorkerLost, 3),
            Disposition::Retry {
                delay: Duration::ZERO
            }
        );
        assert_eq!(p.on_fault(FaultKind::WorkerLost, 4), Disposition::Drop);
    }

    #[test]
    fn success_judging_is_exactly_once() {
        // Normal path: epoch matches the dispatched attempt.
        assert_eq!(
            judge_success(Some((Phase::Dispatched, 2)), 2),
            Verdict::Accept
        );
        // Resurrected worker finishing the original attempt while the
        // duplicate is queued: accept and cancel the duplicate.
        assert_eq!(
            judge_success(Some((Phase::Queued, 1)), 1),
            Verdict::AcceptCancelQueued
        );
        // …or while a newer attempt runs: accept, forget the runner.
        assert_eq!(
            judge_success(Some((Phase::Dispatched, 2)), 1),
            Verdict::AcceptCancelRunning
        );
        // After the command is terminal nothing more is accepted.
        assert_eq!(judge_success(None, 2), Verdict::DropStale);
    }

    #[test]
    fn error_judging_requires_exact_epoch() {
        assert_eq!(
            judge_error(Some((Phase::Dispatched, 2)), 2),
            Verdict::Accept
        );
        assert_eq!(
            judge_error(Some((Phase::Dispatched, 2)), 1),
            Verdict::DropStale
        );
        assert_eq!(judge_error(Some((Phase::Queued, 1)), 1), Verdict::DropStale);
        assert_eq!(judge_error(None, 1), Verdict::DropStale);
    }

    #[test]
    fn transition_legality() {
        use Phase::*;
        for (from, to) in [
            (Queued, Dispatched),
            (Dispatched, Completed),
            (Dispatched, Errored),
            (Dispatched, Orphaned),
            (Errored, Queued),
            (Errored, Dropped),
            (Orphaned, Queued),
            (Orphaned, Dropped),
            (Queued, Completed),
            (Queued, Dropped),
        ] {
            assert!(from.can_transition(to), "{from:?} -> {to:?}");
        }
        for (from, to) in [
            (Completed, Queued),
            (Dropped, Queued),
            (Queued, Errored),
            (Dispatched, Queued),
            (Completed, Dropped),
        ] {
            assert!(!from.can_transition(to), "{from:?} -> {to:?}");
        }
        assert!(Completed.is_terminal() && Dropped.is_terminal());
        assert!(!Queued.is_terminal() && !Dispatched.is_terminal());
    }
}
