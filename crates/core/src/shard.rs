//! Sharded server hot-path structures: the command queue and the
//! lifecycle ledger, split N ways by command-id hash.
//!
//! At a thousand workers the server core stops being bounded by I/O
//! and starts being bounded by its own bookkeeping: every
//! `RequestWork` rebuilt the entire priority queue
//! (`CommandQueue::match_workload` drains and re-collects all N
//! queued commands), every heartbeat scanned the whole running set to
//! find the worker's in-flight commands, and everything serialized on
//! the structures as one unit. This module splits both by
//! `splitmix64(command id)`:
//!
//! - [`ShardedQueue`] — N sorted shards; `enqueue`/`remove` touch one
//!   shard, and matching is a k-way merge over the shard heads in
//!   (priority desc, seq asc) order that stops as soon as the
//!   worker's cores are committed — identical greedy semantics to
//!   [`CommandQueue`](crate::queue::CommandQueue) without the
//!   drain-and-rebuild;
//! - [`ShardedLedger`] — the running set and queued-at table in N
//!   shards, plus a per-worker index so heartbeat marking and
//!   watchdog orphan scans are O(commands of that worker), not
//!   O(everything in flight).
//!
//! Per-shard `Mutex`es keep each shard independently lockable (the
//! embedded single-threaded server pays only an uncontended lock;
//! sharded deployments stop serializing dispatch, completion, and
//! watchdog scans on one mutex). FIFO-within-priority is preserved
//! across shards by a global enqueue sequence number merged on reads.

use crate::command::Command;
use crate::ids::{CommandId, WorkerId};
use crate::resources::WorkerDescription;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Default shard count: enough to spread a hash well, small enough
/// that locking every shard for a merge stays cheap. Must be a power
/// of two.
pub const DEFAULT_SHARDS: usize = 16;

/// splitmix64 — the id-spreading hash used across the codebase (cf.
/// `peer::namespaced_worker`); command ids are sequential, so they
/// need real mixing before masking.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn shard_of(id: CommandId, mask: usize) -> usize {
    (splitmix64(id.0) as usize) & mask
}

/// Lock a shard mutex, recovering from poisoning. A thread that
/// panics while holding a shard (a bad command tripping an assert in
/// an executor callback, say) would otherwise poison it and make
/// every later `.lock().unwrap()` cascade the panic across the server
/// — taking down dispatch for 1/16th of the id space. Each critical
/// section here is a small collection mutation with its invariants
/// restored before any call that could panic, so the data behind a
/// poisoned lock is still consistent; recover it instead of dying
/// (same policy as `tcp::Coalesce`).
fn lock_tolerant<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// One queued entry: the command plus its global arrival stamp, which
/// makes FIFO-within-equal-priority well-defined across shards.
struct Queued {
    seq: u64,
    cmd: Command,
}

/// Dispatch order: highest priority first, then earliest arrival.
fn dispatch_before(a: &Queued, b: &Queued) -> bool {
    (a.cmd.priority, std::cmp::Reverse(a.seq)) > (b.cmd.priority, std::cmp::Reverse(b.seq))
}

/// Priority command queue in N hash shards with capability-aware
/// matching. Semantically identical to
/// [`CommandQueue`](crate::queue::CommandQueue): priority order, FIFO
/// ties, retry embargoes skipped-but-retained, greedy best-fit
/// matching.
pub struct ShardedQueue {
    shards: Vec<Mutex<Vec<Queued>>>,
    mask: usize,
    seq: AtomicU64,
    len: AtomicUsize,
}

impl Default for ShardedQueue {
    fn default() -> Self {
        ShardedQueue::new(DEFAULT_SHARDS)
    }
}

impl ShardedQueue {
    pub fn new(shards: usize) -> ShardedQueue {
        assert!(
            shards.is_power_of_two() && shards > 0,
            "shard count must be a power of two"
        );
        ShardedQueue {
            shards: (0..shards).map(|_| Mutex::new(Vec::new())).collect(),
            mask: shards - 1,
            seq: AtomicU64::new(0),
            len: AtomicUsize::new(0),
        }
    }

    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert a command in its shard's dispatch order.
    pub fn enqueue(&self, cmd: Command) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let entry = Queued { seq, cmd };
        let mut shard = lock_tolerant(&self.shards[shard_of(entry.cmd.id, self.mask)]);
        // Shards stay sorted; position by the same dispatch order the
        // merge uses. New arrivals sort after equal-priority entries.
        let pos = shard.partition_point(|q| !dispatch_before(&entry, q));
        shard.insert(pos, entry);
        self.len.fetch_add(1, Ordering::Relaxed);
    }

    /// Build a workload for a presenting worker: a k-way merge over
    /// the sorted shards in (priority, arrival) order, taking every
    /// command the worker can execute while uncommitted resources
    /// remain. Embargoed commands (`not_before` in the future) are
    /// skipped in place.
    ///
    /// Stops the moment the worker's cores are fully committed —
    /// every command requires at least one core (`Resources::new`
    /// asserts it), so nothing further can fit. This is what turns
    /// the old whole-queue rebuild into O(scanned), with untaken
    /// commands never moving at all.
    pub fn match_workload(&self, desc: &WorkerDescription, now: Instant) -> Vec<Command> {
        let mut guards: Vec<_> = self.shards.iter().map(|s| lock_tolerant(s)).collect();
        let mut cursors = vec![0usize; guards.len()];
        let mut taken_idx: Vec<Vec<usize>> = vec![Vec::new(); guards.len()];
        let mut remaining = desc.resources;
        let mut taken = 0usize;

        while remaining.cores > 0 {
            // Next un-scanned entry across all shards in dispatch
            // order. Shard count is small and fixed; a linear scan of
            // the heads beats heap maintenance at these widths.
            let mut best: Option<usize> = None;
            for (i, guard) in guards.iter().enumerate() {
                if cursors[i] >= guard.len() {
                    continue;
                }
                let cand = &guard[cursors[i]];
                if best.map_or(true, |b| dispatch_before(cand, &guards[b][cursors[b]])) {
                    best = Some(i);
                }
            }
            let Some(i) = best else { break };
            let entry = &guards[i][cursors[i]];
            let fits = entry.cmd.ready_at(now)
                && desc.can_run(&entry.cmd.command_type)
                && remaining.satisfies(&entry.cmd.required);
            if fits {
                remaining = remaining.minus(&entry.cmd.required);
                taken_idx[i].push(cursors[i]);
                taken += 1;
            }
            cursors[i] += 1;
        }

        if taken == 0 {
            return Vec::new();
        }
        // Extract taken entries shard by shard (indices are ascending
        // per shard), then re-sort into global dispatch order.
        let mut out: Vec<Queued> = Vec::with_capacity(taken);
        for (i, idxs) in taken_idx.iter().enumerate() {
            for (removed, &idx) in idxs.iter().enumerate() {
                out.push(guards[i].remove(idx - removed));
            }
        }
        self.len.fetch_sub(taken, Ordering::Relaxed);
        out.sort_by(|a, b| {
            (b.cmd.priority, std::cmp::Reverse(b.seq))
                .cmp(&(a.cmd.priority, std::cmp::Reverse(a.seq)))
        });
        out.into_iter().map(|q| q.cmd).collect()
    }

    /// Remove and return a specific command (controller cancel, or
    /// the server cancelling a re-queued duplicate whose original
    /// attempt delivered a result).
    pub fn remove(&self, id: CommandId) -> Option<Command> {
        let mut shard = lock_tolerant(&self.shards[shard_of(id, self.mask)]);
        let pos = shard.iter().position(|q| q.cmd.id == id)?;
        let entry = shard.remove(pos);
        self.len.fetch_sub(1, Ordering::Relaxed);
        Some(entry.cmd)
    }

    /// Run `f` on a queued command without removing it.
    pub fn peek<R>(&self, id: CommandId, f: impl FnOnce(&Command) -> R) -> Option<R> {
        let shard = lock_tolerant(&self.shards[shard_of(id, self.mask)]);
        shard.iter().find(|q| q.cmd.id == id).map(|q| f(&q.cmd))
    }

    /// Queued commands in dispatch order (test/diagnostic use; locks
    /// every shard).
    pub fn snapshot_ids(&self) -> Vec<CommandId> {
        let guards: Vec<_> = self.shards.iter().map(|s| lock_tolerant(s)).collect();
        let mut all: Vec<(i32, u64, CommandId)> = guards
            .iter()
            .flat_map(|g| g.iter().map(|q| (q.cmd.priority, q.seq, q.cmd.id)))
            .collect();
        all.sort_by(|a, b| (b.0, std::cmp::Reverse(b.1)).cmp(&(a.0, std::cmp::Reverse(a.1))));
        all.into_iter().map(|(_, _, id)| id).collect()
    }
}

/// A dispatched command: who runs it, under which attempt epoch, and
/// the command itself (kept for re-queueing on fault).
pub struct InFlight {
    pub worker: WorkerId,
    pub dispatched_at: Instant,
    pub cmd: Command,
}

impl InFlight {
    pub fn epoch(&self) -> u32 {
        self.cmd.attempts
    }
}

struct LedgerShard {
    running: HashMap<CommandId, InFlight>,
    queued_at: HashMap<CommandId, Instant>,
}

/// The command lifecycle ledger — running set and queued-at table —
/// in N hash shards, with a per-worker index over the running set.
///
/// The index is what makes heartbeats cheap: marking liveness on a
/// worker's attempts, and orphaning its commands when the watchdog
/// declares it lost, both resolve to a direct lookup instead of a
/// scan of every in-flight command.
pub struct ShardedLedger {
    shards: Vec<Mutex<LedgerShard>>,
    mask: usize,
    /// CommandIds currently running per worker.
    by_worker: Mutex<HashMap<WorkerId, HashSet<CommandId>>>,
    running_len: AtomicUsize,
}

impl Default for ShardedLedger {
    fn default() -> Self {
        ShardedLedger::new(DEFAULT_SHARDS)
    }
}

impl ShardedLedger {
    pub fn new(shards: usize) -> ShardedLedger {
        assert!(
            shards.is_power_of_two() && shards > 0,
            "shard count must be a power of two"
        );
        ShardedLedger {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(LedgerShard {
                        running: HashMap::new(),
                        queued_at: HashMap::new(),
                    })
                })
                .collect(),
            mask: shards - 1,
            by_worker: Mutex::new(HashMap::new()),
            running_len: AtomicUsize::new(0),
        }
    }

    pub fn running_len(&self) -> usize {
        self.running_len.load(Ordering::Relaxed)
    }

    pub fn start_running(&self, inflight: InFlight) {
        let id = inflight.cmd.id;
        let worker = inflight.worker;
        let mut shard = lock_tolerant(&self.shards[shard_of(id, self.mask)]);
        if shard.running.insert(id, inflight).is_none() {
            self.running_len.fetch_add(1, Ordering::Relaxed);
        }
        drop(shard);
        lock_tolerant(&self.by_worker)
            .entry(worker)
            .or_default()
            .insert(id);
    }

    pub fn stop_running(&self, id: CommandId) -> Option<InFlight> {
        let mut shard = lock_tolerant(&self.shards[shard_of(id, self.mask)]);
        let inflight = shard.running.remove(&id)?;
        self.running_len.fetch_sub(1, Ordering::Relaxed);
        drop(shard);
        let mut by_worker = lock_tolerant(&self.by_worker);
        if let Some(set) = by_worker.get_mut(&inflight.worker) {
            set.remove(&id);
            if set.is_empty() {
                by_worker.remove(&inflight.worker);
            }
        }
        Some(inflight)
    }

    /// The attempt epoch of a running command, if it is running.
    pub fn running_epoch(&self, id: CommandId) -> Option<u32> {
        let shard = lock_tolerant(&self.shards[shard_of(id, self.mask)]);
        shard.running.get(&id).map(|f| f.epoch())
    }

    /// Run `f` on a running command's in-flight record.
    pub fn peek_running<R>(&self, id: CommandId, f: impl FnOnce(&InFlight) -> R) -> Option<R> {
        let shard = lock_tolerant(&self.shards[shard_of(id, self.mask)]);
        shard.running.get(&id).map(f)
    }

    /// Every running command id (test/diagnostic use; locks all
    /// shards in turn).
    pub fn running_ids(&self) -> Vec<CommandId> {
        self.shards
            .iter()
            .flat_map(|s| lock_tolerant(s).running.keys().copied().collect::<Vec<_>>())
            .collect()
    }

    /// Commands currently dispatched to `worker` (direct index hit).
    pub fn commands_of(&self, worker: WorkerId) -> Vec<CommandId> {
        lock_tolerant(&self.by_worker)
            .get(&worker)
            .map(|set| set.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Whether `worker` has anything in flight (heartbeat fast path).
    pub fn worker_is_idle(&self, worker: WorkerId) -> bool {
        !lock_tolerant(&self.by_worker).contains_key(&worker)
    }

    pub fn mark_queued(&self, id: CommandId, at: Instant) {
        let mut shard = lock_tolerant(&self.shards[shard_of(id, self.mask)]);
        shard.queued_at.insert(id, at);
    }

    pub fn take_queued(&self, id: CommandId) -> Option<Instant> {
        let mut shard = lock_tolerant(&self.shards[shard_of(id, self.mask)]);
        shard.queued_at.remove(&id)
    }

    pub fn queued_len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lock_tolerant(s).queued_at.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::CommandSpec;
    use crate::ids::ProjectId;
    use crate::queue::CommandQueue;
    use crate::resources::{ExecutableSpec, Platform, Resources};
    use serde_json::json;
    use std::time::Duration;

    fn cmd(id: u64, ctype: &str, cores: usize, priority: i32) -> Command {
        Command::from_spec(
            CommandId(id),
            ProjectId(0),
            CommandSpec::new(ctype, Resources::new(cores, 1), json!(null)).with_priority(priority),
        )
    }

    fn worker(cores: usize, types: &[&str]) -> WorkerDescription {
        WorkerDescription {
            platform: Platform::Smp,
            resources: Resources::new(cores, 1_000_000),
            executables: types
                .iter()
                .map(|t| ExecutableSpec::new(*t, Platform::Smp, "1"))
                .collect(),
        }
    }

    #[test]
    fn ids_spread_across_shards() {
        let q = ShardedQueue::new(8);
        for i in 0..64 {
            q.enqueue(cmd(i, "a", 1, 0));
        }
        let occupied = q
            .shards
            .iter()
            .filter(|s| !s.lock().unwrap().is_empty())
            .count();
        assert!(occupied >= 6, "sequential ids must spread: {occupied}/8");
        assert_eq!(q.len(), 64);
    }

    #[test]
    fn priority_order_with_fifo_ties_across_shards() {
        let q = ShardedQueue::new(4);
        q.enqueue(cmd(1, "a", 1, 0));
        q.enqueue(cmd(2, "a", 1, 5));
        q.enqueue(cmd(3, "a", 1, 0));
        assert_eq!(
            q.snapshot_ids(),
            vec![CommandId(2), CommandId(1), CommandId(3)]
        );
        // Dispatch preserves the same order.
        let load = q.match_workload(&worker(8, &["a"]), Instant::now());
        let ids: Vec<u64> = load.iter().map(|c| c.id.0).collect();
        assert_eq!(ids, vec![2, 1, 3]);
    }

    #[test]
    fn matching_agrees_with_the_unsharded_queue() {
        // The sharded queue must take exactly the commands the
        // reference implementation takes, in the same order, across a
        // spread of priorities/sizes/capabilities/embargoes.
        let now = Instant::now();
        let mut reference = CommandQueue::new();
        let sharded = ShardedQueue::new(8);
        let mut seed = 0xfeed_5eedu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for i in 0..200 {
            let ctype = if next() % 3 == 0 { "fep" } else { "mdrun" };
            let cores = (next() % 4 + 1) as usize;
            let priority = (next() % 7) as i32 - 3;
            let mut c = cmd(i, ctype, cores, priority);
            if next() % 5 == 0 {
                c.not_before = Some(now + Duration::from_secs(60));
            }
            reference.enqueue(c.clone());
            sharded.enqueue(c);
        }
        let w = worker(16, &["mdrun"]);
        for round in 0..20 {
            let a = reference.match_workload(&w, now);
            let b = sharded.match_workload(&w, now);
            let ids_a: Vec<u64> = a.iter().map(|c| c.id.0).collect();
            let ids_b: Vec<u64> = b.iter().map(|c| c.id.0).collect();
            assert_eq!(ids_a, ids_b, "divergence at round {round}");
            assert_eq!(reference.len(), sharded.len());
            if a.is_empty() {
                break;
            }
        }
    }

    #[test]
    fn embargoed_commands_are_skipped_but_retained() {
        let now = Instant::now();
        let q = ShardedQueue::new(4);
        let mut embargoed = cmd(1, "mdrun", 1, 10);
        embargoed.not_before = Some(now + Duration::from_secs(60));
        q.enqueue(embargoed);
        q.enqueue(cmd(2, "mdrun", 1, 0));
        let w = worker(8, &["mdrun"]);
        let load = q.match_workload(&w, now);
        assert_eq!(load.len(), 1);
        assert_eq!(load[0].id.0, 2);
        assert_eq!(q.len(), 1);
        let load = q.match_workload(&w, now + Duration::from_secs(61));
        assert_eq!(load.len(), 1);
        assert_eq!(load[0].id.0, 1);
        assert!(q.is_empty());
    }

    #[test]
    fn matching_stops_at_zero_cores() {
        let q = ShardedQueue::new(4);
        for i in 0..100 {
            q.enqueue(cmd(i, "mdrun", 2, 0));
        }
        let w = worker(5, &["mdrun"]);
        let load = q.match_workload(&w, Instant::now());
        assert_eq!(load.len(), 2, "5 cores fit two 2-core commands");
        assert_eq!(q.len(), 98);
    }

    #[test]
    fn remove_and_peek_route_to_the_right_shard() {
        let q = ShardedQueue::new(8);
        for i in 0..32 {
            q.enqueue(cmd(i, "a", 1, 0));
        }
        assert_eq!(q.peek(CommandId(17), |c| c.id.0), Some(17));
        assert!(q.remove(CommandId(17)).is_some());
        assert!(q.remove(CommandId(17)).is_none());
        assert_eq!(q.peek(CommandId(17), |c| c.id.0), None);
        assert_eq!(q.len(), 31);
    }

    #[test]
    fn ledger_tracks_running_by_worker() {
        let ledger = ShardedLedger::new(4);
        let w1 = WorkerId(1);
        let w2 = WorkerId(2);
        for i in 0..10 {
            ledger.start_running(InFlight {
                worker: if i % 3 == 0 { w2 } else { w1 },
                dispatched_at: Instant::now(),
                cmd: cmd(i, "a", 1, 0),
            });
        }
        assert_eq!(ledger.running_len(), 10);
        let mut of_w2 = ledger.commands_of(w2);
        of_w2.sort();
        assert_eq!(
            of_w2,
            vec![CommandId(0), CommandId(3), CommandId(6), CommandId(9)]
        );
        assert!(!ledger.worker_is_idle(w1));

        let gone = ledger.stop_running(CommandId(3)).unwrap();
        assert_eq!(gone.worker, w2);
        assert_eq!(ledger.running_len(), 9);
        assert_eq!(ledger.commands_of(w2).len(), 3);
        assert!(ledger.stop_running(CommandId(3)).is_none());

        for id in ledger.commands_of(w2) {
            ledger.stop_running(id);
        }
        assert!(ledger.worker_is_idle(w2));
        assert!(ledger.commands_of(w2).is_empty());
    }

    #[test]
    fn ledger_epoch_and_queued_at() {
        let ledger = ShardedLedger::new(4);
        let mut c = cmd(5, "a", 1, 0);
        c.attempts = 3;
        ledger.start_running(InFlight {
            worker: WorkerId(9),
            dispatched_at: Instant::now(),
            cmd: c,
        });
        assert_eq!(ledger.running_epoch(CommandId(5)), Some(3));
        assert_eq!(ledger.running_epoch(CommandId(6)), None);

        let t = Instant::now();
        ledger.mark_queued(CommandId(8), t);
        assert_eq!(ledger.queued_len(), 1);
        assert_eq!(ledger.take_queued(CommandId(8)), Some(t));
        assert_eq!(ledger.take_queued(CommandId(8)), None);
        assert_eq!(ledger.queued_len(), 0);
    }

    /// Poison every queue shard by panicking while holding its lock,
    /// then assert dispatch keeps working: one bad command must not
    /// take down its slice of the id space.
    #[test]
    fn queue_recovers_from_poisoned_shards() {
        let q = ShardedQueue::new(4);
        q.enqueue(cmd(1, "a", 1, 5));
        for shard in &q.shards {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _guard = shard.lock().unwrap();
                panic!("executor panic while holding the shard");
            }));
            assert!(result.is_err(), "the panic itself must propagate");
        }
        // Single-shard ops and the all-shard merge both cross the
        // poisoned mutexes.
        for i in 2..=32 {
            q.enqueue(cmd(i, "a", 1, 0));
        }
        assert_eq!(q.remove(CommandId(32)).map(|c| c.id), Some(CommandId(32)));
        assert_eq!(q.snapshot_ids().len(), 31);
        let got = q.match_workload(&worker(64, &["a"]), Instant::now());
        assert_eq!(got.len(), 31, "matching must survive poisoning");
        assert_eq!(got[0].id, CommandId(1), "order preserved after recovery");
        assert!(q.is_empty());
    }

    /// Same for the ledger: poisoned running/queued-at shards and the
    /// by-worker index must all recover.
    #[test]
    fn ledger_recovers_from_poisoned_shards() {
        let ledger = ShardedLedger::new(4);
        let w = WorkerId(7);
        ledger.start_running(InFlight {
            worker: w,
            dispatched_at: Instant::now(),
            cmd: cmd(1, "a", 1, 0),
        });
        for shard in &ledger.shards {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _guard = shard.lock().unwrap();
                panic!("poison the ledger shard");
            }));
        }
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = ledger.by_worker.lock().unwrap();
            panic!("poison the worker index");
        }));
        ledger.start_running(InFlight {
            worker: w,
            dispatched_at: Instant::now(),
            cmd: cmd(2, "a", 1, 0),
        });
        assert_eq!(ledger.running_len(), 2);
        let mut of_worker = ledger.commands_of(w);
        of_worker.sort();
        assert_eq!(of_worker, vec![CommandId(1), CommandId(2)]);
        assert_eq!(ledger.running_epoch(CommandId(1)), Some(0));
        assert!(ledger.stop_running(CommandId(1)).is_some());
        assert!(ledger.stop_running(CommandId(2)).is_some());
        assert!(ledger.worker_is_idle(w));
        ledger.mark_queued(CommandId(3), Instant::now());
        assert!(ledger.take_queued(CommandId(3)).is_some());
    }
}
