//! Convenience runtime: wire a project server and a pool of workers
//! together with in-process channels and run a project to completion.
//!
//! This is the single-machine analogue of submitting workers to a batch
//! queue and starting a project server on a head node; the message
//! protocol is identical to the networked case (see `messages`).

use crate::controller::Controller;
use crate::executor::ExecutorRegistry;
use crate::fs::SharedFs;
use crate::ids::{IdGen, ProjectId, WorkerId};
use crate::monitor::Monitor;
use crate::server::{ProjectResult, Server, ServerConfig};
use crate::transport;
use crate::worker::{spawn_worker, WorkerConfig, WorkerHandle};
use copernicus_telemetry::Telemetry;
use std::thread::JoinHandle;
use std::time::Duration;

/// Overlay (server↔server) tuning, used when `ServerConfig::peers` is
/// non-empty. See [`crate::peer`].
#[derive(Debug, Clone)]
pub struct OverlayConfig {
    /// How long a freshly dialed peer link waits for the remote hello
    /// before proceeding without its identity.
    pub hello_timeout: Duration,
    /// How long the router waits for one upstream's verdict on a work
    /// offer before offering the worker elsewhere.
    pub offer_patience: Duration,
}

impl Default for OverlayConfig {
    fn default() -> Self {
        OverlayConfig {
            hello_timeout: Duration::from_secs(2),
            offer_patience: Duration::from_secs(5),
        }
    }
}

/// Runtime configuration.
#[derive(Clone)]
pub struct RuntimeConfig {
    pub n_workers: usize,
    pub worker: WorkerConfig,
    pub server: ServerConfig,
    pub overlay: OverlayConfig,
    /// One telemetry handle shared by the server (dispatch metrics,
    /// journal) and every worker (command wall time, MD step timings).
    pub telemetry: Option<Telemetry>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            n_workers: 4,
            worker: WorkerConfig::default(),
            server: ServerConfig::default(),
            overlay: OverlayConfig::default(),
            telemetry: None,
        }
    }
}

/// A project in flight.
pub struct RunningProject {
    pub monitor: Monitor,
    pub shared_fs: SharedFs,
    server_thread: JoinHandle<ProjectResult>,
    workers: Vec<WorkerHandle>,
}

impl RunningProject {
    /// Block until the controller finishes the project.
    pub fn join(self) -> ProjectResult {
        let result = self
            .server_thread
            .join()
            .expect("server thread must not panic");
        for w in self.workers {
            w.join();
        }
        result
    }
}

/// Start a project with `config.n_workers` identical workers.
pub fn start_project(
    controller: Box<dyn Controller>,
    registry: ExecutorRegistry,
    config: RuntimeConfig,
) -> RunningProject {
    let (hub, server_transport) = transport::channel();
    let shared_fs = config.worker.shared_fs.clone().unwrap_or_default();
    let monitor = config
        .telemetry
        .clone()
        .map(Monitor::with_telemetry)
        .unwrap_or_default();
    let server = Server::new(
        ProjectId(0),
        controller,
        config.server,
        shared_fs.clone(),
        monitor.clone(),
        Box::new(server_transport),
    );
    let server_thread = std::thread::spawn(move || server.run());

    let ids = IdGen::new();
    let workers: Vec<WorkerHandle> = (0..config.n_workers)
        .map(|_| {
            let mut wc = config.worker.clone();
            // Every worker shares the same filesystem view as the server,
            // and the same telemetry registry/journal.
            wc.shared_fs = Some(shared_fs.clone());
            wc.telemetry = config.telemetry.clone();
            let id = WorkerId(ids.next_u64());
            spawn_worker(id, wc, registry.clone(), Box::new(hub.attach(id)))
        })
        .collect();

    RunningProject {
        monitor,
        shared_fs,
        server_thread,
        workers,
    }
}

/// Run a project to completion and return its result.
pub fn run_project(
    controller: Box<dyn Controller>,
    registry: ExecutorRegistry,
    config: RuntimeConfig,
) -> ProjectResult {
    start_project(controller, registry, config).join()
}
