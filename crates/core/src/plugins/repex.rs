//! The replica-exchange (parallel tempering) controller plugin.
//!
//! ROADMAP item 4(a): the paper claims the architecture hosts *any*
//! ensemble workload expressible as commands over the adaptive loop, and
//! replica exchange is the workload that actually stresses the
//! scheduler — N temperature replicas that must rendezvous at exchange
//! points, unlike the embarrassingly-parallel MSM/FEP shapes.
//!
//! N replicas run a geometric temperature ladder. Each replica advances
//! in *legs* of `steps_per_leg` MD steps; at the end of a leg the worker
//! reports the final potential energy, and neighboring ladder slots
//! attempt a Metropolis exchange: accept with probability
//! `min(1, exp((β_lo − β_hi)(E_lo − E_hi)))`, in which case the two
//! slots swap configurations (equivalently, the walkers swap
//! temperatures). Neighbor pairing alternates by leg parity — even legs
//! pair (0,1)(2,3)…, odd legs pair (1,2)(3,4)… — so walkers can diffuse
//! the full ladder.
//!
//! Two sync-point disciplines (DESIGN.md §17):
//!
//! * [`ExchangeMode::Sync`] — a full barrier: every replica finishes leg
//!   k before any leg-k exchange is evaluated, then all pairs exchange
//!   and leg k+1 starts together. Simple, but laggards idle the fleet.
//! * [`ExchangeMode::Async`] (default) — a pair exchanges as soon as
//!   *both* partners have reported leg k; unpaired slots (ladder edges,
//!   or slots whose partner already moved on) advance solo. Mirrors the
//!   streaming-loop philosophy: the fleet never drains on a barrier.
//!
//! Every decision draw is keyed by `(seed, leg, low slot)` — never by an
//! arrival-order counter — so the exchange history is identical under
//! sync and WAL-replayed event orders. Dropped replicas (attempt budget
//! exhausted) permanently leave the ladder; pairing is recomputed over
//! the survivors, so the ladder degrades to N−1 with neighbors re-linked
//! rather than deadlocking a waiting partner.

use crate::command::CommandSpec;
use crate::controller::{Action, Controller, ControllerCtx, ControllerEvent};
use crate::executor::{MdRunExecutor, MdRunOutput, MdRunSpec};
use crate::resources::Resources;
use copernicus_telemetry::{names, Event, Labels};
use mdsim::jsonv;
use mdsim::model::villin::VillinModel;
use mdsim::rng::splitmix64;
use mdsim::vec3::Vec3;
use serde::{Deserialize, Serialize};
use serde_json::{json, Value};
use std::sync::Arc;

/// How exchange sync points are scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExchangeMode {
    /// Full barrier: all replicas reach leg k before any leg-k exchange.
    Sync,
    /// A pair exchanges as soon as both partners report; edges and
    /// orphaned slots advance solo.
    Async,
}

impl ExchangeMode {
    pub fn as_str(self) -> &'static str {
        match self {
            ExchangeMode::Sync => "sync",
            ExchangeMode::Async => "async",
        }
    }

    pub fn from_str(s: &str) -> Result<ExchangeMode, String> {
        match s {
            "sync" => Ok(ExchangeMode::Sync),
            "async" => Ok(ExchangeMode::Async),
            other => Err(format!("unknown exchange mode {other:?}")),
        }
    }
}

/// Configuration of a replica-exchange project.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RepexProjectConfig {
    /// Ladder size N.
    pub n_replicas: usize,
    /// Coldest ladder temperature (slot 0).
    pub t_min: f64,
    /// Hottest ladder temperature (slot N−1).
    pub t_max: f64,
    /// Exchange legs each replica runs.
    pub n_legs: u64,
    /// MD steps per leg (the sync-point spacing).
    pub steps_per_leg: u64,
    /// Checkpoint interval inside a leg (0 = no mid-leg checkpoints).
    pub checkpoint_steps: u64,
    pub mode: ExchangeMode,
    pub seed: u64,
}

impl Default for RepexProjectConfig {
    fn default() -> Self {
        RepexProjectConfig {
            n_replicas: 6,
            t_min: 0.5,
            t_max: 0.8,
            n_legs: 40,
            steps_per_leg: 400,
            checkpoint_steps: 0,
            mode: ExchangeMode::Async,
            seed: 1997,
        }
    }
}

impl RepexProjectConfig {
    /// Parse from a JSON config document; missing fields keep defaults.
    pub fn from_value(v: &Value) -> Result<RepexProjectConfig, String> {
        let d = RepexProjectConfig::default();
        let cfg = RepexProjectConfig {
            n_replicas: jsonv::opt_int(v, "n_replicas").map_or(d.n_replicas, |n| n as usize),
            t_min: jsonv::opt_num(v, "t_min").unwrap_or(d.t_min),
            t_max: jsonv::opt_num(v, "t_max").unwrap_or(d.t_max),
            n_legs: jsonv::opt_int(v, "n_legs").unwrap_or(d.n_legs),
            steps_per_leg: jsonv::opt_int(v, "steps_per_leg").unwrap_or(d.steps_per_leg),
            checkpoint_steps: jsonv::opt_int(v, "checkpoint_steps").unwrap_or(d.checkpoint_steps),
            mode: match v.get("mode").and_then(Value::as_str) {
                Some(s) => ExchangeMode::from_str(s)?,
                None => d.mode,
            },
            seed: jsonv::opt_int(v, "seed").unwrap_or(d.seed),
        };
        if cfg.n_replicas == 0 {
            return Err("n_replicas must be >= 1".into());
        }
        if !(cfg.t_min > 0.0 && cfg.t_max >= cfg.t_min) {
            return Err("need 0 < t_min <= t_max".into());
        }
        if cfg.steps_per_leg == 0 {
            return Err("steps_per_leg must be >= 1".into());
        }
        Ok(cfg)
    }

    pub fn to_value(&self) -> Value {
        json!({
            "n_replicas": self.n_replicas as u64,
            "t_min": self.t_min,
            "t_max": self.t_max,
            "n_legs": self.n_legs,
            "steps_per_leg": self.steps_per_leg,
            "checkpoint_steps": self.checkpoint_steps,
            "mode": self.mode.as_str(),
            "seed": self.seed,
        })
    }

    /// The geometric temperature ladder: constant ratio between
    /// neighbors, so exchange probabilities are comparable along it.
    pub fn ladder(&self) -> Vec<f64> {
        let n = self.n_replicas;
        if n == 1 {
            return vec![self.t_min];
        }
        let ratio = self.t_max / self.t_min;
        (0..n)
            .map(|i| self.t_min * ratio.powf(i as f64 / (n - 1) as f64))
            .collect()
    }
}

/// One Metropolis exchange attempt, as recorded in the project report
/// and the exchange-history artifact. Walker ids are the *pre-swap*
/// occupants of the two slots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExchangeRecord {
    pub leg: u64,
    pub slot_lo: usize,
    pub slot_hi: usize,
    pub walker_lo: u64,
    pub walker_hi: u64,
    pub e_lo: f64,
    pub e_hi: f64,
    /// `min(1, exp(Δβ·ΔE))` — the analytic acceptance probability.
    pub prob: f64,
    /// The uniform deviate the decision consumed.
    pub draw: f64,
    pub accepted: bool,
}

impl ExchangeRecord {
    pub fn to_value(&self) -> Value {
        json!({
            "leg": self.leg,
            "slot_lo": self.slot_lo as u64,
            "slot_hi": self.slot_hi as u64,
            "walker_lo": self.walker_lo,
            "walker_hi": self.walker_hi,
            "e_lo": self.e_lo,
            "e_hi": self.e_hi,
            "prob": self.prob,
            "draw": self.draw,
            "accepted": self.accepted,
        })
    }

    pub fn from_value(v: &Value) -> Result<ExchangeRecord, String> {
        Ok(ExchangeRecord {
            leg: jsonv::int(v, "leg")?,
            slot_lo: jsonv::int(v, "slot_lo")? as usize,
            slot_hi: jsonv::int(v, "slot_hi")? as usize,
            walker_lo: jsonv::int(v, "walker_lo")?,
            walker_hi: jsonv::int(v, "walker_hi")?,
            e_lo: jsonv::num(v, "e_lo")?,
            e_hi: jsonv::num(v, "e_hi")?,
            prob: jsonv::num(v, "prob")?,
            draw: jsonv::num(v, "draw")?,
            accepted: jsonv::boolean(v, "accepted")?,
        })
    }
}

/// Final report of a replica-exchange project.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RepexProjectReport {
    pub n_replicas: usize,
    /// Replicas still on the ladder at the end.
    pub n_alive: usize,
    pub n_legs: u64,
    pub mode: String,
    pub ladder: Vec<f64>,
    pub attempts: u64,
    pub accepts: u64,
    /// Empirical acceptance fraction.
    pub acceptance_rate: f64,
    /// Mean analytic `min(1, exp(Δβ·ΔE))` over the same attempts — the
    /// Metropolis expectation the empirical rate must track.
    pub expected_acceptance: f64,
    /// Walkers that completed bottom → top → bottom ladder traversals.
    pub round_trips: u64,
    /// Final walker occupying each slot (dead slots keep their last
    /// occupant).
    pub walkers: Vec<u64>,
    /// Ladder slots dropped after their command exhausted its budget.
    pub dead_slots: Vec<usize>,
    pub history: Vec<ExchangeRecord>,
}

impl RepexProjectReport {
    pub fn to_value(&self) -> Value {
        json!({
            "n_replicas": self.n_replicas as u64,
            "n_alive": self.n_alive as u64,
            "n_legs": self.n_legs,
            "mode": self.mode.clone(),
            "ladder": jsonv::f64s_to_value(&self.ladder),
            "attempts": self.attempts,
            "accepts": self.accepts,
            "acceptance_rate": self.acceptance_rate,
            "expected_acceptance": self.expected_acceptance,
            "round_trips": self.round_trips,
            "walkers": Value::from(self.walkers.clone()),
            "dead_slots": jsonv::usizes_to_value(&self.dead_slots),
            "history": Value::from(
                self.history.iter().map(|r| r.to_value()).collect::<Vec<_>>()
            ),
        })
    }

    pub fn from_value(v: &Value) -> Result<RepexProjectReport, String> {
        Ok(RepexProjectReport {
            n_replicas: jsonv::int(v, "n_replicas")? as usize,
            n_alive: jsonv::int(v, "n_alive")? as usize,
            n_legs: jsonv::int(v, "n_legs")?,
            mode: jsonv::field(v, "mode")?
                .as_str()
                .ok_or("mode is not a string")?
                .to_string(),
            ladder: jsonv::f64s_from_value(jsonv::field(v, "ladder")?)?,
            attempts: jsonv::int(v, "attempts")?,
            accepts: jsonv::int(v, "accepts")?,
            acceptance_rate: jsonv::num(v, "acceptance_rate")?,
            expected_acceptance: jsonv::num(v, "expected_acceptance")?,
            round_trips: jsonv::int(v, "round_trips")?,
            walkers: jsonv::field(v, "walkers")?
                .as_array()
                .ok_or("walkers is not an array")?
                .iter()
                .map(|x| x.as_u64().ok_or_else(|| "walker is not a u64".to_string()))
                .collect::<Result<Vec<_>, _>>()?,
            dead_slots: jsonv::usizes_from_value(jsonv::field(v, "dead_slots")?)?,
            history: jsonv::field(v, "history")?
                .as_array()
                .ok_or("history is not an array")?
                .iter()
                .map(ExchangeRecord::from_value)
                .collect::<Result<Vec<_>, _>>()?,
        })
    }
}

/// Round-trip tracker states (per walker).
const RT_FRESH: u64 = 0;
const RT_AT_BOTTOM: u64 = 1;
const RT_SEEN_TOP: u64 = 2;

/// One ladder slot: a fixed temperature, occupied by a walker.
#[derive(Debug, Clone, PartialEq)]
struct Slot {
    /// Walker (replica identity) currently at this temperature.
    walker: u64,
    /// Configuration at the end of the last finished leg.
    positions: Vec<Vec3>,
    /// Legs fully resolved (finished + exchanged) for this slot.
    leg: u64,
    /// Final potential of leg `leg`, reported but not yet resolved.
    pending: Option<f64>,
    /// A leg command is out on the fleet.
    in_flight: bool,
    /// Still on the ladder (false once the attempt budget is exhausted).
    alive: bool,
    /// Completed all `n_legs`.
    done: bool,
}

fn slot_to_value(s: &Slot) -> Value {
    json!({
        "walker": s.walker,
        "positions": jsonv::frame_to_value(&s.positions),
        "leg": s.leg,
        "pending": s.pending,
        "in_flight": s.in_flight,
        "alive": s.alive,
        "done": s.done,
    })
}

fn slot_from_value(v: &Value) -> Result<Slot, String> {
    Ok(Slot {
        walker: jsonv::int(v, "walker")?,
        positions: jsonv::frame_from_value(jsonv::field(v, "positions")?)?,
        leg: jsonv::int(v, "leg")?,
        pending: jsonv::opt_num(v, "pending"),
        in_flight: jsonv::boolean(v, "in_flight")?,
        alive: jsonv::boolean(v, "alive")?,
        done: jsonv::boolean(v, "done")?,
    })
}

/// The replica-exchange controller.
pub struct RepexController {
    config: RepexProjectConfig,
    model: Arc<VillinModel>,
    ladder: Vec<f64>,
    slots: Vec<Slot>,
    history: Vec<ExchangeRecord>,
    round_trips: u64,
    /// Per-walker round-trip state machine (`RT_*`).
    walker_rt: Vec<u64>,
    finished: bool,
}

impl RepexController {
    pub fn new(config: RepexProjectConfig) -> Self {
        let ladder = config.ladder();
        let n = config.n_replicas;
        RepexController {
            config,
            model: Arc::new(VillinModel::hp35()),
            ladder,
            slots: Vec::with_capacity(n),
            history: Vec::new(),
            round_trips: 0,
            walker_rt: vec![RT_FRESH; n],
            finished: false,
        }
    }

    /// The Gō model behind the leg commands, for harnesses that wire up
    /// an `MdRunExecutor` directly.
    pub fn model(&self) -> Arc<VillinModel> {
        self.model.clone()
    }

    /// Exchange history so far (for tests and the CI artifact).
    pub fn history(&self) -> &[ExchangeRecord] {
        &self.history
    }

    /// Deterministic uniform deviate for the exchange decision at
    /// `(leg, lo)`. Keyed by position in the exchange schedule — never
    /// by arrival order — so async completion order and WAL replay
    /// cannot change the draw.
    fn decision_draw(&self, ctx_seed: u64, leg: u64, lo: usize) -> f64 {
        let x = splitmix64(
            splitmix64(self.config.seed ^ ctx_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                ^ leg.wrapping_mul(0x0000_0100_0000_01B3)
                ^ (lo as u64),
        );
        (x >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The command seed for a walker's leg. Keyed by walker (not slot),
    /// so a walker's dynamics stream follows it across exchanges.
    fn leg_seed(&self, walker: u64, leg: u64) -> u64 {
        splitmix64(splitmix64(self.config.seed ^ (walker << 20)) ^ leg)
    }

    fn leg_command(&self, slot: usize) -> CommandSpec {
        let s = &self.slots[slot];
        let spec = MdRunSpec {
            start_positions: s.positions.clone(),
            temperature: self.ladder[slot],
            n_steps: self.config.steps_per_leg,
            record_interval: self.config.steps_per_leg,
            seed: self.leg_seed(s.walker, s.leg),
            checkpoint_steps: self.config.checkpoint_steps,
            inject_crash_at_step: None,
            tag: json!({
                "kind": "repex-leg",
                "slot": slot as u64,
                "walker": s.walker,
                "leg": s.leg,
            }),
            kernel: None,
        };
        CommandSpec::new(
            MdRunExecutor::COMMAND_TYPE,
            Resources::new(1, 64),
            spec.to_value(),
        )
    }

    /// Alive slot indices in ladder order.
    fn alive_slots(&self) -> Vec<usize> {
        (0..self.slots.len())
            .filter(|&i| self.slots[i].alive)
            .collect()
    }

    /// The exchange partner of `slot` at leg parity `leg % 2`, under
    /// alternating neighbor pairing over the *alive* ladder: even legs
    /// pair alive-neighbors (0,1)(2,3)…, odd legs (1,2)(3,4)….
    fn partner_of(&self, slot: usize, leg: u64) -> Option<usize> {
        let alive = self.alive_slots();
        let pos = alive.iter().position(|&i| i == slot)?;
        let offset = (leg % 2) as usize;
        let pair_start = if pos >= offset { (pos - offset) / 2 * 2 + offset } else { return None };
        if pair_start + 1 >= alive.len() {
            return None;
        }
        if pos == pair_start {
            Some(alive[pair_start + 1])
        } else if pos == pair_start + 1 {
            Some(alive[pair_start])
        } else {
            None
        }
    }

    /// Advance a slot past its resolved leg: bump the counter and either
    /// mark it done or emit its next leg command.
    fn advance(&mut self, slot: usize, specs: &mut Vec<CommandSpec>) {
        let s = &mut self.slots[slot];
        s.pending = None;
        s.leg += 1;
        if s.leg >= self.config.n_legs {
            s.done = true;
        } else {
            s.in_flight = true;
            specs.push(self.leg_command(slot));
        }
    }

    /// Evaluate the Metropolis exchange for alive pair `(lo, hi)`, both
    /// of which have pending energies at `leg`. Accepts swap the walkers
    /// (configuration + identity) between the two temperature slots.
    fn exchange(&mut self, ctx: &ControllerCtx<'_>, lo: usize, hi: usize, leg: u64) {
        let e_lo = self.slots[lo].pending.expect("lo pending");
        let e_hi = self.slots[hi].pending.expect("hi pending");
        let beta_lo = 1.0 / self.ladder[lo];
        let beta_hi = 1.0 / self.ladder[hi];
        let prob = ((beta_lo - beta_hi) * (e_lo - e_hi)).exp().min(1.0);
        let draw = self.decision_draw(ctx.seed, leg, lo);
        let accepted = draw < prob;
        self.history.push(ExchangeRecord {
            leg,
            slot_lo: lo,
            slot_hi: hi,
            walker_lo: self.slots[lo].walker,
            walker_hi: self.slots[hi].walker,
            e_lo,
            e_hi,
            prob,
            draw,
            accepted,
        });
        if let Some(t) = ctx.telemetry {
            t.registry()
                .counter(names::REPEX_EXCHANGE_ATTEMPTS, Labels::new())
                .inc();
            if accepted {
                t.registry()
                    .counter(names::REPEX_EXCHANGE_ACCEPTS, Labels::new())
                    .inc();
            }
            t.journal().record(Event::ReplicaExchange {
                leg,
                slot_lo: lo as u64,
                slot_hi: hi as u64,
                prob,
                accepted,
            });
        }
        if accepted {
            let (wl, wh) = (self.slots[lo].walker, self.slots[hi].walker);
            self.slots[lo].walker = wh;
            self.slots[hi].walker = wl;
            let pl = std::mem::take(&mut self.slots[lo].positions);
            let ph = std::mem::replace(&mut self.slots[hi].positions, pl);
            self.slots[lo].positions = ph;
        }
    }

    /// Update the per-walker round-trip state machine from the current
    /// occupants of the ladder extremes.
    fn track_round_trips(&mut self, ctx: &ControllerCtx<'_>) {
        let alive = self.alive_slots();
        let (Some(&bottom), Some(&top)) = (alive.first(), alive.last()) else {
            return;
        };
        if bottom == top {
            return;
        }
        let wt = self.slots[top].walker as usize;
        if self.walker_rt[wt] == RT_AT_BOTTOM {
            self.walker_rt[wt] = RT_SEEN_TOP;
        }
        let wb = self.slots[bottom].walker as usize;
        if self.walker_rt[wb] == RT_SEEN_TOP {
            self.round_trips += 1;
            if let Some(t) = ctx.telemetry {
                t.registry()
                    .counter(names::REPEX_ROUND_TRIPS, Labels::new())
                    .inc();
            }
        }
        self.walker_rt[wb] = RT_AT_BOTTOM;
    }

    /// Resolve every sync point that can currently make progress. Runs
    /// until a fixed point: pair exchanges release partners, which may
    /// enable further exchanges in the same pass (sync barriers resolve
    /// a whole leg at once this way).
    fn resolve(&mut self, ctx: &ControllerCtx<'_>, specs: &mut Vec<CommandSpec>) {
        loop {
            let mut progressed = false;
            for i in 0..self.slots.len() {
                let s = &self.slots[i];
                if !s.alive || s.done || s.in_flight || s.pending.is_none() {
                    continue;
                }
                let leg = s.leg;
                if self.config.mode == ExchangeMode::Sync {
                    // Barrier: every alive, unfinished slot must have
                    // *reached* the sync point — reported leg `leg`, or
                    // already resolved past it earlier in this pass.
                    let barrier_ready = self.slots.iter().all(|o| {
                        !o.alive || o.done || o.leg > leg || (o.leg == leg && o.pending.is_some())
                    });
                    if !barrier_ready {
                        continue;
                    }
                }
                match self.partner_of(i, leg) {
                    None => {
                        // Ladder edge at this parity: advance solo.
                        self.advance(i, specs);
                        progressed = true;
                    }
                    Some(p) => {
                        let partner = &self.slots[p];
                        if partner.leg > leg || partner.done {
                            // Partner already resolved past this sync
                            // point (pairing shifted after a drop):
                            // advancing solo is the only way forward.
                            self.advance(i, specs);
                            progressed = true;
                        } else if partner.leg == leg && partner.pending.is_some() {
                            let (lo, hi) = if i < p { (i, p) } else { (p, i) };
                            self.exchange(ctx, lo, hi, leg);
                            self.advance(lo, specs);
                            self.advance(hi, specs);
                            self.track_round_trips(ctx);
                            progressed = true;
                        }
                        // else: partner still working toward this leg —
                        // hold the sync point.
                    }
                }
            }
            if !progressed {
                return;
            }
        }
    }

    fn all_done(&self) -> bool {
        self.slots.iter().all(|s| !s.alive || s.done)
    }

    fn report(&self) -> RepexProjectReport {
        let attempts = self.history.len() as u64;
        let accepts = self.history.iter().filter(|r| r.accepted).count() as u64;
        let expected = if self.history.is_empty() {
            0.0
        } else {
            self.history.iter().map(|r| r.prob).sum::<f64>() / self.history.len() as f64
        };
        RepexProjectReport {
            n_replicas: self.config.n_replicas,
            n_alive: self.slots.iter().filter(|s| s.alive).count(),
            n_legs: self.config.n_legs,
            mode: self.config.mode.as_str().to_string(),
            ladder: self.ladder.clone(),
            attempts,
            accepts,
            acceptance_rate: if attempts == 0 {
                0.0
            } else {
                accepts as f64 / attempts as f64
            },
            expected_acceptance: expected,
            round_trips: self.round_trips,
            walkers: self.slots.iter().map(|s| s.walker).collect(),
            dead_slots: (0..self.slots.len())
                .filter(|&i| !self.slots[i].alive)
                .collect(),
            history: self.history.clone(),
        }
    }

    /// Finish when every surviving replica has run its ladder; also the
    /// degenerate all-replicas-dead case, so the project cannot hang.
    fn maybe_finish(&mut self, actions: &mut Vec<Action>) {
        if self.finished || !self.all_done() {
            return;
        }
        self.finished = true;
        let report = self.report();
        actions.push(Action::Log(format!(
            "repex done: {}/{} replicas, {} attempts, acceptance {:.3} (expected {:.3}), {} round trips",
            report.n_alive,
            report.n_replicas,
            report.attempts,
            report.acceptance_rate,
            report.expected_acceptance,
            report.round_trips,
        )));
        actions.push(Action::FinishProject {
            result: report.to_value(),
        });
    }
}

impl Controller for RepexController {
    fn name(&self) -> &str {
        "repex"
    }

    fn on_event(&mut self, ctx: ControllerCtx<'_>, event: ControllerEvent<'_>) -> Vec<Action> {
        match event {
            ControllerEvent::ProjectStarted => {
                self.slots = (0..self.config.n_replicas)
                    .map(|w| Slot {
                        walker: w as u64,
                        positions: self
                            .model
                            .unfolded_start(splitmix64(self.config.seed ^ (w as u64) << 40)),
                        leg: 0,
                        pending: None,
                        in_flight: true,
                        alive: true,
                        done: false,
                    })
                    .collect();
                self.track_round_trips(&ctx);
                let specs: Vec<CommandSpec> =
                    (0..self.slots.len()).map(|i| self.leg_command(i)).collect();
                vec![
                    Action::Log(format!(
                        "repex: {} replicas over T=[{:.3}, {:.3}], {} legs of {} steps, {} mode",
                        self.config.n_replicas,
                        self.config.t_min,
                        self.config.t_max,
                        self.config.n_legs,
                        self.config.steps_per_leg,
                        self.config.mode.as_str(),
                    )),
                    Action::Spawn(specs),
                ]
            }
            ControllerEvent::CommandFinished(output) => {
                let parsed = match MdRunOutput::from_value(&output.data) {
                    Ok(p) => p,
                    Err(e) => return vec![Action::Log(format!("bad repex leg output: {e}"))],
                };
                let slot = parsed.tag["slot"].as_u64().unwrap_or(u64::MAX) as usize;
                let leg = parsed.tag["leg"].as_u64().unwrap_or(u64::MAX);
                if slot >= self.slots.len() || !self.slots[slot].alive || self.slots[slot].leg != leg
                {
                    return vec![Action::Log(format!(
                        "stale repex leg result (slot {slot}, leg {leg}) ignored"
                    ))];
                }
                let Some(energy) = parsed.final_potential else {
                    return vec![Action::Log(format!(
                        "repex leg for slot {slot} reported no energy; dropping replica"
                    ))];
                };
                let s = &mut self.slots[slot];
                s.positions = parsed.final_positions;
                s.pending = Some(energy);
                s.in_flight = false;
                let mut specs = Vec::new();
                self.resolve(&ctx, &mut specs);
                let mut actions = Vec::new();
                if !specs.is_empty() {
                    actions.push(Action::Spawn(specs));
                }
                self.maybe_finish(&mut actions);
                actions
            }
            ControllerEvent::WorkerFailed { worker, requeued } => vec![Action::Log(format!(
                "worker {worker} lost; requeued: {requeued:?}"
            ))],
            ControllerEvent::CommandDropped {
                command,
                attempts,
                reason,
                tag,
            } => {
                let slot = tag["slot"].as_u64().unwrap_or(u64::MAX) as usize;
                let mut actions = vec![Action::Log(format!(
                    "{command} (replica slot {slot}) dropped after {attempts} attempts \
                     ({reason:?}); ladder degrades"
                ))];
                if slot < self.slots.len() && self.slots[slot].alive {
                    let leg = self.slots[slot].leg;
                    self.slots[slot].alive = false;
                    self.slots[slot].in_flight = false;
                    self.slots[slot].pending = None;
                    if let Some(t) = ctx.telemetry {
                        t.registry()
                            .counter(names::REPEX_REPLICAS_DROPPED, Labels::new())
                            .inc();
                        t.journal().record(Event::ReplicaDropped {
                            slot: slot as u64,
                            leg,
                        });
                    }
                    // Pairing shifts over the survivors: anything held
                    // at a sync point by the dead slot resolves now.
                    let mut specs = Vec::new();
                    self.resolve(&ctx, &mut specs);
                    if !specs.is_empty() {
                        actions.push(Action::Spawn(specs));
                    }
                }
                self.maybe_finish(&mut actions);
                actions
            }
        }
    }

    /// Decision state for the write-ahead log. Bounded: current
    /// configurations (not trajectories) plus the exchange history, so
    /// snapshot size is O(N·beads + attempts) — see the snapshot-size
    /// regression test in `tests/repex.rs`.
    fn snapshot(&self) -> Option<Value> {
        Some(json!({
            "config": self.config.to_value(),
            "slots": Value::from(self.slots.iter().map(slot_to_value).collect::<Vec<_>>()),
            "history": Value::from(
                self.history.iter().map(|r| r.to_value()).collect::<Vec<_>>()
            ),
            "round_trips": self.round_trips,
            "walker_rt": Value::from(self.walker_rt.clone()),
            "finished": self.finished,
        }))
    }

    fn restore(&mut self, snapshot: Value) -> bool {
        fn parse(c: &mut RepexController, v: &Value) -> Result<(), String> {
            c.config = RepexProjectConfig::from_value(jsonv::field(v, "config")?)?;
            c.ladder = c.config.ladder();
            c.slots = jsonv::field(v, "slots")?
                .as_array()
                .ok_or("slots is not an array")?
                .iter()
                .map(slot_from_value)
                .collect::<Result<Vec<_>, _>>()?;
            c.history = jsonv::field(v, "history")?
                .as_array()
                .ok_or("history is not an array")?
                .iter()
                .map(ExchangeRecord::from_value)
                .collect::<Result<Vec<_>, _>>()?;
            c.round_trips = jsonv::int(v, "round_trips")?;
            c.walker_rt = jsonv::field(v, "walker_rt")?
                .as_array()
                .ok_or("walker_rt is not an array")?
                .iter()
                .map(|x| x.as_u64().ok_or_else(|| "walker_rt entry".to_string()))
                .collect::<Result<Vec<_>, _>>()?;
            c.finished = jsonv::boolean(v, "finished")?;
            Ok(())
        }
        parse(self, &snapshot).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{Command, CommandOutput};
    use crate::ids::{CommandId, ProjectId, WorkerId};

    #[test]
    fn ladder_is_geometric() {
        let cfg = RepexProjectConfig {
            n_replicas: 6,
            t_min: 0.5,
            t_max: 0.8,
            ..RepexProjectConfig::default()
        };
        let l = cfg.ladder();
        assert_eq!(l.len(), 6);
        assert!((l[0] - 0.5).abs() < 1e-12);
        assert!((l[5] - 0.8).abs() < 1e-12);
        let r0 = l[1] / l[0];
        for w in l.windows(2) {
            assert!((w[1] / w[0] - r0).abs() < 1e-12);
        }
    }

    #[test]
    fn config_from_value_fills_defaults_and_rejects_nonsense() {
        let cfg =
            RepexProjectConfig::from_value(&json!({"n_replicas": 4, "mode": "sync"})).unwrap();
        assert_eq!(cfg.n_replicas, 4);
        assert_eq!(cfg.mode, ExchangeMode::Sync);
        assert_eq!(cfg.n_legs, RepexProjectConfig::default().n_legs);
        assert!(RepexProjectConfig::from_value(&json!({"mode": "diagonal"})).is_err());
        assert!(RepexProjectConfig::from_value(&json!({"n_replicas": 0})).is_err());
        assert!(RepexProjectConfig::from_value(&json!({"t_min": -1.0})).is_err());
    }

    #[test]
    fn pairing_alternates_and_respects_deaths() {
        let mut c = RepexController::new(RepexProjectConfig {
            n_replicas: 6,
            ..RepexProjectConfig::default()
        });
        c.on_event(ControllerCtx::test(), ControllerEvent::ProjectStarted);
        // Even legs: (0,1)(2,3)(4,5).
        assert_eq!(c.partner_of(0, 0), Some(1));
        assert_eq!(c.partner_of(3, 0), Some(2));
        assert_eq!(c.partner_of(5, 0), Some(4));
        // Odd legs: 0 and 5 sit out; (1,2)(3,4).
        assert_eq!(c.partner_of(0, 1), None);
        assert_eq!(c.partner_of(1, 1), Some(2));
        assert_eq!(c.partner_of(4, 1), Some(3));
        assert_eq!(c.partner_of(5, 1), None);
        // Kill slot 2: even pairing over [0,1,3,4,5] is (0,1)(3,4).
        c.slots[2].alive = false;
        assert_eq!(c.partner_of(0, 0), Some(1));
        assert_eq!(c.partner_of(3, 0), Some(4));
        assert_eq!(c.partner_of(5, 0), None);
    }

    #[test]
    fn decision_draw_ignores_arrival_order() {
        let c = RepexController::new(RepexProjectConfig::default());
        let a = c.decision_draw(7, 3, 2);
        let b = c.decision_draw(7, 3, 2);
        assert_eq!(a, b);
        assert_ne!(c.decision_draw(7, 3, 2), c.decision_draw(7, 4, 2));
        assert_ne!(c.decision_draw(7, 3, 2), c.decision_draw(7, 3, 0));
    }

    fn leg_output(c: &RepexController, slot: usize, energy: f64) -> CommandOutput {
        let s = &c.slots[slot];
        let out = MdRunOutput {
            trajectory: mdsim::trajectory::Trajectory::new(),
            final_positions: s.positions.clone(),
            steps_executed: c.config.steps_per_leg,
            final_potential: Some(energy),
            tag: json!({
                "kind": "repex-leg",
                "slot": slot as u64,
                "walker": s.walker,
                "leg": s.leg,
            }),
        };
        let cmd = Command::from_spec(
            CommandId(slot as u64 + 1),
            ProjectId(0),
            crate::command::CommandSpec::new(
                MdRunExecutor::COMMAND_TYPE,
                Resources::new(1, 64),
                json!({}),
            ),
        );
        CommandOutput::new(&cmd, WorkerId(1), out.to_value(), 0.1)
    }

    /// Drive the controller with synthetic energies, no MD, no server.
    fn feed(c: &mut RepexController, slot: usize, energy: f64) -> Vec<Action> {
        let out = leg_output(c, slot, energy);
        c.on_event(ControllerCtx::test(), ControllerEvent::CommandFinished(&out))
    }

    #[test]
    fn sync_mode_barriers_until_all_report() {
        let mut c = RepexController::new(RepexProjectConfig {
            n_replicas: 4,
            n_legs: 2,
            mode: ExchangeMode::Sync,
            ..RepexProjectConfig::default()
        });
        c.on_event(ControllerCtx::test(), ControllerEvent::ProjectStarted);
        for slot in 0..3 {
            let actions = feed(&mut c, slot, -10.0 - slot as f64);
            assert!(
                actions.is_empty(),
                "no exchange before the barrier: {actions:?}"
            );
            assert!(c.history.is_empty());
        }
        feed(&mut c, 3, -13.0);
        // Barrier released: leg-0 parity pairs (0,1) and (2,3).
        assert_eq!(c.history.len(), 2);
        assert!(c.slots.iter().all(|s| s.leg == 1));
    }

    #[test]
    fn async_mode_pair_exchanges_without_waiting_for_laggards() {
        let mut c = RepexController::new(RepexProjectConfig {
            n_replicas: 4,
            n_legs: 2,
            mode: ExchangeMode::Async,
            ..RepexProjectConfig::default()
        });
        c.on_event(ControllerCtx::test(), ControllerEvent::ProjectStarted);
        feed(&mut c, 0, -10.0);
        assert!(c.history.is_empty(), "0 waits for its partner 1");
        feed(&mut c, 1, -11.0);
        // (0,1) exchanged and advanced while 2 and 3 never reported.
        assert_eq!(c.history.len(), 1);
        assert_eq!(c.slots[0].leg, 1);
        assert_eq!(c.slots[1].leg, 1);
        assert_eq!(c.slots[2].leg, 0);
        assert_eq!(c.slots[3].leg, 0);
    }

    #[test]
    fn dropped_replica_releases_waiting_partner_and_ladder_degrades() {
        let mut c = RepexController::new(RepexProjectConfig {
            n_replicas: 4,
            n_legs: 1,
            mode: ExchangeMode::Async,
            ..RepexProjectConfig::default()
        });
        c.on_event(ControllerCtx::test(), ControllerEvent::ProjectStarted);
        feed(&mut c, 0, -10.0);
        assert_eq!(c.slots[0].leg, 0, "waiting on slot 1");
        let actions = c.on_event(
            ControllerCtx::test(),
            ControllerEvent::CommandDropped {
                command: CommandId(99),
                attempts: 3,
                reason: crate::controller::DropReason::WorkerLost,
                tag: json!({"kind": "repex-leg", "slot": 1, "walker": 1, "leg": 0}),
            },
        );
        assert!(!c.slots[1].alive);
        // Slot 0's partner over the survivors at parity 0 is now slot 2,
        // which never reported — but slot 0 must not deadlock: with
        // n_legs=1 it advances when 2 and 3 resolve.
        feed(&mut c, 2, -12.0);
        feed(&mut c, 3, -13.0);
        assert!(c.finished, "project finishes on the degraded ladder");
        let report = c.report();
        assert_eq!(report.n_alive, 3);
        assert_eq!(report.dead_slots, vec![1]);
        drop(actions);
    }

    #[test]
    fn accepted_exchange_swaps_walkers_and_keeps_permutation() {
        let mut c = RepexController::new(RepexProjectConfig {
            n_replicas: 2,
            n_legs: 1,
            t_min: 0.5,
            t_max: 0.8,
            mode: ExchangeMode::Sync,
            ..RepexProjectConfig::default()
        });
        c.on_event(ControllerCtx::test(), ControllerEvent::ProjectStarted);
        // Cold slot much hotter than hot slot: Δβ·ΔE >> 0, always accept.
        feed(&mut c, 0, 100.0);
        feed(&mut c, 1, -100.0);
        assert_eq!(c.history.len(), 1);
        assert!(c.history[0].accepted);
        assert!((c.history[0].prob - 1.0).abs() < 1e-12);
        let mut walkers: Vec<u64> = c.slots.iter().map(|s| s.walker).collect();
        assert_eq!(walkers, vec![1, 0]);
        walkers.sort_unstable();
        assert_eq!(walkers, vec![0, 1]);
    }

    #[test]
    fn snapshot_roundtrips_mid_ladder() {
        let mut c = RepexController::new(RepexProjectConfig {
            n_replicas: 4,
            n_legs: 4,
            mode: ExchangeMode::Async,
            ..RepexProjectConfig::default()
        });
        c.on_event(ControllerCtx::test(), ControllerEvent::ProjectStarted);
        feed(&mut c, 0, -10.0);
        feed(&mut c, 1, -11.0);
        feed(&mut c, 2, -9.0);
        let snap = c.snapshot().unwrap();
        let mut fresh = RepexController::new(RepexProjectConfig::default());
        assert!(fresh.restore(snap));
        assert_eq!(fresh.config.n_replicas, 4);
        assert_eq!(fresh.slots, c.slots);
        assert_eq!(fresh.history, c.history);
        assert_eq!(fresh.round_trips, c.round_trips);
        assert_eq!(fresh.walker_rt, c.walker_rt);
    }

    #[test]
    fn report_value_roundtrips() {
        let mut c = RepexController::new(RepexProjectConfig {
            n_replicas: 2,
            n_legs: 1,
            mode: ExchangeMode::Sync,
            ..RepexProjectConfig::default()
        });
        c.on_event(ControllerCtx::test(), ControllerEvent::ProjectStarted);
        feed(&mut c, 0, 5.0);
        feed(&mut c, 1, -5.0);
        let r = c.report();
        let back = RepexProjectReport::from_value(&r.to_value()).unwrap();
        assert_eq!(back.attempts, r.attempts);
        assert_eq!(back.walkers, r.walkers);
        assert_eq!(back.history, r.history);
        assert_eq!(back.mode, "sync");
    }
}
