//! The BAR free-energy controller plugin (§5: "Copernicus comes with
//! plugins to run Markov-State-Model-driven sampling and Bennett
//! Acceptance Ratio free energy perturbation calculations").
//!
//! The perturbation is stratified into λ-windows (Fig. 1's `lambda0`,
//! `lambda1`, … commands); each window boundary spawns one forward and
//! one reverse sampling command, and when all samples are in, the
//! stratified BAR estimate is the project result.

use crate::command::CommandSpec;
use crate::controller::{Action, Controller, ControllerCtx, ControllerEvent};
use crate::executor::{FepSampleExecutor, FepSampleOutput, FepSampleSpec};
use crate::resources::Resources;
use fep::{stratified_bar, WindowSamples};
use mdsim::jsonv;
use serde::{Deserialize, Serialize};
use serde_json::{json, Value};

/// Configuration of a BAR project: perturb a harmonic spring constant
/// `k_a → k_b` at the given temperature through `n_windows` windows.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FepProjectConfig {
    pub k_a: f64,
    pub k_b: f64,
    pub temperature: f64,
    pub n_windows: usize,
    pub equil_steps: u64,
    pub n_steps: u64,
    pub record_interval: u64,
    pub seed: u64,
}

impl Default for FepProjectConfig {
    fn default() -> Self {
        FepProjectConfig {
            k_a: 1.0,
            k_b: 16.0,
            temperature: 1.0,
            n_windows: 4,
            equil_steps: 1_000,
            n_steps: 60_000,
            record_interval: 50,
            seed: 7,
        }
    }
}

impl FepProjectConfig {
    /// Parse from a JSON config document; missing fields keep defaults.
    pub fn from_value(v: &Value) -> Result<FepProjectConfig, String> {
        let d = FepProjectConfig::default();
        Ok(FepProjectConfig {
            k_a: jsonv::opt_num(v, "k_a").unwrap_or(d.k_a),
            k_b: jsonv::opt_num(v, "k_b").unwrap_or(d.k_b),
            temperature: jsonv::opt_num(v, "temperature").unwrap_or(d.temperature),
            n_windows: jsonv::opt_int(v, "n_windows").map_or(d.n_windows, |n| n as usize),
            equil_steps: jsonv::opt_int(v, "equil_steps").unwrap_or(d.equil_steps),
            n_steps: jsonv::opt_int(v, "n_steps").unwrap_or(d.n_steps),
            record_interval: jsonv::opt_int(v, "record_interval").unwrap_or(d.record_interval),
            seed: jsonv::opt_int(v, "seed").unwrap_or(d.seed),
        })
    }

    /// Geometric λ-schedule of spring constants (even spacing in ln k,
    /// so every window has comparable overlap).
    pub fn k_schedule(&self) -> Vec<f64> {
        fep::lambda_schedule(self.n_windows)
            .into_iter()
            .map(|l| self.k_a * (self.k_b / self.k_a).powf(l))
            .collect()
    }

    /// Exact ΔF for validation. The sampler is a 3-D isotropic harmonic
    /// well, so `ΔF = (3/2β) ln(k_b/k_a)` with β = 1/T.
    pub fn analytic_delta_f(&self) -> f64 {
        1.5 * self.temperature * (self.k_b / self.k_a).ln()
    }
}

/// Final report of the FEP project.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FepProjectReport {
    pub delta_f: f64,
    pub std_err: f64,
    pub per_window_delta_f: Vec<f64>,
    pub n_windows: usize,
    pub total_samples: usize,
}

impl FepProjectReport {
    pub fn to_value(&self) -> Value {
        json!({
            "delta_f": self.delta_f,
            "std_err": self.std_err,
            "per_window_delta_f": jsonv::f64s_to_value(&self.per_window_delta_f),
            "n_windows": self.n_windows as u64,
            "total_samples": self.total_samples as u64,
        })
    }

    pub fn from_value(v: &Value) -> Result<FepProjectReport, String> {
        Ok(FepProjectReport {
            delta_f: jsonv::num(v, "delta_f")?,
            std_err: jsonv::num(v, "std_err")?,
            per_window_delta_f: jsonv::f64s_from_value(jsonv::field(v, "per_window_delta_f")?)?,
            n_windows: jsonv::int(v, "n_windows")? as usize,
            total_samples: jsonv::int(v, "total_samples")? as usize,
        })
    }
}

/// The BAR controller.
pub struct FepController {
    config: FepProjectConfig,
    windows: Vec<WindowSamples>,
    outstanding: usize,
}

impl FepController {
    pub fn new(config: FepProjectConfig) -> Self {
        let n = config.n_windows;
        FepController {
            config,
            windows: vec![WindowSamples::default(); n],
            outstanding: 0,
        }
    }

    fn sample_command(
        &self,
        window: usize,
        reverse: bool,
        k_sample: f64,
        k_eval: f64,
    ) -> CommandSpec {
        let seed =
            mdsim::rng::splitmix64(self.config.seed ^ ((window as u64) << 8) ^ (reverse as u64));
        let spec = FepSampleSpec {
            k_sample,
            k_eval,
            temperature: self.config.temperature,
            equil_steps: self.config.equil_steps,
            n_steps: self.config.n_steps,
            record_interval: self.config.record_interval,
            seed,
            tag: json!({ "window": window, "reverse": reverse }),
        };
        CommandSpec::new(
            FepSampleExecutor::COMMAND_TYPE,
            Resources::new(1, 16),
            spec.to_value(),
        )
    }

    /// Close out the project with a BAR estimate over whatever samples
    /// arrived (all of them normally; fewer if commands were dropped).
    fn finish(&self) -> Vec<Action> {
        let beta = 1.0 / self.config.temperature;
        let result = stratified_bar(&self.windows, beta);
        let total_samples = self
            .windows
            .iter()
            .map(|w| w.forward.len() + w.reverse.len())
            .sum();
        let report = FepProjectReport {
            delta_f: result.total_delta_f,
            std_err: result.total_std_err,
            per_window_delta_f: result.per_window.iter().map(|r| r.delta_f).collect(),
            n_windows: self.config.n_windows,
            total_samples,
        };
        vec![Action::FinishProject {
            result: report.to_value(),
        }]
    }
}

impl Controller for FepController {
    fn name(&self) -> &str {
        "fep-bar"
    }

    fn on_event(&mut self, _ctx: ControllerCtx<'_>, event: ControllerEvent<'_>) -> Vec<Action> {
        match event {
            ControllerEvent::ProjectStarted => {
                let ks = self.config.k_schedule();
                let mut specs = Vec::new();
                for w in 0..self.config.n_windows {
                    specs.push(self.sample_command(w, false, ks[w], ks[w + 1]));
                    specs.push(self.sample_command(w, true, ks[w + 1], ks[w]));
                }
                self.outstanding = specs.len();
                vec![
                    Action::Log(format!(
                        "spawning {} sampling commands over {} λ-windows",
                        specs.len(),
                        self.config.n_windows
                    )),
                    Action::Spawn(specs),
                ]
            }
            ControllerEvent::CommandFinished(output) => {
                let parsed = match FepSampleOutput::from_value(&output.data) {
                    Ok(p) => p,
                    Err(e) => {
                        return vec![Action::Log(format!("bad fep output: {e}"))];
                    }
                };
                let window = parsed.tag["window"].as_u64().unwrap_or(0) as usize;
                let reverse = parsed.tag["reverse"].as_bool().unwrap_or(false);
                if reverse {
                    self.windows[window].reverse.extend(parsed.works);
                } else {
                    self.windows[window].forward.extend(parsed.works);
                }
                self.outstanding -= 1;
                if self.outstanding > 0 {
                    return vec![];
                }
                self.finish()
            }
            ControllerEvent::WorkerFailed { worker, requeued } => vec![Action::Log(format!(
                "worker {worker} lost; requeued: {requeued:?}"
            ))],
            ControllerEvent::CommandDropped {
                command,
                attempts,
                reason,
                ..
            } => {
                // The sampling command will never deliver: settle for the
                // works gathered so far rather than hanging the project.
                self.outstanding -= 1;
                let mut actions = vec![Action::Log(format!(
                    "{command} dropped after {attempts} attempts ({reason:?}); \
                     continuing with reduced sampling"
                ))];
                if self.outstanding == 0 {
                    actions.extend(self.finish());
                }
                actions
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_schedule_is_geometric() {
        let cfg = FepProjectConfig {
            k_a: 1.0,
            k_b: 16.0,
            n_windows: 4,
            ..FepProjectConfig::default()
        };
        let ks = cfg.k_schedule();
        assert_eq!(ks.len(), 5);
        assert!((ks[0] - 1.0).abs() < 1e-12);
        assert!((ks[4] - 16.0).abs() < 1e-12);
        // Constant ratio.
        for w in ks.windows(2) {
            assert!((w[1] / w[0] - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn analytic_reference() {
        let cfg = FepProjectConfig {
            k_a: 1.0,
            k_b: std::f64::consts::E.powi(2),
            temperature: 1.0,
            ..FepProjectConfig::default()
        };
        // 3-D isotropic well: 3 × (1/2) ln(e²) = 3.
        assert!((cfg.analytic_delta_f() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn config_from_value_fills_defaults() {
        let cfg = FepProjectConfig::from_value(&json!({"n_windows": 6, "seed": 42})).unwrap();
        assert_eq!(cfg.n_windows, 6);
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.k_b, FepProjectConfig::default().k_b);
    }

    #[test]
    fn report_value_roundtrips() {
        let r = FepProjectReport {
            delta_f: 4.5,
            std_err: 0.1,
            per_window_delta_f: vec![1.0, 1.5, 2.0],
            n_windows: 3,
            total_samples: 1200,
        };
        let back = FepProjectReport::from_value(&r.to_value()).unwrap();
        assert_eq!(back.delta_f, r.delta_f);
        assert_eq!(back.per_window_delta_f, r.per_window_delta_f);
        assert_eq!(back.total_samples, 1200);
    }

    #[test]
    fn project_start_spawns_two_commands_per_window() {
        let mut c = FepController::new(FepProjectConfig::default());
        let actions = c.on_event(ControllerCtx::test(), ControllerEvent::ProjectStarted);
        let spawned: usize = actions
            .iter()
            .map(|a| match a {
                Action::Spawn(s) => s.len(),
                _ => 0,
            })
            .sum();
        assert_eq!(spawned, 8); // 4 windows × 2 directions
    }
}
