//! Application-specific controller plugins (§2.1): the MSM
//! adaptive-sampling controller and the BAR free-energy controller the
//! paper ships with.
//!
//! Besides the concrete plugins, this module hosts the [`PluginRegistry`]:
//! a name → factory table that instantiates a controller from its name
//! and a JSON config document. The server's WAL recovery path and the
//! `copernicus serve` front-end both go through it, so "which
//! controllers exist" lives in exactly one place.

use crate::controller::Controller;
use serde_json::Value;
use std::collections::BTreeMap;

pub mod fep;
pub mod msm;
pub mod repex;

pub use fep::{FepController, FepProjectConfig, FepProjectReport};
pub use msm::{
    AdaptiveMode, GenerationReport, KineticsReport, MsmController, MsmProjectConfig,
    MsmProjectReport, TrajectoryArchive,
};
pub use repex::{
    ExchangeMode, ExchangeRecord, RepexController, RepexProjectConfig, RepexProjectReport,
};

/// Factory signature for a named controller plugin: parse the JSON
/// config document and build a fresh controller (no runtime wiring —
/// telemetry, clock and seed arrive per-event via `ControllerCtx`).
pub type PluginFactory = fn(&Value) -> Result<Box<dyn Controller>, String>;

/// Name → factory table of the controller plugins this build ships.
pub struct PluginRegistry {
    factories: BTreeMap<&'static str, PluginFactory>,
}

impl PluginRegistry {
    /// Look up a plugin by name.
    pub fn get(&self, name: &str) -> Option<PluginFactory> {
        self.factories.get(name).copied()
    }

    /// Instantiate a controller from its name and config document.
    pub fn instantiate(&self, name: &str, config: &Value) -> Result<Box<dyn Controller>, String> {
        match self.get(name) {
            Some(factory) => factory(config),
            None => Err(format!(
                "unknown controller plugin {name:?} (available: {})",
                self.names().join(", ")
            )),
        }
    }

    /// The registered plugin names, sorted.
    pub fn names(&self) -> Vec<&'static str> {
        self.factories.keys().copied().collect()
    }
}

/// The built-in plugin registry: `"msm"` (adaptive sampling), `"fep"`
/// (stratified BAR free energies) and `"repex"` (parallel tempering).
pub fn registry() -> PluginRegistry {
    let mut factories: BTreeMap<&'static str, PluginFactory> = BTreeMap::new();
    factories.insert("msm", |config| {
        let cfg = MsmProjectConfig::from_value(config)?;
        Ok(Box::new(MsmController::new(cfg)) as Box<dyn Controller>)
    });
    factories.insert("fep", |config| {
        let cfg = FepProjectConfig::from_value(config)?;
        Ok(Box::new(FepController::new(cfg)) as Box<dyn Controller>)
    });
    factories.insert("repex", |config| {
        let cfg = RepexProjectConfig::from_value(config)?;
        Ok(Box::new(RepexController::new(cfg)) as Box<dyn Controller>)
    });
    PluginRegistry { factories }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn registry_lists_builtin_plugins() {
        let reg = registry();
        assert_eq!(reg.names(), vec!["fep", "msm", "repex"]);
        assert!(reg.get("msm").is_some());
        assert!(reg.get("nope").is_none());
    }

    #[test]
    fn registry_instantiates_by_name() {
        let reg = registry();
        let msm = reg.instantiate("msm", &json!({ "n_starts": 3 })).unwrap();
        assert_eq!(msm.name(), "msm");
        let fep = reg.instantiate("fep", &json!({ "n_windows": 2 })).unwrap();
        assert_eq!(fep.name(), "fep-bar");
        let repex = reg
            .instantiate("repex", &json!({ "n_replicas": 4, "mode": "sync" }))
            .unwrap();
        assert_eq!(repex.name(), "repex");
    }

    #[test]
    fn registry_rejects_unknown_and_bad_config() {
        let reg = registry();
        let err = match reg.instantiate("nope", &json!({})) {
            Err(e) => e,
            Ok(_) => panic!("unknown plugin should fail"),
        };
        assert!(err.contains("unknown controller plugin"));
        assert!(err.contains("msm"));
        assert!(reg
            .instantiate("msm", &json!({ "weighting": "Sideways" }))
            .is_err());
        assert!(reg
            .instantiate("repex", &json!({ "mode": "diagonal" }))
            .is_err());
    }
}
