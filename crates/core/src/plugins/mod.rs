//! Application-specific controller plugins (§2.1): the MSM
//! adaptive-sampling controller and the BAR free-energy controller the
//! paper ships with.

pub mod fep;
pub mod msm;

pub use fep::{FepController, FepProjectConfig, FepProjectReport};
pub use msm::{
    GenerationReport, KineticsReport, MsmController, MsmProjectConfig, MsmProjectReport,
    TrajectoryArchive,
};
