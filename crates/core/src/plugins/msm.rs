//! The MSM adaptive-sampling controller plugin (§3 of the paper).
//!
//! Protocol, following §3.2: a fixed-size ensemble of trajectory
//! *lineages* runs in 50-ns segments. When a segment finishes, its
//! lineage is extended by another segment. Once all lineages of a
//! generation have reported, the controller clusters **all** accumulated
//! data, builds a Markov state model, *"marks trajectories for
//! termination and spawns new trajectories as indicated"*: lineages
//! sitting in well-explored (low-weight) microstates are terminated and
//! replaced by fresh lineages started from under-explored (high-weight)
//! microstates, with even or adaptive (transition-uncertainty) weighting.
//!
//! The native structure is used **only** for reporting (the RMSD columns
//! of Figs. 2–5); sampling decisions are blind, exactly as in the paper.

use crate::command::CommandSpec;
use crate::controller::{Action, Controller, ControllerEvent};
use crate::executor::{MdRunExecutor, MdRunOutput, MdRunSpec};
use crate::resources::Resources;
use copernicus_telemetry::{buckets, names, Event, Labels, Telemetry};
use mdsim::model::villin::VillinModel;
use mdsim::rng::{rng_for_stream, SimRng};
use mdsim::trajectory::Trajectory;
use mdsim::units::ns_to_steps;
use mdsim::vec3::Vec3;
use msm::{
    adaptive_weights, allocate_spawns, even_weights, first_crossing, propagate_series, rmsd,
    subset_population, MarkovStateModel, MsmConfig, Weighting,
};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use serde_json::json;
use std::sync::Arc;

/// Configuration of the adaptive-sampling project.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MsmProjectConfig {
    /// Number of unfolded starting conformations (paper: 9).
    pub n_starts: usize,
    /// Simulation tasks per starting conformation (paper: 25 → 225
    /// total).
    pub sims_per_start: usize,
    /// Nominal segment length in "ns" (paper: 50).
    pub segment_ns: f64,
    /// Steps between recorded frames.
    pub record_interval: u64,
    /// Steps between checkpoint deposits (0 = off).
    pub checkpoint_steps: u64,
    /// Simulation temperature (ε/kB).
    pub temperature: f64,
    /// Microstate count for clustering (paper: 10,000 at full scale).
    pub n_clusters: usize,
    /// MSM lag time in frames.
    pub lag_frames: usize,
    /// Spawn weighting policy (§3.2: even early, adaptive late).
    pub weighting: Weighting,
    /// Use even weighting for the first N generations regardless of
    /// `weighting`, switching afterwards — the §3.2 recommendation
    /// ("even weighting … when state partitioning is highly unstable; as
    /// the state partitioning stabilizes, it becomes more advantageous
    /// to use adaptive weighting").
    pub even_until_generation: usize,
    /// Fraction of lineages terminated and respawned at each clustering
    /// step (the rest are extended).
    pub respawn_fraction: f64,
    /// Generations to run before finishing.
    pub generations: usize,
    /// "Folded" definition for reporting: RMSD to native below this (Å;
    /// paper: 3.5).
    pub folded_rmsd: f64,
    /// Horizon of the final Chapman-Kolmogorov propagation, nominal ns
    /// (Fig. 4 runs to 2,000 ns).
    pub kinetics_horizon_ns: f64,
    /// Convergence stop criterion (§2: finish "when the standard error
    /// estimate of the output result has reached a user-specified
    /// minimum value"): stop early once the bootstrap standard error of
    /// the folded equilibrium population is below this, provided a
    /// folded state has been found. `None` disables early stopping.
    pub stop_folded_pop_stderr: Option<f64>,
    /// Master seed.
    pub seed: u64,
    /// Cores requested per simulation command.
    pub cores_per_sim: usize,
}

impl Default for MsmProjectConfig {
    fn default() -> Self {
        MsmProjectConfig {
            n_starts: 9,
            sims_per_start: 5,
            segment_ns: 50.0,
            record_interval: 80,
            checkpoint_steps: 0,
            temperature: 0.5,
            n_clusters: 150,
            lag_frames: 5,
            weighting: Weighting::Adaptive,
            even_until_generation: 0,
            respawn_fraction: 0.3,
            generations: 6,
            folded_rmsd: 3.5,
            kinetics_horizon_ns: 2000.0,
            stop_folded_pop_stderr: None,
            seed: 2011,
            cores_per_sim: 1,
        }
    }
}

impl MsmProjectConfig {
    pub fn n_trajectories_per_generation(&self) -> usize {
        self.n_starts * self.sims_per_start
    }
}

/// Per-generation statistics (the rows of Fig. 2 and the headline §3
/// numbers).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GenerationReport {
    pub generation: usize,
    /// Live lineages plus terminated trajectories so far.
    pub n_trajectories_total: usize,
    pub n_frames_total: usize,
    pub n_states: usize,
    pub n_active_states: usize,
    /// Lineages terminated/respawned at this clustering step.
    pub n_respawned: usize,
    /// Lowest RMSD to native observed in any frame so far (Å).
    pub min_rmsd_to_native: f64,
    /// RMSD to native of the blind-predicted native state (largest
    /// equilibrium population) — the paper's 1.4 Å metric.
    pub predicted_native_rmsd: f64,
    /// Stationary population of the predicted state.
    pub predicted_native_population: f64,
    /// Total equilibrium population within `folded_rmsd` of native.
    pub folded_equilibrium_population: f64,
    /// Bootstrap standard error of that population (present when the
    /// convergence stop criterion is enabled).
    pub folded_pop_stderr: Option<f64>,
    /// Whether any frame so far is within `folded_rmsd` of native.
    pub folded_observed: bool,
}

/// Final kinetic analysis (Fig. 4): Chapman-Kolmogorov propagation of the
/// microstate MSM from the unfolded starting distribution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KineticsReport {
    /// Times in nominal ns.
    pub times_ns: Vec<f64>,
    /// Fraction of the population within `folded_rmsd` of native.
    pub folded_fraction: Vec<f64>,
    /// Folding half-time t½ (ns): first time folded_fraction reaches half
    /// its final value.
    pub t_half_ns: Option<f64>,
    /// Final folded fraction.
    pub final_folded_fraction: f64,
}

/// Full project report returned by the controller.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MsmProjectReport {
    pub generations: Vec<GenerationReport>,
    pub first_folded_generation: Option<usize>,
    pub min_rmsd_to_native: f64,
    pub final_predicted_native_rmsd: f64,
    pub kinetics: Option<KineticsReport>,
}

/// Shared trajectory archive, for callers that want the raw data (the
/// Fig. 4/5 analysis binaries). Receives each full lineage trajectory
/// when it is terminated, and all live ones when the project finishes.
pub type TrajectoryArchive = Arc<Mutex<Vec<Trajectory>>>;

/// One live trajectory lineage.
struct Lineage {
    traj: Trajectory,
    /// Final coordinates, from which the next segment continues.
    current: Vec<Vec3>,
}

/// The MSM adaptive-sampling controller.
pub struct MsmController {
    config: MsmProjectConfig,
    model: Arc<VillinModel>,
    rng: SimRng,
    /// Live lineages, indexed by the `lineage` tag on commands.
    lineages: Vec<Lineage>,
    /// Full trajectories of terminated lineages.
    terminated: Vec<Trajectory>,
    archive: Option<TrajectoryArchive>,
    current_generation: usize,
    outstanding: usize,
    next_seed: u64,
    reports: Vec<GenerationReport>,
    min_rmsd: f64,
    first_folded_generation: Option<usize>,
    /// Build the Fig. 4 kinetics report at the end (costs one more MSM
    /// propagation).
    pub analyze_kinetics: bool,
    /// Per-generation clustering timings and `GenerationClustered`
    /// journal events, when attached.
    telemetry: Option<Telemetry>,
}

impl MsmController {
    pub fn new(model: Arc<VillinModel>, config: MsmProjectConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.respawn_fraction),
            "respawn_fraction must be in [0, 1]"
        );
        let rng = rng_for_stream(config.seed, 0x315);
        MsmController {
            config,
            model,
            rng,
            lineages: Vec::new(),
            terminated: Vec::new(),
            archive: None,
            current_generation: 0,
            outstanding: 0,
            next_seed: 1,
            reports: Vec::new(),
            min_rmsd: f64::INFINITY,
            first_folded_generation: None,
            analyze_kinetics: true,
            telemetry: None,
        }
    }

    /// Attach a shared archive that receives every finished trajectory.
    pub fn with_archive(mut self, archive: TrajectoryArchive) -> Self {
        self.archive = Some(archive);
        self
    }

    /// Attach telemetry: each clustering step records its wall time,
    /// updates the model-size gauge, and journals a
    /// [`Event::GenerationClustered`] span.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    fn segment_steps(&self) -> u64 {
        ns_to_steps(self.config.segment_ns, self.model.params.dt)
    }

    fn md_command(&mut self, lineage: usize, start: Vec<Vec3>) -> CommandSpec {
        let seed = mdsim::rng::splitmix64(self.config.seed ^ (self.next_seed << 17));
        self.next_seed += 1;
        let spec = MdRunSpec {
            start_positions: start,
            temperature: self.config.temperature,
            n_steps: self.segment_steps(),
            record_interval: self.config.record_interval,
            seed,
            checkpoint_steps: self.config.checkpoint_steps,
            inject_crash_at_step: None,
            tag: json!({ "lineage": lineage, "generation": self.current_generation }),
            kernel: None,
        };
        CommandSpec::new(
            MdRunExecutor::COMMAND_TYPE,
            Resources::new(self.config.cores_per_sim, 64),
            serde_json::to_value(&spec).expect("spec serializes"),
        )
    }

    fn spawn_generation_zero(&mut self) -> Vec<Action> {
        let mut specs = Vec::new();
        for s in 0..self.config.n_starts {
            let start = self.model.unfolded_start(self.config.seed ^ (s as u64 + 1));
            for _ in 0..self.config.sims_per_start {
                let idx = self.lineages.len();
                let mut traj = Trajectory::new();
                traj.push(0.0, start.clone());
                self.lineages.push(Lineage {
                    traj,
                    current: start.clone(),
                });
                specs.push(self.md_command(idx, start.clone()));
            }
        }
        self.outstanding = specs.len();
        vec![
            Action::Log(format!(
                "generation 0: spawning {} lineages from {} unfolded starts",
                specs.len(),
                self.config.n_starts
            )),
            Action::Spawn(specs),
        ]
    }

    /// All MSM-relevant trajectories: terminated plus live.
    fn all_trajectories(&self) -> Vec<Trajectory> {
        self.terminated
            .iter()
            .cloned()
            .chain(self.lineages.iter().map(|l| l.traj.clone()))
            .collect()
    }

    /// Cluster everything, report, terminate/respawn, extend.
    fn generation_boundary(&mut self) -> Vec<Action> {
        let trajs = self.all_trajectories();
        let clustering_span = self
            .telemetry
            .as_ref()
            .map(|t| t.journal().span("msm_clustering"));
        let (msm, clustering_ns) = copernicus_telemetry::timed(|| {
            MarkovStateModel::build(
                &trajs,
                MsmConfig {
                    n_clusters: self.config.n_clusters,
                    lag_frames: self.config.lag_frames,
                    prior: 1e-4,
                    reversible: true,
                    kmedoids_iters: 0,
                },
            )
        });
        drop(clustering_span);
        if let Some(t) = &self.telemetry {
            t.registry()
                .histogram(names::CLUSTERING_SECS, Labels::new(), buckets::SECONDS)
                .record(clustering_ns as f64 / 1e9);
            t.registry()
                .gauge(names::MSM_STATES, Labels::new())
                .set(msm.n_states() as f64);
        }

        // Reporting against the (held-out) native structure.
        let native = &self.model.native;
        let mut min_rmsd = self.min_rmsd;
        for t in &trajs {
            for (_, frame) in t.iter() {
                let d = rmsd(frame, native);
                if d < min_rmsd {
                    min_rmsd = d;
                }
            }
        }
        self.min_rmsd = min_rmsd;
        if min_rmsd <= self.config.folded_rmsd && self.first_folded_generation.is_none() {
            self.first_folded_generation = Some(self.current_generation);
        }
        let (_state, pop, center) = msm.predict_native();
        let predicted_rmsd = rmsd(center, native);
        let folded_pop = msm.equilibrium_population_near(native, self.config.folded_rmsd);

        // Convergence check (§2): bootstrap the folded equilibrium
        // population over trajectories (state definitions fixed).
        let mut folded_pop_stderr = None;
        let mut converged = false;
        if let Some(threshold) = self.config.stop_folded_pop_stderr {
            let folded_original_ids: Vec<usize> = msm
                .states_near(native, self.config.folded_rmsd)
                .into_iter()
                .map(|k| msm.active[k])
                .collect();
            if !folded_original_ids.is_empty() && trajs.len() >= 2 {
                let est = msm::bootstrap_subset_population(
                    &msm.dtrajs,
                    msm.n_states(),
                    self.config.lag_frames,
                    &folded_original_ids,
                    40,
                    self.config.seed ^ 0xb007,
                );
                folded_pop_stderr = Some(est.std_err);
                converged = folded_pop > 0.0 && est.std_err < threshold;
            }
        }

        let done = converged || self.current_generation + 1 >= self.config.generations;
        let n_respawn = if done {
            0
        } else {
            (self.config.respawn_fraction * self.lineages.len() as f64).round() as usize
        };

        let report = GenerationReport {
            generation: self.current_generation,
            n_trajectories_total: trajs.len(),
            n_frames_total: trajs.iter().map(|t| t.len()).sum(),
            n_states: msm.n_states(),
            n_active_states: msm.n_active(),
            n_respawned: n_respawn,
            min_rmsd_to_native: min_rmsd,
            predicted_native_rmsd: predicted_rmsd,
            predicted_native_population: pop,
            folded_equilibrium_population: folded_pop,
            folded_pop_stderr,
            folded_observed: min_rmsd <= self.config.folded_rmsd,
        };
        let log = format!(
            "generation {} clustered: {} states ({} active), min RMSD {:.2} Å, blind prediction {:.2} Å",
            report.generation,
            report.n_states,
            report.n_active_states,
            report.min_rmsd_to_native,
            report.predicted_native_rmsd,
        );
        if let Some(t) = &self.telemetry {
            t.journal().record(Event::GenerationClustered {
                generation: report.generation as u64,
                n_states: report.n_states as u64,
                n_trajectories: report.n_trajectories_total as u64,
                n_respawned: report.n_respawned as u64,
            });
        }
        self.reports.push(report);

        if done {
            // Archive the surviving lineages.
            if let Some(archive) = &self.archive {
                let mut guard = archive.lock();
                for l in &self.lineages {
                    guard.push(l.traj.clone());
                }
            }
            let kinetics = if self.analyze_kinetics {
                Some(self.kinetics_report(&msm))
            } else {
                None
            };
            let final_report = MsmProjectReport {
                generations: self.reports.clone(),
                first_folded_generation: self.first_folded_generation,
                min_rmsd_to_native: self.min_rmsd,
                final_predicted_native_rmsd: self
                    .reports
                    .last()
                    .map(|r| r.predicted_native_rmsd)
                    .unwrap_or(f64::NAN),
                kinetics,
            };
            return vec![
                Action::Log(log),
                Action::FinishProject {
                    result: serde_json::to_value(&final_report).expect("report serializes"),
                },
            ];
        }

        // --- Adaptive step -------------------------------------------------
        // Weights over active states: high weight = under-explored. Early
        // generations (unstable partitioning) use even weighting
        // regardless of the configured policy (§3.2).
        let effective_weighting = if self.current_generation < self.config.even_until_generation {
            Weighting::Even
        } else {
            self.config.weighting
        };
        let weights = match effective_weighting {
            Weighting::Even => even_weights(msm.n_active()),
            Weighting::Adaptive => adaptive_weights(&msm.counts.restrict(&msm.active)),
        };

        // Current state of each live lineage = assignment of its last
        // frame. The pooled assignment vector is ordered: terminated
        // trajectories first, then live lineages (see all_trajectories).
        let assignment: Vec<usize> = msm.dtrajs.iter().flatten().copied().collect();
        let mut frame_offset: usize = self.terminated.iter().map(|t| t.len()).sum();
        let mut lineage_state = Vec::with_capacity(self.lineages.len());
        for l in &self.lineages {
            lineage_state.push(assignment[frame_offset + l.traj.len() - 1]);
            frame_offset += l.traj.len();
        }

        // Terminate the lineages sitting in the best-explored states
        // (lowest weight; unassignable states get weight 0).
        let state_weight =
            |state: usize| -> f64 { msm.active_index(state).map(|k| weights[k]).unwrap_or(0.0) };
        let mut order: Vec<usize> = (0..self.lineages.len()).collect();
        order.sort_by(|&a, &b| {
            state_weight(lineage_state[a])
                .partial_cmp(&state_weight(lineage_state[b]))
                .unwrap()
                .then(a.cmp(&b))
        });
        let to_terminate: Vec<usize> = order.into_iter().take(n_respawn).collect();

        // Pick respawn start frames from high-weight states.
        let allocation = allocate_spawns(&weights, n_respawn);
        let frames: Vec<&[Vec3]> = trajs
            .iter()
            .flat_map(|t| t.frames().iter().map(|f| f.as_slice()))
            .collect();
        let mut respawn_starts: Vec<Vec<Vec3>> = Vec::with_capacity(n_respawn);
        for (active_idx, &count) in allocation.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let state = msm.active[active_idx];
            let members: Vec<usize> = assignment
                .iter()
                .enumerate()
                .filter(|(_, &a)| a == state)
                .map(|(i, _)| i)
                .collect();
            for _ in 0..count {
                use rand::Rng;
                let pick = members[self.rng.random_range(0..members.len())];
                respawn_starts.push(frames[pick].to_vec());
            }
        }
        drop(frames);

        // Apply terminations: archive the full lineage trajectory and
        // restart the slot from a respawn frame.
        for (slot, start) in to_terminate.iter().zip(respawn_starts) {
            let old = std::mem::replace(
                &mut self.lineages[*slot],
                Lineage {
                    traj: {
                        let mut t = Trajectory::new();
                        t.push(0.0, start.clone());
                        t
                    },
                    current: start,
                },
            );
            if let Some(archive) = &self.archive {
                archive.lock().push(old.traj.clone());
            }
            self.terminated.push(old.traj);
        }

        // Next generation: extend every live lineage by one segment.
        self.current_generation += 1;
        let starts: Vec<(usize, Vec<Vec3>)> = self
            .lineages
            .iter()
            .enumerate()
            .map(|(i, l)| (i, l.current.clone()))
            .collect();
        let specs: Vec<CommandSpec> = starts
            .into_iter()
            .map(|(i, s)| self.md_command(i, s))
            .collect();
        self.outstanding = specs.len();
        vec![Action::Log(log), Action::Spawn(specs)]
    }

    /// Fig. 4 analysis: propagate the final MSM from the unfolded initial
    /// distribution and track the folded fraction.
    fn kinetics_report(&self, msm: &MarkovStateModel) -> KineticsReport {
        let folded_states = msm.states_near(&self.model.native, self.config.folded_rmsd);
        let p0 = msm.initial_distribution();
        let frame_ns = mdsim::units::steps_to_ns(self.config.record_interval, self.model.params.dt);
        let lag_ns = frame_ns * self.config.lag_frames as f64;
        let n_steps = (self.config.kinetics_horizon_ns / lag_ns).ceil().max(1.0) as usize;
        let series = propagate_series(&msm.tmatrix, &p0, n_steps);
        let folded = subset_population(&series, &folded_states);
        let times_ns: Vec<f64> = (0..=n_steps).map(|i| i as f64 * lag_ns).collect();
        let final_folded = (*folded.last().unwrap_or(&0.0)).max(0.0);
        let t_half_ns = first_crossing(&times_ns, &folded, 0.5 * final_folded);
        KineticsReport {
            times_ns,
            folded_fraction: folded,
            t_half_ns,
            final_folded_fraction: final_folded,
        }
    }
}

impl Controller for MsmController {
    fn name(&self) -> &str {
        "msm"
    }

    fn on_event(&mut self, event: ControllerEvent<'_>) -> Vec<Action> {
        match event {
            ControllerEvent::ProjectStarted => self.spawn_generation_zero(),
            ControllerEvent::CommandFinished(output) => {
                let parsed: MdRunOutput = match serde_json::from_value(output.data.clone()) {
                    Ok(p) => p,
                    Err(e) => {
                        return vec![Action::Log(format!("could not parse mdrun output: {e}"))]
                    }
                };
                let lineage_idx = parsed.tag["lineage"].as_u64().expect("tagged") as usize;
                let lineage = &mut self.lineages[lineage_idx];
                // Append the segment, shifting times to continue the
                // lineage clock; the segment's first frame duplicates the
                // lineage's current last frame.
                let t_offset = lineage.traj.time(lineage.traj.len() - 1);
                for (t, frame) in parsed.trajectory.iter().skip(1) {
                    lineage.traj.push(t_offset + t, frame.to_vec());
                }
                lineage.current = parsed.final_positions;
                self.outstanding -= 1;
                if self.outstanding == 0 {
                    self.generation_boundary()
                } else {
                    vec![]
                }
            }
            ControllerEvent::WorkerFailed { worker, requeued } => {
                vec![Action::Log(format!(
                    "worker {worker} lost; requeued: {requeued:?}"
                ))]
            }
            ControllerEvent::CommandDropped {
                command,
                attempts,
                reason,
            } => {
                // The segment will never arrive; its lineage simply does
                // not advance this generation. Account for it so the
                // generation barrier still closes.
                self.outstanding -= 1;
                let mut actions = vec![Action::Log(format!(
                    "{command} dropped after {attempts} attempts ({reason:?}); \
                     lineage skips this generation"
                ))];
                if self.outstanding == 0 {
                    actions.extend(self.generation_boundary());
                }
                actions
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> MsmProjectConfig {
        MsmProjectConfig {
            n_starts: 2,
            sims_per_start: 2,
            segment_ns: 5.0,
            record_interval: 40,
            temperature: 0.55,
            n_clusters: 10,
            lag_frames: 1,
            generations: 3,
            respawn_fraction: 0.5,
            seed: 3,
            ..MsmProjectConfig::default()
        }
    }

    fn run_inline(mut controller: MsmController) -> MsmProjectReport {
        use crate::command::{Command, CommandOutput};
        use crate::executor::{CommandExecutor, ExecContext, MdRunExecutor};
        use crate::ids::{CommandId, ProjectId, WorkerId};

        let model = controller.model.clone();
        let exec = MdRunExecutor::new(model);
        let mut pending: Vec<Command> = Vec::new();
        let mut next_id = 0u64;
        let mut finish: Option<serde_json::Value> = None;

        let apply = |actions: Vec<Action>,
                     pending: &mut Vec<Command>,
                     next_id: &mut u64,
                     finish: &mut Option<serde_json::Value>| {
            for a in actions {
                match a {
                    Action::Spawn(specs) => {
                        for s in specs {
                            pending.push(Command::from_spec(CommandId(*next_id), ProjectId(0), s));
                            *next_id += 1;
                        }
                    }
                    Action::FinishProject { result } => *finish = Some(result),
                    _ => {}
                }
            }
        };

        apply(
            controller.on_event(ControllerEvent::ProjectStarted),
            &mut pending,
            &mut next_id,
            &mut finish,
        );
        while finish.is_none() {
            let cmd = pending.pop().expect("controller starved the queue");
            let data = exec
                .execute(ExecContext {
                    command: &cmd,
                    worker: WorkerId(0),
                    shared_fs: None,
                    telemetry: None,
                })
                .expect("execution succeeds");
            let output = CommandOutput::new(&cmd, WorkerId(0), data, 0.0);
            apply(
                controller.on_event(ControllerEvent::CommandFinished(&output)),
                &mut pending,
                &mut next_id,
                &mut finish,
            );
        }
        serde_json::from_value(finish.unwrap()).expect("report parses")
    }

    #[test]
    fn generation_zero_spawns_full_ensemble() {
        let model = Arc::new(VillinModel::hp35());
        let mut c = MsmController::new(model, tiny_config());
        let actions = c.on_event(ControllerEvent::ProjectStarted);
        let spawned: usize = actions
            .iter()
            .map(|a| match a {
                Action::Spawn(s) => s.len(),
                _ => 0,
            })
            .sum();
        assert_eq!(spawned, 4);
    }

    #[test]
    fn adaptive_loop_extends_and_respawns() {
        let model = Arc::new(VillinModel::hp35());
        let archive: TrajectoryArchive = Arc::new(Mutex::new(Vec::new()));
        let controller = MsmController::new(model, tiny_config()).with_archive(archive.clone());
        let report = run_inline(controller);
        assert_eq!(report.generations.len(), 3);
        // Generation 0: 4 lineages; respawns keep the live count at 4.
        assert_eq!(report.generations[0].n_trajectories_total, 4);
        // Respawned lineages add terminated trajectories to the pool.
        assert_eq!(report.generations[0].n_respawned, 2);
        assert_eq!(report.generations[1].n_trajectories_total, 6);
        assert!(report.min_rmsd_to_native.is_finite());
        assert!(report.kinetics.is_some());
        // Archive holds terminated + final live = 2 + 2 + 4.
        assert_eq!(archive.lock().len(), 8);
        // Surviving lineages grow: live trajectories span 3 segments.
        let longest = archive.lock().iter().map(|t| t.len()).max().unwrap();
        let frames_per_seg = (5.0 * 0.8 / 0.01 / 40.0) as usize; // 10
        assert!(
            longest >= 2 * frames_per_seg,
            "no lineage survived extension: longest {longest}"
        );
        // Min RMSD is monotone non-increasing across generations.
        assert!(
            report.generations[2].min_rmsd_to_native
                <= report.generations[0].min_rmsd_to_native + 1e-12
        );
    }

    #[test]
    fn even_and_adaptive_weighting_both_work() {
        let model = Arc::new(VillinModel::hp35());
        for weighting in [Weighting::Even, Weighting::Adaptive] {
            let cfg = MsmProjectConfig {
                weighting,
                generations: 2,
                ..tiny_config()
            };
            let report = run_inline(MsmController::new(model.clone(), cfg));
            assert_eq!(report.generations.len(), 2);
        }
    }

    #[test]
    fn zero_respawn_fraction_is_pure_extension() {
        let model = Arc::new(VillinModel::hp35());
        let cfg = MsmProjectConfig {
            respawn_fraction: 0.0,
            ..tiny_config()
        };
        let report = run_inline(MsmController::new(model, cfg));
        // No terminations: the trajectory count stays at the ensemble
        // size throughout.
        for g in &report.generations {
            assert_eq!(g.n_trajectories_total, 4);
            assert_eq!(g.n_respawned, 0);
        }
    }

    #[test]
    fn config_totals() {
        let cfg = MsmProjectConfig::default();
        assert_eq!(cfg.n_trajectories_per_generation(), 45);
        let paper = MsmProjectConfig {
            n_starts: 9,
            sims_per_start: 25,
            ..cfg
        };
        assert_eq!(paper.n_trajectories_per_generation(), 225);
    }

    #[test]
    fn convergence_criterion_stops_early() {
        // Rig the folded definition so every state counts as folded: the
        // folded population is then 1.0 with ~zero bootstrap error, and
        // the §2 stop criterion must end the project at the first
        // clustering step instead of running all 5 generations.
        let model = Arc::new(VillinModel::hp35());
        let cfg = MsmProjectConfig {
            generations: 5,
            folded_rmsd: 1e6,
            stop_folded_pop_stderr: Some(0.75),
            ..tiny_config()
        };
        let report = run_inline(MsmController::new(model, cfg));
        assert_eq!(
            report.generations.len(),
            1,
            "project should stop at the first converged generation"
        );
        let g = &report.generations[0];
        assert!(g.folded_pop_stderr.expect("stderr computed") < 0.75);
        assert!((g.folded_equilibrium_population - 1.0).abs() < 1e-6);
    }

    #[test]
    fn telemetry_records_each_clustering_step() {
        use copernicus_telemetry::matched_span_pairs;
        let model = Arc::new(VillinModel::hp35());
        let t = Telemetry::new();
        let controller = MsmController::new(model, tiny_config()).with_telemetry(t.clone());
        let report = run_inline(controller);
        let hist = t
            .registry()
            .find_histogram(names::CLUSTERING_SECS, &Labels::new())
            .expect("clustering histogram exists");
        assert_eq!(hist.count(), report.generations.len() as u64);
        let entries = t.journal().entries();
        let clustered = entries
            .iter()
            .filter(|e| e.event.kind() == "generation_clustered")
            .count();
        assert_eq!(clustered, report.generations.len());
        let pairs = matched_span_pairs(&entries).expect("clustering spans pair up");
        assert_eq!(pairs, report.generations.len());
    }

    #[test]
    #[should_panic(expected = "respawn_fraction")]
    fn rejects_bad_respawn_fraction() {
        let model = Arc::new(VillinModel::hp35());
        let cfg = MsmProjectConfig {
            respawn_fraction: 1.5,
            ..tiny_config()
        };
        let _ = MsmController::new(model, cfg);
    }
}
