//! The MSM adaptive-sampling controller plugin (§3 of the paper).
//!
//! Protocol, following §3.2: a fixed-size ensemble of trajectory
//! *lineages* runs in 50-ns segments. Lineages sitting in well-explored
//! (low-weight) microstates are terminated and replaced by fresh
//! lineages started from under-explored (high-weight) microstates, with
//! even or adaptive (transition-uncertainty) weighting.
//!
//! Two adaptive loops are implemented (DESIGN.md §16):
//!
//! * [`AdaptiveMode::Generational`] — the classic barrier loop: when
//!   *all* lineages of a generation have reported, cluster everything,
//!   terminate/respawn, extend. Simple, but the fleet idles while the
//!   last straggler finishes and the server clusters.
//! * [`AdaptiveMode::Streaming`] (default) — segments are folded into an
//!   incremental MSM ([`StreamingMsm`]) the moment they finish, and the
//!   extend-or-respawn decision for a lineage is taken immediately from
//!   the current weights, so the fleet never drains. The expensive full
//!   recluster runs periodically as a *background* `msm-build` command
//!   on the fleet and is swapped in atomically when it lands.
//!
//! The native structure is used **only** for reporting (the RMSD columns
//! of Figs. 2–5); sampling decisions are blind, exactly as in the paper.

use crate::command::CommandSpec;
use crate::controller::{Action, Controller, ControllerCtx, ControllerEvent};
use crate::executor::{
    MdRunExecutor, MdRunOutput, MdRunSpec, MsmBuildExecutor, MsmBuildOutput, MsmBuildSpec,
};
use crate::resources::Resources;
use copernicus_telemetry::{buckets, names, Event, Labels};
use mdsim::jsonv;
use mdsim::model::villin::VillinModel;
use mdsim::rng::splitmix64;
use mdsim::trajectory::{chunk_steps, Trajectory};
use mdsim::units::ns_to_steps;
use mdsim::vec3::Vec3;
use msm::{
    first_crossing, propagate_series, rmsd, subset_population, MarkovStateModel, MsmConfig,
    StreamingConfig, StreamingMsm, Weighting,
};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use serde_json::{json, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Which adaptive loop drives the project.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdaptiveMode {
    /// Cluster at a generation barrier, then terminate/respawn/extend.
    Generational,
    /// Incremental MSM, per-segment respawn decisions, background
    /// recluster — the fleet never waits for a barrier.
    Streaming,
}

impl AdaptiveMode {
    fn as_str(self) -> &'static str {
        match self {
            AdaptiveMode::Generational => "Generational",
            AdaptiveMode::Streaming => "Streaming",
        }
    }

    fn parse(s: &str) -> Result<AdaptiveMode, String> {
        match s {
            "Generational" => Ok(AdaptiveMode::Generational),
            "Streaming" => Ok(AdaptiveMode::Streaming),
            other => Err(format!("unknown adaptive mode `{other}`")),
        }
    }
}

/// Configuration of the adaptive-sampling project.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MsmProjectConfig {
    /// Number of unfolded starting conformations (paper: 9).
    pub n_starts: usize,
    /// Simulation tasks per starting conformation (paper: 25 → 225
    /// total).
    pub sims_per_start: usize,
    /// Nominal segment length in "ns" (paper: 50).
    pub segment_ns: f64,
    /// Steps between recorded frames.
    pub record_interval: u64,
    /// Steps between checkpoint deposits (0 = off).
    pub checkpoint_steps: u64,
    /// Simulation temperature (ε/kB).
    pub temperature: f64,
    /// Microstate count for clustering (paper: 10,000 at full scale).
    pub n_clusters: usize,
    /// MSM lag time in frames.
    pub lag_frames: usize,
    /// Spawn weighting policy (§3.2: even early, adaptive late).
    pub weighting: Weighting,
    /// Use even weighting for the first N generations regardless of
    /// `weighting`, switching afterwards — the §3.2 recommendation
    /// ("even weighting … when state partitioning is highly unstable; as
    /// the state partitioning stabilizes, it becomes more advantageous
    /// to use adaptive weighting").
    pub even_until_generation: usize,
    /// Fraction of lineages terminated and respawned at each clustering
    /// step (generational) or held under respawn pressure (streaming:
    /// a lineage finishing a segment respawns when its state weight
    /// ranks in this bottom fraction of the live ensemble).
    pub respawn_fraction: f64,
    /// Generations to run before finishing. In streaming mode this
    /// fixes the segment budget: `generations × n_starts ×
    /// sims_per_start` segments in total.
    pub generations: usize,
    /// "Folded" definition for reporting: RMSD to native below this (Å;
    /// paper: 3.5).
    pub folded_rmsd: f64,
    /// Horizon of the final Chapman-Kolmogorov propagation, nominal ns
    /// (Fig. 4 runs to 2,000 ns).
    pub kinetics_horizon_ns: f64,
    /// Convergence stop criterion (§2: finish "when the standard error
    /// estimate of the output result has reached a user-specified
    /// minimum value"): stop early once the bootstrap standard error of
    /// the folded equilibrium population is below this, provided a
    /// folded state has been found. `None` disables early stopping.
    pub stop_folded_pop_stderr: Option<f64>,
    /// Master seed.
    pub seed: u64,
    /// Cores requested per simulation command.
    pub cores_per_sim: usize,
    /// Which adaptive loop to run.
    pub mode: AdaptiveMode,
    /// Streaming only: split each segment into this many chunked
    /// `mdrun` commands so partial trajectories reach the incremental
    /// estimator earlier (1 = whole segments).
    pub chunks_per_segment: usize,
}

impl Default for MsmProjectConfig {
    fn default() -> Self {
        MsmProjectConfig {
            n_starts: 9,
            sims_per_start: 5,
            segment_ns: 50.0,
            record_interval: 80,
            checkpoint_steps: 0,
            temperature: 0.5,
            n_clusters: 150,
            lag_frames: 5,
            weighting: Weighting::Adaptive,
            even_until_generation: 0,
            respawn_fraction: 0.3,
            generations: 6,
            folded_rmsd: 3.5,
            kinetics_horizon_ns: 2000.0,
            stop_folded_pop_stderr: None,
            seed: 2011,
            cores_per_sim: 1,
            mode: AdaptiveMode::Streaming,
            chunks_per_segment: 1,
        }
    }
}

impl MsmProjectConfig {
    pub fn n_trajectories_per_generation(&self) -> usize {
        self.n_starts * self.sims_per_start
    }

    /// Wire/WAL encoding. Field names match the serde derive so typed
    /// consumers and the hand codec agree on one shape.
    pub fn to_value(&self) -> Value {
        json!({
            "n_starts": self.n_starts as u64,
            "sims_per_start": self.sims_per_start as u64,
            "segment_ns": self.segment_ns,
            "record_interval": self.record_interval,
            "checkpoint_steps": self.checkpoint_steps,
            "temperature": self.temperature,
            "n_clusters": self.n_clusters as u64,
            "lag_frames": self.lag_frames as u64,
            "weighting": match self.weighting {
                Weighting::Even => "Even",
                Weighting::Adaptive => "Adaptive",
            },
            "even_until_generation": self.even_until_generation as u64,
            "respawn_fraction": self.respawn_fraction,
            "generations": self.generations as u64,
            "folded_rmsd": self.folded_rmsd,
            "kinetics_horizon_ns": self.kinetics_horizon_ns,
            "stop_folded_pop_stderr": match self.stop_folded_pop_stderr {
                Some(x) => Value::from(x),
                None => Value::Null,
            },
            "seed": self.seed,
            "cores_per_sim": self.cores_per_sim as u64,
            "mode": self.mode.as_str(),
            "chunks_per_segment": self.chunks_per_segment as u64,
        })
    }

    /// Parse a config document; absent fields keep their defaults, so a
    /// registry caller can say `{"generations": 3}` and nothing else.
    pub fn from_value(v: &Value) -> Result<MsmProjectConfig, String> {
        if !v.is_object() {
            return Err("msm config must be an object".into());
        }
        let mut c = MsmProjectConfig::default();
        if let Some(x) = jsonv::opt_int(v, "n_starts") {
            c.n_starts = x as usize;
        }
        if let Some(x) = jsonv::opt_int(v, "sims_per_start") {
            c.sims_per_start = x as usize;
        }
        if let Some(x) = jsonv::opt_num(v, "segment_ns") {
            c.segment_ns = x;
        }
        if let Some(x) = jsonv::opt_int(v, "record_interval") {
            c.record_interval = x;
        }
        if let Some(x) = jsonv::opt_int(v, "checkpoint_steps") {
            c.checkpoint_steps = x;
        }
        if let Some(x) = jsonv::opt_num(v, "temperature") {
            c.temperature = x;
        }
        if let Some(x) = jsonv::opt_int(v, "n_clusters") {
            c.n_clusters = x as usize;
        }
        if let Some(x) = jsonv::opt_int(v, "lag_frames") {
            c.lag_frames = x as usize;
        }
        if let Some(w) = v.get("weighting").and_then(|w| w.as_str()) {
            c.weighting = match w {
                "Even" => Weighting::Even,
                "Adaptive" => Weighting::Adaptive,
                other => return Err(format!("unknown weighting `{other}`")),
            };
        }
        if let Some(x) = jsonv::opt_int(v, "even_until_generation") {
            c.even_until_generation = x as usize;
        }
        if let Some(x) = jsonv::opt_num(v, "respawn_fraction") {
            c.respawn_fraction = x;
        }
        if let Some(x) = jsonv::opt_int(v, "generations") {
            c.generations = x as usize;
        }
        if let Some(x) = jsonv::opt_num(v, "folded_rmsd") {
            c.folded_rmsd = x;
        }
        if let Some(x) = jsonv::opt_num(v, "kinetics_horizon_ns") {
            c.kinetics_horizon_ns = x;
        }
        c.stop_folded_pop_stderr = jsonv::opt_num(v, "stop_folded_pop_stderr");
        if let Some(x) = jsonv::opt_int(v, "seed") {
            c.seed = x;
        }
        if let Some(x) = jsonv::opt_int(v, "cores_per_sim") {
            c.cores_per_sim = x as usize;
        }
        if let Some(m) = v.get("mode").and_then(|m| m.as_str()) {
            c.mode = AdaptiveMode::parse(m)?;
        }
        if let Some(x) = jsonv::opt_int(v, "chunks_per_segment") {
            c.chunks_per_segment = x as usize;
        }
        Ok(c)
    }
}

/// Per-report-row statistics (the rows of Fig. 2 and the headline §3
/// numbers). In generational mode one row per generation barrier; in
/// streaming mode one row per `n_starts × sims_per_start` completed
/// segments (the same amount of sampling).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GenerationReport {
    pub generation: usize,
    /// Live lineages plus terminated trajectories so far.
    pub n_trajectories_total: usize,
    pub n_frames_total: usize,
    pub n_states: usize,
    pub n_active_states: usize,
    /// Lineages terminated/respawned at this clustering step (streaming:
    /// since the previous report row).
    pub n_respawned: usize,
    /// Lowest RMSD to native observed in any frame so far (Å).
    pub min_rmsd_to_native: f64,
    /// RMSD to native of the blind-predicted native state (largest
    /// equilibrium population) — the paper's 1.4 Å metric.
    pub predicted_native_rmsd: f64,
    /// Stationary population of the predicted state.
    pub predicted_native_population: f64,
    /// Total equilibrium population within `folded_rmsd` of native.
    pub folded_equilibrium_population: f64,
    /// Bootstrap standard error of that population (present when the
    /// convergence stop criterion is enabled).
    pub folded_pop_stderr: Option<f64>,
    /// Whether any frame so far is within `folded_rmsd` of native.
    pub folded_observed: bool,
}

impl GenerationReport {
    pub fn to_value(&self) -> Value {
        json!({
            "generation": self.generation as u64,
            "n_trajectories_total": self.n_trajectories_total as u64,
            "n_frames_total": self.n_frames_total as u64,
            "n_states": self.n_states as u64,
            "n_active_states": self.n_active_states as u64,
            "n_respawned": self.n_respawned as u64,
            "min_rmsd_to_native": self.min_rmsd_to_native,
            "predicted_native_rmsd": self.predicted_native_rmsd,
            "predicted_native_population": self.predicted_native_population,
            "folded_equilibrium_population": self.folded_equilibrium_population,
            "folded_pop_stderr": match self.folded_pop_stderr {
                Some(x) => Value::from(x),
                None => Value::Null,
            },
            "folded_observed": self.folded_observed,
        })
    }

    pub fn from_value(v: &Value) -> Result<GenerationReport, String> {
        Ok(GenerationReport {
            generation: jsonv::int(v, "generation")? as usize,
            n_trajectories_total: jsonv::int(v, "n_trajectories_total")? as usize,
            n_frames_total: jsonv::int(v, "n_frames_total")? as usize,
            n_states: jsonv::int(v, "n_states")? as usize,
            n_active_states: jsonv::int(v, "n_active_states")? as usize,
            n_respawned: jsonv::int(v, "n_respawned")? as usize,
            min_rmsd_to_native: jsonv::num(v, "min_rmsd_to_native")?,
            predicted_native_rmsd: jsonv::num(v, "predicted_native_rmsd")?,
            predicted_native_population: jsonv::num(v, "predicted_native_population")?,
            folded_equilibrium_population: jsonv::num(v, "folded_equilibrium_population")?,
            folded_pop_stderr: jsonv::opt_num(v, "folded_pop_stderr"),
            folded_observed: jsonv::boolean(v, "folded_observed")?,
        })
    }
}

/// Final kinetic analysis (Fig. 4): Chapman-Kolmogorov propagation of the
/// microstate MSM from the unfolded starting distribution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KineticsReport {
    /// Times in nominal ns.
    pub times_ns: Vec<f64>,
    /// Fraction of the population within `folded_rmsd` of native.
    pub folded_fraction: Vec<f64>,
    /// Folding half-time t½ (ns): first time folded_fraction reaches half
    /// its final value.
    pub t_half_ns: Option<f64>,
    /// Final folded fraction.
    pub final_folded_fraction: f64,
}

impl KineticsReport {
    pub fn to_value(&self) -> Value {
        json!({
            "times_ns": jsonv::f64s_to_value(&self.times_ns),
            "folded_fraction": jsonv::f64s_to_value(&self.folded_fraction),
            "t_half_ns": match self.t_half_ns {
                Some(x) => Value::from(x),
                None => Value::Null,
            },
            "final_folded_fraction": self.final_folded_fraction,
        })
    }

    pub fn from_value(v: &Value) -> Result<KineticsReport, String> {
        Ok(KineticsReport {
            times_ns: jsonv::f64s_from_value(jsonv::field(v, "times_ns")?)?,
            folded_fraction: jsonv::f64s_from_value(jsonv::field(v, "folded_fraction")?)?,
            t_half_ns: jsonv::opt_num(v, "t_half_ns"),
            final_folded_fraction: jsonv::num(v, "final_folded_fraction")?,
        })
    }
}

/// Full project report returned by the controller.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MsmProjectReport {
    pub generations: Vec<GenerationReport>,
    pub first_folded_generation: Option<usize>,
    /// Server-clock seconds from project start to the first frame within
    /// `folded_rmsd` of native (streaming's time-to-first-folded metric;
    /// also filled in generational mode, at barrier granularity).
    pub first_folded_elapsed_secs: Option<f64>,
    pub min_rmsd_to_native: f64,
    pub final_predicted_native_rmsd: f64,
    /// Background reclusters swapped in (streaming; 0 in generational).
    pub n_rebuilds: usize,
    pub kinetics: Option<KineticsReport>,
}

impl MsmProjectReport {
    pub fn to_value(&self) -> Value {
        json!({
            "generations": Value::from(
                self.generations.iter().map(|g| g.to_value()).collect::<Vec<_>>()
            ),
            "first_folded_generation": match self.first_folded_generation {
                Some(g) => Value::from(g as u64),
                None => Value::Null,
            },
            "first_folded_elapsed_secs": match self.first_folded_elapsed_secs {
                Some(x) => Value::from(x),
                None => Value::Null,
            },
            "min_rmsd_to_native": self.min_rmsd_to_native,
            "final_predicted_native_rmsd": self.final_predicted_native_rmsd,
            "n_rebuilds": self.n_rebuilds as u64,
            "kinetics": match &self.kinetics {
                Some(k) => k.to_value(),
                None => Value::Null,
            },
        })
    }

    pub fn from_value(v: &Value) -> Result<MsmProjectReport, String> {
        let generations = jsonv::field(v, "generations")?
            .as_array()
            .ok_or("generations is not an array")?
            .iter()
            .map(GenerationReport::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        let kinetics = match v.get("kinetics") {
            None | Some(Value::Null) => None,
            Some(k) => Some(KineticsReport::from_value(k)?),
        };
        Ok(MsmProjectReport {
            generations,
            first_folded_generation: jsonv::opt_int(v, "first_folded_generation")
                .map(|g| g as usize),
            first_folded_elapsed_secs: jsonv::opt_num(v, "first_folded_elapsed_secs"),
            min_rmsd_to_native: jsonv::num(v, "min_rmsd_to_native")?,
            final_predicted_native_rmsd: jsonv::num(v, "final_predicted_native_rmsd")?,
            n_rebuilds: jsonv::opt_int(v, "n_rebuilds").unwrap_or(0) as usize,
            kinetics,
        })
    }
}

/// Shared trajectory archive, for callers that want the raw data (the
/// Fig. 4/5 analysis binaries). Receives each full lineage trajectory
/// when it is terminated, and all live ones when the project finishes.
pub type TrajectoryArchive = Arc<Mutex<Vec<Trajectory>>>;

/// One live trajectory lineage.
struct Lineage {
    /// Stable identity: survives slot reuse, tags every command.
    uid: u64,
    traj: Trajectory,
    /// Final coordinates, from which the next chunk/segment continues.
    current: Vec<Vec3>,
    /// Streaming: state assignment of every frame in `traj`, under the
    /// current stream epoch.
    dtraj: Vec<usize>,
    /// Streaming: step counts of the chunks remaining in the segment
    /// currently in flight (beyond the dispatched chunk).
    chunks_left: Vec<u64>,
    /// Streaming: the budget is spent and this slot has been parked.
    done: bool,
}

/// A terminated lineage: kept whole for background reclusters and the
/// final model estimation.
struct ClosedLineage {
    uid: u64,
    traj: Trajectory,
    dtraj: Vec<usize>,
}

/// Bookkeeping for the single in-flight background recluster.
struct RebuildTicket {
    /// Stream epoch when the freeze was taken; a result for an older
    /// epoch is stale and ignored.
    epoch: u64,
    /// `(uid, frozen frame count)` in the order the trajectories were
    /// packed into the `msm-build` payload.
    frozen: Vec<(u64, usize)>,
}

/// The MSM adaptive-sampling controller.
pub struct MsmController {
    config: MsmProjectConfig,
    model: Arc<VillinModel>,
    /// Live lineages; commands are tagged with the lineage `uid`.
    lineages: Vec<Lineage>,
    terminated: Vec<ClosedLineage>,
    archive: Option<TrajectoryArchive>,
    /// Generational: barrier index. Streaming: pseudo-generation used
    /// only in command tags.
    current_generation: usize,
    /// Generational: commands outstanding in the current barrier.
    outstanding: usize,
    next_seed: u64,
    next_uid: u64,
    /// Decision counter: every stochastic choice draws
    /// `splitmix64(seed ^ f(counter))`, so decision state is a single
    /// integer that snapshots into the WAL (an `Rng` object would not).
    decisions: u64,
    /// Streaming: the incremental estimator (absent until bootstrap).
    stream: Option<StreamingMsm>,
    segments_done: u64,
    segments_started: u64,
    respawns_since_report: usize,
    rebuild: Option<RebuildTicket>,
    n_rebuilds: usize,
    /// Convergence reached: stop extending, drain, finish.
    halt: bool,
    reports: Vec<GenerationReport>,
    min_rmsd: f64,
    first_folded_generation: Option<usize>,
    first_folded_elapsed_secs: Option<f64>,
    /// Build the Fig. 4 kinetics report at the end (costs one more MSM
    /// propagation).
    pub analyze_kinetics: bool,
}

impl MsmController {
    /// Build a controller from configuration alone. The Gō model is
    /// constructed internally; server-side plumbing (telemetry, clock,
    /// project identity) arrives per-event through [`ControllerCtx`].
    pub fn new(config: MsmProjectConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.respawn_fraction),
            "respawn_fraction must be in [0, 1]"
        );
        assert!(
            config.chunks_per_segment >= 1,
            "chunks_per_segment must be >= 1"
        );
        MsmController {
            config,
            model: Arc::new(VillinModel::hp35()),
            lineages: Vec::new(),
            terminated: Vec::new(),
            archive: None,
            current_generation: 0,
            outstanding: 0,
            next_seed: 1,
            next_uid: 0,
            decisions: 0,
            stream: None,
            segments_done: 0,
            segments_started: 0,
            respawns_since_report: 0,
            rebuild: None,
            n_rebuilds: 0,
            halt: false,
            reports: Vec::new(),
            min_rmsd: f64::INFINITY,
            first_folded_generation: None,
            first_folded_elapsed_secs: None,
            analyze_kinetics: true,
        }
    }

    /// Attach a shared archive that receives every finished trajectory.
    pub fn with_archive(mut self, archive: TrajectoryArchive) -> Self {
        self.archive = Some(archive);
        self
    }

    /// The Gō model the controller samples — the same `hp35()` build the
    /// MD executors construct, exposed for harnesses that want one.
    pub fn model(&self) -> Arc<VillinModel> {
        self.model.clone()
    }

    fn n_live(&self) -> usize {
        self.config.n_trajectories_per_generation()
    }

    /// Streaming: total segments the project may start.
    fn segment_budget(&self) -> u64 {
        (self.config.generations * self.n_live()) as u64
    }

    fn segment_steps(&self) -> u64 {
        ns_to_steps(self.config.segment_ns, self.model.params.dt)
    }

    /// Streaming: the chunked command sizes of one segment. With more
    /// than one chunk the segment length is rounded up to a whole number
    /// of record intervals so every chunk ends on a recorded frame.
    fn streaming_chunks(&self) -> Vec<u64> {
        let steps = self.segment_steps();
        if self.config.chunks_per_segment <= 1 {
            return vec![steps];
        }
        let ri = self.config.record_interval.max(1);
        let steps = ((steps.max(ri) + ri - 1) / ri) * ri;
        chunk_steps(steps, self.config.chunks_per_segment, ri)
    }

    fn decision_u64(&mut self) -> u64 {
        self.decisions += 1;
        splitmix64(self.config.seed ^ self.decisions.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// A decision draw in [0, 1).
    fn decision_unit(&mut self) -> f64 {
        (self.decision_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn decision_pick(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (self.decision_u64() % n as u64) as usize
    }

    fn md_command(&mut self, uid: u64, start: Vec<Vec3>, n_steps: u64) -> CommandSpec {
        let seed = splitmix64(self.config.seed ^ (self.next_seed << 17));
        self.next_seed += 1;
        let spec = MdRunSpec {
            start_positions: start,
            temperature: self.config.temperature,
            n_steps,
            record_interval: self.config.record_interval,
            seed,
            checkpoint_steps: self.config.checkpoint_steps,
            inject_crash_at_step: None,
            tag: json!({ "lineage": uid, "generation": self.current_generation as u64 }),
            kernel: None,
        };
        CommandSpec::new(
            MdRunExecutor::COMMAND_TYPE,
            Resources::new(self.config.cores_per_sim, 64),
            spec.to_value(),
        )
    }

    fn slot_of(&self, uid: u64) -> Option<usize> {
        self.lineages.iter().position(|l| l.uid == uid)
    }

    /// All MSM-relevant trajectories: terminated plus live.
    fn all_trajectories(&self) -> Vec<Trajectory> {
        self.terminated
            .iter()
            .map(|c| c.traj.clone())
            .chain(self.lineages.iter().map(|l| l.traj.clone()))
            .collect()
    }

    /// Streaming: state sequences in `all_trajectories` order.
    fn all_dtrajs(&self) -> Vec<Vec<usize>> {
        self.terminated
            .iter()
            .map(|c| c.dtraj.clone())
            .chain(self.lineages.iter().map(|l| l.dtraj.clone()))
            .collect()
    }

    fn msm_config(&self) -> MsmConfig {
        MsmConfig {
            n_clusters: self.config.n_clusters,
            lag_frames: self.config.lag_frames,
            prior: 1e-4,
            reversible: true,
            kmedoids_iters: 0,
        }
    }

    /// Track the running minimum native RMSD over newly arrived frames;
    /// stamps time-to-first-folded off the server clock.
    fn scan_frames(&mut self, ctx: &ControllerCtx<'_>, frames: &[Vec<Vec3>]) {
        for f in frames {
            let d = rmsd(f, &self.model.native);
            if d < self.min_rmsd {
                self.min_rmsd = d;
            }
        }
        if self.min_rmsd <= self.config.folded_rmsd && self.first_folded_generation.is_none() {
            self.first_folded_generation = Some(self.reports.len());
            self.first_folded_elapsed_secs = Some(ctx.now.as_secs_f64());
        }
    }

    /// MSM-derived report metrics shared by both loops: blind native
    /// prediction and folded equilibrium population.
    fn msm_metrics(&self, msm: &MarkovStateModel) -> (f64, f64, f64) {
        let native = &self.model.native;
        let (_state, pop, center) = msm.predict_native();
        let predicted_rmsd = rmsd(center, native);
        let folded_pop = msm.equilibrium_population_near(native, self.config.folded_rmsd);
        (predicted_rmsd, pop, folded_pop)
    }

    /// Convergence check (§2): bootstrap the folded equilibrium
    /// population over trajectories (state definitions fixed).
    fn folded_stderr(&self, msm: &MarkovStateModel, folded_pop: f64) -> (Option<f64>, bool) {
        let threshold = match self.config.stop_folded_pop_stderr {
            Some(t) => t,
            None => return (None, false),
        };
        let native = &self.model.native;
        let folded_original_ids: Vec<usize> = msm
            .states_near(native, self.config.folded_rmsd)
            .into_iter()
            .map(|k| msm.active[k])
            .collect();
        if folded_original_ids.is_empty() || msm.dtrajs.len() < 2 {
            return (None, false);
        }
        let est = msm::bootstrap_subset_population(
            &msm.dtrajs,
            msm.n_states(),
            self.config.lag_frames,
            &folded_original_ids,
            40,
            self.config.seed ^ 0xb007,
        );
        let converged = folded_pop > 0.0 && est.std_err < threshold;
        (Some(est.std_err), converged)
    }

    /// Fig. 4 analysis: propagate the final MSM from the unfolded initial
    /// distribution and track the folded fraction.
    fn kinetics_report(&self, msm: &MarkovStateModel) -> KineticsReport {
        let folded_states = msm.states_near(&self.model.native, self.config.folded_rmsd);
        let p0 = msm.initial_distribution();
        let frame_ns = mdsim::units::steps_to_ns(self.config.record_interval, self.model.params.dt);
        let lag_ns = frame_ns * self.config.lag_frames as f64;
        let n_steps = (self.config.kinetics_horizon_ns / lag_ns).ceil().max(1.0) as usize;
        let series = propagate_series(&msm.tmatrix, &p0, n_steps);
        let folded = subset_population(&series, &folded_states);
        let times_ns: Vec<f64> = (0..=n_steps).map(|i| i as f64 * lag_ns).collect();
        let final_folded = (*folded.last().unwrap_or(&0.0)).max(0.0);
        let t_half_ns = first_crossing(&times_ns, &folded, 0.5 * final_folded);
        KineticsReport {
            times_ns,
            folded_fraction: folded,
            t_half_ns,
            final_folded_fraction: final_folded,
        }
    }

    fn final_report(&self, kinetics: Option<KineticsReport>) -> MsmProjectReport {
        MsmProjectReport {
            generations: self.reports.clone(),
            first_folded_generation: self.first_folded_generation,
            first_folded_elapsed_secs: self.first_folded_elapsed_secs,
            min_rmsd_to_native: self.min_rmsd,
            final_predicted_native_rmsd: self
                .reports
                .last()
                .map(|r| r.predicted_native_rmsd)
                .unwrap_or(f64::NAN),
            n_rebuilds: self.n_rebuilds,
            kinetics,
        }
    }
}

// ---------------------------------------------------------------------------
// Generational loop (barrier at every clustering step)
// ---------------------------------------------------------------------------

impl MsmController {
    fn spawn_generation_zero(&mut self) -> Vec<Action> {
        let mut specs = Vec::new();
        for s in 0..self.config.n_starts {
            let start = self.model.unfolded_start(self.config.seed ^ (s as u64 + 1));
            for _ in 0..self.config.sims_per_start {
                let uid = self.next_uid;
                self.next_uid += 1;
                let mut traj = Trajectory::new();
                traj.push(0.0, start.clone());
                self.lineages.push(Lineage {
                    uid,
                    traj,
                    current: start.clone(),
                    dtraj: Vec::new(),
                    chunks_left: Vec::new(),
                    done: false,
                });
                specs.push(self.md_command(uid, start.clone(), self.segment_steps()));
            }
        }
        self.outstanding = specs.len();
        vec![
            Action::Log(format!(
                "generation 0: spawning {} lineages from {} unfolded starts",
                specs.len(),
                self.config.n_starts
            )),
            Action::Spawn(specs),
        ]
    }

    /// Cluster everything, report, terminate/respawn, extend.
    fn generation_boundary(&mut self, ctx: &ControllerCtx<'_>) -> Vec<Action> {
        let trajs = self.all_trajectories();
        let clustering_span = ctx.telemetry.map(|t| t.journal().span("msm_clustering"));
        let (msm, clustering_ns) =
            copernicus_telemetry::timed(|| MarkovStateModel::build(&trajs, self.msm_config()));
        drop(clustering_span);
        if let Some(t) = ctx.telemetry {
            t.registry()
                .histogram(names::CLUSTERING_SECS, Labels::new(), buckets::SECONDS)
                .record(clustering_ns as f64 / 1e9);
            t.registry()
                .gauge(names::MSM_STATES, Labels::new())
                .set(msm.n_states() as f64);
        }

        // Reporting against the (held-out) native structure.
        let native = &self.model.native;
        let mut min_rmsd = self.min_rmsd;
        for t in &trajs {
            for (_, frame) in t.iter() {
                let d = rmsd(frame, native);
                if d < min_rmsd {
                    min_rmsd = d;
                }
            }
        }
        self.min_rmsd = min_rmsd;
        if min_rmsd <= self.config.folded_rmsd && self.first_folded_generation.is_none() {
            self.first_folded_generation = Some(self.current_generation);
            self.first_folded_elapsed_secs = Some(ctx.now.as_secs_f64());
        }
        let (predicted_rmsd, pop, folded_pop) = self.msm_metrics(&msm);
        let (folded_pop_stderr, converged) = self.folded_stderr(&msm, folded_pop);

        let done = converged || self.current_generation + 1 >= self.config.generations;
        let n_respawn = if done {
            0
        } else {
            (self.config.respawn_fraction * self.lineages.len() as f64).round() as usize
        };

        let report = GenerationReport {
            generation: self.current_generation,
            n_trajectories_total: trajs.len(),
            n_frames_total: trajs.iter().map(|t| t.len()).sum(),
            n_states: msm.n_states(),
            n_active_states: msm.n_active(),
            n_respawned: n_respawn,
            min_rmsd_to_native: min_rmsd,
            predicted_native_rmsd: predicted_rmsd,
            predicted_native_population: pop,
            folded_equilibrium_population: folded_pop,
            folded_pop_stderr,
            folded_observed: min_rmsd <= self.config.folded_rmsd,
        };
        let log = format!(
            "generation {} clustered: {} states ({} active), min RMSD {:.2} Å, blind prediction {:.2} Å",
            report.generation,
            report.n_states,
            report.n_active_states,
            report.min_rmsd_to_native,
            report.predicted_native_rmsd,
        );
        if let Some(t) = ctx.telemetry {
            t.journal().record(Event::GenerationClustered {
                generation: report.generation as u64,
                n_states: report.n_states as u64,
                n_trajectories: report.n_trajectories_total as u64,
                n_respawned: report.n_respawned as u64,
            });
        }
        self.reports.push(report);

        if done {
            // Archive the surviving lineages.
            if let Some(archive) = &self.archive {
                let mut guard = archive.lock();
                for l in &self.lineages {
                    guard.push(l.traj.clone());
                }
            }
            let kinetics = if self.analyze_kinetics {
                Some(self.kinetics_report(&msm))
            } else {
                None
            };
            let final_report = self.final_report(kinetics);
            return vec![
                Action::Log(log),
                Action::FinishProject {
                    result: final_report.to_value(),
                },
            ];
        }

        // --- Adaptive step -------------------------------------------------
        // Weights over active states: high weight = under-explored. Early
        // generations (unstable partitioning) use even weighting
        // regardless of the configured policy (§3.2).
        let effective_weighting = if self.current_generation < self.config.even_until_generation {
            Weighting::Even
        } else {
            self.config.weighting
        };
        let weights = match effective_weighting {
            Weighting::Even => msm::even_weights(msm.n_active()),
            Weighting::Adaptive => msm::adaptive_weights(&msm.counts.restrict(&msm.active)),
        };

        // Current state of each live lineage = assignment of its last
        // frame. The pooled assignment vector is ordered: terminated
        // trajectories first, then live lineages (see all_trajectories).
        let assignment: Vec<usize> = msm.dtrajs.iter().flatten().copied().collect();
        let mut frame_offset: usize = self.terminated.iter().map(|c| c.traj.len()).sum();
        let mut lineage_state = Vec::with_capacity(self.lineages.len());
        for l in &self.lineages {
            lineage_state.push(assignment[frame_offset + l.traj.len() - 1]);
            frame_offset += l.traj.len();
        }

        // Terminate the lineages sitting in the best-explored states
        // (lowest weight; unassignable states get weight 0).
        let state_weight =
            |state: usize| -> f64 { msm.active_index(state).map(|k| weights[k]).unwrap_or(0.0) };
        let mut order: Vec<usize> = (0..self.lineages.len()).collect();
        order.sort_by(|&a, &b| {
            state_weight(lineage_state[a])
                .partial_cmp(&state_weight(lineage_state[b]))
                .unwrap()
                .then(a.cmp(&b))
        });
        let to_terminate: Vec<usize> = order.into_iter().take(n_respawn).collect();

        // Pick respawn start frames from high-weight states.
        let allocation = msm::allocate_spawns(&weights, n_respawn);
        let frames: Vec<&[Vec3]> = trajs
            .iter()
            .flat_map(|t| t.frames().iter().map(|f| f.as_slice()))
            .collect();
        let mut respawn_starts: Vec<Vec<Vec3>> = Vec::with_capacity(n_respawn);
        for (active_idx, &count) in allocation.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let state = msm.active[active_idx];
            let members: Vec<usize> = assignment
                .iter()
                .enumerate()
                .filter(|(_, &a)| a == state)
                .map(|(i, _)| i)
                .collect();
            for _ in 0..count {
                let pick = members[self.decision_pick(members.len())];
                respawn_starts.push(frames[pick].to_vec());
            }
        }
        drop(frames);

        // Apply terminations: archive the full lineage trajectory and
        // restart the slot from a respawn frame.
        for (slot, start) in to_terminate.iter().zip(respawn_starts) {
            let uid = self.next_uid;
            self.next_uid += 1;
            let old = std::mem::replace(
                &mut self.lineages[*slot],
                Lineage {
                    uid,
                    traj: {
                        let mut t = Trajectory::new();
                        t.push(0.0, start.clone());
                        t
                    },
                    current: start,
                    dtraj: Vec::new(),
                    chunks_left: Vec::new(),
                    done: false,
                },
            );
            if let Some(archive) = &self.archive {
                archive.lock().push(old.traj.clone());
            }
            self.terminated.push(ClosedLineage {
                uid: old.uid,
                traj: old.traj,
                dtraj: Vec::new(),
            });
        }

        // Next generation: extend every live lineage by one segment.
        self.current_generation += 1;
        let starts: Vec<(u64, Vec<Vec3>)> = self
            .lineages
            .iter()
            .map(|l| (l.uid, l.current.clone()))
            .collect();
        let specs: Vec<CommandSpec> = starts
            .into_iter()
            .map(|(uid, s)| {
                let steps = self.segment_steps();
                self.md_command(uid, s, steps)
            })
            .collect();
        self.outstanding = specs.len();
        vec![Action::Log(log), Action::Spawn(specs)]
    }

    fn on_md_finished_generational(
        &mut self,
        ctx: &ControllerCtx<'_>,
        parsed: MdRunOutput,
    ) -> Vec<Action> {
        let uid = parsed.tag["lineage"].as_u64().expect("tagged");
        let slot = self.slot_of(uid).expect("live lineage");
        let lineage = &mut self.lineages[slot];
        lineage.traj.append_continuation(&parsed.trajectory);
        lineage.current = parsed.final_positions;
        self.outstanding -= 1;
        if self.outstanding == 0 {
            self.generation_boundary(ctx)
        } else {
            vec![]
        }
    }
}

// ---------------------------------------------------------------------------
// Streaming loop (no barrier: incremental MSM + continuous respawn)
// ---------------------------------------------------------------------------

impl MsmController {
    fn spawn_streaming_start(&mut self) -> Vec<Action> {
        let mut specs = Vec::new();
        for s in 0..self.config.n_starts {
            let start = self.model.unfolded_start(self.config.seed ^ (s as u64 + 1));
            for _ in 0..self.config.sims_per_start {
                let uid = self.next_uid;
                self.next_uid += 1;
                let mut traj = Trajectory::new();
                traj.push(0.0, start.clone());
                self.lineages.push(Lineage {
                    uid,
                    traj,
                    current: start.clone(),
                    dtraj: Vec::new(),
                    chunks_left: Vec::new(),
                    done: false,
                });
            }
        }
        for slot in 0..self.lineages.len() {
            specs.push(self.start_segment(slot));
        }
        vec![
            Action::Log(format!(
                "streaming start: {} lineages from {} unfolded starts, \
                 {} segments budgeted, {} chunk(s) per segment",
                specs.len(),
                self.config.n_starts,
                self.segment_budget(),
                self.config.chunks_per_segment,
            )),
            Action::Spawn(specs),
        ]
    }

    /// Dispatch the first chunk of a fresh segment for `slot`, queueing
    /// the remaining chunks on the lineage. Spends one unit of budget.
    fn start_segment(&mut self, slot: usize) -> CommandSpec {
        let chunks = self.streaming_chunks();
        let uid = self.lineages[slot].uid;
        let start = self.lineages[slot].current.clone();
        self.lineages[slot].chunks_left = chunks[1..].to_vec();
        self.segments_started += 1;
        self.md_command(uid, start, chunks[0])
    }

    fn on_md_finished_streaming(
        &mut self,
        ctx: &ControllerCtx<'_>,
        parsed: MdRunOutput,
    ) -> Vec<Action> {
        let uid = match parsed.tag["lineage"].as_u64() {
            Some(u) => u,
            None => return vec![Action::Log("mdrun output without lineage tag".into())],
        };
        let slot = match self.slot_of(uid) {
            Some(s) => s,
            // A result for a lineage closed in the meantime cannot
            // happen under exactly-once delivery; tolerate it anyway.
            None => return vec![Action::Log(format!("stray segment for lineage {uid}"))],
        };
        // New frames only: chunk frame 0 duplicates the lineage's
        // current last frame.
        let new_frames: Vec<Vec<Vec3>> = parsed.trajectory.frames()[1..].to_vec();
        {
            let lineage = &mut self.lineages[slot];
            lineage.traj.append_continuation(&parsed.trajectory);
            lineage.current = parsed.final_positions;
        }
        self.scan_frames(ctx, &new_frames);
        if let Some(stream) = &mut self.stream {
            let assigned = stream.observe(uid, &new_frames);
            self.lineages[slot].dtraj.extend(assigned);
        }
        // More chunks of this segment? Keep the slot hot immediately.
        if !self.lineages[slot].chunks_left.is_empty() {
            let next = self.lineages[slot].chunks_left.remove(0);
            let start = self.lineages[slot].current.clone();
            let spec = self.md_command(uid, start, next);
            return vec![Action::Spawn(vec![spec])];
        }
        self.segments_done += 1;
        self.segment_end(ctx, slot)
    }

    /// A lineage finished (or irrecoverably lost) a whole segment:
    /// bootstrap/report as due, then decide this lineage's fate — the
    /// streaming replacement for the generation barrier.
    fn segment_end(&mut self, ctx: &ControllerCtx<'_>, slot: usize) -> Vec<Action> {
        let mut actions = Vec::new();
        let n_live = self.n_live() as u64;
        if self.stream.is_none() {
            if self.segments_done >= n_live {
                self.bootstrap(ctx, &mut actions);
            } else {
                // First round still filling in: sampling decisions need
                // a model, so extend unconditionally.
                if self.segments_started < self.segment_budget() && !self.halt {
                    let spec = self.start_segment(slot);
                    actions.push(Action::Spawn(vec![spec]));
                } else {
                    self.lineages[slot].done = true;
                    actions.extend(self.maybe_finish(ctx));
                }
                return actions;
            }
        }
        // Report row + convergence check at generation-equivalent
        // cadence: every n_live completed segments.
        if self.segments_done % n_live == 0 {
            self.streaming_report_row(ctx, &mut actions);
        }
        actions.extend(self.streaming_decision(ctx, slot));
        self.maybe_spawn_rebuild(&mut actions);
        actions
    }

    /// Found the incremental estimator on an inline k-centers build over
    /// the first round of segments.
    fn bootstrap(&mut self, ctx: &ControllerCtx<'_>, actions: &mut Vec<Action>) {
        let pooled: Vec<Vec<Vec3>> = self
            .lineages
            .iter()
            .flat_map(|l| l.traj.frames().iter().cloned())
            .collect();
        let span = ctx.telemetry.map(|t| t.journal().span("msm_bootstrap"));
        let (clustering, elapsed_ns) = copernicus_telemetry::timed(|| {
            msm::cluster::k_centers(&pooled, self.config.n_clusters, 0, |a, b| rmsd(a, b))
        });
        drop(span);
        let centers: Vec<Vec<Vec3>> = clustering
            .centers
            .iter()
            .map(|&i| pooled[i].clone())
            .collect();
        let radius = clustering.max_radius();
        let mut dtrajs: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        let mut offset = 0usize;
        for l in &mut self.lineages {
            let n = l.traj.len();
            l.dtraj = clustering.assignment[offset..offset + n].to_vec();
            offset += n;
            dtrajs.insert(l.uid, l.dtraj.clone());
        }
        let stream_config = StreamingConfig {
            // Headroom above the founding cluster count: novel frames
            // mint new microstates until the next background rebuild.
            max_states: self.config.n_clusters * 2,
            lag_frames: self.config.lag_frames,
            ..StreamingConfig::default()
        };
        let stream = StreamingMsm::from_parts(stream_config, centers, radius, &dtrajs);
        if let Some(t) = ctx.telemetry {
            t.registry()
                .histogram(names::CLUSTERING_SECS, Labels::new(), buckets::SECONDS)
                .record(elapsed_ns as f64 / 1e9);
            t.registry()
                .gauge(names::MSM_STATES, Labels::new())
                .set(stream.n_states() as f64);
        }
        actions.push(Action::Log(format!(
            "stream bootstrap: {} states over {} frames (radius {:.2} Å)",
            stream.n_states(),
            pooled.len(),
            stream.radius(),
        )));
        self.stream = Some(stream);
    }

    /// Estimation-only report row from the incremental counts — no
    /// reclustering, so this is cheap enough to run at row cadence.
    fn streaming_report_row(&mut self, ctx: &ControllerCtx<'_>, actions: &mut Vec<Action>) {
        let stream = match &self.stream {
            Some(s) => s,
            None => return,
        };
        let msm = MarkovStateModel::from_streamed(
            stream.centers().to_vec(),
            self.all_dtrajs(),
            stream.counts().clone(),
            self.msm_config(),
        );
        let (predicted_rmsd, pop, folded_pop) = self.msm_metrics(&msm);
        let (folded_pop_stderr, converged) = self.folded_stderr(&msm, folded_pop);
        let report = GenerationReport {
            generation: self.reports.len(),
            n_trajectories_total: self.terminated.len() + self.lineages.len(),
            n_frames_total: self.terminated.iter().map(|c| c.traj.len()).sum::<usize>()
                + self.lineages.iter().map(|l| l.traj.len()).sum::<usize>(),
            n_states: msm.n_states(),
            n_active_states: msm.n_active(),
            n_respawned: self.respawns_since_report,
            min_rmsd_to_native: self.min_rmsd,
            predicted_native_rmsd: predicted_rmsd,
            predicted_native_population: pop,
            folded_equilibrium_population: folded_pop,
            folded_pop_stderr,
            folded_observed: self.min_rmsd <= self.config.folded_rmsd,
        };
        self.respawns_since_report = 0;
        actions.push(Action::Log(format!(
            "stream row {}: {} states ({} active), {} segments done, min RMSD {:.2} Å",
            report.generation,
            report.n_states,
            report.n_active_states,
            self.segments_done,
            report.min_rmsd_to_native,
        )));
        if let Some(t) = ctx.telemetry {
            t.journal().record(Event::GenerationClustered {
                generation: report.generation as u64,
                n_states: report.n_states as u64,
                n_trajectories: report.n_trajectories_total as u64,
                n_respawned: report.n_respawned as u64,
            });
            t.registry()
                .gauge(names::MSM_STATES, Labels::new())
                .set(report.n_states as f64);
        }
        self.reports.push(report);
        if converged && !self.halt {
            self.halt = true;
            actions.push(Action::Log(
                "folded population converged below threshold: draining ensemble".into(),
            ));
        }
    }

    /// Extend or terminate+respawn `slot`, immediately — the continuous
    /// counterpart of the generational adaptive step. Termination ranks
    /// the lineage's current-state weight against the live ensemble.
    fn streaming_decision(&mut self, ctx: &ControllerCtx<'_>, slot: usize) -> Vec<Action> {
        if self.halt || self.segments_started >= self.segment_budget() {
            self.lineages[slot].done = true;
            return self.maybe_finish(ctx);
        }
        // Termination ranking always uses adaptive weights: "how
        // redundant is more sampling here" is inherently an uncertainty
        // question, even when *spawn targeting* is even-weighted.
        let term_weights = self
            .stream
            .as_ref()
            .unwrap()
            .spawn_weights(Weighting::Adaptive);
        let weight_of = |l: &Lineage| -> f64 {
            l.dtraj
                .last()
                .and_then(|&s| term_weights.weight_of(s))
                // Disconnected or unassigned: maximally interesting,
                // never terminate.
                .unwrap_or(f64::INFINITY)
        };
        let mine = weight_of(&self.lineages[slot]);
        let my_uid = self.lineages[slot].uid;
        let live: Vec<&Lineage> = self.lineages.iter().filter(|l| !l.done).collect();
        let cutoff = (self.config.respawn_fraction * live.len() as f64).floor() as usize;
        let rank = live
            .iter()
            .filter(|l| {
                let w = weight_of(l);
                w < mine || (w == mine && l.uid < my_uid)
            })
            .count();
        drop(live);
        let respawn = cutoff > 0 && rank < cutoff && mine.is_finite();

        if !respawn {
            let spec = self.start_segment(slot);
            return vec![Action::Spawn(vec![spec])];
        }

        // Terminate: archive the lineage, then restart the slot from an
        // exemplar frame of a weight-sampled under-explored state.
        let effective_weighting = if self.reports.len() < self.config.even_until_generation {
            Weighting::Even
        } else {
            self.config.weighting
        };
        let draw = self.decision_unit();
        let stream = self.stream.as_mut().unwrap();
        let spawn_weights = stream.spawn_weights(effective_weighting);
        let k = weighted_pick(&spawn_weights.weights, draw);
        let target_state = spawn_weights.active[k];
        let start = stream.exemplar(target_state).to_vec();
        stream.end_lineage(my_uid);

        let new_uid = self.next_uid;
        self.next_uid += 1;
        let mut traj = Trajectory::new();
        traj.push(0.0, start.clone());
        let dtraj = self
            .stream
            .as_mut()
            .unwrap()
            .observe(new_uid, std::slice::from_ref(&start));
        let old = std::mem::replace(
            &mut self.lineages[slot],
            Lineage {
                uid: new_uid,
                traj,
                current: start,
                dtraj,
                chunks_left: Vec::new(),
                done: false,
            },
        );
        if let Some(archive) = &self.archive {
            archive.lock().push(old.traj.clone());
        }
        self.terminated.push(ClosedLineage {
            uid: old.uid,
            traj: old.traj,
            dtraj: old.dtraj,
        });
        self.respawns_since_report += 1;
        let spec = self.start_segment(slot);
        vec![
            Action::Log(format!(
                "lineage {my_uid} terminated (weight {mine:.3e}, rank {rank}/{cutoff}); \
                 respawned as {new_uid} from state {target_state}"
            )),
            Action::Spawn(vec![spec]),
        ]
    }

    /// Dispatch the periodic full recluster to the fleet when drift
    /// warrants one. Single-flight; skipped near the end of the budget
    /// (the result would land after the project finishes).
    fn maybe_spawn_rebuild(&mut self, actions: &mut Vec<Action>) {
        let stream = match &self.stream {
            Some(s) => s,
            None => return,
        };
        if self.rebuild.is_some() || self.halt || !stream.rebuild_due() {
            return;
        }
        if self.segment_budget().saturating_sub(self.segments_started) < self.n_live() as u64 {
            return;
        }
        let mut frozen = Vec::new();
        let mut trajs = Vec::new();
        for c in &self.terminated {
            frozen.push((c.uid, c.traj.len()));
            trajs.push(c.traj.frames().to_vec());
        }
        for l in &self.lineages {
            frozen.push((l.uid, l.traj.len()));
            trajs.push(l.traj.frames().to_vec());
        }
        let epoch = stream.epoch();
        let drift = stream.drift();
        let spec = MsmBuildSpec {
            trajs,
            n_clusters: self.config.n_clusters,
            tag: json!({ "kind": "msm-build", "epoch": epoch }),
        };
        self.rebuild = Some(RebuildTicket { epoch, frozen });
        actions.push(Action::Log(format!(
            "dispatching background recluster (epoch {epoch}, drift {drift:.2})"
        )));
        actions.push(Action::Spawn(vec![CommandSpec::new(
            MsmBuildExecutor::COMMAND_TYPE,
            Resources::new(self.config.cores_per_sim, 64),
            spec.to_value(),
        )]));
    }

    /// A background recluster landed: swap it in atomically, replay the
    /// frames that arrived after the freeze, and re-derive every
    /// lineage's state sequence under the new partitioning.
    fn on_msm_build(&mut self, ctx: &ControllerCtx<'_>, out: MsmBuildOutput) -> Vec<Action> {
        let ticket = match self.rebuild.take() {
            Some(t) => t,
            None => return vec![Action::Log("stray msm-build result ignored".into())],
        };
        let stream = match &mut self.stream {
            Some(s) => s,
            None => return vec![Action::Log("msm-build result without a stream".into())],
        };
        if out.tag["epoch"].as_u64() != Some(stream.epoch()) || ticket.epoch != stream.epoch() {
            return vec![Action::Log(format!(
                "stale msm-build (epoch {:?} vs {}) ignored",
                out.tag["epoch"].as_u64(),
                stream.epoch()
            ))];
        }
        let frozen: BTreeMap<u64, Vec<usize>> = ticket
            .frozen
            .iter()
            .zip(out.dtrajs)
            .map(|(&(uid, _len), d)| (uid, d))
            .collect();
        let frozen_len: BTreeMap<u64, usize> =
            ticket.frozen.iter().map(|&(uid, len)| (uid, len)).collect();
        stream.rebase(out.centers, out.radius, &frozen);
        // Replay post-freeze frames (they arrived while the rebuild ran)
        // and install the re-derived dtrajs everywhere.
        for c in &mut self.terminated {
            let flen = frozen_len.get(&c.uid).copied().unwrap_or(0);
            let mut d = frozen.get(&c.uid).cloned().unwrap_or_default();
            if c.traj.len() > flen {
                d.extend(stream.observe(c.uid, &c.traj.frames()[flen..]));
            }
            stream.end_lineage(c.uid);
            c.dtraj = d;
        }
        for l in &mut self.lineages {
            let flen = frozen_len.get(&l.uid).copied().unwrap_or(0);
            let mut d = frozen.get(&l.uid).cloned().unwrap_or_default();
            if l.traj.len() > flen {
                d.extend(stream.observe(l.uid, &l.traj.frames()[flen..]));
            }
            l.dtraj = d;
        }
        self.n_rebuilds += 1;
        let epoch = stream.epoch();
        let n_states = stream.n_states();
        if let Some(t) = ctx.telemetry {
            t.registry()
                .gauge(names::MSM_STATES, Labels::new())
                .set(n_states as f64);
        }
        let mut actions = vec![Action::Log(format!(
            "rebased stream to epoch {epoch}: {n_states} states"
        ))];
        actions.extend(self.maybe_finish(ctx));
        actions
    }

    /// Finish once every slot is parked and no background rebuild is in
    /// flight (its result must not arrive at a finished project).
    fn maybe_finish(&mut self, ctx: &ControllerCtx<'_>) -> Vec<Action> {
        if self.rebuild.is_some() || !self.lineages.iter().all(|l| l.done) {
            return vec![];
        }
        self.finish_streaming(ctx)
    }

    fn finish_streaming(&mut self, _ctx: &ControllerCtx<'_>) -> Vec<Action> {
        if let Some(archive) = &self.archive {
            let mut guard = archive.lock();
            for l in &self.lineages {
                guard.push(l.traj.clone());
            }
        }
        let msm = match &self.stream {
            Some(s) => MarkovStateModel::from_streamed(
                s.centers().to_vec(),
                self.all_dtrajs(),
                s.counts().clone(),
                self.msm_config(),
            ),
            // Degenerate runs (budget exhausted before bootstrap) fall
            // back to a from-scratch build.
            None => MarkovStateModel::build(&self.all_trajectories(), self.msm_config()),
        };
        if self.reports.is_empty() {
            let (predicted_rmsd, pop, folded_pop) = self.msm_metrics(&msm);
            let (folded_pop_stderr, _) = self.folded_stderr(&msm, folded_pop);
            self.reports.push(GenerationReport {
                generation: 0,
                n_trajectories_total: self.terminated.len() + self.lineages.len(),
                n_frames_total: self.all_trajectories().iter().map(|t| t.len()).sum(),
                n_states: msm.n_states(),
                n_active_states: msm.n_active(),
                n_respawned: self.respawns_since_report,
                min_rmsd_to_native: self.min_rmsd,
                predicted_native_rmsd: predicted_rmsd,
                predicted_native_population: pop,
                folded_equilibrium_population: folded_pop,
                folded_pop_stderr,
                folded_observed: self.min_rmsd <= self.config.folded_rmsd,
            });
        }
        let kinetics = if self.analyze_kinetics {
            Some(self.kinetics_report(&msm))
        } else {
            None
        };
        let final_report = self.final_report(kinetics);
        vec![
            Action::Log(format!(
                "streaming project done: {} segments, {} rebuilds, min RMSD {:.2} Å",
                self.segments_done, self.n_rebuilds, self.min_rmsd,
            )),
            Action::FinishProject {
                result: final_report.to_value(),
            },
        ]
    }
}

/// Weight-proportional index pick from a unit draw.
fn weighted_pick(weights: &[f64], draw: f64) -> usize {
    assert!(!weights.is_empty());
    let total: f64 = weights.iter().map(|w| w.max(0.0)).sum();
    if total <= 0.0 {
        return ((draw * weights.len() as f64) as usize).min(weights.len() - 1);
    }
    let target = draw * total;
    let mut acc = 0.0;
    for (i, w) in weights.iter().enumerate() {
        acc += w.max(0.0);
        if target < acc {
            return i;
        }
    }
    weights.len() - 1
}

// ---------------------------------------------------------------------------
// Controller protocol: event dispatch + WAL snapshot/restore
// ---------------------------------------------------------------------------

fn lineage_to_value(l: &Lineage) -> Value {
    json!({
        "uid": l.uid,
        "traj": l.traj.to_value(),
        "current": jsonv::frame_to_value(&l.current),
        "dtraj": jsonv::usizes_to_value(&l.dtraj),
        "chunks_left": Value::from(l.chunks_left.clone()),
        "done": l.done,
    })
}

fn lineage_from_value(v: &Value) -> Result<Lineage, String> {
    let chunks_left = jsonv::field(v, "chunks_left")?
        .as_array()
        .ok_or("chunks_left is not an array")?
        .iter()
        .map(|x| x.as_u64().ok_or_else(|| "non-integer chunk".to_string()))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Lineage {
        uid: jsonv::int(v, "uid")?,
        traj: Trajectory::from_value(jsonv::field(v, "traj")?)?,
        current: jsonv::frame_from_value(jsonv::field(v, "current")?)?,
        dtraj: jsonv::usizes_from_value(jsonv::field(v, "dtraj")?)?,
        chunks_left,
        done: jsonv::boolean(v, "done")?,
    })
}

fn closed_to_value(c: &ClosedLineage) -> Value {
    json!({
        "uid": c.uid,
        "traj": c.traj.to_value(),
        "dtraj": jsonv::usizes_to_value(&c.dtraj),
    })
}

fn closed_from_value(v: &Value) -> Result<ClosedLineage, String> {
    Ok(ClosedLineage {
        uid: jsonv::int(v, "uid")?,
        traj: Trajectory::from_value(jsonv::field(v, "traj")?)?,
        dtraj: jsonv::usizes_from_value(jsonv::field(v, "dtraj")?)?,
    })
}

fn ticket_to_value(t: &RebuildTicket) -> Value {
    json!({
        "epoch": t.epoch,
        "frozen": Value::from(
            t.frozen
                .iter()
                .map(|&(uid, len)| json!({ "uid": uid, "len": len as u64 }))
                .collect::<Vec<_>>()
        ),
    })
}

fn ticket_from_value(v: &Value) -> Result<RebuildTicket, String> {
    let frozen = jsonv::field(v, "frozen")?
        .as_array()
        .ok_or("frozen is not an array")?
        .iter()
        .map(|e| Ok((jsonv::int(e, "uid")?, jsonv::int(e, "len")? as usize)))
        .collect::<Result<Vec<_>, String>>()?;
    Ok(RebuildTicket {
        epoch: jsonv::int(v, "epoch")?,
        frozen,
    })
}

/// Non-finite floats have no JSON literal; encode `inf` (the "no frame
/// seen yet" min-RMSD) as null.
fn finite_to_value(x: f64) -> Value {
    if x.is_finite() {
        Value::from(x)
    } else {
        Value::Null
    }
}

impl Controller for MsmController {
    fn name(&self) -> &str {
        "msm"
    }

    fn on_event(&mut self, ctx: ControllerCtx<'_>, event: ControllerEvent<'_>) -> Vec<Action> {
        match event {
            ControllerEvent::ProjectStarted => match self.config.mode {
                AdaptiveMode::Generational => self.spawn_generation_zero(),
                AdaptiveMode::Streaming => self.spawn_streaming_start(),
            },
            ControllerEvent::CommandFinished(output) => {
                let kind = output
                    .data
                    .get("tag")
                    .and_then(|t| t.get("kind"))
                    .and_then(|k| k.as_str());
                if kind == Some("msm-build") {
                    let parsed = match MsmBuildOutput::from_value(&output.data) {
                        Ok(p) => p,
                        Err(e) => {
                            return vec![Action::Log(format!(
                                "could not parse msm-build output: {e}"
                            ))]
                        }
                    };
                    return self.on_msm_build(&ctx, parsed);
                }
                let parsed = match MdRunOutput::from_value(&output.data) {
                    Ok(p) => p,
                    Err(e) => {
                        return vec![Action::Log(format!("could not parse mdrun output: {e}"))]
                    }
                };
                match self.config.mode {
                    AdaptiveMode::Generational => self.on_md_finished_generational(&ctx, parsed),
                    AdaptiveMode::Streaming => self.on_md_finished_streaming(&ctx, parsed),
                }
            }
            ControllerEvent::WorkerFailed { worker, requeued } => {
                vec![Action::Log(format!(
                    "worker {worker} lost; requeued: {requeued:?}"
                ))]
            }
            ControllerEvent::CommandDropped {
                command,
                attempts,
                reason,
                tag,
            } => {
                let mut actions = vec![Action::Log(format!(
                    "{command} dropped after {attempts} attempts ({reason:?})"
                ))];
                match self.config.mode {
                    AdaptiveMode::Generational => {
                        // The segment will never arrive; its lineage
                        // simply does not advance this generation.
                        // Account for it so the barrier still closes.
                        self.outstanding -= 1;
                        if self.outstanding == 0 {
                            actions.extend(self.generation_boundary(&ctx));
                        }
                    }
                    AdaptiveMode::Streaming => {
                        if tag.get("kind").and_then(|k| k.as_str()) == Some("msm-build") {
                            // The background recluster died; the stream
                            // keeps estimating on the old partitioning
                            // and a later segment re-triggers a rebuild.
                            self.rebuild = None;
                            actions.extend(self.maybe_finish(&ctx));
                        } else if let Some(uid) = tag.get("lineage").and_then(|l| l.as_u64()) {
                            if let Some(slot) = self.slot_of(uid) {
                                // The chunk is gone for good: abandon the
                                // rest of the segment and decide from the
                                // frames that did arrive, so the slot
                                // stays in rotation.
                                self.lineages[slot].chunks_left.clear();
                                self.segments_done += 1;
                                actions.extend(self.segment_end(&ctx, slot));
                            }
                        }
                    }
                }
                actions
            }
        }
    }

    /// Full decision state for the server's write-ahead log: config,
    /// lineages (with trajectories and stream assignments), the
    /// incremental estimator, and every counter. Continuously mutated
    /// streaming state thus survives a server crash (DESIGN.md §16; the
    /// streaming fault suite proves the round-trip).
    fn snapshot(&self) -> Option<Value> {
        Some(json!({
            "config": self.config.to_value(),
            "lineages": Value::from(
                self.lineages.iter().map(lineage_to_value).collect::<Vec<_>>()
            ),
            "terminated": Value::from(
                self.terminated.iter().map(closed_to_value).collect::<Vec<_>>()
            ),
            "current_generation": self.current_generation as u64,
            "outstanding": self.outstanding as u64,
            "next_seed": self.next_seed,
            "next_uid": self.next_uid,
            "decisions": self.decisions,
            "segments_done": self.segments_done,
            "segments_started": self.segments_started,
            "respawns_since_report": self.respawns_since_report as u64,
            "n_rebuilds": self.n_rebuilds as u64,
            "halt": self.halt,
            "stream": match &self.stream {
                Some(s) => s.to_value(),
                None => Value::Null,
            },
            "rebuild": match &self.rebuild {
                Some(t) => ticket_to_value(t),
                None => Value::Null,
            },
            "reports": Value::from(
                self.reports.iter().map(|r| r.to_value()).collect::<Vec<_>>()
            ),
            "min_rmsd": finite_to_value(self.min_rmsd),
            "first_folded_generation": match self.first_folded_generation {
                Some(g) => Value::from(g as u64),
                None => Value::Null,
            },
            "first_folded_elapsed_secs": match self.first_folded_elapsed_secs {
                Some(x) => Value::from(x),
                None => Value::Null,
            },
            "analyze_kinetics": self.analyze_kinetics,
        }))
    }

    fn restore(&mut self, snapshot: Value) -> bool {
        fn parse(c: &mut MsmController, v: &Value) -> Result<(), String> {
            c.config = MsmProjectConfig::from_value(jsonv::field(v, "config")?)?;
            c.lineages = jsonv::field(v, "lineages")?
                .as_array()
                .ok_or("lineages is not an array")?
                .iter()
                .map(lineage_from_value)
                .collect::<Result<Vec<_>, _>>()?;
            c.terminated = jsonv::field(v, "terminated")?
                .as_array()
                .ok_or("terminated is not an array")?
                .iter()
                .map(closed_from_value)
                .collect::<Result<Vec<_>, _>>()?;
            c.current_generation = jsonv::int(v, "current_generation")? as usize;
            c.outstanding = jsonv::int(v, "outstanding")? as usize;
            c.next_seed = jsonv::int(v, "next_seed")?;
            c.next_uid = jsonv::int(v, "next_uid")?;
            c.decisions = jsonv::int(v, "decisions")?;
            c.segments_done = jsonv::int(v, "segments_done")?;
            c.segments_started = jsonv::int(v, "segments_started")?;
            c.respawns_since_report = jsonv::int(v, "respawns_since_report")? as usize;
            c.n_rebuilds = jsonv::int(v, "n_rebuilds")? as usize;
            c.halt = jsonv::boolean(v, "halt")?;
            c.stream = match jsonv::field(v, "stream")? {
                Value::Null => None,
                s => Some(StreamingMsm::from_value(s)?),
            };
            c.rebuild = match jsonv::field(v, "rebuild")? {
                Value::Null => None,
                t => Some(ticket_from_value(t)?),
            };
            c.reports = jsonv::field(v, "reports")?
                .as_array()
                .ok_or("reports is not an array")?
                .iter()
                .map(GenerationReport::from_value)
                .collect::<Result<Vec<_>, _>>()?;
            c.min_rmsd = jsonv::opt_num(v, "min_rmsd").unwrap_or(f64::INFINITY);
            c.first_folded_generation =
                jsonv::opt_int(v, "first_folded_generation").map(|g| g as usize);
            c.first_folded_elapsed_secs = jsonv::opt_num(v, "first_folded_elapsed_secs");
            c.analyze_kinetics = jsonv::boolean(v, "analyze_kinetics")?;
            Ok(())
        }
        parse(self, &snapshot).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copernicus_telemetry::Telemetry;

    fn tiny_config() -> MsmProjectConfig {
        MsmProjectConfig {
            n_starts: 2,
            sims_per_start: 2,
            segment_ns: 5.0,
            record_interval: 40,
            temperature: 0.55,
            n_clusters: 10,
            lag_frames: 1,
            generations: 3,
            respawn_fraction: 0.5,
            seed: 3,
            mode: AdaptiveMode::Generational,
            ..MsmProjectConfig::default()
        }
    }

    fn streaming_config() -> MsmProjectConfig {
        MsmProjectConfig {
            mode: AdaptiveMode::Streaming,
            ..tiny_config()
        }
    }

    /// Drive a controller to completion against inline executors,
    /// returning the final report and per-command-type execution counts.
    fn run_inline_full(
        mut controller: MsmController,
        telemetry: Option<Telemetry>,
    ) -> (MsmProjectReport, BTreeMap<String, usize>) {
        use crate::command::{Command, CommandOutput};
        use crate::executor::{CommandExecutor, ExecContext, MdRunExecutor, MsmBuildExecutor};
        use crate::ids::{CommandId, ProjectId, WorkerId};
        use std::time::Instant;

        let md = MdRunExecutor::new(controller.model());
        let msm_build = MsmBuildExecutor;
        let started = Instant::now();
        let mut pending: Vec<Command> = Vec::new();
        let mut next_id = 0u64;
        let mut finish: Option<Value> = None;
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();

        let apply = |actions: Vec<Action>,
                     pending: &mut Vec<Command>,
                     next_id: &mut u64,
                     finish: &mut Option<Value>| {
            for a in actions {
                match a {
                    Action::Spawn(specs) => {
                        for s in specs {
                            pending.push(Command::from_spec(CommandId(*next_id), ProjectId(0), s));
                            *next_id += 1;
                        }
                    }
                    Action::FinishProject { result } => *finish = Some(result),
                    _ => {}
                }
            }
        };
        fn make_ctx<'a>(telemetry: &'a Option<Telemetry>, started: &Instant) -> ControllerCtx<'a> {
            ControllerCtx {
                project: ProjectId(0),
                now: started.elapsed(),
                telemetry: telemetry.as_ref(),
                seed: 7,
            }
        }

        apply(
            controller.on_event(
                make_ctx(&telemetry, &started),
                ControllerEvent::ProjectStarted,
            ),
            &mut pending,
            &mut next_id,
            &mut finish,
        );
        while finish.is_none() {
            let cmd = pending.pop().expect("controller starved the queue");
            *counts.entry(cmd.command_type.clone()).or_insert(0) += 1;
            let exec_ctx = ExecContext {
                command: &cmd,
                worker: WorkerId(0),
                shared_fs: None,
                telemetry: None,
            };
            let data = match cmd.command_type.as_str() {
                "mdrun" => md.execute(exec_ctx),
                "msm-build" => msm_build.execute(exec_ctx),
                other => panic!("unexpected command type {other}"),
            }
            .expect("execution succeeds");
            let output = CommandOutput::new(&cmd, WorkerId(0), data, 0.0);
            apply(
                controller.on_event(
                    make_ctx(&telemetry, &started),
                    ControllerEvent::CommandFinished(&output),
                ),
                &mut pending,
                &mut next_id,
                &mut finish,
            );
        }
        let report = MsmProjectReport::from_value(&finish.unwrap()).expect("report parses");
        (report, counts)
    }

    fn run_inline(controller: MsmController) -> MsmProjectReport {
        run_inline_full(controller, None).0
    }

    #[test]
    fn generation_zero_spawns_full_ensemble() {
        let mut c = MsmController::new(tiny_config());
        let actions = c.on_event(ControllerCtx::test(), ControllerEvent::ProjectStarted);
        let spawned: usize = actions
            .iter()
            .map(|a| match a {
                Action::Spawn(s) => s.len(),
                _ => 0,
            })
            .sum();
        assert_eq!(spawned, 4);
    }

    #[test]
    fn adaptive_loop_extends_and_respawns() {
        let archive: TrajectoryArchive = Arc::new(Mutex::new(Vec::new()));
        let controller = MsmController::new(tiny_config()).with_archive(archive.clone());
        let report = run_inline(controller);
        assert_eq!(report.generations.len(), 3);
        // Generation 0: 4 lineages; respawns keep the live count at 4.
        assert_eq!(report.generations[0].n_trajectories_total, 4);
        // Respawned lineages add terminated trajectories to the pool.
        assert_eq!(report.generations[0].n_respawned, 2);
        assert_eq!(report.generations[1].n_trajectories_total, 6);
        assert!(report.min_rmsd_to_native.is_finite());
        assert!(report.kinetics.is_some());
        // Archive holds terminated + final live = 2 + 2 + 4.
        assert_eq!(archive.lock().len(), 8);
        // Surviving lineages grow: live trajectories span 3 segments.
        let longest = archive.lock().iter().map(|t| t.len()).max().unwrap();
        let frames_per_seg = (5.0 * 0.8 / 0.01 / 40.0) as usize; // 10
        assert!(
            longest >= 2 * frames_per_seg,
            "no lineage survived extension: longest {longest}"
        );
        // Min RMSD is monotone non-increasing across generations.
        assert!(
            report.generations[2].min_rmsd_to_native
                <= report.generations[0].min_rmsd_to_native + 1e-12
        );
    }

    #[test]
    fn even_and_adaptive_weighting_both_work() {
        for weighting in [Weighting::Even, Weighting::Adaptive] {
            let cfg = MsmProjectConfig {
                weighting,
                generations: 2,
                ..tiny_config()
            };
            let report = run_inline(MsmController::new(cfg));
            assert_eq!(report.generations.len(), 2);
        }
    }

    #[test]
    fn zero_respawn_fraction_is_pure_extension() {
        let cfg = MsmProjectConfig {
            respawn_fraction: 0.0,
            ..tiny_config()
        };
        let report = run_inline(MsmController::new(cfg));
        // No terminations: the trajectory count stays at the ensemble
        // size throughout.
        for g in &report.generations {
            assert_eq!(g.n_trajectories_total, 4);
            assert_eq!(g.n_respawned, 0);
        }
    }

    #[test]
    fn config_totals() {
        let cfg = MsmProjectConfig::default();
        assert_eq!(cfg.n_trajectories_per_generation(), 45);
        assert_eq!(cfg.mode, AdaptiveMode::Streaming);
        let paper = MsmProjectConfig {
            n_starts: 9,
            sims_per_start: 25,
            ..cfg
        };
        assert_eq!(paper.n_trajectories_per_generation(), 225);
    }

    #[test]
    fn config_value_roundtrip_and_defaults() {
        let cfg = MsmProjectConfig {
            stop_folded_pop_stderr: Some(0.25),
            mode: AdaptiveMode::Generational,
            chunks_per_segment: 3,
            ..tiny_config()
        };
        let back = MsmProjectConfig::from_value(&cfg.to_value()).unwrap();
        assert_eq!(back.n_starts, cfg.n_starts);
        assert_eq!(back.mode, AdaptiveMode::Generational);
        assert_eq!(back.chunks_per_segment, 3);
        assert_eq!(back.stop_folded_pop_stderr, Some(0.25));
        // Partial documents keep defaults for everything else.
        let partial = MsmProjectConfig::from_value(&json!({ "generations": 2 })).unwrap();
        assert_eq!(partial.generations, 2);
        assert_eq!(partial.n_starts, 9);
        assert_eq!(partial.mode, AdaptiveMode::Streaming);
        assert!(MsmProjectConfig::from_value(&json!({ "mode": "bogus" })).is_err());
    }

    #[test]
    fn convergence_criterion_stops_early() {
        // Rig the folded definition so every state counts as folded: the
        // folded population is then 1.0 with ~zero bootstrap error, and
        // the §2 stop criterion must end the project at the first
        // clustering step instead of running all 5 generations.
        let cfg = MsmProjectConfig {
            generations: 5,
            folded_rmsd: 1e6,
            stop_folded_pop_stderr: Some(0.75),
            ..tiny_config()
        };
        let report = run_inline(MsmController::new(cfg));
        assert_eq!(
            report.generations.len(),
            1,
            "project should stop at the first converged generation"
        );
        let g = &report.generations[0];
        assert!(g.folded_pop_stderr.expect("stderr computed") < 0.75);
        assert!((g.folded_equilibrium_population - 1.0).abs() < 1e-6);
    }

    #[test]
    fn telemetry_records_each_clustering_step() {
        use copernicus_telemetry::{matched_span_pairs, names, Labels};
        let t = Telemetry::new();
        let controller = MsmController::new(tiny_config());
        let (report, _) = run_inline_full(controller, Some(t.clone()));
        let hist = t
            .registry()
            .find_histogram(names::CLUSTERING_SECS, &Labels::new())
            .expect("clustering histogram exists");
        assert_eq!(hist.count(), report.generations.len() as u64);
        let entries = t.journal().entries();
        let clustered = entries
            .iter()
            .filter(|e| e.event.kind() == "generation_clustered")
            .count();
        assert_eq!(clustered, report.generations.len());
        let pairs = matched_span_pairs(&entries).expect("clustering spans pair up");
        assert_eq!(pairs, report.generations.len());
    }

    #[test]
    #[should_panic(expected = "respawn_fraction")]
    fn rejects_bad_respawn_fraction() {
        let cfg = MsmProjectConfig {
            respawn_fraction: 1.5,
            ..tiny_config()
        };
        let _ = MsmController::new(cfg);
    }

    // --- streaming mode ---------------------------------------------------

    #[test]
    fn streaming_loop_runs_to_completion() {
        let archive: TrajectoryArchive = Arc::new(Mutex::new(Vec::new()));
        let controller = MsmController::new(streaming_config()).with_archive(archive.clone());
        let (report, counts) = run_inline_full(controller, None);
        // One report row per generation-equivalent of segments.
        assert_eq!(report.generations.len(), 3);
        // Budget: generations × n_live segments, one command each.
        assert_eq!(counts["mdrun"], 12);
        assert!(report.min_rmsd_to_native.is_finite());
        assert!(report.kinetics.is_some());
        // Archive holds every terminated lineage plus the 4 live ones.
        let total_respawned: usize = report.generations.iter().map(|g| g.n_respawned).sum();
        assert_eq!(archive.lock().len(), 4 + total_respawned);
        // The report's trajectory accounting agrees.
        let last = report.generations.last().unwrap();
        assert_eq!(last.n_trajectories_total, 4 + total_respawned);
    }

    #[test]
    fn streaming_chunked_segments_run_more_smaller_commands() {
        let cfg = MsmProjectConfig {
            chunks_per_segment: 2,
            ..streaming_config()
        };
        let (report, counts) = run_inline_full(MsmController::new(cfg), None);
        // Same 12-segment budget, two mdrun commands per segment.
        assert_eq!(counts["mdrun"], 24);
        assert_eq!(report.generations.len(), 3);
        // Chunking must not change the amount of sampling per segment.
        let frames_per_seg = (5.0 * 0.8 / 0.01 / 40.0) as usize; // 10
        let last = report.generations.last().unwrap();
        assert_eq!(
            last.n_frames_total,
            12 * frames_per_seg + last.n_trajectories_total
        );
    }

    #[test]
    fn streaming_respawns_under_pressure() {
        let cfg = MsmProjectConfig {
            generations: 4,
            ..streaming_config()
        };
        let (report, _) = run_inline_full(MsmController::new(cfg), None);
        let total_respawned: usize = report.generations.iter().map(|g| g.n_respawned).sum();
        assert!(
            total_respawned > 0,
            "respawn_fraction 0.5 over 12 decisions should terminate someone"
        );
        // Every row carries a usable model.
        for g in &report.generations {
            assert!(g.n_states > 0);
            assert!(g.n_active_states > 0);
            assert!(g.predicted_native_rmsd.is_finite());
        }
    }

    #[test]
    fn streaming_zero_respawn_is_pure_extension() {
        let cfg = MsmProjectConfig {
            respawn_fraction: 0.0,
            ..streaming_config()
        };
        let (report, _) = run_inline_full(MsmController::new(cfg), None);
        for g in &report.generations {
            assert_eq!(g.n_respawned, 0);
            assert_eq!(g.n_trajectories_total, 4);
        }
    }

    #[test]
    fn streaming_background_rebuild_triggers_on_drift() {
        // A long run with a tiny founding model: frame-count doubling
        // forces at least one background recluster.
        let cfg = MsmProjectConfig {
            generations: 6,
            n_clusters: 5,
            ..streaming_config()
        };
        let (report, counts) = run_inline_full(MsmController::new(cfg), None);
        assert!(
            counts.get("msm-build").copied().unwrap_or(0) >= 1,
            "drift should have dispatched a background recluster"
        );
        assert!(report.n_rebuilds >= 1);
    }

    #[test]
    fn streaming_snapshot_roundtrips() {
        use crate::command::{Command, CommandOutput};
        use crate::executor::{CommandExecutor, ExecContext, MdRunExecutor};
        use crate::ids::{CommandId, ProjectId, WorkerId};

        // Drive a streaming controller past bootstrap, snapshot, restore
        // into a fresh controller, and require identical state.
        let mut controller = MsmController::new(streaming_config());
        let md = MdRunExecutor::new(controller.model());
        let mut pending: Vec<Command> = Vec::new();
        let mut next_id = 0u64;
        let mut collect = |actions: Vec<Action>, pending: &mut Vec<Command>, next_id: &mut u64| {
            for a in actions {
                if let Action::Spawn(specs) = a {
                    for s in specs {
                        pending.push(Command::from_spec(CommandId(*next_id), ProjectId(0), s));
                        *next_id += 1;
                    }
                }
            }
        };
        let actions = controller.on_event(ControllerCtx::test(), ControllerEvent::ProjectStarted);
        collect(actions, &mut pending, &mut next_id);
        // Finish six segments: enough to bootstrap the stream and make
        // at least one respawn decision.
        for _ in 0..6 {
            let cmd = pending.pop().unwrap();
            let data = md
                .execute(ExecContext {
                    command: &cmd,
                    worker: WorkerId(0),
                    shared_fs: None,
                    telemetry: None,
                })
                .unwrap();
            let output = CommandOutput::new(&cmd, WorkerId(0), data, 0.0);
            let actions = controller.on_event(
                ControllerCtx::test(),
                ControllerEvent::CommandFinished(&output),
            );
            collect(actions, &mut pending, &mut next_id);
        }
        let snap = controller
            .snapshot()
            .expect("streaming controller snapshots");
        let mut restored = MsmController::new(MsmProjectConfig::default());
        assert!(restored.restore(snap.clone()));
        assert_eq!(restored.snapshot().unwrap(), snap);
        // The restored controller kept the streaming estimator.
        assert!(restored.stream.is_some());
        assert_eq!(
            restored.stream.as_ref().unwrap().n_states(),
            controller.stream.as_ref().unwrap().n_states()
        );
        assert_eq!(restored.segments_done, controller.segments_done);
        // Corrupt snapshots are rejected, leaving recovery to replay.
        let mut fresh = MsmController::new(MsmProjectConfig::default());
        assert!(!fresh.restore(json!({ "bogus": true })));
    }

    #[test]
    fn streaming_convergence_halts_and_drains() {
        let cfg = MsmProjectConfig {
            generations: 5,
            folded_rmsd: 1e6,
            stop_folded_pop_stderr: Some(0.75),
            ..streaming_config()
        };
        let (report, counts) = run_inline_full(MsmController::new(cfg), None);
        // Halt after the first report row: far fewer than the 20-segment
        // budget actually runs.
        assert!(
            counts["mdrun"] < 20,
            "convergence should stop the stream early (ran {})",
            counts["mdrun"]
        );
        assert!(!report.generations.is_empty());
        let g = &report.generations[0];
        assert!(g.folded_pop_stderr.expect("stderr computed") < 0.75);
    }

    #[test]
    fn weighted_pick_is_proportional_and_total() {
        let w = [0.0, 2.0, 0.0, 2.0];
        assert_eq!(weighted_pick(&w, 0.0), 1);
        assert_eq!(weighted_pick(&w, 0.49), 1);
        assert_eq!(weighted_pick(&w, 0.51), 3);
        assert_eq!(weighted_pick(&w, 0.999), 3);
        // Degenerate all-zero weights still pick a valid index.
        let z = [0.0, 0.0];
        assert!(weighted_pick(&z, 0.7) < 2);
    }

    #[test]
    fn report_value_roundtrip() {
        let report = MsmProjectReport {
            generations: vec![GenerationReport {
                generation: 0,
                n_trajectories_total: 4,
                n_frames_total: 44,
                n_states: 10,
                n_active_states: 8,
                n_respawned: 2,
                min_rmsd_to_native: 5.25,
                predicted_native_rmsd: 6.5,
                predicted_native_population: 0.25,
                folded_equilibrium_population: 0.125,
                folded_pop_stderr: None,
                folded_observed: false,
            }],
            first_folded_generation: Some(1),
            first_folded_elapsed_secs: Some(2.5),
            min_rmsd_to_native: 3.25,
            final_predicted_native_rmsd: 4.5,
            n_rebuilds: 2,
            kinetics: Some(KineticsReport {
                times_ns: vec![0.0, 1.0],
                folded_fraction: vec![0.0, 0.5],
                t_half_ns: None,
                final_folded_fraction: 0.5,
            }),
        };
        let back = MsmProjectReport::from_value(&report.to_value()).unwrap();
        assert_eq!(back.generations.len(), 1);
        assert_eq!(back.generations[0].n_respawned, 2);
        assert_eq!(back.first_folded_generation, Some(1));
        assert_eq!(back.first_folded_elapsed_secs, Some(2.5));
        assert_eq!(back.n_rebuilds, 2);
        assert_eq!(back.kinetics.unwrap().folded_fraction, vec![0.0, 0.5]);
    }
}
