//! Transport-agnostic message plumbing between servers and workers.
//!
//! The server and worker loops are written against two small traits —
//! [`ServerTransport`] and [`WorkerTransport`] — instead of concrete
//! channels or sockets. Two implementations exist:
//!
//! * the **channel transport** in this module: crossbeam channels inside
//!   one process (tests, `run_project`, the broker's upstream links);
//! * the **TCP transport** in [`crate::tcp`]: authenticated
//!   length-prefixed frames over real sockets (`copernicus serve` /
//!   `copernicus work`).
//!
//! The paper's deployment (§2.2) is the second shape — workers scattered
//! over clusters dial the project server over SSL links — but its
//! message protocol is transport-free, which is the property these
//! traits encode: `Server` and `Worker` cannot tell which one they run
//! on.
//!
//! Reply routing lives *here*, not in the messages: a worker's return
//! path is the channel (or connection) it announced on. The channel
//! transport carries that pairing on an internal `Lane::Register` sent
//! once per attach; the TCP transport derives it from the connection a
//! message arrives on.

use crate::ids::WorkerId;
use crate::messages::{ToServer, ToWorker};
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::time::{Duration, Instant};

/// The peer is gone and will not come back (project over, process
/// exiting). Distinct from a transient link failure, which transports
/// absorb internally (reconnect) or surface as
/// [`WorkerRecvError::Reconnected`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransportClosed;

impl std::fmt::Display for TransportClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("transport closed")
    }
}

impl std::error::Error for TransportClosed {}

/// Why a server-side receive returned nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerRecvError {
    /// Nothing arrived within the timeout; the transport is healthy.
    Timeout,
    /// No worker can ever reach this server again.
    Closed,
}

/// The server's view of its worker population.
///
/// Sends are **best-effort and non-blocking in spirit**: a message to a
/// missing or disconnected worker is silently dropped. Worker liveness
/// is the lifecycle watchdog's job (heartbeat timeout → orphan →
/// re-queue), not the transport's — a dropped reply manifests as the
/// worker re-requesting work, which the attempt-epoch dedup makes safe.
pub trait ServerTransport: Send {
    /// Wait up to `timeout` for the next worker message.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<ToServer, ServerRecvError>;

    /// Non-blocking receive; `None` when nothing is immediately ready.
    fn try_recv(&mut self) -> Option<ToServer>;

    /// Send to one worker (the reply path learned from its announce).
    fn send(&mut self, worker: WorkerId, msg: ToWorker);

    /// Send to every worker with a known reply path.
    fn broadcast(&mut self, msg: ToWorker);
}

/// Why a worker-side receive returned nothing.
#[derive(Debug)]
pub enum WorkerRecvError {
    /// Nothing arrived within the timeout; the link is healthy.
    Timeout,
    /// The link dropped and was re-established. In-flight replies may
    /// be lost; the worker should re-issue its request (duplicates are
    /// deduplicated server-side by attempt epoch).
    Reconnected,
    /// The link is permanently gone.
    Closed(String),
}

/// A cloneable send-only handle for auxiliary worker threads (the
/// heartbeat ticker), detached from the receiving half.
pub trait WorkerSender: Send {
    fn send(&self, msg: ToServer) -> Result<(), TransportClosed>;
}

/// One worker's link to its server.
pub trait WorkerTransport: Send {
    /// Present the worker to the server. Transports that can lose the
    /// link mid-project pin this message and replay it after every
    /// reconnect, so the server always knows the return path.
    fn announce(&mut self, msg: ToServer) -> Result<(), TransportClosed>;

    /// Send a message upstream.
    fn send(&mut self, msg: ToServer) -> Result<(), TransportClosed>;

    /// Wait up to `timeout` for the next server message.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<ToWorker, WorkerRecvError>;

    /// A detached sender for the heartbeat thread.
    fn sender(&self) -> Box<dyn WorkerSender>;
}

// ---------------------------------------------------------------------
// In-process channel implementation
// ---------------------------------------------------------------------

/// What travels on the shared worker→server channel. `Register` is the
/// transport-internal replacement for the reply `Sender` that used to
/// ride inside `ToServer::Announce`: it pairs a worker id with its
/// reply channel exactly once, before any data from that worker.
enum Lane {
    Register {
        worker: WorkerId,
        reply: Sender<ToWorker>,
    },
    Data(ToServer),
}

/// Capacity of each worker's reply channel. A worker has at most one
/// outstanding request, so this never fills in practice; bounding it
/// keeps a wedged worker from buffering unbounded workloads.
const REPLY_CAPACITY: usize = 4;

/// Factory handle for attaching workers to a channel-transport server.
/// Clone freely; drop every clone (and every attached worker transport)
/// to close the server's inbox.
#[derive(Clone)]
pub struct ChannelHub {
    tx: Sender<Lane>,
}

impl ChannelHub {
    /// Create a worker-side transport wired to this hub's server.
    ///
    /// The registration ride-along is sent here — on the same ordered
    /// channel as all subsequent data — so the server is guaranteed to
    /// learn the reply path before the first message that needs it.
    pub fn attach(&self, worker: WorkerId) -> ChannelWorkerTransport {
        let (reply_tx, reply_rx) = bounded(REPLY_CAPACITY);
        let _ = self.tx.send(Lane::Register {
            worker,
            reply: reply_tx,
        });
        ChannelWorkerTransport {
            tx: self.tx.clone(),
            reply: reply_rx,
        }
    }

    /// Send upstream without registering a reply path. For relays (the
    /// broker) that route replies themselves and only forward results,
    /// errors and heartbeats.
    pub fn send(&self, msg: ToServer) -> Result<(), TransportClosed> {
        self.tx.send(Lane::Data(msg)).map_err(|_| TransportClosed)
    }
}

/// Server half of the channel transport.
pub struct ChannelServerTransport {
    rx: Receiver<Lane>,
    replies: std::collections::HashMap<WorkerId, Sender<ToWorker>>,
}

/// Create a connected (hub, server transport) pair.
pub fn channel() -> (ChannelHub, ChannelServerTransport) {
    let (tx, rx) = unbounded();
    (
        ChannelHub { tx },
        ChannelServerTransport {
            rx,
            replies: std::collections::HashMap::new(),
        },
    )
}

impl ChannelServerTransport {
    /// Registrations are transport bookkeeping, not messages; absorb
    /// them and keep waiting for data until the deadline.
    fn absorb(&mut self, lane: Lane) -> Option<ToServer> {
        match lane {
            Lane::Register { worker, reply } => {
                self.replies.insert(worker, reply);
                None
            }
            Lane::Data(msg) => Some(msg),
        }
    }
}

impl ServerTransport for ChannelServerTransport {
    fn recv_timeout(&mut self, timeout: Duration) -> Result<ToServer, ServerRecvError> {
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match self.rx.recv_timeout(remaining) {
                Ok(lane) => {
                    if let Some(msg) = self.absorb(lane) {
                        return Ok(msg);
                    }
                }
                Err(RecvTimeoutError::Timeout) => return Err(ServerRecvError::Timeout),
                Err(RecvTimeoutError::Disconnected) => return Err(ServerRecvError::Closed),
            }
        }
    }

    fn try_recv(&mut self) -> Option<ToServer> {
        loop {
            match self.rx.try_recv() {
                Ok(lane) => {
                    if let Some(msg) = self.absorb(lane) {
                        return Some(msg);
                    }
                }
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => return None,
            }
        }
    }

    fn send(&mut self, worker: WorkerId, msg: ToWorker) {
        if let Some(reply) = self.replies.get(&worker) {
            if reply.send(msg).is_err() {
                // The worker hung up; forget the path so broadcasts
                // stop paying for it.
                self.replies.remove(&worker);
            }
        }
    }

    fn broadcast(&mut self, msg: ToWorker) {
        self.replies
            .retain(|_, reply| reply.send(msg.clone()).is_ok());
    }
}

/// Worker half of the channel transport.
pub struct ChannelWorkerTransport {
    tx: Sender<Lane>,
    reply: Receiver<ToWorker>,
}

impl WorkerTransport for ChannelWorkerTransport {
    fn announce(&mut self, msg: ToServer) -> Result<(), TransportClosed> {
        // Registration already happened in `ChannelHub::attach`; the
        // announce itself is ordinary data.
        self.send(msg)
    }

    fn send(&mut self, msg: ToServer) -> Result<(), TransportClosed> {
        self.tx.send(Lane::Data(msg)).map_err(|_| TransportClosed)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<ToWorker, WorkerRecvError> {
        match self.reply.recv_timeout(timeout) {
            Ok(msg) => Ok(msg),
            Err(RecvTimeoutError::Timeout) => Err(WorkerRecvError::Timeout),
            Err(RecvTimeoutError::Disconnected) => {
                Err(WorkerRecvError::Closed("server hung up".to_string()))
            }
        }
    }

    fn sender(&self) -> Box<dyn WorkerSender> {
        Box::new(ChannelWorkerSender {
            tx: self.tx.clone(),
        })
    }
}

struct ChannelWorkerSender {
    tx: Sender<Lane>,
}

impl WorkerSender for ChannelWorkerSender {
    fn send(&self, msg: ToServer) -> Result<(), TransportClosed> {
        self.tx.send(Lane::Data(msg)).map_err(|_| TransportClosed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::{Platform, Resources, WorkerDescription};

    fn desc() -> WorkerDescription {
        WorkerDescription {
            platform: Platform::Smp,
            resources: Resources::new(1, 64),
            executables: vec![],
        }
    }

    #[test]
    fn register_precedes_data_and_replies_route() {
        let (hub, mut server) = channel();
        let mut worker = hub.attach(WorkerId(1));
        worker
            .announce(ToServer::Announce {
                worker: WorkerId(1),
                desc: desc(),
            })
            .unwrap();

        // The first *message* out is the announce; the registration was
        // absorbed silently and the reply path already works.
        let msg = server.recv_timeout(Duration::from_secs(1)).unwrap();
        assert!(matches!(
            msg,
            ToServer::Announce {
                worker: WorkerId(1),
                ..
            }
        ));
        server.send(WorkerId(1), ToWorker::NoWork);
        assert!(matches!(
            worker.recv_timeout(Duration::from_secs(1)),
            Ok(ToWorker::NoWork)
        ));
    }

    #[test]
    fn send_to_unknown_worker_is_dropped_not_panicked() {
        let (_hub, mut server) = channel();
        server.send(WorkerId(99), ToWorker::Shutdown);
        server.broadcast(ToWorker::Shutdown);
    }

    #[test]
    fn broadcast_reaches_every_attached_worker() {
        let (hub, mut server) = channel();
        let mut a = hub.attach(WorkerId(1));
        let mut b = hub.attach(WorkerId(2));
        // Drain the registrations by waiting for the timeout.
        assert!(matches!(
            server.recv_timeout(Duration::from_millis(10)),
            Err(ServerRecvError::Timeout)
        ));
        server.broadcast(ToWorker::Shutdown);
        assert!(matches!(
            a.recv_timeout(Duration::from_secs(1)),
            Ok(ToWorker::Shutdown)
        ));
        assert!(matches!(
            b.recv_timeout(Duration::from_secs(1)),
            Ok(ToWorker::Shutdown)
        ));
    }

    #[test]
    fn dropping_all_senders_closes_the_server_inbox() {
        let (hub, mut server) = channel();
        let worker = hub.attach(WorkerId(1));
        drop(hub);
        drop(worker);
        assert!(matches!(
            server.recv_timeout(Duration::from_secs(1)),
            Err(ServerRecvError::Closed)
        ));
        assert!(server.try_recv().is_none());
    }

    #[test]
    fn detached_sender_outlives_borrow_of_transport() {
        let (hub, mut server) = channel();
        let worker = hub.attach(WorkerId(1));
        let sender = worker.sender();
        std::thread::spawn(move || {
            sender
                .send(ToServer::Heartbeat {
                    worker: WorkerId(1),
                })
                .unwrap();
        })
        .join()
        .unwrap();
        let msg = server.recv_timeout(Duration::from_secs(1)).unwrap();
        assert!(matches!(
            msg,
            ToServer::Heartbeat {
                worker: WorkerId(1)
            }
        ));
        drop(worker);
    }

    #[test]
    fn worker_recv_reports_closed_when_server_drops() {
        let (hub, server) = channel();
        let mut worker = hub.attach(WorkerId(1));
        drop(server);
        assert!(matches!(
            worker.recv_timeout(Duration::from_millis(50)),
            Err(WorkerRecvError::Closed(_))
        ));
    }
}
