//! The project server: command queue, resource matching, heartbeat
//! watchdog, controller dispatch.
//!
//! One [`Server`] owns one project (the paper's servers can hold several;
//! run several `Server`s for that). It consumes [`ToServer`] messages
//! from workers, matches workloads, feeds completions to the controller
//! plugin, and re-queues commands of lost or erroring workers with their
//! latest shared-filesystem checkpoint (§2.3).
//!
//! Every command moves through the explicit lifecycle in [`lifecycle`]:
//! `Queued → Dispatched → Completed | Errored | Orphaned | Dropped`.
//! All queue/running-set edits, checkpoint clears, controller
//! notifications and fault accounting happen inside the single
//! [`Server::transition`] function, which every message path routes
//! through — so exactly-once controller accounting holds under any
//! interleaving of errors, worker loss, and resurrection.

use crate::command::{Command, CommandOutput};
use crate::controller::{Action, Controller, ControllerCtx, ControllerEvent, DropReason};
use crate::fs::SharedFs;
use crate::ids::{CommandId, IdGen, ProjectId, WorkerId};
use crate::lifecycle::{self, Disposition, FaultKind, Phase, RetryPolicy, Verdict};
use crate::messages::{ToServer, ToWorker};
use crate::monitor::Monitor;
use crate::resources::WorkerDescription;
use crate::resources::{Platform, Resources};
use crate::shard::{InFlight, ShardedLedger, ShardedQueue};
use crate::transport::{ServerRecvError, ServerTransport};
use crate::wal::{FsyncMode, RecoveredState, Wal, WalRecord};
use copernicus_telemetry::{
    buckets, names, span_names, ActiveSpan, Counter, Event, Gauge, Histogram, Labels, Telemetry,
    Tracer,
};
use copernicus_wire::AuthKey;
use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Server tuning knobs.
///
/// Construct through [`ServerConfig::builder`], which validates the
/// knobs against each other (a watchdog slower than the heartbeat it
/// polices, a zero attempt budget, a bind address without a key — all
/// rejected at build time instead of misbehaving at runtime). Plain
/// struct literals over `..Default::default()` still compile for
/// test-local tweaks, but the builder is the supported front door.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Heartbeat interval workers are expected to honour (paper default
    /// 120 s; tests use milliseconds).
    pub heartbeat_interval: Duration,
    /// How often the watchdog scans for missing heartbeats.
    pub watchdog_period: Duration,
    /// Give up on a command after this many dispatch attempts.
    pub max_attempts: u32,
    /// Backoff before re-dispatching a command whose attempt *errored*
    /// (doubles per error, clamped to `retry_backoff_max`). Orphaned
    /// commands (worker loss) re-queue immediately.
    pub retry_backoff_base: Duration,
    /// Upper clamp on the error-retry backoff.
    pub retry_backoff_max: Duration,
    /// TCP listen address for networked mode (e.g. `"0.0.0.0:7923"`,
    /// or `"127.0.0.1:0"` for an ephemeral test port). `None` runs the
    /// server on in-process channels only.
    pub bind: Option<String>,
    /// Pre-shared link key; required whenever `bind` is set (and
    /// whenever `peers` is non-empty — peer links use the same key).
    pub auth_key: Option<AuthKey>,
    /// This server's name on the overlay (sent in `PeerMsg::Hello`,
    /// and the namespace key for delegated worker ids — see
    /// [`crate::peer::namespaced_worker`]). Defaults to the bind
    /// address when unset.
    pub name: Option<String>,
    /// Peer servers to dial and pull delegated work from
    /// (`copernicus serve --peer <addr>`). Requires `auth_key`.
    pub peers: Vec<String>,
    /// Directory for the durable write-ahead log (`copernicus serve
    /// --state-dir`). `None` keeps all state in memory — a server
    /// crash then loses the project, exactly as before the WAL
    /// existed. When set, every lifecycle transition is journaled and
    /// a restart with the same directory resumes the pre-crash state.
    pub state_dir: Option<String>,
    /// When WAL appends reach stable storage (`--fsync always|never|<ms>`).
    pub fsync: FsyncMode,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            heartbeat_interval: Duration::from_millis(500),
            watchdog_period: Duration::from_millis(100),
            max_attempts: 5,
            retry_backoff_base: Duration::from_millis(200),
            retry_backoff_max: Duration::from_secs(30),
            bind: None,
            auth_key: None,
            name: None,
            peers: Vec::new(),
            state_dir: None,
            fsync: FsyncMode::Always,
        }
    }
}

impl ServerConfig {
    /// Start building a validated configuration.
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder {
            config: ServerConfig::default(),
        }
    }

    /// The lifecycle retry policy these knobs describe.
    pub fn retry_policy(&self) -> RetryPolicy {
        RetryPolicy {
            max_attempts: self.max_attempts,
            backoff_base: self.retry_backoff_base,
            backoff_max: self.retry_backoff_max,
        }
    }

    /// The cross-knob invariants the builder enforces; exposed so
    /// hand-rolled literals can opt into the same checking.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.max_attempts == 0 {
            return Err(ConfigError(
                "max_attempts must be at least 1 (0 would drop every command at dispatch)".into(),
            ));
        }
        if self.heartbeat_interval.is_zero() {
            return Err(ConfigError("heartbeat_interval must be non-zero".into()));
        }
        if self.watchdog_period.is_zero() {
            return Err(ConfigError("watchdog_period must be non-zero".into()));
        }
        if self.watchdog_period > self.heartbeat_interval {
            return Err(ConfigError(format!(
                "watchdog_period ({:?}) must not exceed heartbeat_interval ({:?}): \
                 a slower watchdog cannot police the heartbeat it watches",
                self.watchdog_period, self.heartbeat_interval
            )));
        }
        if self.retry_backoff_base > self.retry_backoff_max {
            return Err(ConfigError(format!(
                "retry_backoff_base ({:?}) exceeds retry_backoff_max ({:?})",
                self.retry_backoff_base, self.retry_backoff_max
            )));
        }
        if self.bind.is_some() && self.auth_key.is_none() {
            return Err(ConfigError(
                "bind is set but auth_key is not: refusing an unauthenticated listener".into(),
            ));
        }
        if !self.peers.is_empty() && self.auth_key.is_none() {
            return Err(ConfigError(
                "peers are set but auth_key is not: peer links must authenticate".into(),
            ));
        }
        if matches!(&self.state_dir, Some(dir) if dir.is_empty()) {
            return Err(ConfigError(
                "state_dir is set but empty: pass a directory path or leave it unset".into(),
            ));
        }
        Ok(())
    }
}

/// A rejected [`ServerConfig`]; the message names the offending knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid server config: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// Validating builder for [`ServerConfig`] —
/// `ServerConfig::builder().retry(policy).bind(addr, key).build()?`.
#[derive(Debug, Clone)]
pub struct ServerConfigBuilder {
    config: ServerConfig,
}

impl ServerConfigBuilder {
    pub fn heartbeat_interval(mut self, interval: Duration) -> Self {
        self.config.heartbeat_interval = interval;
        self
    }

    pub fn watchdog_period(mut self, period: Duration) -> Self {
        self.config.watchdog_period = period;
        self
    }

    /// Set the whole fault-retry policy at once.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.config.max_attempts = policy.max_attempts;
        self.config.retry_backoff_base = policy.backoff_base;
        self.config.retry_backoff_max = policy.backoff_max;
        self
    }

    pub fn max_attempts(mut self, attempts: u32) -> Self {
        self.config.max_attempts = attempts;
        self
    }

    /// Serve over TCP: listen on `addr`, accept only peers holding
    /// `key`. Taking both together makes an unauthenticated listener
    /// unrepresentable through the builder.
    pub fn bind(mut self, addr: impl Into<String>, key: AuthKey) -> Self {
        self.config.bind = Some(addr.into());
        self.config.auth_key = Some(key);
        self
    }

    /// Name this server on the overlay (defaults to the bind address).
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.config.name = Some(name.into());
        self
    }

    /// Add a peer server to dial for delegated work. May be called
    /// repeatedly; requires an auth key (set via [`Self::bind`]).
    pub fn peer(mut self, addr: impl Into<String>) -> Self {
        self.config.peers.push(addr.into());
        self
    }

    /// Persist lifecycle state to `dir` and recover from it on
    /// restart (see [`crate::wal`]).
    pub fn state_dir(mut self, dir: impl Into<String>) -> Self {
        self.config.state_dir = Some(dir.into());
        self
    }

    /// WAL fsync policy; only meaningful with [`Self::state_dir`].
    pub fn fsync(mut self, mode: FsyncMode) -> Self {
        self.config.fsync = mode;
        self
    }

    pub fn build(self) -> Result<ServerConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// Final outcome of a project run.
#[derive(Debug, Clone)]
pub struct ProjectResult {
    pub project: ProjectId,
    pub result: serde_json::Value,
    pub commands_completed: u64,
    pub commands_requeued: u64,
    /// Commands that exhausted `max_attempts` and were dropped; each
    /// produced exactly one `ControllerEvent::CommandDropped`.
    pub commands_dropped: u64,
    /// Duplicate or stale-epoch results discarded by the dedup layer.
    pub stale_results_dropped: u64,
    pub workers_lost: u64,
    pub bytes_received: u64,
    pub wall: Duration,
}

struct WorkerState {
    desc: WorkerDescription,
    last_heartbeat: Instant,
    alive: bool,
    /// A placeholder restored by WAL recovery for a worker that held
    /// in-flight commands when the previous incarnation died. Until the
    /// worker re-announces, its heartbeats prove nothing about those
    /// commands (the worker may have finished them and lost the result
    /// with the dead server), so they must not keep the placeholder
    /// alive — see the `Announce` and `Heartbeat` arms.
    recovered: bool,
}

/// The owning server's live spans for one command: the root `command`
/// span (enqueue → terminal) plus whichever of `queued` / `attempt` is
/// currently open. Finished spans record themselves into the tracer.
struct CommandTrace {
    root: ActiveSpan,
    queued: Option<ActiveSpan>,
    attempt: Option<ActiveSpan>,
}

/// One step of the lifecycle machine; see [`Server::transition`].
enum Transition {
    /// Queued → Dispatched. The command has been pulled from the queue
    /// by the workload matcher; stamp and track it.
    Dispatch { cmd: Command, worker: WorkerId },
    /// Dispatched (or a stale duplicate) → Completed.
    Complete { output: CommandOutput },
    /// Dispatched → Errored | Orphaned, resolving to a re-queue or a
    /// drop via the retry policy.
    Fault {
        command: CommandId,
        worker: WorkerId,
        kind: FaultKind,
        /// The attempt epoch the report belongs to; `None` for
        /// watchdog-originated faults (always the current attempt).
        epoch: Option<u32>,
        error: Option<String>,
    },
    /// Queued → (gone): controller cancelled not-yet-dispatched work.
    Cancel { command: CommandId },
}

/// Cached metric handles, created once per server so the dispatch path
/// never touches the registry map.
struct ServerMetrics {
    telemetry: Telemetry,
    dispatched: Arc<Counter>,
    completed: Arc<Counter>,
    failed: Arc<Counter>,
    requeued: Arc<Counter>,
    dropped: Arc<Counter>,
    stale_results: Arc<Counter>,
    workers_lost: Arc<Counter>,
    bytes_received: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    running: Arc<Gauge>,
    workers_connected: Arc<Gauge>,
    dispatch_latency: Arc<Histogram>,
    turnaround: Arc<Histogram>,
    retry_backoff: Arc<Histogram>,
}

impl ServerMetrics {
    fn new(telemetry: Telemetry) -> ServerMetrics {
        let r = telemetry.registry().clone();
        let none = Labels::new;
        ServerMetrics {
            dispatched: r.counter(names::COMMANDS_DISPATCHED, none()),
            completed: r.counter(names::COMMANDS_COMPLETED, none()),
            failed: r.counter(names::COMMANDS_FAILED, none()),
            requeued: r.counter(names::COMMANDS_REQUEUED, none()),
            dropped: r.counter(names::COMMANDS_DROPPED, none()),
            stale_results: r.counter(names::STALE_RESULTS_DROPPED, none()),
            workers_lost: r.counter(names::WORKERS_LOST, none()),
            bytes_received: r.counter(names::BYTES_RECEIVED, none()),
            queue_depth: r.gauge(names::QUEUE_DEPTH, none()),
            running: r.gauge(names::RUNNING_COMMANDS, none()),
            workers_connected: r.gauge(names::WORKERS_CONNECTED, none()),
            dispatch_latency: r.histogram(names::DISPATCH_LATENCY, none(), buckets::SECONDS),
            turnaround: r.histogram(names::COMMAND_TURNAROUND, none(), buckets::SECONDS),
            retry_backoff: r.histogram(names::RETRY_BACKOFF, none(), buckets::SECONDS),
            telemetry,
        }
    }

    fn record(&self, event: Event) {
        self.telemetry.journal().record(event);
    }
}

/// The project server.
/// Deterministic per-project seed for [`ControllerCtx`] (splitmix64 of
/// the project id): stable across restarts of the same project, distinct
/// across projects.
fn controller_seed(project: ProjectId) -> u64 {
    let mut z = project.0 ^ 0x9E37_79B9_7F4A_7C15;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub struct Server {
    project: ProjectId,
    config: ServerConfig,
    policy: RetryPolicy,
    controller: Box<dyn Controller>,
    /// Queued commands, sharded by command-id hash (see
    /// [`crate::shard`]): matching is a merge over sorted shards, not
    /// a whole-queue rebuild.
    queue: ShardedQueue,
    /// Running set + queued-at table, sharded, with a per-worker index
    /// so heartbeat marking and watchdog orphan scans touch only that
    /// worker's commands.
    ledger: ShardedLedger,
    /// Live trace spans per command (only populated when telemetry is
    /// attached); entries are removed — closing their spans — when the
    /// command reaches a terminal phase.
    traces: HashMap<CommandId, CommandTrace>,
    workers: HashMap<WorkerId, WorkerState>,
    shared_fs: SharedFs,
    monitor: Monitor,
    ids: IdGen,
    transport: Box<dyn ServerTransport>,
    /// Durable transition log; `None` without a `state_dir`.
    wal: Option<Wal>,
    /// `ProjectStarted` already delivered (set by recovery replay so a
    /// restart does not re-fire it and double-spawn the initial work).
    started: bool,
    /// Cooperative SIGKILL stand-in for crash tests: when flipped, the
    /// run loop returns abruptly — no shutdown broadcast, no finished
    /// flag, nothing a dying process would not have done.
    kill_switch: Option<Arc<AtomicBool>>,
    /// Zero point of the [`ControllerCtx`] clock: every event the
    /// controller sees is stamped relative to server construction.
    started_at: Instant,
    finished: Option<serde_json::Value>,
    commands_completed: u64,
    commands_requeued: u64,
    commands_dropped: u64,
    stale_results_dropped: u64,
    workers_lost: u64,
    bytes_received: u64,
    metrics: Option<ServerMetrics>,
}

impl Server {
    pub fn new(
        project: ProjectId,
        controller: Box<dyn Controller>,
        config: ServerConfig,
        shared_fs: SharedFs,
        monitor: Monitor,
        transport: Box<dyn ServerTransport>,
    ) -> Self {
        let metrics = monitor.telemetry().cloned().map(ServerMetrics::new);
        let policy = config.retry_policy();
        // Durable mode: open (or create) the WAL and replay whatever a
        // previous incarnation left behind, *before* the server starts
        // accepting messages.
        let mut wal = None;
        let mut recovered = None;
        if let Some(dir) = &config.state_dir {
            match Wal::open(Path::new(dir), config.fsync) {
                Ok((w, state)) => {
                    wal = Some(w);
                    recovered = Some(state);
                }
                Err(e) => {
                    // A server that silently runs non-durably when asked
                    // to be durable is worse than a loud degradation.
                    monitor.log(format!(
                        "wal: cannot open state dir {dir}: {e} (running without durability)"
                    ));
                }
            }
        }
        if let Some(w) = &wal {
            shared_fs.attach_wal(w.clone());
        }
        let mut server = Server {
            project,
            config,
            policy,
            controller,
            queue: ShardedQueue::default(),
            ledger: ShardedLedger::default(),
            traces: HashMap::new(),
            workers: HashMap::new(),
            shared_fs,
            monitor,
            ids: IdGen::new(),
            transport,
            wal,
            started: false,
            kill_switch: None,
            started_at: Instant::now(),
            finished: None,
            commands_completed: 0,
            commands_requeued: 0,
            commands_dropped: 0,
            stale_results_dropped: 0,
            workers_lost: 0,
            bytes_received: 0,
            metrics,
        };
        if let Some(state) = recovered {
            server.recover(&state);
        }
        server
    }

    /// Install a cooperative kill switch (crash-test SIGKILL stand-in:
    /// see the `kill_switch` field).
    pub fn with_kill_switch(mut self, switch: Arc<AtomicBool>) -> Self {
        self.kill_switch = Some(switch);
        self
    }

    /// Rebuild in-memory structures from a replayed WAL: re-queue
    /// queued work, restore the running set with attempt epochs
    /// intact, preload surviving checkpoints, resume id minting past
    /// everything already spawned, and restore counters plus the
    /// controller snapshot. In-flight commands get a *placeholder*
    /// worker record: if the pre-crash worker reconnects and
    /// heartbeats, its result (same epoch) is accepted; if it never
    /// returns, the ordinary watchdog re-orphans the command after the
    /// usual 2× heartbeat silence.
    fn recover(&mut self, state: &RecoveredState) {
        if state.is_empty() {
            return;
        }
        let now = Instant::now();
        for (id, checkpoint) in state.checkpoints() {
            self.shared_fs.preload_checkpoint(id, checkpoint);
        }
        let queued = state.queued();
        let running = state.running();
        for cmd in queued {
            self.ledger.mark_queued(cmd.id, now);
            self.queue.enqueue(cmd);
        }
        for (cmd, worker) in running {
            // Placeholder: heartbeat-tracked but matching nothing (no
            // executables), so it cannot be handed new work before it
            // re-announces for real.
            self.workers.entry(worker).or_insert_with(|| WorkerState {
                desc: crate::resources::WorkerDescription {
                    platform: Platform::Smp,
                    resources: Resources::new(1, 1),
                    executables: Vec::new(),
                },
                last_heartbeat: now,
                alive: true,
                recovered: true,
            });
            self.ledger.start_running(InFlight {
                worker,
                dispatched_at: now,
                cmd,
            });
        }
        self.ids.advance_to(state.next_command_id());
        self.started = state.started;
        self.commands_completed = state.counters.commands_completed;
        self.commands_requeued = state.counters.commands_requeued;
        self.commands_dropped = state.counters.commands_dropped;
        self.stale_results_dropped = state.counters.stale_results_dropped;
        self.workers_lost = state.counters.workers_lost;
        self.bytes_received = state.counters.bytes_received;
        if let Some(result) = &state.finished {
            self.finished = Some(serde_json::from_str(result).unwrap_or(serde_json::Value::Null));
        }
        if let Some(snapshot) = &state.controller {
            if let Ok(value) = serde_json::from_str(snapshot) {
                if self.controller.restore(value) {
                    self.monitor
                        .log("wal: controller state restored".to_string());
                }
            }
        }
        self.monitor.log(format!(
            "wal: recovered {} queued, {} running, {} checkpoints (completed so far: {})",
            self.queue.len(),
            self.ledger.running_len(),
            self.shared_fs.n_checkpoints(),
            self.commands_completed,
        ));
    }

    fn wal_append(&self, record: &WalRecord) {
        if let Some(wal) = &self.wal {
            if let Err(e) = wal.append(record) {
                self.monitor.log(format!("wal append failed: {e}"));
            }
        }
    }

    /// Deliver an event to the controller, apply its actions, then
    /// journal the controller's (possibly updated) decision state so a
    /// restart restores it alongside the command ledger.
    fn notify_controller(&mut self, event: ControllerEvent<'_>) {
        let ctx = ControllerCtx {
            project: self.project,
            now: self.started_at.elapsed(),
            telemetry: self.monitor.telemetry(),
            seed: controller_seed(self.project),
        };
        let actions = self.controller.on_event(ctx, event);
        self.apply_actions(actions);
        if self.wal.is_some() {
            if let Some(snapshot) = self.controller.snapshot() {
                let state = serde_json::to_string(&snapshot).unwrap_or_else(|_| "null".to_string());
                self.wal_append(&WalRecord::ControllerState { state });
            }
        }
    }

    fn killed(&self) -> bool {
        self.kill_switch
            .as_ref()
            .is_some_and(|k| k.load(Ordering::Relaxed))
    }

    /// Direct event delivery for unit tests (bypasses the transport).
    #[cfg(test)]
    pub(crate) fn deliver_event(&mut self, event: ControllerEvent<'_>) {
        self.notify_controller(event);
    }

    /// Drive the project to completion: fire `ProjectStarted`, then
    /// process messages until the controller finishes the project.
    pub fn run(mut self) -> ProjectResult {
        let t0 = Instant::now();
        // `started` is set by recovery replay: a restarted project must
        // not re-fire ProjectStarted and double-spawn the initial work.
        if !self.started {
            self.started = true;
            self.wal_append(&WalRecord::Started);
            self.notify_controller(ControllerEvent::ProjectStarted);
        }
        let mut last_watchdog = Instant::now();

        while self.finished.is_none() {
            if self.killed() {
                // Crash-test SIGKILL: stop dead. No shutdown broadcast,
                // no finished flag, no final WAL sync beyond what the
                // fsync policy already forced — exactly the state a
                // killed process leaves behind.
                return self.abrupt_result(t0);
            }
            match self.transport.recv_timeout(self.config.watchdog_period) {
                Ok(msg) => self.handle(msg),
                Err(ServerRecvError::Timeout) => {}
                Err(ServerRecvError::Closed) => break,
            }
            // Drain the backlog before judging liveness: a long
            // controller step (clustering) must not turn queued-up
            // heartbeats into false worker deaths.
            while self.finished.is_none() && !self.killed() {
                match self.transport.try_recv() {
                    Some(msg) => self.handle(msg),
                    None => break,
                }
            }
            if self.killed() {
                return self.abrupt_result(t0);
            }
            if self.finished.is_none() && last_watchdog.elapsed() >= self.config.watchdog_period {
                self.check_heartbeats();
                last_watchdog = Instant::now();
            }
            self.publish_status();
        }

        // Tell every connected worker to exit.
        self.transport.broadcast(ToWorker::Shutdown);
        self.monitor.update(|s| s.finished = true);

        ProjectResult {
            project: self.project,
            result: self.finished.unwrap_or(serde_json::Value::Null),
            commands_completed: self.commands_completed,
            commands_requeued: self.commands_requeued,
            commands_dropped: self.commands_dropped,
            stale_results_dropped: self.stale_results_dropped,
            workers_lost: self.workers_lost,
            bytes_received: self.bytes_received,
            wall: t0.elapsed(),
        }
    }

    /// The result of a kill-switch exit: whatever counters stood at the
    /// moment of death, with a null project result.
    fn abrupt_result(&self, t0: Instant) -> ProjectResult {
        ProjectResult {
            project: self.project,
            result: serde_json::Value::Null,
            commands_completed: self.commands_completed,
            commands_requeued: self.commands_requeued,
            commands_dropped: self.commands_dropped,
            stale_results_dropped: self.stale_results_dropped,
            workers_lost: self.workers_lost,
            bytes_received: self.bytes_received,
            wall: t0.elapsed(),
        }
    }

    fn tracer(&self) -> Option<Tracer> {
        self.metrics.as_ref().map(|m| m.telemetry.tracer().clone())
    }

    /// Close every live span for `command` with a terminal disposition.
    fn finish_trace(&mut self, command: CommandId, disposition: &str) {
        if let Some(mut trace) = self.traces.remove(&command) {
            if let Some(mut attempt) = trace.attempt.take() {
                attempt.set_attr("disposition", disposition);
                attempt.finish();
            }
            if let Some(queued) = trace.queued.take() {
                queued.finish();
            }
            trace.root.set_attr("disposition", disposition);
            trace.root.finish();
        }
    }

    /// The lifecycle phase (and attempt epoch) a command is currently
    /// in, or `None` once it reached a terminal phase and was forgotten.
    fn phase_of(&self, id: CommandId) -> Option<(Phase, u32)> {
        if let Some(epoch) = self.ledger.running_epoch(id) {
            return Some((Phase::Dispatched, epoch));
        }
        self.queue
            .peek(id, |cmd| cmd.attempts)
            .map(|attempts| (Phase::Queued, attempts))
    }

    /// The single lifecycle transition function. Every message path —
    /// dispatch, completion, command error, watchdog orphaning,
    /// controller cancel — funnels through here, so invariants
    /// (exactly-once controller accounting, checkpoint clearing on
    /// terminal phases, attempt budgets) live in one place.
    ///
    /// Returns the stamped command for `Transition::Dispatch`, `None`
    /// otherwise.
    fn transition(&mut self, transition: Transition) -> Option<Command> {
        match transition {
            Transition::Dispatch { mut cmd, worker } => {
                debug_assert!(Phase::Queued.can_transition(Phase::Dispatched));
                let now = Instant::now();
                cmd.attempts += 1;
                cmd.not_before = None;
                if let Some(enqueued) = self.ledger.take_queued(cmd.id) {
                    if let Some(m) = &self.metrics {
                        m.dispatch_latency
                            .record(now.duration_since(enqueued).as_secs_f64());
                    }
                }
                // Trace: close the wait-in-queue span, open this
                // attempt's span, and re-stamp the command with the
                // attempt context so worker/delegate spans parent onto
                // this attempt (not the root).
                let tracer = self.tracer();
                if let Some(trace) = self.traces.get_mut(&cmd.id) {
                    if let Some(mut queued) = trace.queued.take() {
                        queued.set_attr("worker", worker.to_string());
                        queued.finish();
                    }
                    if let Some(tracer) = &tracer {
                        let root_ctx = trace.root.context();
                        let mut attempt =
                            tracer.start_child(span_names::ATTEMPT, "server", &root_ctx);
                        attempt.set_attr("worker", worker.to_string());
                        attempt.set_attr("epoch", cmd.attempts.to_string());
                        cmd.trace = Some(attempt.context());
                        trace.attempt = Some(attempt);
                    }
                }
                if let Some(m) = &self.metrics {
                    m.dispatched.inc();
                    m.record(Event::CommandDispatched {
                        command: cmd.id.0,
                        worker: worker.0,
                    });
                }
                self.ledger.start_running(InFlight {
                    worker,
                    dispatched_at: now,
                    cmd: cmd.clone(),
                });
                self.wal_append(&WalRecord::Dispatched {
                    command: cmd.id,
                    worker,
                    epoch: cmd.attempts,
                });
                Some(cmd)
            }

            Transition::Complete { output } => {
                let id = output.command;
                let phase = self.phase_of(id);
                match lifecycle::judge_success(phase, output.epoch) {
                    Verdict::DropStale => {
                        self.drop_stale_result(id, output.epoch, "duplicate completion");
                        return None;
                    }
                    Verdict::Accept => {
                        let inflight = self.ledger.stop_running(id).expect("judged Dispatched");
                        self.complete(output, Some(inflight.dispatched_at));
                    }
                    Verdict::AcceptCancelQueued => {
                        // A resurrected worker delivered the original
                        // attempt's result while the re-queued duplicate
                        // sat in the queue: take the result, cancel the
                        // duplicate so it cannot run (and finish) again.
                        debug_assert!(Phase::Queued.can_transition(Phase::Completed));
                        self.queue.remove(id);
                        self.ledger.take_queued(id);
                        self.monitor.log(format!(
                            "{id} completed by resurrected worker; queued duplicate cancelled"
                        ));
                        self.complete(output, None);
                    }
                    Verdict::AcceptCancelRunning => {
                        // Result from a stale attempt while a newer
                        // attempt runs: the work is identical, so take
                        // the first result and forget the runner — its
                        // eventual result will judge as a duplicate.
                        self.ledger.stop_running(id);
                        self.monitor.log(format!(
                            "{id} completed by stale attempt; running duplicate's result will be dropped"
                        ));
                        self.complete(output, None);
                    }
                }
                None
            }

            Transition::Fault {
                command,
                worker,
                kind,
                epoch,
                error,
            } => {
                if let Some(epoch) = epoch {
                    if lifecycle::judge_error(self.phase_of(command), epoch) == Verdict::DropStale {
                        self.drop_stale_result(command, epoch, "stale error report");
                        return None;
                    }
                }
                let Some(inflight) = self.ledger.stop_running(command) else {
                    // Watchdog faults always target running commands;
                    // error reports were judged above.
                    debug_assert!(epoch.is_none(), "judged error must be running");
                    return None;
                };
                debug_assert!(Phase::Dispatched.can_transition(match kind {
                    FaultKind::Error => Phase::Errored,
                    FaultKind::WorkerLost => Phase::Orphaned,
                }));
                let mut cmd = inflight.cmd;
                let attempts = cmd.attempts;

                // Trace: the attempt span ends here, whatever the retry
                // policy decides next.
                if let Some(trace) = self.traces.get_mut(&command) {
                    if let Some(mut attempt) = trace.attempt.take() {
                        attempt.set_attr(
                            "disposition",
                            match kind {
                                FaultKind::Error => "error",
                                FaultKind::WorkerLost => "worker_lost",
                            },
                        );
                        if let Some(e) = &error {
                            attempt.set_attr("error", e.as_str());
                        }
                        attempt.finish();
                    }
                }

                if kind == FaultKind::Error {
                    let error = error.as_deref().unwrap_or("unknown error");
                    self.monitor
                        .log(format!("{command} failed on {worker}: {error}"));
                    self.monitor.update(|s| s.commands_failed += 1);
                    if let Some(m) = &self.metrics {
                        m.failed.inc();
                        m.record(Event::CommandFailed {
                            command: command.0,
                            worker: worker.0,
                            error: error.to_string(),
                        });
                    }
                }

                match self.policy.on_fault(kind, attempts) {
                    Disposition::Retry { delay } => {
                        // Re-queue with the latest shared-filesystem
                        // checkpoint so the next attempt resumes instead
                        // of restarting (§2.3), under an error backoff
                        // embargo so a deterministic failure cannot burn
                        // the whole budget in milliseconds.
                        let now = Instant::now();
                        cmd.checkpoint = self.shared_fs.checkpoint(command);
                        cmd.not_before = (!delay.is_zero()).then(|| now + delay);
                        if let Some(m) = &self.metrics {
                            m.requeued.inc();
                            if kind == FaultKind::Error {
                                m.retry_backoff.record(delay.as_secs_f64());
                            }
                            m.record(Event::CommandRequeued {
                                command: command.0,
                                attempts: attempts as u64,
                                had_checkpoint: cmd.checkpoint.is_some(),
                            });
                        }
                        let tracer = self.tracer();
                        if let Some(trace) = self.traces.get_mut(&command) {
                            if let Some(tracer) = &tracer {
                                let root_ctx = trace.root.context();
                                let mut queued =
                                    tracer.start_child(span_names::QUEUED, "server", &root_ctx);
                                queued.set_attr(
                                    "requeue_after",
                                    match kind {
                                        FaultKind::Error => "error",
                                        FaultKind::WorkerLost => "worker_lost",
                                    },
                                );
                                trace.queued = Some(queued);
                            }
                        }
                        self.ledger.mark_queued(command, now);
                        self.queue.enqueue(cmd);
                        self.commands_requeued += 1;
                        self.wal_append(&WalRecord::Requeued { command, attempts });
                        if kind == FaultKind::WorkerLost {
                            self.notify_controller(ControllerEvent::WorkerFailed {
                                worker,
                                requeued: Some(command),
                            });
                        }
                    }
                    Disposition::Drop => {
                        // Terminal: clear the checkpoint, tell the
                        // controller this command will never finish.
                        self.finish_trace(command, "dropped");
                        self.shared_fs.clear(command);
                        self.ledger.take_queued(command);
                        self.commands_dropped += 1;
                        self.wal_append(&WalRecord::Dropped { command, attempts });
                        self.monitor
                            .log(format!("{command} dropped after {attempts} attempts"));
                        if let Some(m) = &self.metrics {
                            m.dropped.inc();
                            m.record(Event::CommandDropped {
                                command: command.0,
                                attempts: attempts as u64,
                            });
                        }
                        let reason = match kind {
                            FaultKind::Error => DropReason::Error,
                            FaultKind::WorkerLost => DropReason::WorkerLost,
                        };
                        if kind == FaultKind::WorkerLost {
                            self.notify_controller(ControllerEvent::WorkerFailed {
                                worker,
                                requeued: None,
                            });
                        }
                        let tag = cmd
                            .payload
                            .get("tag")
                            .cloned()
                            .unwrap_or(serde_json::Value::Null);
                        self.notify_controller(ControllerEvent::CommandDropped {
                            command,
                            attempts,
                            reason,
                            tag,
                        });
                    }
                }
                None
            }

            Transition::Cancel { command } => {
                self.finish_trace(command, "cancelled");
                self.queue.remove(command);
                self.ledger.take_queued(command);
                // A re-queued command may carry a checkpoint from an
                // earlier attempt; cancelling is terminal, so drop it.
                self.shared_fs.clear(command);
                self.wal_append(&WalRecord::Cancelled { command });
                None
            }
        }
    }

    /// Accept a completion: clear the checkpoint, account, notify the
    /// controller — exactly once per command, by construction (the
    /// judge sends every later result to `drop_stale_result`).
    fn complete(&mut self, output: CommandOutput, dispatched_at: Option<Instant>) {
        self.finish_trace(output.command, "completed");
        self.wal_append(&WalRecord::Completed {
            command: output.command,
            bytes: output.bytes,
        });
        self.shared_fs.clear(output.command);
        self.ledger.take_queued(output.command);
        self.commands_completed += 1;
        self.bytes_received += output.bytes;
        if let Some(m) = &self.metrics {
            m.completed.inc();
            m.bytes_received.add(output.bytes);
            if let Some(at) = dispatched_at {
                m.turnaround.record(at.elapsed().as_secs_f64());
            }
            m.record(Event::CommandCompleted {
                command: output.command.0,
                worker: output.worker.0,
                wall_secs: output.wall_secs,
            });
        }
        self.notify_controller(ControllerEvent::CommandFinished(&output));
    }

    fn drop_stale_result(&mut self, id: CommandId, epoch: u32, what: &str) {
        self.stale_results_dropped += 1;
        self.wal_append(&WalRecord::StaleResult);
        self.monitor
            .log(format!("{id}: {what} (epoch {epoch}) dropped"));
        if let Some(m) = &self.metrics {
            m.stale_results.inc();
            m.record(Event::StaleResultDropped {
                command: id.0,
                epoch: epoch as u64,
            });
        }
    }

    fn handle(&mut self, msg: ToServer) {
        match msg {
            // Transports usually expand batches before the server loop
            // sees them; handling them here too keeps the server
            // correct behind any transport.
            ToServer::Batch(msgs) => {
                for m in msgs {
                    self.handle(m);
                }
            }
            ToServer::Announce { worker, desc } => {
                if let Some(m) = &self.metrics {
                    m.record(Event::WorkerAnnounced {
                        worker: worker.0,
                        cores: desc.resources.cores as u64,
                    });
                }
                // A (re)announce declares a fresh, idle session. If a
                // recovered placeholder still attributes in-flight
                // commands to this worker, those results either died
                // with the previous server incarnation or are still on
                // their way — and the attempt epoch dedups the latter.
                // Re-queue now instead of trusting the worker to report
                // work it may never have been asked to remember.
                if self.workers.get(&worker).is_some_and(|ws| ws.recovered) {
                    let held = self.ledger.commands_of(worker);
                    if !held.is_empty() {
                        self.monitor.log(format!(
                            "{worker} re-announced after recovery: re-queuing {} held command(s)",
                            held.len()
                        ));
                    }
                    for command in held {
                        self.transition(Transition::Fault {
                            command,
                            worker,
                            kind: FaultKind::WorkerLost,
                            epoch: None,
                            error: None,
                        });
                    }
                }
                self.workers.insert(
                    worker,
                    WorkerState {
                        desc,
                        last_heartbeat: Instant::now(),
                        alive: true,
                        recovered: false,
                    },
                );
            }
            ToServer::RequestWork { worker } => {
                let Some(ws) = self.workers.get_mut(&worker) else {
                    return; // unannounced worker: ignore
                };
                // A presumed-dead worker asking for work is evidently
                // alive: resurrect it. Its old commands were re-queued;
                // any results it still delivers are deduplicated by
                // attempt epoch in `transition`.
                let was_dead = !ws.alive;
                ws.alive = true;
                ws.last_heartbeat = Instant::now();
                let desc = ws.desc.clone();
                if was_dead {
                    self.resurrect(worker);
                }
                let matched = self.queue.match_workload(&desc, Instant::now());
                let mut load = Vec::with_capacity(matched.len());
                for cmd in matched {
                    let stamped = self
                        .transition(Transition::Dispatch { cmd, worker })
                        .expect("dispatch returns the stamped command");
                    load.push(stamped);
                }
                let reply_msg = if load.is_empty() {
                    ToWorker::NoWork
                } else {
                    ToWorker::Workload(load)
                };
                self.transport.send(worker, reply_msg);
            }
            ToServer::Completed { output } => {
                self.transition(Transition::Complete { output });
            }
            ToServer::CommandError {
                worker,
                project: _,
                command,
                epoch,
                error,
            } => {
                self.transition(Transition::Fault {
                    command,
                    worker,
                    kind: FaultKind::Error,
                    epoch: Some(epoch),
                    error: Some(error),
                });
            }
            ToServer::WorkerDeparted { worker } => {
                // Transport-level disconnect (link evicted or closed):
                // orphan the worker's commands now, not at the watchdog
                // timeout.
                self.monitor
                    .log(format!("{worker} link dropped by transport"));
                self.declare_lost(worker);
            }
            ToServer::Heartbeat { worker } => {
                if let Some(ws) = self.workers.get_mut(&worker) {
                    // A recovered placeholder is only reconciled by a
                    // real re-announce (above) or by the watchdog;
                    // heartbeats alone must not keep it alive, or a
                    // surviving worker whose result died with the old
                    // server would strand its command forever.
                    if !ws.recovered {
                        ws.last_heartbeat = Instant::now();
                        // Heartbeats resurrect workers that were presumed
                        // dead during a long controller step.
                        let was_dead = !ws.alive;
                        ws.alive = true;
                        if was_dead {
                            self.resurrect(worker);
                        }
                    }
                }
                // Trace: mark the heartbeat on every attempt span this
                // worker is currently running, so a merged trace shows
                // liveness between dispatch and result. The ledger's
                // per-worker index makes this O(this worker's
                // commands), not a scan of everything in flight.
                if !self.traces.is_empty() {
                    for command in self.ledger.commands_of(worker) {
                        if let Some(trace) = self.traces.get_mut(&command) {
                            if let Some(attempt) = trace.attempt.as_mut() {
                                attempt.add_event(span_names::HEARTBEAT);
                            }
                        }
                    }
                }
            }
        }
    }

    fn resurrect(&mut self, worker: WorkerId) {
        self.monitor
            .log(format!("{worker} resurrected after presumed loss"));
        if let Some(m) = &self.metrics {
            m.record(Event::WorkerResurrected { worker: worker.0 });
        }
    }

    /// Declare workers lost after 2× the heartbeat interval of silence
    /// and re-queue their in-flight commands with the latest checkpoint.
    fn check_heartbeats(&mut self) {
        let timeout = 2 * self.config.heartbeat_interval;
        let now = Instant::now();
        let dead: Vec<WorkerId> = self
            .workers
            .iter()
            .filter(|(_, ws)| ws.alive && now.duration_since(ws.last_heartbeat) > timeout)
            .map(|(&id, _)| id)
            .collect();
        for worker in dead {
            self.declare_lost(worker);
        }
    }

    /// Mark a worker dead and orphan its in-flight commands. Reached
    /// from the heartbeat watchdog (silence timeout) and from
    /// [`ToServer::WorkerDeparted`] (the transport observed the link
    /// drop — eviction at the write-backlog cap, TCP reset — so the
    /// re-queue happens immediately instead of after 2× heartbeat).
    fn declare_lost(&mut self, worker: WorkerId) {
        let Some(ws) = self.workers.get_mut(&worker) else {
            return;
        };
        if !ws.alive {
            return;
        }
        ws.alive = false;
        // Once reaped, the placeholder's attribution is gone; if the
        // worker later heartbeats or announces it is just an ordinary
        // (re)arrival.
        ws.recovered = false;
        self.workers_lost += 1;
        if let Some(m) = &self.metrics {
            m.workers_lost.inc();
            m.record(Event::WorkerLost { worker: worker.0 });
        }
        self.wal_append(&WalRecord::WorkerLost { worker });
        for command in self.ledger.commands_of(worker) {
            self.transition(Transition::Fault {
                command,
                worker,
                kind: FaultKind::WorkerLost,
                epoch: None,
                error: None,
            });
        }
    }

    fn apply_actions(&mut self, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::Spawn(specs) => {
                    let now = Instant::now();
                    let tracer = self.tracer();
                    for spec in specs {
                        let mut cmd =
                            Command::from_spec(self.ids.next_command(), self.project, spec);
                        // Trace: mint the command's root context here —
                        // the single origin every later span (attempts,
                        // worker exec, delegate hold) hangs off.
                        if let Some(tracer) = &tracer {
                            let ctx = tracer.mint_trace();
                            cmd.trace = Some(ctx);
                            let mut root =
                                tracer.start_with_context(span_names::COMMAND, "server", ctx);
                            root.set_attr("command", cmd.id.to_string());
                            root.set_attr("command_type", cmd.command_type.as_str());
                            let queued = tracer.start_child(span_names::QUEUED, "server", &ctx);
                            self.traces.insert(
                                cmd.id,
                                CommandTrace {
                                    root,
                                    queued: Some(queued),
                                    attempt: None,
                                },
                            );
                        }
                        self.wal_append(&WalRecord::Spawned { cmd: cmd.clone() });
                        self.ledger.mark_queued(cmd.id, now);
                        self.queue.enqueue(cmd);
                    }
                }
                Action::Cancel(id) => {
                    self.transition(Transition::Cancel { command: id });
                }
                Action::FinishProject { result } => {
                    self.wal_append(&WalRecord::Finished {
                        result: serde_json::to_string(&result)
                            .unwrap_or_else(|_| "null".to_string()),
                    });
                    self.finished = Some(result);
                }
                Action::Log(line) => {
                    self.monitor.log(line);
                }
            }
        }
    }

    fn publish_status(&self) {
        let queued = self.queue.len();
        let running = self.ledger.running_len();
        let connected = self.workers.values().filter(|w| w.alive).count();
        let (completed, requeued, dropped, lost, bytes) = (
            self.commands_completed,
            self.commands_requeued,
            self.commands_dropped,
            self.workers_lost,
            self.bytes_received,
        );
        self.monitor.update(|s| {
            s.commands_queued = queued;
            s.commands_running = running;
            s.workers_connected = connected;
            s.commands_completed = completed;
            s.commands_requeued = requeued;
            s.commands_dropped = dropped;
            s.workers_lost = lost;
            s.bytes_received = bytes;
        });
        if let Some(m) = &self.metrics {
            m.queue_depth.set(queued as f64);
            m.running.set(running as f64);
            m.workers_connected.set(connected as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::CommandSpec;
    use crate::controller::ControllerEvent;
    use crate::resources::{ExecutableSpec, Platform, Resources};
    use crate::transport::{self, ChannelHub};
    use serde_json::json;

    struct Noop;

    impl Controller for Noop {
        fn name(&self) -> &str {
            "noop"
        }
        fn on_event(
            &mut self,
            _ctx: ControllerCtx<'_>,
            _event: ControllerEvent<'_>,
        ) -> Vec<Action> {
            Vec::new()
        }
    }

    /// A server with telemetry attached and no retry backoff, driven by
    /// calling `handle` directly (no threads). The hub is returned only
    /// to keep the reply channel open.
    fn test_server(telemetry: Telemetry) -> (Server, ChannelHub) {
        let (hub, server_transport) = transport::channel();
        let config = ServerConfig::builder()
            .retry(RetryPolicy {
                max_attempts: 5,
                backoff_base: Duration::ZERO,
                backoff_max: Duration::ZERO,
            })
            .build()
            .unwrap();
        let server = Server::new(
            ProjectId(0),
            Box::new(Noop),
            config,
            SharedFs::new(),
            Monitor::with_telemetry(telemetry),
            Box::new(server_transport),
        );
        (server, hub)
    }

    fn noop_worker_desc() -> WorkerDescription {
        WorkerDescription {
            platform: Platform::Smp,
            resources: Resources::new(4, 1000),
            executables: vec![ExecutableSpec::new("noop", Platform::Smp, "1")],
        }
    }

    #[test]
    fn declined_delegation_requeues_with_dispatch_latency() {
        let telemetry = Telemetry::for_process("owner");
        let (mut server, _hub) = test_server(telemetry.clone());
        server.apply_actions(vec![Action::Spawn(vec![CommandSpec::new(
            "noop",
            Resources::new(1, 1),
            json!(null),
        )])]);
        assert_eq!(server.ledger.queued_len(), 1);
        let id = server.queue.snapshot_ids()[0];
        let worker = WorkerId(7);
        server.handle(ToServer::Announce {
            worker,
            desc: noop_worker_desc(),
        });
        server.handle(ToServer::RequestWork { worker });
        assert_eq!(server.ledger.queued_len(), 0, "dispatch consumes queued_at");
        assert_eq!(server.ledger.running_len(), 1);

        // A delegate declining a stale offer reports one CommandError
        // per command, carrying the dispatch epoch. The re-queue must
        // restore queued_at so redispatch latency is recorded — and must
        // not leak the entry once the command finally dispatches.
        server.handle(ToServer::CommandError {
            worker,
            project: ProjectId(0),
            command: id,
            epoch: 1,
            error: "delegation declined (stale offer)".into(),
        });
        assert_eq!(server.ledger.running_len(), 0);
        assert_eq!(server.queue.len(), 1);
        assert_eq!(
            server.ledger.queued_len(),
            1,
            "decline re-queue must restore queued_at"
        );

        server.handle(ToServer::RequestWork { worker });
        assert_eq!(server.ledger.running_len(), 1);
        assert_eq!(
            server.ledger.queued_len(),
            0,
            "no queued_at leak after redispatch"
        );
        let h = telemetry
            .registry()
            .find_histogram(names::DISPATCH_LATENCY, &Labels::new())
            .unwrap();
        assert_eq!(h.count(), 2, "latency recorded on dispatch and redispatch");

        let running_id = server.ledger.running_ids()[0];
        let cmd = server
            .ledger
            .peek_running(running_id, |f| f.cmd.clone())
            .unwrap();
        let output = CommandOutput::new(&cmd, worker, json!({}), 0.01);
        server.handle(ToServer::Completed { output });
        assert_eq!(server.ledger.queued_len(), 0);
        assert_eq!(server.ledger.running_len(), 0);
        assert!(server.traces.is_empty(), "terminal commands close spans");
        assert_eq!(server.commands_completed, 1);
    }

    #[test]
    fn command_lifecycle_emits_span_tree_with_heartbeats() {
        let telemetry = Telemetry::for_process("owner");
        let (mut server, _hub) = test_server(telemetry.clone());
        server.apply_actions(vec![Action::Spawn(vec![CommandSpec::new(
            "noop",
            Resources::new(1, 1),
            json!(null),
        )])]);
        let worker = WorkerId(3);
        server.handle(ToServer::Announce {
            worker,
            desc: noop_worker_desc(),
        });
        server.handle(ToServer::RequestWork { worker });
        server.handle(ToServer::Heartbeat { worker });
        let running_id = server.ledger.running_ids()[0];
        let cmd = server
            .ledger
            .peek_running(running_id, |f| f.cmd.clone())
            .unwrap();
        assert!(
            cmd.trace.is_some(),
            "dispatched command carries the attempt context"
        );
        let output = CommandOutput::new(&cmd, worker, json!({}), 0.01);
        server.handle(ToServer::Completed { output });

        let spans = telemetry.tracer().spans();
        assert_eq!(spans.len(), 3, "queued + attempt + command: {spans:#?}");
        let root = spans.iter().find(|s| s.name == "command").unwrap();
        let queued = spans.iter().find(|s| s.name == "queued").unwrap();
        let attempt = spans.iter().find(|s| s.name == "attempt").unwrap();
        assert_eq!(root.parent_span_id, None);
        assert_eq!(queued.parent_span_id, Some(root.span_id));
        assert_eq!(attempt.parent_span_id, Some(root.span_id));
        assert!(spans.iter().all(|s| s.trace_id == root.trace_id));
        assert_eq!(
            attempt
                .events
                .iter()
                .filter(|e| e.name == "heartbeat")
                .count(),
            1,
            "heartbeat marked on the live attempt span"
        );
        assert!(root
            .attrs
            .iter()
            .any(|(k, v)| k == "disposition" && v == "completed"));
        // The dispatched command's context is the attempt span itself.
        assert_eq!(cmd.trace.unwrap().span_id, attempt.span_id);
    }

    #[test]
    fn builder_accepts_sane_defaults() {
        let config = ServerConfig::builder().build().expect("defaults are valid");
        assert_eq!(config.max_attempts, 5);
        assert!(config.bind.is_none());
    }

    #[test]
    fn builder_round_trips_a_retry_policy() {
        let policy = RetryPolicy {
            max_attempts: 3,
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(100),
        };
        let config = ServerConfig::builder().retry(policy).build().unwrap();
        let back = config.retry_policy();
        assert_eq!(back.max_attempts, 3);
        assert_eq!(back.backoff_base, Duration::from_millis(10));
        assert_eq!(back.backoff_max, Duration::from_millis(100));
    }

    #[test]
    fn builder_rejects_zero_attempt_budget() {
        let err = ServerConfig::builder().max_attempts(0).build().unwrap_err();
        assert!(err.0.contains("max_attempts"), "{err}");
    }

    #[test]
    fn builder_rejects_watchdog_slower_than_heartbeat() {
        let err = ServerConfig::builder()
            .heartbeat_interval(Duration::from_millis(100))
            .watchdog_period(Duration::from_millis(500))
            .build()
            .unwrap_err();
        assert!(err.0.contains("watchdog_period"), "{err}");
    }

    #[test]
    fn builder_rejects_inverted_backoff_clamp() {
        let err = ServerConfig::builder()
            .retry(RetryPolicy {
                max_attempts: 3,
                backoff_base: Duration::from_secs(60),
                backoff_max: Duration::from_secs(1),
            })
            .build()
            .unwrap_err();
        assert!(err.0.contains("retry_backoff_base"), "{err}");
    }

    #[test]
    fn literal_with_bind_but_no_key_fails_validation() {
        // The builder makes this unrepresentable; a hand-rolled literal
        // is caught by the shared validate().
        let config = ServerConfig {
            bind: Some("127.0.0.1:0".into()),
            ..ServerConfig::default()
        };
        let err = config.validate().unwrap_err();
        assert!(err.0.contains("auth_key"), "{err}");
    }

    #[test]
    fn builder_bind_carries_its_key() {
        let key = AuthKey::from_passphrase("hunter2");
        let config = ServerConfig::builder()
            .bind("127.0.0.1:0", key)
            .build()
            .unwrap();
        assert_eq!(config.bind.as_deref(), Some("127.0.0.1:0"));
        assert!(config.auth_key.is_some());
    }
}
