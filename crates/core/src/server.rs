//! The project server: command queue, resource matching, heartbeat
//! watchdog, controller dispatch.
//!
//! One [`Server`] owns one project (the paper's servers can hold several;
//! run several `Server`s for that). It consumes [`ToServer`] messages
//! from workers, matches workloads, feeds completions to the controller
//! plugin, and re-queues commands of lost workers with their latest
//! shared-filesystem checkpoint (§2.3).

use crate::command::Command;
use crate::controller::{Action, Controller, ControllerEvent};
use crate::fs::SharedFs;
use crate::ids::{CommandId, IdGen, ProjectId, WorkerId};
use crate::messages::{ToServer, ToWorker};
use crate::monitor::Monitor;
use crate::queue::CommandQueue;
use crate::resources::WorkerDescription;
use copernicus_telemetry::{buckets, names, Counter, Event, Gauge, Histogram, Labels, Telemetry};
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Heartbeat interval workers are expected to honour (paper default
    /// 120 s; tests use milliseconds).
    pub heartbeat_interval: Duration,
    /// How often the watchdog scans for missing heartbeats.
    pub watchdog_period: Duration,
    /// Give up on a command after this many dispatch attempts.
    pub max_attempts: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            heartbeat_interval: Duration::from_millis(500),
            watchdog_period: Duration::from_millis(100),
            max_attempts: 5,
        }
    }
}

/// Final outcome of a project run.
#[derive(Debug, Clone)]
pub struct ProjectResult {
    pub project: ProjectId,
    pub result: serde_json::Value,
    pub commands_completed: u64,
    pub commands_requeued: u64,
    pub workers_lost: u64,
    pub bytes_received: u64,
    pub wall: Duration,
}

struct WorkerState {
    desc: WorkerDescription,
    reply: Sender<ToWorker>,
    last_heartbeat: Instant,
    alive: bool,
}

/// Cached metric handles, created once per server so the dispatch path
/// never touches the registry map.
struct ServerMetrics {
    telemetry: Telemetry,
    dispatched: Arc<Counter>,
    completed: Arc<Counter>,
    failed: Arc<Counter>,
    requeued: Arc<Counter>,
    workers_lost: Arc<Counter>,
    bytes_received: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    running: Arc<Gauge>,
    workers_connected: Arc<Gauge>,
    dispatch_latency: Arc<Histogram>,
    turnaround: Arc<Histogram>,
}

impl ServerMetrics {
    fn new(telemetry: Telemetry) -> ServerMetrics {
        let r = telemetry.registry().clone();
        let none = Labels::new;
        ServerMetrics {
            dispatched: r.counter(names::COMMANDS_DISPATCHED, none()),
            completed: r.counter(names::COMMANDS_COMPLETED, none()),
            failed: r.counter(names::COMMANDS_FAILED, none()),
            requeued: r.counter(names::COMMANDS_REQUEUED, none()),
            workers_lost: r.counter(names::WORKERS_LOST, none()),
            bytes_received: r.counter(names::BYTES_RECEIVED, none()),
            queue_depth: r.gauge(names::QUEUE_DEPTH, none()),
            running: r.gauge(names::RUNNING_COMMANDS, none()),
            workers_connected: r.gauge(names::WORKERS_CONNECTED, none()),
            dispatch_latency: r.histogram(names::DISPATCH_LATENCY, none(), buckets::SECONDS),
            turnaround: r.histogram(names::COMMAND_TURNAROUND, none(), buckets::SECONDS),
            telemetry,
        }
    }

    fn record(&self, event: Event) {
        self.telemetry.journal().record(event);
    }
}

/// The project server.
pub struct Server {
    project: ProjectId,
    config: ServerConfig,
    controller: Box<dyn Controller>,
    queue: CommandQueue,
    running: HashMap<CommandId, (WorkerId, Command, Instant)>,
    /// When each queued command entered the queue (dispatch latency).
    queued_at: HashMap<CommandId, Instant>,
    workers: HashMap<WorkerId, WorkerState>,
    shared_fs: SharedFs,
    monitor: Monitor,
    ids: IdGen,
    inbox: Receiver<ToServer>,
    finished: Option<serde_json::Value>,
    commands_completed: u64,
    commands_requeued: u64,
    workers_lost: u64,
    bytes_received: u64,
    metrics: Option<ServerMetrics>,
}

impl Server {
    pub fn new(
        project: ProjectId,
        controller: Box<dyn Controller>,
        config: ServerConfig,
        shared_fs: SharedFs,
        monitor: Monitor,
        inbox: Receiver<ToServer>,
    ) -> Self {
        let metrics = monitor.telemetry().cloned().map(ServerMetrics::new);
        Server {
            project,
            config,
            controller,
            queue: CommandQueue::new(),
            running: HashMap::new(),
            queued_at: HashMap::new(),
            workers: HashMap::new(),
            shared_fs,
            monitor,
            ids: IdGen::new(),
            inbox,
            finished: None,
            commands_completed: 0,
            commands_requeued: 0,
            workers_lost: 0,
            bytes_received: 0,
            metrics,
        }
    }

    /// Drive the project to completion: fire `ProjectStarted`, then
    /// process messages until the controller finishes the project.
    pub fn run(mut self) -> ProjectResult {
        let t0 = Instant::now();
        let actions = self.controller.on_event(ControllerEvent::ProjectStarted);
        self.apply_actions(actions);
        let mut last_watchdog = Instant::now();

        while self.finished.is_none() {
            match self.inbox.recv_timeout(self.config.watchdog_period) {
                Ok(msg) => self.handle(msg),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
            // Drain the backlog before judging liveness: a long
            // controller step (clustering) must not turn queued-up
            // heartbeats into false worker deaths.
            while self.finished.is_none() {
                match self.inbox.try_recv() {
                    Ok(msg) => self.handle(msg),
                    Err(_) => break,
                }
            }
            if self.finished.is_none() && last_watchdog.elapsed() >= self.config.watchdog_period
            {
                self.check_heartbeats();
                last_watchdog = Instant::now();
            }
            self.publish_status();
        }

        // Tell every connected worker to exit.
        for ws in self.workers.values() {
            let _ = ws.reply.send(ToWorker::Shutdown);
        }
        self.monitor.update(|s| s.finished = true);

        ProjectResult {
            project: self.project,
            result: self.finished.unwrap_or(serde_json::Value::Null),
            commands_completed: self.commands_completed,
            commands_requeued: self.commands_requeued,
            workers_lost: self.workers_lost,
            bytes_received: self.bytes_received,
            wall: t0.elapsed(),
        }
    }

    fn handle(&mut self, msg: ToServer) {
        match msg {
            ToServer::Announce { worker, desc, reply } => {
                if let Some(m) = &self.metrics {
                    m.record(Event::WorkerAnnounced {
                        worker: worker.0,
                        cores: desc.resources.cores as u64,
                    });
                }
                self.workers.insert(
                    worker,
                    WorkerState {
                        desc,
                        reply,
                        last_heartbeat: Instant::now(),
                        alive: true,
                    },
                );
            }
            ToServer::RequestWork { worker } => {
                let Some(ws) = self.workers.get_mut(&worker) else {
                    return; // unannounced worker: ignore
                };
                // A presumed-dead worker asking for work is evidently
                // alive: resurrect it (its old commands were re-queued;
                // duplicate completions are deduplicated).
                if !ws.alive {
                    ws.alive = true;
                }
                ws.last_heartbeat = Instant::now();
                let ws = self.workers.get(&worker).expect("just fetched");
                let mut load = self.queue.match_workload(&ws.desc);
                let now = Instant::now();
                for cmd in load.iter_mut() {
                    cmd.attempts += 1;
                    if let Some(m) = &self.metrics {
                        m.dispatched.inc();
                        if let Some(enqueued) = self.queued_at.remove(&cmd.id) {
                            m.dispatch_latency
                                .record(now.duration_since(enqueued).as_secs_f64());
                        }
                        m.record(Event::CommandDispatched {
                            command: cmd.id.0,
                            worker: worker.0,
                        });
                    } else {
                        self.queued_at.remove(&cmd.id);
                    }
                    self.running.insert(cmd.id, (worker, cmd.clone(), now));
                }
                let reply = if load.is_empty() {
                    ToWorker::NoWork
                } else {
                    ToWorker::Workload(load)
                };
                let _ = ws.reply.send(reply);
            }
            ToServer::Completed { output } => {
                let Some((_, _, dispatched_at)) = self.running.remove(&output.command) else {
                    // Duplicate (e.g. a presumed-dead worker delivered
                    // late): the first result won.
                    return;
                };
                self.shared_fs.clear(output.command);
                self.commands_completed += 1;
                self.bytes_received += output.bytes;
                if let Some(m) = &self.metrics {
                    m.completed.inc();
                    m.bytes_received.add(output.bytes);
                    m.turnaround.record(dispatched_at.elapsed().as_secs_f64());
                    m.record(Event::CommandCompleted {
                        command: output.command.0,
                        worker: output.worker.0,
                        wall_secs: output.wall_secs,
                    });
                }
                let actions = self
                    .controller
                    .on_event(ControllerEvent::CommandFinished(&output));
                self.apply_actions(actions);
            }
            ToServer::CommandError { worker, project: _, command, error } => {
                self.monitor
                    .log(format!("{command} failed on {worker}: {error}"));
                self.monitor.update(|s| s.commands_failed += 1);
                if let Some(m) = &self.metrics {
                    m.failed.inc();
                    m.record(Event::CommandFailed {
                        command: command.0,
                        worker: worker.0,
                        error,
                    });
                }
                self.running.remove(&command);
            }
            ToServer::Heartbeat { worker } => {
                if let Some(ws) = self.workers.get_mut(&worker) {
                    ws.last_heartbeat = Instant::now();
                    // Heartbeats resurrect workers that were presumed
                    // dead during a long controller step.
                    ws.alive = true;
                }
            }
        }
    }

    /// Declare workers lost after 2× the heartbeat interval of silence
    /// and re-queue their in-flight commands with the latest checkpoint.
    fn check_heartbeats(&mut self) {
        let timeout = 2 * self.config.heartbeat_interval;
        let now = Instant::now();
        let dead: Vec<WorkerId> = self
            .workers
            .iter()
            .filter(|(_, ws)| ws.alive && now.duration_since(ws.last_heartbeat) > timeout)
            .map(|(&id, _)| id)
            .collect();
        for worker in dead {
            self.workers.get_mut(&worker).expect("listed").alive = false;
            self.workers_lost += 1;
            if let Some(m) = &self.metrics {
                m.workers_lost.inc();
                m.record(Event::WorkerLost { worker: worker.0 });
            }
            let orphaned: Vec<CommandId> = self
                .running
                .iter()
                .filter(|(_, (w, _, _))| *w == worker)
                .map(|(&c, _)| c)
                .collect();
            for cmd_id in orphaned {
                let (_, mut cmd, _) = self.running.remove(&cmd_id).expect("listed");
                let requeued = if cmd.attempts < self.config.max_attempts {
                    cmd.checkpoint = self.shared_fs.checkpoint(cmd_id);
                    if let Some(m) = &self.metrics {
                        m.requeued.inc();
                        m.record(Event::CommandRequeued {
                            command: cmd_id.0,
                            attempts: cmd.attempts as u64,
                            had_checkpoint: cmd.checkpoint.is_some(),
                        });
                    }
                    self.queued_at.insert(cmd_id, Instant::now());
                    self.queue.enqueue(cmd);
                    self.commands_requeued += 1;
                    Some(cmd_id)
                } else {
                    self.monitor
                        .log(format!("{cmd_id} dropped after {} attempts", cmd.attempts));
                    None
                };
                let actions = self
                    .controller
                    .on_event(ControllerEvent::WorkerFailed { worker, requeued });
                self.apply_actions(actions);
            }
        }
    }

    fn apply_actions(&mut self, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::Spawn(specs) => {
                    let now = Instant::now();
                    for spec in specs {
                        let cmd =
                            Command::from_spec(self.ids.next_command(), self.project, spec);
                        self.queued_at.insert(cmd.id, now);
                        self.queue.enqueue(cmd);
                    }
                }
                Action::Cancel(id) => {
                    self.queue.remove(id);
                    self.queued_at.remove(&id);
                }
                Action::FinishProject { result } => {
                    self.finished = Some(result);
                }
                Action::Log(line) => {
                    self.monitor.log(line);
                }
            }
        }
    }

    fn publish_status(&self) {
        let queued = self.queue.len();
        let running = self.running.len();
        let connected = self.workers.values().filter(|w| w.alive).count();
        let (completed, requeued, lost, bytes) = (
            self.commands_completed,
            self.commands_requeued,
            self.workers_lost,
            self.bytes_received,
        );
        self.monitor.update(|s| {
            s.commands_queued = queued;
            s.commands_running = running;
            s.workers_connected = connected;
            s.commands_completed = completed;
            s.commands_requeued = requeued;
            s.workers_lost = lost;
            s.bytes_received = bytes;
        });
        if let Some(m) = &self.metrics {
            m.queue_depth.set(queued as f64);
            m.running.set(running as f64);
            m.workers_connected.set(connected as f64);
        }
    }
}
