//! Controller plugins (§2.1 of the paper).
//!
//! *"Even the controllers doing the analysis and deciding what to run are
//! 'plugins'… Controllers are in essence event handlers that react to a
//! set of conditions: they are called when a project starts, a subproject
//! finishes, a command finishes, etc."*
//!
//! A [`Controller`] receives [`ControllerEvent`]s from the project server
//! and answers with [`Action`]s: spawn commands, terminate queued
//! commands, or finish the project with a result.
//!
//! ## API v2: the controller context
//!
//! Every `on_event` call receives a [`ControllerCtx`] alongside the
//! event. The context carries the server-owned plumbing — project
//! identity, a monotonic clock, the telemetry handle, a deterministic
//! RNG seed — that plugins previously smuggled in through constructor
//! fields. Controllers own their *domain* state (models, samples,
//! estimators); everything tied to the server process arrives per-event
//! through the context, which is what lets the registry instantiate a
//! controller from its name and config alone (WAL recovery, `serve`).

use crate::command::{CommandOutput, CommandSpec};
use crate::ids::{CommandId, ProjectId, WorkerId};
use copernicus_telemetry::Telemetry;
use std::time::Duration;

/// Server-provided context delivered with every controller event.
#[derive(Clone, Copy)]
pub struct ControllerCtx<'a> {
    /// The project this event belongs to.
    pub project: ProjectId,
    /// Monotonic time since the server started. All events share this
    /// one timeline, so latency measurements made inside a controller
    /// (e.g. time-to-first-folded) are attributable even when results
    /// originate on remote workers.
    pub now: Duration,
    /// The server's telemetry handle, when the deployment carries one.
    pub telemetry: Option<&'a Telemetry>,
    /// Deterministic seed derived from the project identity. Controllers
    /// whose config carries no seed of its own should derive RNG streams
    /// from this rather than hardcoding one.
    pub seed: u64,
}

impl std::fmt::Debug for ControllerCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ControllerCtx")
            .field("project", &self.project)
            .field("now", &self.now)
            .field("telemetry", &self.telemetry.is_some())
            .field("seed", &self.seed)
            .finish()
    }
}

impl ControllerCtx<'_> {
    /// A bare context for unit tests and inline harnesses.
    pub fn test() -> ControllerCtx<'static> {
        ControllerCtx {
            project: ProjectId(0),
            now: Duration::ZERO,
            telemetry: None,
            seed: 0xC0FFEE,
        }
    }
}

/// Why a command left the lifecycle without a result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Repeated command-level errors exhausted the attempt budget.
    Error,
    /// Repeated worker loss exhausted the attempt budget.
    WorkerLost,
}

/// Events delivered to a project controller.
#[derive(Debug)]
pub enum ControllerEvent<'a> {
    /// The project has been created; produce the initial commands.
    ProjectStarted,
    /// A command's output has arrived at the project server. Delivered
    /// exactly once per command: duplicate and stale-epoch results are
    /// deduplicated by the server before this event fires.
    CommandFinished(&'a CommandOutput),
    /// A worker stopped heartbeating; the listed command was re-queued
    /// (with its latest checkpoint, if any).
    WorkerFailed {
        worker: WorkerId,
        requeued: Option<CommandId>,
    },
    /// A command exhausted its attempt budget and was dropped: no
    /// `CommandFinished` will ever arrive for it. Controllers that
    /// count completions must account for this event or the project
    /// hangs. `tag` is the command payload's `"tag"` field (or `Null`),
    /// so controllers that key in-flight work by tag — a lineage id, an
    /// epoch — can tell *which* unit of work died without keeping a
    /// `CommandId → tag` map of their own.
    CommandDropped {
        command: CommandId,
        attempts: u32,
        reason: DropReason,
        tag: serde_json::Value,
    },
}

/// What a controller wants done in response to an event.
#[derive(Debug)]
pub enum Action {
    /// Enqueue new commands.
    Spawn(Vec<CommandSpec>),
    /// Remove a not-yet-dispatched command from the queue.
    Cancel(CommandId),
    /// The project is done; `result` is its final report.
    FinishProject { result: serde_json::Value },
    /// Progress note surfaced through the monitoring interface.
    Log(String),
}

/// A project controller plugin.
pub trait Controller: Send {
    /// Short name for logs and monitoring ("msm", "fep", …).
    fn name(&self) -> &str;

    /// Handle one event, returning follow-up actions.
    fn on_event(&mut self, ctx: ControllerCtx<'_>, event: ControllerEvent<'_>) -> Vec<Action>;

    /// Serialize the controller's decision state for the server's
    /// write-ahead log, or `None` if the controller is stateless (the
    /// default). Called after every event delivery, so keep it cheap
    /// relative to the events it survives.
    fn snapshot(&self) -> Option<serde_json::Value> {
        None
    }

    /// Restore state captured by [`Controller::snapshot`] during crash
    /// recovery. Return `true` if the snapshot was applied; the default
    /// ignores it (a stateless controller re-derives everything from
    /// the replayed command stream). When this returns `false` for a
    /// stateful controller, recovery still re-queues the in-flight
    /// work, but the controller restarts its decision-making from
    /// scratch.
    fn restore(&mut self, _snapshot: serde_json::Value) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::Resources;
    use serde_json::json;

    /// A controller that runs `n` trivial commands then finishes.
    struct CountDown {
        remaining: usize,
    }

    impl Controller for CountDown {
        fn name(&self) -> &str {
            "countdown"
        }
        fn on_event(&mut self, _ctx: ControllerCtx<'_>, event: ControllerEvent<'_>) -> Vec<Action> {
            match event {
                ControllerEvent::ProjectStarted => {
                    let specs = (0..self.remaining)
                        .map(|i| CommandSpec::new("noop", Resources::new(1, 1), json!({ "i": i })))
                        .collect();
                    vec![Action::Spawn(specs)]
                }
                ControllerEvent::CommandFinished(_) => {
                    self.remaining -= 1;
                    if self.remaining == 0 {
                        vec![Action::FinishProject {
                            result: json!("done"),
                        }]
                    } else {
                        vec![]
                    }
                }
                ControllerEvent::WorkerFailed { .. } => vec![Action::Log("shrug".into())],
                ControllerEvent::CommandDropped { .. } => {
                    self.remaining -= 1;
                    if self.remaining == 0 {
                        vec![Action::FinishProject {
                            result: json!("done"),
                        }]
                    } else {
                        vec![]
                    }
                }
            }
        }
    }

    #[test]
    fn controller_protocol_shape() {
        let mut c = CountDown { remaining: 2 };
        assert_eq!(c.name(), "countdown");
        let actions = c.on_event(ControllerCtx::test(), ControllerEvent::ProjectStarted);
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            Action::Spawn(specs) => assert_eq!(specs.len(), 2),
            other => panic!("expected spawn, got {other:?}"),
        }
    }

    #[test]
    fn test_ctx_is_bare() {
        let ctx = ControllerCtx::test();
        assert_eq!(ctx.project, ProjectId(0));
        assert_eq!(ctx.now, Duration::ZERO);
        assert!(ctx.telemetry.is_none());
    }
}
