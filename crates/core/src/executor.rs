//! Command executors: the worker-side 'executables' that turn a command
//! payload into output data.
//!
//! This module holds the executor *protocol* — [`ExecContext`],
//! [`ExecError`], the [`CommandExecutor`] trait and the
//! [`ExecutorRegistry`] — plus the dependency-free [`SleepExecutor`]
//! for scheduling tests. The MD-backed executables ([`MdRunExecutor`],
//! [`FepSampleExecutor`]) live in [`crate::md_executors`] and are
//! re-exported here; fault-injection executables for lifecycle tests
//! live in [`crate::faults`].

use crate::command::Command;
use crate::fs::SharedFs;
use crate::ids::WorkerId;
use crate::resources::{ExecutableSpec, Platform};
use copernicus_telemetry::Telemetry;
use std::collections::HashMap;
use std::sync::Arc;

pub use crate::md_executors::{
    FepSampleExecutor, FepSampleOutput, FepSampleSpec, MdRunExecutor, MdRunOutput, MdRunSpec,
    MsmBuildExecutor, MsmBuildOutput, MsmBuildSpec,
};

/// Context an executor runs under.
pub struct ExecContext<'a> {
    pub command: &'a Command,
    pub worker: WorkerId,
    /// Shared filesystem for checkpoints (absent on storage-less setups).
    pub shared_fs: Option<&'a SharedFs>,
    /// Telemetry for instrumented execution (MD step timings, checkpoint
    /// I/O accounting). `None` keeps the hot paths uninstrumented.
    pub telemetry: Option<&'a Telemetry>,
}

/// Errors an execution can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The payload could not be interpreted.
    BadPayload(String),
    /// The execution itself failed in a reportable way (transient I/O
    /// fault, license hiccup, injected failure). The worker reports it
    /// as a `CommandError`; the server retries with backoff.
    Failed(String),
    /// Simulated worker crash (failure-injection); the worker must stop
    /// reporting, as if the node died.
    SimulatedCrash,
}

impl ExecError {
    /// The error text the worker reports to the server (`None` for a
    /// crash, which manifests as silence).
    pub fn report(&self) -> Option<&str> {
        match self {
            ExecError::BadPayload(e) | ExecError::Failed(e) => Some(e),
            ExecError::SimulatedCrash => None,
        }
    }
}

/// A worker-side executable.
pub trait CommandExecutor: Send + Sync {
    /// The executables this executor provides (announced to servers).
    fn executables(&self) -> Vec<ExecutableSpec>;

    /// Run a command to completion, returning its output data.
    fn execute(&self, ctx: ExecContext<'_>) -> Result<serde_json::Value, ExecError>;
}

/// Registry mapping command types to executors (what a worker 'installs').
#[derive(Clone, Default)]
pub struct ExecutorRegistry {
    by_type: HashMap<String, Arc<dyn CommandExecutor>>,
}

impl ExecutorRegistry {
    pub fn new() -> Self {
        ExecutorRegistry::default()
    }

    pub fn register(&mut self, executor: Arc<dyn CommandExecutor>) -> &mut Self {
        for spec in executor.executables() {
            self.by_type
                .insert(spec.command_type.clone(), executor.clone());
        }
        self
    }

    pub fn with(mut self, executor: Arc<dyn CommandExecutor>) -> Self {
        self.register(executor);
        self
    }

    pub fn lookup(&self, command_type: &str) -> Option<&Arc<dyn CommandExecutor>> {
        self.by_type.get(command_type)
    }

    pub fn executables(&self) -> Vec<ExecutableSpec> {
        let mut specs: Vec<ExecutableSpec> = self
            .by_type
            .values()
            .flat_map(|e| e.executables())
            .collect();
        specs.sort_by(|a, b| a.command_type.cmp(&b.command_type));
        specs.dedup();
        specs
    }
}

// ---------------------------------------------------------------------------
// Sleep executor (scheduling tests)
// ---------------------------------------------------------------------------

/// Trivial executable that just burns wallclock time.
pub struct SleepExecutor;

impl SleepExecutor {
    pub const COMMAND_TYPE: &'static str = "sleep";
}

impl CommandExecutor for SleepExecutor {
    fn executables(&self) -> Vec<ExecutableSpec> {
        vec![ExecutableSpec::new(
            Self::COMMAND_TYPE,
            Platform::Smp,
            "0.1",
        )]
    }

    fn execute(&self, ctx: ExecContext<'_>) -> Result<serde_json::Value, ExecError> {
        let millis = ctx.command.payload["millis"].as_u64().unwrap_or(0);
        std::thread::sleep(std::time::Duration::from_millis(millis));
        Ok(serde_json::json!({ "slept_ms": millis }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_routes_by_type() {
        let registry = ExecutorRegistry::new().with(Arc::new(SleepExecutor));
        assert!(registry.lookup("sleep").is_some());
        assert!(registry.lookup("mdrun").is_none());
        assert_eq!(registry.executables().len(), 1);
    }

    #[test]
    fn error_report_text() {
        assert_eq!(ExecError::BadPayload("bad".into()).report(), Some("bad"));
        assert_eq!(ExecError::Failed("io".into()).report(), Some("io"));
        assert_eq!(ExecError::SimulatedCrash.report(), None);
    }
}
