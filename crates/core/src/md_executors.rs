//! MD-backed command executors.
//!
//! [`MdRunExecutor`] is the Gromacs stand-in — it runs a coarse-grained
//! villin segment with mid-run checkpointing to the shared filesystem.
//! [`FepSampleExecutor`] samples perturbation work values for the BAR
//! plugin. [`MsmBuildExecutor`] runs the full recluster the streaming
//! controller dispatches as a background command (§16 of DESIGN.md).
//! All sit on the `mdsim`/`msm` crates; the dependency-free executor
//! protocol lives in [`crate::executor`].
//!
//! Payloads use the hand-rolled wire codecs from [`mdsim::jsonv`]: one
//! canonical JSON shape per command type, independent of derive layout.

use crate::executor::{CommandExecutor, ExecContext, ExecError};
use crate::resources::{ExecutableSpec, Platform};
use copernicus_telemetry::{buckets, labels, names, Event};
use mdsim::jsonv;
use mdsim::model::villin::VillinModel;
use mdsim::rng::rng_for_stream;
use mdsim::trajectory::Trajectory;
use mdsim::vec3::Vec3;
use serde::{Deserialize, Serialize};
use serde_json::{json, Value};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// MD executor
// ---------------------------------------------------------------------------

/// Payload of an `mdrun` command: one trajectory segment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MdRunSpec {
    pub start_positions: Vec<Vec3>,
    pub temperature: f64,
    pub n_steps: u64,
    pub record_interval: u64,
    pub seed: u64,
    /// Steps between checkpoint deposits (0 = no checkpointing).
    pub checkpoint_steps: u64,
    /// Failure injection: on the *first* attempt, crash after this many
    /// steps (for fault-tolerance tests). `None` in normal operation.
    pub inject_crash_at_step: Option<u64>,
    /// Opaque controller metadata echoed into the output (e.g. which
    /// trajectory and generation this segment belongs to).
    #[serde(default)]
    pub tag: serde_json::Value,
    /// Force-kernel tuning (threading, parallel threshold, reference
    /// kernel). `None` keeps the model builder's defaults.
    #[serde(default)]
    pub kernel: Option<mdsim::forces::KernelConfig>,
}

/// Output of an `mdrun` command.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MdRunOutput {
    pub trajectory: Trajectory,
    pub final_positions: Vec<Vec3>,
    /// Steps actually executed in this attempt (checkpoint resume makes
    /// this smaller than `n_steps`).
    pub steps_executed: u64,
    /// Potential energy of the final configuration, for controllers that
    /// make exchange decisions from reported energies (replica exchange
    /// sync points). `None` only for outputs recorded before this field
    /// existed (old WAL journals).
    #[serde(default)]
    pub final_potential: Option<f64>,
    /// The controller tag from the command payload, echoed back.
    #[serde(default)]
    pub tag: serde_json::Value,
}

impl MdRunSpec {
    /// Wire encoding of the command payload.
    pub fn to_value(&self) -> Value {
        json!({
            "start_positions": jsonv::frame_to_value(&self.start_positions),
            "temperature": self.temperature,
            "n_steps": self.n_steps,
            "record_interval": self.record_interval,
            "seed": self.seed,
            "checkpoint_steps": self.checkpoint_steps,
            "inject_crash_at_step": self.inject_crash_at_step,
            "tag": self.tag.clone(),
            "kernel": match &self.kernel {
                Some(k) => k.to_value(),
                None => Value::Null,
            },
        })
    }

    pub fn from_value(v: &Value) -> Result<MdRunSpec, String> {
        Ok(MdRunSpec {
            start_positions: jsonv::frame_from_value(jsonv::field(v, "start_positions")?)?,
            temperature: jsonv::num(v, "temperature")?,
            n_steps: jsonv::int(v, "n_steps")?,
            record_interval: jsonv::int(v, "record_interval")?,
            seed: jsonv::int(v, "seed")?,
            checkpoint_steps: jsonv::int(v, "checkpoint_steps")?,
            inject_crash_at_step: jsonv::opt_int(v, "inject_crash_at_step"),
            tag: v.get("tag").cloned().unwrap_or(Value::Null),
            kernel: match v.get("kernel") {
                None | Some(Value::Null) => None,
                Some(k) => Some(mdsim::forces::KernelConfig::from_value(k)?),
            },
        })
    }
}

impl MdRunOutput {
    pub fn to_value(&self) -> Value {
        json!({
            "trajectory": self.trajectory.to_value(),
            "final_positions": jsonv::frame_to_value(&self.final_positions),
            "steps_executed": self.steps_executed,
            "final_potential": self.final_potential,
            "tag": self.tag.clone(),
        })
    }

    pub fn from_value(v: &Value) -> Result<MdRunOutput, String> {
        Ok(MdRunOutput {
            trajectory: Trajectory::from_value(jsonv::field(v, "trajectory")?)?,
            final_positions: jsonv::frame_from_value(jsonv::field(v, "final_positions")?)?,
            steps_executed: jsonv::int(v, "steps_executed")?,
            final_potential: jsonv::opt_num(v, "final_potential"),
            tag: v.get("tag").cloned().unwrap_or(Value::Null),
        })
    }
}

/// Mid-run checkpoint: engine state plus the frames recorded so far.
#[derive(Debug, Clone)]
struct MdCheckpoint {
    engine: mdsim::engine::Checkpoint,
    partial_trajectory: Trajectory,
    steps_done: u64,
}

impl MdCheckpoint {
    fn to_value(&self) -> Value {
        json!({
            "engine": self.engine.to_value(),
            "partial_trajectory": self.partial_trajectory.to_value(),
            "steps_done": self.steps_done,
        })
    }

    fn from_value(v: &Value) -> Result<MdCheckpoint, String> {
        Ok(MdCheckpoint {
            engine: mdsim::engine::Checkpoint::from_value(jsonv::field(v, "engine")?)?,
            partial_trajectory: Trajectory::from_value(jsonv::field(v, "partial_trajectory")?)?,
            steps_done: jsonv::int(v, "steps_done")?,
        })
    }
}

/// The Gromacs-equivalent executable: runs villin Gō-model segments.
pub struct MdRunExecutor {
    model: Arc<VillinModel>,
}

impl MdRunExecutor {
    pub fn new(model: Arc<VillinModel>) -> Self {
        MdRunExecutor { model }
    }

    pub const COMMAND_TYPE: &'static str = "mdrun";
}

impl CommandExecutor for MdRunExecutor {
    fn executables(&self) -> Vec<ExecutableSpec> {
        vec![ExecutableSpec::new(
            Self::COMMAND_TYPE,
            Platform::Smp,
            "copernicus-mdsim-0.1",
        )]
    }

    fn execute(&self, ctx: ExecContext<'_>) -> Result<serde_json::Value, ExecError> {
        let spec = MdRunSpec::from_value(&ctx.command.payload).map_err(ExecError::BadPayload)?;
        if spec.record_interval == 0 || spec.n_steps == 0 {
            return Err(ExecError::BadPayload(
                "n_steps and record_interval must be positive".into(),
            ));
        }

        // Resume from a checkpoint if the command carries one.
        let (mut sim, mut trajectory, mut steps_done) = match &ctx.command.checkpoint {
            Some(cp_json) => {
                let cp = MdCheckpoint::from_value(cp_json)
                    .map_err(|e| ExecError::BadPayload(format!("bad checkpoint: {e}")))?;
                let mut sim = self.model.simulation(
                    cp.engine.state.positions.clone(),
                    spec.temperature,
                    cp.engine.rng_reseed,
                );
                sim.restore(&cp.engine);
                (sim, cp.partial_trajectory, cp.steps_done)
            }
            None => {
                let sim = self.model.simulation(
                    spec.start_positions.clone(),
                    spec.temperature,
                    spec.seed,
                );
                let mut traj = Trajectory::new();
                traj.push(0.0, spec.start_positions.clone());
                (sim, traj, 0)
            }
        };

        if let Some(kernel) = &spec.kernel {
            sim.configure_kernel(kernel);
        }

        // `attempts` counts dispatches: the server sets it to 1 on the
        // first dispatch (executor unit tests may pass 0). Crash only on
        // the first execution of this command.
        let crash_at = if ctx.command.attempts <= 1 {
            spec.inject_crash_at_step
        } else {
            None
        };

        // Per-step phase timings flow into the shared histograms when the
        // worker carries telemetry; otherwise the NullSink path keeps the
        // inner loop untouched.
        let sink = ctx
            .telemetry
            .map(|t| t.step_sink(labels(&[("model", "villin")])));

        let mut steps_executed = 0u64;
        while steps_done < spec.n_steps {
            let chunk = if spec.checkpoint_steps > 0 {
                spec.checkpoint_steps.min(spec.n_steps - steps_done)
            } else {
                spec.n_steps - steps_done
            };
            let recorded = match &sink {
                Some(s) => sim.run_recording_with_sink(chunk, spec.record_interval, s),
                None => sim.run_recording(chunk, spec.record_interval),
            };
            // Drop the duplicate leading frame (already in `trajectory`).
            for (t, f) in recorded.iter().skip(1) {
                trajectory.push(t, f.to_vec());
            }
            steps_done += chunk;
            steps_executed += chunk;

            if let (Some(fs), true) = (ctx.shared_fs, spec.checkpoint_steps > 0) {
                let t0 = std::time::Instant::now();
                let cp = MdCheckpoint {
                    engine: sim.checkpoint(mdsim::rng::splitmix64(spec.seed ^ steps_done)),
                    partial_trajectory: trajectory.clone(),
                    steps_done,
                };
                let value = cp.to_value();
                if let Some(t) = ctx.telemetry {
                    let bytes = value.to_string().len() as u64;
                    fs.store_checkpoint(ctx.command.id, value);
                    t.registry()
                        .histogram(
                            names::CHECKPOINT_WRITE,
                            copernicus_telemetry::Labels::new(),
                            buckets::SECONDS,
                        )
                        .record_duration(t0.elapsed());
                    t.registry()
                        .counter(names::CHECKPOINT_BYTES, copernicus_telemetry::Labels::new())
                        .add(bytes);
                    t.journal().record(Event::CheckpointWritten {
                        command: ctx.command.id.0,
                        bytes,
                    });
                } else {
                    fs.store_checkpoint(ctx.command.id, value);
                }
            }

            if let Some(limit) = crash_at {
                if steps_done >= limit {
                    return Err(ExecError::SimulatedCrash);
                }
            }
        }

        if let (Some(t), Some(s)) = (ctx.telemetry, &sink) {
            let rebuilds = s.rebuilds();
            if rebuilds > 0 {
                t.registry()
                    .counter(names::NEIGHBOR_REBUILDS, labels(&[("model", "villin")]))
                    .add(rebuilds);
            }
            // Kernel throughput counters: cumulative pairs streamed by the
            // inner loop this execution, and the resident packed-list size.
            let kstats = sim.kernel_stats();
            if kstats.pairs_evaluated > 0 {
                t.registry()
                    .counter(names::NB_PAIRS, labels(&[("model", "villin")]))
                    .add(kstats.pairs_evaluated);
            }
            t.registry()
                .gauge(names::NB_PACKED_BYTES, labels(&[("model", "villin")]))
                .set(kstats.packed_bytes as f64);
        }

        let output = MdRunOutput {
            final_positions: sim.state.positions.clone(),
            trajectory,
            steps_executed,
            final_potential: Some(sim.potential_energy()),
            tag: spec.tag,
        };
        Ok(output.to_value())
    }
}

// ---------------------------------------------------------------------------
// FEP executor
// ---------------------------------------------------------------------------

/// Payload of a `fep-sample` command: equilibrium sampling of a harmonic
/// well `k_sample` while evaluating the perturbation energy to `k_eval`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FepSampleSpec {
    pub k_sample: f64,
    pub k_eval: f64,
    pub temperature: f64,
    pub equil_steps: u64,
    pub n_steps: u64,
    pub record_interval: u64,
    pub seed: u64,
    /// Opaque controller metadata echoed into the output.
    #[serde(default)]
    pub tag: serde_json::Value,
}

/// Output of a `fep-sample` command.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FepSampleOutput {
    /// Work values `U_eval(x) − U_sample(x)` at the recorded frames.
    pub works: Vec<f64>,
    /// The controller tag from the command payload, echoed back.
    #[serde(default)]
    pub tag: serde_json::Value,
}

impl FepSampleSpec {
    pub fn to_value(&self) -> Value {
        json!({
            "k_sample": self.k_sample,
            "k_eval": self.k_eval,
            "temperature": self.temperature,
            "equil_steps": self.equil_steps,
            "n_steps": self.n_steps,
            "record_interval": self.record_interval,
            "seed": self.seed,
            "tag": self.tag.clone(),
        })
    }

    pub fn from_value(v: &Value) -> Result<FepSampleSpec, String> {
        Ok(FepSampleSpec {
            k_sample: jsonv::num(v, "k_sample")?,
            k_eval: jsonv::num(v, "k_eval")?,
            temperature: jsonv::num(v, "temperature")?,
            equil_steps: jsonv::int(v, "equil_steps")?,
            n_steps: jsonv::int(v, "n_steps")?,
            record_interval: jsonv::int(v, "record_interval")?,
            seed: jsonv::int(v, "seed")?,
            tag: v.get("tag").cloned().unwrap_or(Value::Null),
        })
    }
}

impl FepSampleOutput {
    pub fn to_value(&self) -> Value {
        json!({
            "works": jsonv::f64s_to_value(&self.works),
            "tag": self.tag.clone(),
        })
    }

    pub fn from_value(v: &Value) -> Result<FepSampleOutput, String> {
        Ok(FepSampleOutput {
            works: jsonv::f64s_from_value(jsonv::field(v, "works")?)?,
            tag: v.get("tag").cloned().unwrap_or(Value::Null),
        })
    }
}

/// Samples perturbation work values with real Langevin dynamics.
pub struct FepSampleExecutor;

impl FepSampleExecutor {
    pub const COMMAND_TYPE: &'static str = "fep-sample";
}

impl CommandExecutor for FepSampleExecutor {
    fn executables(&self) -> Vec<ExecutableSpec> {
        vec![ExecutableSpec::new(
            Self::COMMAND_TYPE,
            Platform::Smp,
            "copernicus-fep-0.1",
        )]
    }

    fn execute(&self, ctx: ExecContext<'_>) -> Result<serde_json::Value, ExecError> {
        use mdsim::forces::{ForceField, HarmonicRestraint};
        use mdsim::integrate::Langevin;
        use mdsim::pbc::SimBox;
        use mdsim::state::State;
        use mdsim::topology::{LjParams, Particle, Topology};
        use mdsim::Simulation;

        let spec =
            FepSampleSpec::from_value(&ctx.command.payload).map_err(ExecError::BadPayload)?;
        if spec.record_interval == 0 {
            return Err(ExecError::BadPayload(
                "record_interval must be positive".into(),
            ));
        }

        let mut top = Topology::new();
        top.add_particle(Particle::neutral(1.0, LjParams::new(1.0, 0.0)));
        let state = State::new(vec![Vec3::ZERO], &top, SimBox::Open);
        let ff = ForceField::new().with(Box::new(HarmonicRestraint::new(
            vec![(0, Vec3::ZERO)],
            spec.k_sample,
        )));
        let integrator = Langevin::new(spec.temperature, 1.0, rng_for_stream(spec.seed, 0xfe9));
        let mut sim = Simulation::new(state, ff, Box::new(integrator), 0.02, 3);

        sim.run(spec.equil_steps);
        let dk = 0.5 * (spec.k_eval - spec.k_sample);
        let mut works = Vec::with_capacity((spec.n_steps / spec.record_interval) as usize);
        let mut count = 0u64;
        sim.run_with(spec.n_steps, |_, state, _| {
            count += 1;
            if count % spec.record_interval == 0 {
                works.push(dk * state.positions[0].norm2());
            }
        });

        Ok(FepSampleOutput {
            works,
            tag: spec.tag,
        }
        .to_value())
    }
}

// ---------------------------------------------------------------------------
// MSM rebuild executor
// ---------------------------------------------------------------------------

/// Payload of an `msm-build` command: the full recluster the streaming
/// controller runs as a *background* workload on the fleet instead of
/// stopping the world (DESIGN.md §16). Carries a frozen copy of the
/// trajectory frame lists; the result is swapped in atomically when it
/// lands.
#[derive(Debug, Clone)]
pub struct MsmBuildSpec {
    /// One frame list per trajectory (terminated first, then the live
    /// lineages in slot order — the controller relies on this order).
    pub trajs: Vec<Vec<Vec<Vec3>>>,
    pub n_clusters: usize,
    /// Opaque controller metadata echoed into the output.
    pub tag: Value,
}

/// Output of an `msm-build` command.
#[derive(Debug, Clone)]
pub struct MsmBuildOutput {
    /// Cluster center conformations, in discovery order.
    pub centers: Vec<Vec<Vec3>>,
    /// Per-input-trajectory state assignments.
    pub dtrajs: Vec<Vec<usize>>,
    /// Largest assignment distance — the radius the streaming assigner
    /// uses to decide "new state" until the next rebuild.
    pub radius: f64,
    pub tag: Value,
}

impl MsmBuildSpec {
    pub fn to_value(&self) -> Value {
        json!({
            "trajs": Value::from(
                self.trajs.iter().map(|t| jsonv::frames_to_value(t)).collect::<Vec<_>>()
            ),
            "n_clusters": self.n_clusters as u64,
            "tag": self.tag.clone(),
        })
    }

    pub fn from_value(v: &Value) -> Result<MsmBuildSpec, String> {
        let trajs = jsonv::field(v, "trajs")?
            .as_array()
            .ok_or("trajs is not an array")?
            .iter()
            .map(jsonv::frames_from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(MsmBuildSpec {
            trajs,
            n_clusters: jsonv::int(v, "n_clusters")? as usize,
            tag: v.get("tag").cloned().unwrap_or(Value::Null),
        })
    }
}

impl MsmBuildOutput {
    pub fn to_value(&self) -> Value {
        json!({
            "centers": jsonv::frames_to_value(&self.centers),
            "dtrajs": Value::from(
                self.dtrajs.iter().map(|d| jsonv::usizes_to_value(d)).collect::<Vec<_>>()
            ),
            "radius": self.radius,
            "tag": self.tag.clone(),
        })
    }

    pub fn from_value(v: &Value) -> Result<MsmBuildOutput, String> {
        let dtrajs = jsonv::field(v, "dtrajs")?
            .as_array()
            .ok_or("dtrajs is not an array")?
            .iter()
            .map(jsonv::usizes_from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(MsmBuildOutput {
            centers: jsonv::frames_from_value(jsonv::field(v, "centers")?)?,
            dtrajs,
            radius: jsonv::num(v, "radius")?,
            tag: v.get("tag").cloned().unwrap_or(Value::Null),
        })
    }
}

/// Runs the periodic full recluster on a worker like any other command.
pub struct MsmBuildExecutor;

impl MsmBuildExecutor {
    pub const COMMAND_TYPE: &'static str = "msm-build";
}

impl CommandExecutor for MsmBuildExecutor {
    fn executables(&self) -> Vec<ExecutableSpec> {
        vec![ExecutableSpec::new(
            Self::COMMAND_TYPE,
            Platform::Smp,
            "copernicus-msm-0.1",
        )]
    }

    fn execute(&self, ctx: ExecContext<'_>) -> Result<Value, ExecError> {
        let spec = MsmBuildSpec::from_value(&ctx.command.payload).map_err(ExecError::BadPayload)?;
        if spec.n_clusters == 0 {
            return Err(ExecError::BadPayload("n_clusters must be positive".into()));
        }
        let lengths: Vec<usize> = spec.trajs.iter().map(|t| t.len()).collect();
        let pooled: Vec<Vec<Vec3>> = spec.trajs.into_iter().flatten().collect();
        if pooled.is_empty() {
            return Err(ExecError::BadPayload("no frames to cluster".into()));
        }
        let t0 = std::time::Instant::now();
        let clustering =
            msm::cluster::k_centers(&pooled, spec.n_clusters, 0, |a, b| msm::rmsd(a, b));
        let centers: Vec<Vec<Vec3>> = clustering
            .centers
            .iter()
            .map(|&i| pooled[i].clone())
            .collect();
        let mut dtrajs = Vec::with_capacity(lengths.len());
        let mut offset = 0usize;
        for len in lengths {
            dtrajs.push(clustering.assignment[offset..offset + len].to_vec());
            offset += len;
        }
        if let Some(t) = ctx.telemetry {
            t.registry()
                .histogram(
                    names::CLUSTERING_SECS,
                    labels(&[("mode", "background")]),
                    buckets::SECONDS,
                )
                .record_duration(t0.elapsed());
        }
        Ok(MsmBuildOutput {
            centers,
            dtrajs,
            radius: clustering.max_radius(),
            tag: spec.tag,
        }
        .to_value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{Command, CommandSpec};
    use crate::executor::ExecutorRegistry;
    use crate::fs::SharedFs;
    use crate::ids::{CommandId, ProjectId, WorkerId};
    use crate::resources::Resources;
    use serde_json::json;

    fn model() -> Arc<VillinModel> {
        Arc::new(VillinModel::hp35())
    }

    fn md_command(id: u64, spec: &MdRunSpec) -> Command {
        Command::from_spec(
            CommandId(id),
            ProjectId(0),
            CommandSpec::new(
                MdRunExecutor::COMMAND_TYPE,
                Resources::new(1, 100),
                spec.to_value(),
            ),
        )
    }

    fn base_spec(m: &VillinModel) -> MdRunSpec {
        MdRunSpec {
            start_positions: m.unfolded_start(1),
            temperature: 0.55,
            n_steps: 400,
            record_interval: 100,
            seed: 5,
            checkpoint_steps: 0,
            inject_crash_at_step: None,
            tag: serde_json::Value::Null,
            kernel: None,
        }
    }

    #[test]
    fn mdrun_produces_expected_frames() {
        let m = model();
        let exec = MdRunExecutor::new(m.clone());
        let spec = base_spec(&m);
        let cmd = md_command(1, &spec);
        let out = exec
            .execute(ExecContext {
                command: &cmd,
                worker: WorkerId(0),
                shared_fs: None,
                telemetry: None,
            })
            .unwrap();
        let parsed = MdRunOutput::from_value(&out).unwrap();
        // initial frame + 4 recorded frames
        assert_eq!(parsed.trajectory.len(), 5);
        assert_eq!(parsed.steps_executed, 400);
        assert_eq!(parsed.final_positions.len(), 35);
        let e = parsed.final_potential.expect("energy always reported");
        assert!(e.is_finite());
        // Outputs recorded before the field existed decode to None.
        let mut v = out.clone();
        v.as_object_mut().unwrap().remove("final_potential");
        assert_eq!(MdRunOutput::from_value(&v).unwrap().final_potential, None);
    }

    #[test]
    fn mdrun_is_deterministic() {
        let m = model();
        let exec = MdRunExecutor::new(m.clone());
        let spec = base_spec(&m);
        let cmd = md_command(1, &spec);
        let run = |cmd: &Command| {
            exec.execute(ExecContext {
                command: cmd,
                worker: WorkerId(0),
                shared_fs: None,
                telemetry: None,
            })
            .unwrap()
        };
        assert_eq!(run(&cmd), run(&cmd));
    }

    #[test]
    fn mdrun_checkpoints_to_shared_fs() {
        let m = model();
        let exec = MdRunExecutor::new(m.clone());
        let mut spec = base_spec(&m);
        spec.checkpoint_steps = 100;
        let cmd = md_command(2, &spec);
        let fs = SharedFs::new();
        exec.execute(ExecContext {
            command: &cmd,
            worker: WorkerId(0),
            shared_fs: Some(&fs),
            telemetry: None,
        })
        .unwrap();
        let cp = fs.checkpoint(CommandId(2)).expect("checkpoint deposited");
        assert_eq!(cp["steps_done"], 400);
    }

    #[test]
    fn crash_injection_then_resume_from_checkpoint() {
        let m = model();
        let exec = MdRunExecutor::new(m.clone());
        let mut spec = base_spec(&m);
        spec.checkpoint_steps = 100;
        spec.inject_crash_at_step = Some(200);
        let mut cmd = md_command(3, &spec);
        let fs = SharedFs::new();

        // First attempt crashes mid-run.
        let err = exec
            .execute(ExecContext {
                command: &cmd,
                worker: WorkerId(0),
                shared_fs: Some(&fs),
                telemetry: None,
            })
            .unwrap_err();
        assert_eq!(err, ExecError::SimulatedCrash);

        // Server re-queues with the checkpoint; the second dispatch
        // resumes.
        cmd.checkpoint = fs.checkpoint(CommandId(3));
        cmd.attempts = 2;
        let out = exec
            .execute(ExecContext {
                command: &cmd,
                worker: WorkerId(1),
                shared_fs: Some(&fs),
                telemetry: None,
            })
            .unwrap();
        let parsed = MdRunOutput::from_value(&out).unwrap();
        // Full trajectory delivered despite the crash…
        assert_eq!(parsed.trajectory.len(), 5);
        // …but only the remaining 200 steps were re-executed.
        assert_eq!(parsed.steps_executed, 200);
    }

    #[test]
    fn bad_payload_is_reported() {
        let m = model();
        let exec = MdRunExecutor::new(m);
        let cmd = Command::from_spec(
            CommandId(4),
            ProjectId(0),
            CommandSpec::new("mdrun", Resources::new(1, 1), json!({"nonsense": true})),
        );
        let err = exec
            .execute(ExecContext {
                command: &cmd,
                worker: WorkerId(0),
                shared_fs: None,
                telemetry: None,
            })
            .unwrap_err();
        assert!(matches!(err, ExecError::BadPayload(_)));
    }

    #[test]
    fn fep_sampler_matches_equipartition() {
        let exec = FepSampleExecutor;
        let spec = FepSampleSpec {
            k_sample: 2.0,
            k_eval: 3.0,
            temperature: 1.0,
            equil_steps: 500,
            n_steps: 40_000,
            record_interval: 10,
            seed: 3,
            tag: serde_json::Value::Null,
        };
        let cmd = Command::from_spec(
            CommandId(5),
            ProjectId(0),
            CommandSpec::new(
                FepSampleExecutor::COMMAND_TYPE,
                Resources::new(1, 1),
                spec.to_value(),
            ),
        );
        let out = exec
            .execute(ExecContext {
                command: &cmd,
                worker: WorkerId(0),
                shared_fs: None,
                telemetry: None,
            })
            .unwrap();
        let parsed = FepSampleOutput::from_value(&out).unwrap();
        assert_eq!(parsed.works.len(), 4000);
        // ⟨W⟩ = ½ dk ⟨r²⟩ = ½·1·(3 kT/k_sample) = 0.75.
        let mean = parsed.works.iter().sum::<f64>() / parsed.works.len() as f64;
        assert!((mean - 0.75).abs() < 0.08, "⟨W⟩ = {mean}");
    }

    #[test]
    fn md_registry_routes_by_type() {
        let m = model();
        let registry = ExecutorRegistry::new()
            .with(Arc::new(MdRunExecutor::new(m)))
            .with(Arc::new(FepSampleExecutor))
            .with(Arc::new(MsmBuildExecutor));
        assert!(registry.lookup("mdrun").is_some());
        assert!(registry.lookup("fep-sample").is_some());
        assert!(registry.lookup("msm-build").is_some());
        assert!(registry.lookup("sleep").is_none());
        assert_eq!(registry.executables().len(), 3);
    }

    #[test]
    fn spec_value_roundtrips() {
        let m = model();
        let mut spec = base_spec(&m);
        spec.inject_crash_at_step = Some(123);
        spec.tag = json!({"lineage": 7});
        spec.kernel = Some(mdsim::forces::KernelConfig::default());
        let back = MdRunSpec::from_value(&spec.to_value()).unwrap();
        assert_eq!(back.start_positions, spec.start_positions);
        assert_eq!(back.n_steps, spec.n_steps);
        assert_eq!(back.inject_crash_at_step, Some(123));
        assert_eq!(back.tag["lineage"], 7);
        assert_eq!(back.kernel, spec.kernel);
        // Optional fields degrade to their defaults when absent.
        let mut v = spec.to_value();
        let obj = v.as_object_mut().unwrap();
        obj.remove("inject_crash_at_step");
        obj.remove("tag");
        obj.remove("kernel");
        let sparse = MdRunSpec::from_value(&v).unwrap();
        assert_eq!(sparse.inject_crash_at_step, None);
        assert_eq!(sparse.tag, Value::Null);
        assert!(sparse.kernel.is_none());
    }

    #[test]
    fn msm_build_clusters_and_splits_dtrajs() {
        let m = model();
        let mut a = Vec::new();
        let mut b = Vec::new();
        for i in 0..6 {
            let mut f = m.unfolded_start(1);
            f[0].x += i as f64;
            a.push(f);
        }
        for i in 0..4 {
            let mut f = m.unfolded_start(2);
            f[0].x -= i as f64;
            b.push(f);
        }
        let spec = MsmBuildSpec {
            trajs: vec![a, b],
            n_clusters: 4,
            tag: json!({"epoch": 1}),
        };
        let cmd = Command::from_spec(
            CommandId(9),
            ProjectId(0),
            CommandSpec::new(
                MsmBuildExecutor::COMMAND_TYPE,
                Resources::new(1, 1),
                spec.to_value(),
            ),
        );
        let out = MsmBuildExecutor
            .execute(ExecContext {
                command: &cmd,
                worker: WorkerId(0),
                shared_fs: None,
                telemetry: None,
            })
            .unwrap();
        let parsed = MsmBuildOutput::from_value(&out).unwrap();
        assert_eq!(parsed.centers.len(), 4);
        assert_eq!(parsed.dtrajs.len(), 2);
        assert_eq!(parsed.dtrajs[0].len(), 6);
        assert_eq!(parsed.dtrajs[1].len(), 4);
        assert!(parsed.dtrajs.iter().flatten().all(|&s| s < 4));
        assert!(parsed.radius.is_finite());
        assert_eq!(parsed.tag["epoch"], 1);
    }
}
