//! Commands: the individual work units a project is broken into.
//!
//! In the paper, a command is typically one massively parallel 50-ns MD
//! segment. Payloads are structured JSON interpreted by the executor
//! registered for the command type — the framework itself is agnostic of
//! the simulation engine (§2.1).

use crate::ids::{CommandId, ProjectId, WorkerId};
use crate::resources::Resources;
use copernicus_telemetry::TraceContext;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// What a controller asks to be run (before an id is assigned).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CommandSpec {
    pub command_type: String,
    /// Higher runs earlier.
    pub priority: i32,
    pub required: Resources,
    pub payload: serde_json::Value,
}

impl CommandSpec {
    pub fn new(
        command_type: impl Into<String>,
        required: Resources,
        payload: serde_json::Value,
    ) -> Self {
        CommandSpec {
            command_type: command_type.into(),
            priority: 0,
            required,
            payload,
        }
    }

    pub fn with_priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }
}

/// A queued, schedulable command.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Command {
    pub id: CommandId,
    pub project: ProjectId,
    pub command_type: String,
    pub priority: i32,
    pub required: Resources,
    pub payload: serde_json::Value,
    /// Latest checkpoint returned by a (possibly failed) earlier
    /// execution; executors resume from it when present (§2.3).
    pub checkpoint: Option<serde_json::Value>,
    /// How many times this command has been (re)dispatched. Doubles as
    /// the *attempt epoch*: the server stamps it at dispatch, workers
    /// echo it back in results, and the server drops results whose
    /// epoch no longer matches (see `lifecycle`).
    pub attempts: u32,
    /// Error-retry backoff embargo: `CommandQueue::match_workload`
    /// skips (but retains) this command until the instant has passed.
    /// Process-local scheduling state, never serialized.
    #[serde(skip)]
    pub not_before: Option<Instant>,
    /// Distributed-tracing context: minted by the owning server at
    /// enqueue, re-stamped with the attempt span at each dispatch, and
    /// carried across the wire by the binary codec so worker and
    /// delegate spans join the owner's trace. Not part of the serde
    /// (checkpoint) shape — a restored command starts a fresh trace.
    #[serde(skip)]
    pub trace: Option<TraceContext>,
}

impl Command {
    pub fn from_spec(id: CommandId, project: ProjectId, spec: CommandSpec) -> Self {
        Command {
            id,
            project,
            command_type: spec.command_type,
            priority: spec.priority,
            required: spec.required,
            payload: spec.payload,
            checkpoint: None,
            attempts: 0,
            not_before: None,
            trace: None,
        }
    }

    /// Whether the backoff embargo (if any) has expired at `now`.
    pub fn ready_at(&self, now: Instant) -> bool {
        self.not_before.is_none_or(|t| t <= now)
    }
}

/// The result a worker returns for a completed command.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CommandOutput {
    pub command: CommandId,
    pub project: ProjectId,
    pub worker: WorkerId,
    pub command_type: String,
    /// The attempt epoch this result belongs to (the command's
    /// `attempts` value at dispatch). The server uses it to tell a live
    /// result from a stale duplicate after re-queueing.
    #[serde(default)]
    pub epoch: u32,
    pub data: serde_json::Value,
    /// Wall time the execution took, seconds.
    pub wall_secs: f64,
    /// Serialized size of `data` (ensemble-bandwidth accounting).
    pub bytes: u64,
    /// Echo of the dispatched command's trace context so results can be
    /// attributed to the right attempt span even after a delegation hop.
    #[serde(skip)]
    pub trace: Option<TraceContext>,
}

impl CommandOutput {
    pub fn new(cmd: &Command, worker: WorkerId, data: serde_json::Value, wall_secs: f64) -> Self {
        let bytes = serde_json::to_vec(&data)
            .map(|v| v.len() as u64)
            .unwrap_or(0);
        CommandOutput {
            command: cmd.id,
            project: cmd.project,
            worker,
            command_type: cmd.command_type.clone(),
            epoch: cmd.attempts,
            data,
            wall_secs,
            bytes,
            trace: cmd.trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn spec_to_command() {
        let spec = CommandSpec::new("mdrun", Resources::new(4, 100), json!({"steps": 1000}))
            .with_priority(5);
        let cmd = Command::from_spec(CommandId(1), ProjectId(0), spec);
        assert_eq!(cmd.command_type, "mdrun");
        assert_eq!(cmd.priority, 5);
        assert_eq!(cmd.payload["steps"], 1000);
        assert!(cmd.checkpoint.is_none());
        assert_eq!(cmd.attempts, 0);
    }

    #[test]
    fn output_measures_bytes() {
        let cmd = Command::from_spec(
            CommandId(2),
            ProjectId(0),
            CommandSpec::new("t", Resources::new(1, 1), json!(null)),
        );
        let out = CommandOutput::new(&cmd, WorkerId(9), json!({"x": [1, 2, 3]}), 0.5);
        assert_eq!(out.command, CommandId(2));
        assert_eq!(out.worker, WorkerId(9));
        assert!(out.bytes >= 10);
        assert_eq!(out.wall_secs, 0.5);
    }

    #[test]
    fn command_roundtrips_serde() {
        let cmd = Command::from_spec(
            CommandId(3),
            ProjectId(1),
            CommandSpec::new("mdrun", Resources::new(2, 64), json!({"seed": 7})),
        );
        let s = serde_json::to_string(&cmd).unwrap();
        let back: Command = serde_json::from_str(&s).unwrap();
        assert_eq!(back.id, cmd.id);
        assert_eq!(back.payload, cmd.payload);
    }
}
