//! Fault-injection end-to-end suite: drives the server's command
//! lifecycle through its error, orphan, resurrection and drop paths and
//! asserts the invariants the lifecycle machine guarantees —
//!
//! * exactly-once controller accounting: every spawned command produces
//!   exactly one `CommandFinished` *or* exactly one `CommandDropped`;
//! * errored-then-healthy commands complete unaided (retry + backoff);
//! * hopeless commands are dropped after exactly `max_attempts`;
//! * resurrected workers' duplicate results are deduplicated by attempt
//!   epoch;
//! * the shared filesystem ends empty (terminal transitions retire
//!   checkpoints).
//!
//! Tests come in two flavours: *scripted* (the test plays the workers by
//! hand over a worker transport, controlling exact interleavings) and
//! *pool* (real worker threads plus a supervisor that replaces crashed
//! workers, under deterministic or seeded-chaos fault injection).

use copernicus_core::faults::{
    ChaosExecutor, ChaosProfile, CrashingExecutor, ExecutionLog, FlakyExecutor,
};
use copernicus_core::prelude::*;
use copernicus_core::transport::{self, ChannelWorkerTransport};
use copernicus_core::{
    messages::{ToServer, ToWorker},
    spawn_worker, ChannelHub, CommandOutput, ExecutorRegistry, Server, WorkerHandle,
};
use parking_lot::Mutex;
use serde_json::json;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Shared test controller: spawn n commands, record terminal events,
// finish when every command is accounted for.
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Accounting {
    finished: HashMap<u64, u32>,
    /// id → (times dropped, attempts reported by the last drop).
    dropped: HashMap<u64, (u32, u32)>,
}

impl Accounting {
    fn terminal_events(&self, id: u64) -> u32 {
        self.finished.get(&id).copied().unwrap_or(0)
            + self.dropped.get(&id).map(|&(n, _)| n).unwrap_or(0)
    }
}

struct GatherController {
    specs: Vec<CommandSpec>,
    n: usize,
    seen: usize,
    accounting: Arc<Mutex<Accounting>>,
}

impl GatherController {
    fn new(specs: Vec<CommandSpec>, accounting: Arc<Mutex<Accounting>>) -> Self {
        let n = specs.len();
        GatherController {
            specs,
            n,
            seen: 0,
            accounting,
        }
    }

    fn step(&mut self) -> Vec<Action> {
        self.seen += 1;
        if self.seen == self.n {
            vec![Action::FinishProject {
                result: json!("accounted"),
            }]
        } else {
            vec![]
        }
    }
}

impl Controller for GatherController {
    fn name(&self) -> &str {
        "gather"
    }

    fn on_event(&mut self, _ctx: ControllerCtx<'_>, event: ControllerEvent<'_>) -> Vec<Action> {
        match event {
            ControllerEvent::ProjectStarted => {
                vec![Action::Spawn(std::mem::take(&mut self.specs))]
            }
            ControllerEvent::CommandFinished(output) => {
                *self
                    .accounting
                    .lock()
                    .finished
                    .entry(output.command.0)
                    .or_insert(0) += 1;
                self.step()
            }
            ControllerEvent::CommandDropped {
                command, attempts, ..
            } => {
                {
                    let mut acc = self.accounting.lock();
                    let entry = acc.dropped.entry(command.0).or_insert((0, attempts));
                    entry.0 += 1;
                    entry.1 = attempts;
                }
                self.step()
            }
            ControllerEvent::WorkerFailed { .. } => vec![],
        }
    }
}

/// `n` single-core commands. Earlier commands get higher priority so
/// scripted tests know the exact dispatch order.
fn specs(command_type: &str, n: usize) -> Vec<CommandSpec> {
    (0..n)
        .map(|i| {
            CommandSpec::new(command_type, Resources::new(1, 1), json!({ "i": i }))
                .with_priority((n - i) as i32)
        })
        .collect()
}

fn fault_server_config(max_attempts: u32) -> ServerConfig {
    ServerConfig {
        heartbeat_interval: Duration::from_millis(20),
        watchdog_period: Duration::from_millis(8),
        max_attempts,
        retry_backoff_base: Duration::from_millis(5),
        retry_backoff_max: Duration::from_millis(40),
        ..ServerConfig::default()
    }
}

fn fault_runtime_config(n_workers: usize, max_attempts: u32) -> RuntimeConfig {
    RuntimeConfig {
        n_workers,
        worker: WorkerConfig {
            heartbeat_interval: Duration::from_millis(20),
            poll_interval: Duration::from_millis(2),
            ..WorkerConfig::default()
        },
        server: fault_server_config(max_attempts),
        telemetry: None,
        ..RuntimeConfig::default()
    }
}

// ---------------------------------------------------------------------------
// Pool tests: real workers
// ---------------------------------------------------------------------------

#[test]
fn errored_command_retries_with_backoff_and_completes_unaided() {
    let log = ExecutionLog::new();
    let accounting = Arc::new(Mutex::new(Accounting::default()));
    let registry = ExecutorRegistry::new().with(Arc::new(FlakyExecutor::new(2, log.clone())));
    let controller =
        GatherController::new(specs(FlakyExecutor::COMMAND_TYPE, 4), accounting.clone());

    let running = start_project(Box::new(controller), registry, fault_runtime_config(2, 5));
    let shared_fs = running.shared_fs.clone();
    let result = running.join();

    assert_eq!(
        result.commands_completed, 4,
        "every flaky command must recover"
    );
    assert_eq!(result.commands_dropped, 0);
    // Two injected failures per command → two requeues per command.
    assert_eq!(result.commands_requeued, 8);
    let acc = accounting.lock();
    for id in acc.finished.keys() {
        assert_eq!(acc.terminal_events(*id), 1, "command {id} double-reported");
        assert_eq!(
            log.executions(CommandId(*id)),
            3,
            "command {id} must run exactly fail_times+1 times"
        );
    }
    assert_eq!(shared_fs.n_checkpoints(), 0, "checkpoints must be retired");
}

#[test]
fn hopeless_command_is_dropped_after_exactly_max_attempts() {
    let log = ExecutionLog::new();
    let accounting = Arc::new(Mutex::new(Accounting::default()));
    // Fails forever; budget of 3 attempts.
    let registry =
        ExecutorRegistry::new().with(Arc::new(FlakyExecutor::new(u32::MAX, log.clone())));
    let controller =
        GatherController::new(specs(FlakyExecutor::COMMAND_TYPE, 2), accounting.clone());

    let running = start_project(Box::new(controller), registry, fault_runtime_config(2, 3));
    let shared_fs = running.shared_fs.clone();
    let result = running.join();

    assert_eq!(result.commands_completed, 0);
    assert_eq!(result.commands_dropped, 2);
    // Attempts 1 and 2 re-queue; attempt 3 exhausts the budget.
    assert_eq!(result.commands_requeued, 4);
    let acc = accounting.lock();
    assert_eq!(acc.dropped.len(), 2);
    for (id, &(times, attempts)) in &acc.dropped {
        assert_eq!(times, 1, "command {id} dropped more than once");
        assert_eq!(attempts, 3, "drop must report the exhausted budget");
        assert_eq!(
            log.executions(CommandId(*id)),
            3,
            "command {id} must run exactly max_attempts times"
        );
    }
    assert_eq!(shared_fs.n_checkpoints(), 0);
}

/// Hand-built project wiring: server thread plus a hub the test (or a
/// supervisor) can attach workers to.
struct Rig {
    hub: ChannelHub,
    monitor: Monitor,
    shared_fs: SharedFs,
    server_thread: std::thread::JoinHandle<ProjectResult>,
}

fn rig(specs: Vec<CommandSpec>, accounting: Arc<Mutex<Accounting>>, config: ServerConfig) -> Rig {
    let (hub, server_transport) = transport::channel();
    let shared_fs = SharedFs::new();
    let monitor = Monitor::new();
    let controller = GatherController::new(specs, accounting);
    let server = Server::new(
        ProjectId(0),
        Box::new(controller),
        config,
        shared_fs.clone(),
        monitor.clone(),
        Box::new(server_transport),
    );
    let server_thread = std::thread::spawn(move || server.run());
    Rig {
        hub,
        monitor,
        shared_fs,
        server_thread,
    }
}

/// Run a pool of real workers with a supervisor that replaces crashed
/// ones (fresh ids — real clusters never reuse a dead node's identity,
/// and a reused id would keep the dead worker's heartbeat record fresh
/// and strand its commands). Returns the project result.
fn supervise_pool(rig: Rig, registry: ExecutorRegistry, pool_size: usize) -> ProjectResult {
    let worker_config = WorkerConfig {
        heartbeat_interval: Duration::from_millis(20),
        poll_interval: Duration::from_millis(2),
        shared_fs: Some(rig.shared_fs.clone()),
        telemetry: None,
        ..WorkerConfig::default()
    };
    let mut next_id = 0u64;
    let mut pool: Vec<WorkerHandle> = Vec::new();
    let spawn_one = |pool: &mut Vec<WorkerHandle>, next_id: &mut u64| {
        let id = WorkerId(*next_id);
        pool.push(spawn_worker(
            id,
            worker_config.clone(),
            registry.clone(),
            Box::new(rig.hub.attach(id)),
        ));
        *next_id += 1;
    };
    for _ in 0..pool_size {
        spawn_one(&mut pool, &mut next_id);
    }

    while !rig.monitor.status().finished {
        let (dead, live): (Vec<_>, Vec<_>) = pool.drain(..).partition(|h| h.is_finished());
        pool = live;
        for h in dead {
            h.join();
            spawn_one(&mut pool, &mut next_id);
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    let result = rig.server_thread.join().unwrap();
    drop(rig.hub);
    for h in pool {
        h.join();
    }
    result
}

#[test]
fn crashed_workers_are_replaced_and_commands_complete() {
    let log = ExecutionLog::new();
    let accounting = Arc::new(Mutex::new(Accounting::default()));
    let registry = ExecutorRegistry::new().with(Arc::new(CrashingExecutor::new(1, log.clone())));
    let r = rig(
        specs(CrashingExecutor::COMMAND_TYPE, 3),
        accounting.clone(),
        fault_server_config(5),
    );
    let shared_fs = r.shared_fs.clone();
    let result = supervise_pool(r, registry, 3);

    assert_eq!(result.commands_completed, 3);
    assert_eq!(result.commands_dropped, 0);
    assert!(
        result.workers_lost >= 3,
        "each command kills at least one worker (lost {})",
        result.workers_lost
    );
    let acc = accounting.lock();
    for id in acc.finished.keys() {
        assert_eq!(acc.terminal_events(*id), 1);
        assert_eq!(
            log.executions(CommandId(*id)),
            2,
            "command {id}: one crash + one clean run"
        );
    }
    assert_eq!(shared_fs.n_checkpoints(), 0);
}

/// Chaos seed: `COPERNICUS_TEST_SEED` when set (the CI seed matrix
/// sweeps several), `0xC0FFEE` otherwise — same convention as the
/// wire/codec property tests, so one env var re-seeds the whole suite.
fn chaos_seed() -> u64 {
    std::env::var("COPERNICUS_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE)
}

#[test]
fn chaos_run_accounts_every_command_exactly_once() {
    const N_COMMANDS: usize = 24;
    let seed = chaos_seed();

    let log = ExecutionLog::new();
    let accounting = Arc::new(Mutex::new(Accounting::default()));
    let registry = ExecutorRegistry::new().with(Arc::new(ChaosExecutor::new(
        ChaosProfile {
            seed,
            error_pct: 25,
            crash_pct: 15,
        },
        log,
    )));
    let r = rig(
        specs(ChaosExecutor::COMMAND_TYPE, N_COMMANDS),
        accounting.clone(),
        ServerConfig {
            heartbeat_interval: Duration::from_millis(20),
            watchdog_period: Duration::from_millis(8),
            max_attempts: 4,
            retry_backoff_base: Duration::from_millis(4),
            retry_backoff_max: Duration::from_millis(30),
            ..ServerConfig::default()
        },
    );
    let shared_fs = r.shared_fs.clone();
    let result = supervise_pool(r, registry, 4);

    // The exactly-once ledger: every spawned command is accounted for by
    // exactly one terminal event, and nothing is counted twice.
    assert_eq!(
        result.commands_completed + result.commands_dropped,
        N_COMMANDS as u64,
        "completed + dropped must equal spawned"
    );
    let acc = accounting.lock();
    let ids: Vec<u64> = acc
        .finished
        .keys()
        .chain(acc.dropped.keys())
        .copied()
        .collect();
    assert_eq!(
        ids.len(),
        N_COMMANDS,
        "every command reaches a terminal event"
    );
    for id in ids {
        assert_eq!(
            acc.terminal_events(id),
            1,
            "command {id}: expected exactly one terminal event"
        );
    }
    for (id, &(_, attempts)) in &acc.dropped {
        assert_eq!(attempts, 4, "command {id} must be dropped at max_attempts");
    }
    assert_eq!(
        shared_fs.n_checkpoints(),
        0,
        "chaos run leaked checkpoints: {:?}",
        shared_fs.checkpointed_commands()
    );
}

// ---------------------------------------------------------------------------
// Scripted tests: the test plays the workers over raw channels
// ---------------------------------------------------------------------------

fn scripted_rig(
    specs: Vec<CommandSpec>,
    accounting: Arc<Mutex<Accounting>>,
    max_attempts: u32,
) -> Rig {
    rig(
        specs,
        accounting,
        ServerConfig {
            heartbeat_interval: Duration::from_millis(25),
            watchdog_period: Duration::from_millis(10),
            max_attempts,
            retry_backoff_base: Duration::from_millis(1),
            retry_backoff_max: Duration::from_millis(10),
            ..ServerConfig::default()
        },
    )
}

/// Attach and announce a scripted worker; the returned transport is the
/// hand-played worker's link to the server.
fn announce(rig: &Rig, worker: WorkerId) -> ChannelWorkerTransport {
    let mut link = rig.hub.attach(worker);
    link.announce(ToServer::Announce {
        worker,
        desc: WorkerDescription {
            platform: Platform::Smp,
            resources: Resources::new(1, 1_000_000),
            executables: vec![ExecutableSpec::new("fault", Platform::Smp, "1")],
        },
    })
    .unwrap();
    link
}

/// Request work until a workload arrives. The polling doubles as the
/// worker's liveness signal (work requests refresh the heartbeat).
fn fetch_command(link: &mut ChannelWorkerTransport, worker: WorkerId) -> Command {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        link.send(ToServer::RequestWork { worker }).unwrap();
        match link.recv_timeout(Duration::from_millis(100)) {
            Ok(ToWorker::Workload(mut cmds)) => {
                assert_eq!(cmds.len(), 1, "scripted workers take one command");
                return cmds.pop().unwrap();
            }
            Ok(_) | Err(_) => {
                assert!(Instant::now() < deadline, "no workload within 5s");
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

fn wait_until(rig: &Rig, mut pred: impl FnMut(&ProjectStatus) -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if pred(&rig.monitor.status()) {
            return;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(3));
    }
}

fn complete(rig: &Rig, cmd: &Command, worker: WorkerId) {
    let output = CommandOutput::new(cmd, worker, json!({ "by": worker.0 }), 0.01);
    rig.hub.send(ToServer::Completed { output }).unwrap();
}

#[test]
fn resurrected_workers_result_cancels_queued_duplicate() {
    let accounting = Arc::new(Mutex::new(Accounting::default()));
    let r = scripted_rig(specs("fault", 2), accounting.clone(), 5);
    let a = WorkerId(101);
    let b = WorkerId(102);

    // A takes the high-priority command X, then falls silent.
    let mut a_link = announce(&r, a);
    let cmd_x = fetch_command(&mut a_link, a);
    assert_eq!(cmd_x.attempts, 1, "first dispatch is epoch 1");
    wait_until(&r, |s| s.workers_lost == 1, "worker A declared lost");
    wait_until(&r, |s| s.commands_requeued == 1, "X re-queued");

    // A resurrects and delivers X's result while the duplicate is still
    // queued: the result must be accepted and the duplicate cancelled.
    complete(&r, &cmd_x, a);
    wait_until(&r, |s| s.commands_completed == 1, "X accepted");

    // B drains the remaining command; X must not be dispatched again.
    let mut b_link = announce(&r, b);
    let cmd_y = fetch_command(&mut b_link, b);
    assert_ne!(
        cmd_y.id, cmd_x.id,
        "cancelled duplicate must not re-dispatch"
    );
    complete(&r, &cmd_y, b);

    let result = r.server_thread.join().unwrap();
    assert_eq!(result.commands_completed, 2);
    assert_eq!(result.commands_requeued, 1);
    assert_eq!(result.stale_results_dropped, 0);
    assert_eq!(result.commands_dropped, 0);
    assert_eq!(
        accounting.lock().terminal_events(cmd_x.id.0),
        1,
        "X exactly once"
    );
    assert_eq!(r.shared_fs.n_checkpoints(), 0);
}

#[test]
fn duplicate_completion_after_redispatch_is_dropped_by_epoch() {
    let accounting = Arc::new(Mutex::new(Accounting::default()));
    let r = scripted_rig(specs("fault", 2), accounting.clone(), 5);
    let a = WorkerId(201);
    let b = WorkerId(202);

    // A takes X (epoch 1), falls silent; X is re-queued.
    let mut a_link = announce(&r, a);
    let cmd_x1 = fetch_command(&mut a_link, a);
    wait_until(&r, |s| s.commands_requeued == 1, "X re-queued");

    // B picks up the re-dispatch (epoch 2) — X outranks Y by priority.
    let mut b_link = announce(&r, b);
    let cmd_x2 = fetch_command(&mut b_link, b);
    assert_eq!(cmd_x2.id, cmd_x1.id, "B must get the re-queued X");
    assert_eq!(cmd_x2.attempts, 2, "re-dispatch bumps the epoch");

    // A resurrects and delivers the epoch-1 result first: accepted (the
    // work is identical), and B's running record is cancelled.
    complete(&r, &cmd_x1, a);
    wait_until(&r, |s| s.commands_completed == 1, "X accepted once");

    // B's epoch-2 result is now a duplicate and must be dropped.
    complete(&r, &cmd_x2, b);

    // B drains Y to finish the project.
    let cmd_y = fetch_command(&mut b_link, b);
    assert_ne!(cmd_y.id, cmd_x1.id);
    complete(&r, &cmd_y, b);

    let result = r.server_thread.join().unwrap();
    assert_eq!(result.commands_completed, 2, "X once + Y once");
    assert_eq!(result.stale_results_dropped, 1, "B's duplicate dropped");
    assert_eq!(
        accounting.lock().terminal_events(cmd_x1.id.0),
        1,
        "X exactly once"
    );
    assert_eq!(r.shared_fs.n_checkpoints(), 0);
}

#[test]
fn stale_error_does_not_burn_attempt_budget() {
    let accounting = Arc::new(Mutex::new(Accounting::default()));
    // max_attempts = 2: one stale error charged by mistake would drop X.
    let r = scripted_rig(specs("fault", 1), accounting.clone(), 2);
    let a = WorkerId(301);
    let b = WorkerId(302);

    let mut a_link = announce(&r, a);
    let cmd_x1 = fetch_command(&mut a_link, a);
    wait_until(&r, |s| s.commands_requeued == 1, "X re-queued");

    let mut b_link = announce(&r, b);
    let cmd_x2 = fetch_command(&mut b_link, b);
    assert_eq!(cmd_x2.attempts, 2);

    // A resurrects with an error report for the *old* epoch. It must be
    // discarded: B's attempt stays live and the budget untouched.
    r.hub
        .send(ToServer::CommandError {
            worker: a,
            project: cmd_x1.project,
            command: cmd_x1.id,
            epoch: cmd_x1.attempts,
            error: "stale failure from resurrected worker".into(),
        })
        .unwrap();

    // B completes its (current-epoch) attempt successfully.
    complete(&r, &cmd_x2, b);

    let result = r.server_thread.join().unwrap();
    assert_eq!(result.commands_completed, 1);
    assert_eq!(
        result.commands_dropped, 0,
        "stale error must not burn budget"
    );
    assert_eq!(result.stale_results_dropped, 1);
    assert_eq!(accounting.lock().terminal_events(cmd_x1.id.0), 1);
    assert_eq!(r.shared_fs.n_checkpoints(), 0);
}

#[test]
fn error_backoff_embargoes_redispatch() {
    let accounting = Arc::new(Mutex::new(Accounting::default()));
    // Large backoff relative to the test: after one error the command
    // must stay embargoed for ~150 ms even with an idle worker asking.
    let r = rig(
        specs("fault", 1),
        accounting,
        ServerConfig {
            heartbeat_interval: Duration::from_millis(200),
            watchdog_period: Duration::from_millis(10),
            max_attempts: 5,
            retry_backoff_base: Duration::from_millis(150),
            retry_backoff_max: Duration::from_secs(1),
            ..ServerConfig::default()
        },
    );
    let a = WorkerId(401);
    let mut a_link = announce(&r, a);
    let cmd_x1 = fetch_command(&mut a_link, a);
    r.hub
        .send(ToServer::CommandError {
            worker: a,
            project: cmd_x1.project,
            command: cmd_x1.id,
            epoch: cmd_x1.attempts,
            error: "flaky".into(),
        })
        .unwrap();
    wait_until(&r, |s| s.commands_requeued == 1, "X re-queued");

    // While embargoed, work requests come back empty.
    let t0 = Instant::now();
    let cmd_x2 = fetch_command(&mut a_link, a);
    let waited = t0.elapsed();
    assert_eq!(cmd_x2.attempts, 2);
    assert!(
        waited >= Duration::from_millis(100),
        "re-dispatch must respect the backoff embargo (waited {waited:?})"
    );

    complete(&r, &cmd_x2, a);
    let result = r.server_thread.join().unwrap();
    assert_eq!(result.commands_completed, 1);
    assert_eq!(r.shared_fs.n_checkpoints(), 0);
}
